// AdmissionController: per-client token-bucket rate limiting.
//
// The front door is multi-tenant: one chatty client must not starve the
// rest of the queue.  Each client id meters against its own token
// bucket — `rate_per_sec` tokens refill continuously, up to `burst`
// capacity — and a query that finds no token is *shed* before it ever
// queues (the caller maps that to ResourceExhausted).  Shedding at
// admission keeps the rejected work at O(1) cost; queue-time rejection
// would already have paid for canonicalization and a queue slot.
//
// Time is passed in (milliseconds on the caller's clock) rather than
// read here, so tests drive the refill deterministically and the
// frontend can share one clock across cache TTL and admission.

#ifndef FXDIST_FRONT_ADMISSION_H_
#define FXDIST_FRONT_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace fxdist {

struct AdmissionOptions {
  /// Sustained per-client admission rate; <= 0 admits everything.
  double rate_per_sec = 0.0;
  /// Bucket capacity (burst size); <= 0 defaults to max(rate, 1).
  double burst = 0.0;
};

struct AdmissionClientStats {
  std::string client_id;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Takes one token from `client_id`'s bucket.  Returns false (shed)
  /// when the bucket is empty.  Unknown clients start with a full
  /// bucket.  `now_ms` must be monotone per client.
  bool Admit(const std::string& client_id, std::uint64_t now_ms);

  bool enabled() const { return options_.rate_per_sec > 0.0; }

  /// Per-client counters, sorted by client id.
  std::vector<AdmissionClientStats> Stats() const;

 private:
  struct Bucket {
    double tokens = 0.0;
    std::uint64_t refilled_ms = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  const AdmissionOptions options_;
  const double burst_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace fxdist

#endif  // FXDIST_FRONT_ADMISSION_H_
