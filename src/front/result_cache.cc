#include "front/result_cache.h"

#include <algorithm>
#include <utility>

namespace fxdist {

namespace {

std::uint64_t ApproxStatsBytes(const QueryStats& stats) {
  return stats.qualified_per_device.size() * sizeof(std::uint64_t) +
         stats.device_wall_ms.size() * sizeof(double) + sizeof(QueryStats);
}

}  // namespace

ResultCache::ResultCache(ResultCacheOptions options)
    : options_([&options] {
        options.num_shards = std::max<std::size_t>(1, options.num_shards);
        return options;
      }()),
      shard_budget_(std::max<std::uint64_t>(
          1, options_.max_bytes / options_.num_shards)) {
  shards_.reserve(options_.num_shards);
  for (std::size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->hot = shards_.back()->lru.end();
  }
}

std::uint64_t ResultCache::EntryBytes(const QueryKey& key,
                                      const QueryResult& result) {
  std::uint64_t bytes = key.ApproxBytes() + ApproxStatsBytes(result.stats) +
                        sizeof(Entry);
  for (const Record& record : result.records) {
    bytes += ApproxRecordBytes(record);
  }
  return bytes;
}

void ResultCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= it->bytes;
  if (it->result.records.empty()) --shard.negative_entries;
  shard.index.erase(it->key);
  if (shard.hot == it) shard.hot = shard.lru.end();
  shard.lru.erase(it);
}

std::optional<QueryResult> ResultCache::Lookup(const QueryKey& key,
                                               std::uint64_t epoch,
                                               std::uint64_t now_ms) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);

  std::list<Entry>::iterator it;
  bool via_memo = false;
  if (shard.hot != shard.lru.end() && shard.hot->key == key) {
    it = shard.hot;
    via_memo = true;
  } else {
    auto found = shard.index.find(key);
    if (found == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    it = found->second;
  }

  if (it->epoch != epoch) {
    ++shard.epoch_invalidations;
    ++shard.misses;
    EraseLocked(shard, it);
    return std::nullopt;
  }
  if (options_.ttl_ms > 0 && now_ms - it->inserted_ms >= options_.ttl_ms) {
    ++shard.ttl_expirations;
    ++shard.misses;
    EraseLocked(shard, it);
    return std::nullopt;
  }

  ++shard.hits;
  if (via_memo) ++shard.hot_memo_hits;
  if (it->result.records.empty()) ++shard.negative_hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it);
  shard.hot = it;
  return it->result;
}

void ResultCache::Insert(const QueryKey& key, const QueryResult& result,
                         std::uint64_t epoch, std::uint64_t now_ms) {
  const bool negative = result.records.empty();
  if (negative && !options_.cache_negative) return;
  const std::uint64_t bytes = EntryBytes(key, result);
  if (bytes > shard_budget_) return;  // would evict the whole shard

  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (auto found = shard.index.find(key); found != shard.index.end()) {
    EraseLocked(shard, found->second);
  }
  while (shard.bytes + bytes > shard_budget_ && !shard.lru.empty()) {
    ++shard.evictions;
    EraseLocked(shard, std::prev(shard.lru.end()));
  }
  shard.lru.push_front(Entry{key, result, epoch, now_ms, bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  if (negative) ++shard.negative_entries;
  shard.hot = shard.lru.begin();
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
    shard->hot = shard->lru.end();
    shard->bytes = 0;
    shard->negative_entries = 0;
  }
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.epoch_invalidations += shard->epoch_invalidations;
    stats.ttl_expirations += shard->ttl_expirations;
    stats.hot_memo_hits += shard->hot_memo_hits;
    stats.negative_hits += shard->negative_hits;
    stats.entries += shard->lru.size();
    stats.bytes += shard->bytes;
    stats.negative_entries += shard->negative_entries;
  }
  return stats;
}

}  // namespace fxdist
