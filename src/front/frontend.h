// Frontend: the multi-tenant front door in front of QueryEngine.
//
// Three concerns compose here, each deliberately *outside* the engine
// (the engine stays the result-preserving batch executor; everything
// that can change what work runs — or whether it runs at all — lives in
// this layer):
//
//  * Result cache — every query canonicalizes to a QueryKey; a resident
//    entry computed at the backend's current mutation epoch answers the
//    query without queueing.  The epoch for a miss is captured *before*
//    the batch executes, so a mutation racing the execution can only
//    over-invalidate (see front/result_cache.h).  Hits are exact: key
//    equality implies a bit-identical filter, so cached records equal
//    what re-execution would return.
//  * Admission control — per-client token buckets shed work that exceeds
//    a tenant's rate before it queues; shed queries resolve with
//    ResourceExhausted (front/admission.h).
//  * Two-priority QoS — interactive queries jump ahead of the batch
//    backlog: each dispatch round drains every pending interactive query
//    and chews only `batch_chunk` batch queries, so interactive latency
//    is bounded by one round's work instead of the whole backlog.  With
//    QoS off both classes share one FIFO (the baseline the frontend
//    bench compares against).
//
// The dispatcher groups queue entries into QueryEngine::ExecuteBatch
// calls, so the engine's shared scans and duplicate collapse still apply
// across the queries of one round — the cache sits above the engine's
// own dedup, not instead of it.
//
// The backend must not be mutated by other threads while a Submit is in
// flight (the StorageBackend contract); mutations *between* rounds are
// what the epoch machinery handles.

#ifndef FXDIST_FRONT_FRONTEND_H_
#define FXDIST_FRONT_FRONTEND_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/query_engine.h"
#include "front/admission.h"
#include "front/result_cache.h"
#include "util/metrics.h"
#include "util/status.h"

namespace fxdist {

enum class QueryPriority {
  kInteractive,  ///< latency-sensitive: drained fully every round
  kBatch,        ///< throughput work: drained batch_chunk per round
};

struct FrontendOptions {
  /// Result cache shape; `cache_enabled` false bypasses it entirely.
  ResultCacheOptions cache;
  bool cache_enabled = true;
  /// Per-client admission (rate 0 admits everything).
  AdmissionOptions admission;
  /// Two-priority scheduling; false = one FIFO, arrival order.
  bool qos_enabled = true;
  /// Batch-class queries executed per dispatch round while interactive
  /// work exists (>= 1).  Small values bound interactive latency
  /// tightly; large values favor batch throughput.
  std::size_t batch_chunk = 8;
  /// Most queries drained into one engine batch per round (>= 1).
  std::size_t max_round = 64;
  /// Queue capacity across both classes; overflow is shed.
  std::size_t max_queue = 1 << 16;
  /// Millisecond clock for cache TTL and admission refill; defaults to
  /// steady_clock.  Injected by tests.
  std::function<std::uint64_t()> now_ms;
};

/// Point-in-time frontend counters (see ResultCacheStats for the cache
/// block).  Deterministic except the latency histograms.
struct FrontendStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;       ///< futures resolved with a result
  std::uint64_t failed = 0;          ///< futures resolved with an error
  std::uint64_t cache_served = 0;    ///< answered without queueing
  std::uint64_t shed_admission = 0;  ///< rejected by the token bucket
  std::uint64_t shed_overflow = 0;   ///< rejected by queue capacity
  std::int64_t queue_depth = 0;      ///< both classes, now
  std::int64_t max_queue_depth = 0;
  ResultCacheStats cache;
  std::vector<AdmissionClientStats> clients;
  HistogramSnapshot interactive_latency;  ///< submit to resolve, us
  HistogramSnapshot batch_latency;        ///< submit to resolve, us

  double hit_rate() const {
    const std::uint64_t total = cache.hits + cache.misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache.hits) /
                            static_cast<double>(total);
  }

  /// Multi-line human-readable block (serve-bench output).
  std::string ToString() const;
  /// One JSON object, no trailing newline.
  std::string ToJson() const;
};

class Frontend {
 public:
  /// `engine` (and its backend) must outlive the frontend.
  explicit Frontend(QueryEngine& engine, FrontendOptions options = {});
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Admission, cache lookup, then enqueue: the future resolves with the
  /// query's result (bit-identical to engine execution — possibly served
  /// from cache), or ResourceExhausted when shed.
  std::future<Result<QueryResult>> Submit(const std::string& client_id,
                                          QueryPriority priority,
                                          ValueQuery query);

  /// Blocks until both queues are empty and no round is in flight.
  void Flush();

  FrontendStats Stats() const;

  const QueryEngine& engine() const { return engine_; }
  const FrontendOptions& options() const { return options_; }

 private:
  struct Pending {
    ValueQuery query;
    QueryKey key;
    QueryPriority priority = QueryPriority::kBatch;
    std::promise<Result<QueryResult>> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  void DispatcherLoop();
  void RunRound(std::vector<Pending> round);
  void Resolve(Pending& pending, Result<QueryResult> result);
  std::uint64_t NowMs() const { return options_.now_ms(); }

  QueryEngine& engine_;
  const FrontendOptions options_;
  ResultCache cache_;
  AdmissionController admission_;

  Counter submitted_;
  Counter completed_;
  Counter failed_;
  Counter cache_served_;
  Counter shed_admission_;
  Counter shed_overflow_;
  Gauge queue_depth_;
  Gauge max_queue_depth_;
  LatencyHistogram interactive_latency_;
  LatencyHistogram batch_latency_;

  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Pending> interactive_;  ///< the only queue when QoS is off
  std::deque<Pending> batch_;
  bool dispatching_ = false;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace fxdist

#endif  // FXDIST_FRONT_FRONTEND_H_
