// ResultCache: a sharded, byte-budgeted LRU of whole query results.
//
// The front door sees Zipf-shaped query streams: a handful of hot
// queries dominate.  Executing a hot query once and replaying the stored
// QueryResult is sound only if nothing that could change the answer
// happened in between — which is exactly what the StorageBackend
// mutation epoch certifies (sim/storage_backend.h MutationEpoch).  Every
// entry is stamped with the epoch the result was computed at; a lookup
// whose current epoch differs drops the entry (counted as an epoch
// invalidation) instead of serving stale rows.  Because the epoch is
// captured *before* the query executes, a mutation racing the execution
// can only make the entry look stale — the cache over-invalidates, never
// under.
//
// Keys are canonical QueryKeys (core/query_key.h): key equality implies
// the queries filter records bit-identically, so a hit returns exactly
// what re-executing would.  The key space is split across shards by the
// precomputed key hash — one mutex per shard, so concurrent front-door
// threads rarely contend — and each shard owns an equal slice of the
// byte budget, evicting from its own LRU tail.  Each shard also
// memoizes its most recently hit entry: a run of back-to-back lookups
// for one hot key (the Zipf head) skips the hash-map probe entirely.
//
// Entries can also carry a TTL (ttl_ms > 0): epoch invalidation covers
// mutations through *this* process's backend handle, while a TTL bounds
// staleness against out-of-band change the epoch cannot see.
//
// Negative results — queries that matched nothing — are cached like any
// other (cache_negative, on by default): an empty answer is certified by
// the same epoch the full ones are, it is the cheapest entry the cache
// can hold, and miss-heavy workloads (point probes for absent keys) are
// exactly the ones that re-ask.  Negative entries get their own hit and
// residency counters so a dashboard can tell "hot empty answers" from a
// cold cache.

#ifndef FXDIST_FRONT_RESULT_CACHE_H_
#define FXDIST_FRONT_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query_key.h"
#include "sim/storage_backend.h"

namespace fxdist {

struct ResultCacheOptions {
  /// Total byte budget across all shards (keys + records + overhead).
  /// An entry larger than its shard's slice is simply not cached.
  std::uint64_t max_bytes = 64ull << 20;
  /// Lock shards; clamped to >= 1.  Keys spread by their FNV hash.
  std::size_t num_shards = 16;
  /// Entry lifetime in milliseconds; 0 disables TTL expiry.
  std::uint64_t ttl_ms = 0;
  /// Cache empty (negative) results too.  Off restores the store-only-
  /// nonempty behavior for workloads whose misses never repeat.
  bool cache_negative = true;
};

/// Point-in-time counters (monotonic except entries/bytes).
struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;            ///< LRU byte-budget evictions
  std::uint64_t epoch_invalidations = 0;  ///< dropped: backend mutated
  std::uint64_t ttl_expirations = 0;      ///< dropped: entry outlived TTL
  std::uint64_t hot_memo_hits = 0;        ///< hits served by the memo slot
  std::uint64_t negative_hits = 0;        ///< hits whose answer was empty
  std::uint64_t entries = 0;              ///< resident entries now
  std::uint64_t bytes = 0;                ///< resident bytes now
  std::uint64_t negative_entries = 0;     ///< resident empty-answer entries
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns a copy of the cached result for `key` if one is resident,
  /// was computed at `epoch`, and (with TTL on) is younger than ttl_ms
  /// at `now_ms`.  A stale entry is erased and counted; every non-hit
  /// counts as a miss.
  std::optional<QueryResult> Lookup(const QueryKey& key,
                                    std::uint64_t epoch,
                                    std::uint64_t now_ms);

  /// Stores `result` for `key` as computed at `epoch`.  Replaces any
  /// previous entry for the key; evicts LRU entries until the shard is
  /// back under budget.  Oversized results are silently not cached.
  void Insert(const QueryKey& key, const QueryResult& result,
              std::uint64_t epoch, std::uint64_t now_ms);

  /// Drops every entry (budget and counters keep their history).
  void Clear();

  ResultCacheStats Stats() const;

 private:
  struct Entry {
    QueryKey key;
    QueryResult result;
    std::uint64_t epoch = 0;
    std::uint64_t inserted_ms = 0;
    std::uint64_t bytes = 0;
  };
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<QueryKey, std::list<Entry>::iterator, QueryKeyHash>
        index;
    /// Memo of the last hit (end() when invalid) — the Zipf-head fast
    /// path.  Must be re-set to end() whenever the list mutates.
    std::list<Entry>::iterator hot;
    std::uint64_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t epoch_invalidations = 0;
    std::uint64_t ttl_expirations = 0;
    std::uint64_t hot_memo_hits = 0;
    std::uint64_t negative_hits = 0;
    std::uint64_t negative_entries = 0;
  };

  Shard& ShardFor(const QueryKey& key) {
    return *shards_[key.hash() % shards_.size()];
  }
  /// Erases `it` from `shard` (caller holds the shard mutex).
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);
  static std::uint64_t EntryBytes(const QueryKey& key,
                                  const QueryResult& result);

  const ResultCacheOptions options_;
  const std::uint64_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fxdist

#endif  // FXDIST_FRONT_RESULT_CACHE_H_
