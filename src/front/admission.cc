#include "front/admission.h"

#include <algorithm>

namespace fxdist {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options),
      burst_(options.burst > 0.0
                 ? options.burst
                 : std::max(options.rate_per_sec, 1.0)) {}

bool AdmissionController::Admit(const std::string& client_id,
                                std::uint64_t now_ms) {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = buckets_.try_emplace(client_id);
  Bucket& bucket = it->second;
  if (inserted) {
    bucket.tokens = burst_;
    bucket.refilled_ms = now_ms;
  } else if (now_ms > bucket.refilled_ms) {
    const double elapsed_s =
        static_cast<double>(now_ms - bucket.refilled_ms) / 1000.0;
    bucket.tokens =
        std::min(burst_, bucket.tokens + elapsed_s * options_.rate_per_sec);
    bucket.refilled_ms = now_ms;
  }
  if (bucket.tokens < 1.0) {
    ++bucket.shed;
    return false;
  }
  bucket.tokens -= 1.0;
  ++bucket.admitted;
  return true;
}

std::vector<AdmissionClientStats> AdmissionController::Stats() const {
  std::vector<AdmissionClientStats> stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.reserve(buckets_.size());
    for (const auto& [id, bucket] : buckets_) {
      stats.push_back({id, bucket.admitted, bucket.shed});
    }
  }
  std::sort(stats.begin(), stats.end(),
            [](const AdmissionClientStats& a, const AdmissionClientStats& b) {
              return a.client_id < b.client_id;
            });
  return stats;
}

}  // namespace fxdist
