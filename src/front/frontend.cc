#include "front/frontend.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "hashing/query_key.h"

namespace fxdist {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

std::uint64_t SteadyNowMs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now().time_since_epoch())
          .count());
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

Frontend::Frontend(QueryEngine& engine, FrontendOptions options)
    : engine_(engine), options_([&options] {
        options.batch_chunk = std::max<std::size_t>(1, options.batch_chunk);
        options.max_round = std::max<std::size_t>(1, options.max_round);
        options.max_queue = std::max<std::size_t>(1, options.max_queue);
        if (!options.now_ms) options.now_ms = SteadyNowMs;
        return options;
      }()),
      cache_(options_.cache), admission_(options_.admission) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

Frontend::~Frontend() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

void Frontend::Resolve(Pending& pending, Result<QueryResult> result) {
  const double micros = MicrosSince(pending.admitted);
  if (pending.priority == QueryPriority::kInteractive) {
    interactive_latency_.Record(micros);
  } else {
    batch_latency_.Record(micros);
  }
  if (result.ok()) {
    completed_.Increment();
  } else {
    failed_.Increment();
  }
  pending.promise.set_value(std::move(result));
}

std::future<Result<QueryResult>> Frontend::Submit(
    const std::string& client_id, QueryPriority priority, ValueQuery query) {
  Pending pending;
  pending.priority = priority;
  pending.admitted = Clock::now();
  std::future<Result<QueryResult>> future = pending.promise.get_future();
  submitted_.Increment();

  if (!admission_.Admit(client_id, NowMs())) {
    shed_admission_.Increment();
    Resolve(pending, Status::ResourceExhausted(
                         "shed: client \"" + client_id +
                         "\" exceeded its admission rate"));
    return future;
  }

  pending.key = CanonicalQueryKey(query);
  if (options_.cache_enabled) {
    // A hit bypasses the queue entirely: the entry's epoch matching the
    // backend's current epoch certifies no mutation has run since the
    // result was computed.
    if (auto cached = cache_.Lookup(
            pending.key, engine_.backend().MutationEpoch(), NowMs())) {
      cache_served_.Increment();
      Resolve(pending, *std::move(cached));
      return future;
    }
  }
  pending.query = std::move(query);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (interactive_.size() + batch_.size() >= options_.max_queue) {
      shed_overflow_.Increment();
      Resolve(pending,
              Status::ResourceExhausted("shed: frontend queue is full"));
      return future;
    }
    // QoS off: one FIFO (the interactive deque), strict arrival order.
    if (options_.qos_enabled && priority == QueryPriority::kBatch) {
      batch_.push_back(std::move(pending));
    } else {
      interactive_.push_back(std::move(pending));
    }
    const auto depth =
        static_cast<std::int64_t>(interactive_.size() + batch_.size());
    queue_depth_.Set(depth);
    max_queue_depth_.UpdateMax(depth);
  }
  queue_cv_.notify_one();
  return future;
}

void Frontend::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    queue_cv_.wait(lock, [this] {
      return stop_ || !interactive_.empty() || !batch_.empty();
    });
    if (interactive_.empty() && batch_.empty()) {
      if (stop_) return;  // drained; shutting down
      continue;
    }
    // One round: every pending interactive query (up to max_round), then
    // batch work — only batch_chunk of it when interactive queries were
    // present, so a deep batch backlog delays the interactive class by
    // at most one round.
    std::vector<Pending> round;
    round.reserve(std::min(options_.max_round,
                           interactive_.size() + batch_.size()));
    const bool had_interactive = !interactive_.empty();
    while (!interactive_.empty() && round.size() < options_.max_round) {
      round.push_back(std::move(interactive_.front()));
      interactive_.pop_front();
    }
    const std::size_t batch_take =
        had_interactive ? options_.batch_chunk : options_.max_round;
    for (std::size_t i = 0;
         i < batch_take && !batch_.empty() && round.size() < options_.max_round;
         ++i) {
      round.push_back(std::move(batch_.front()));
      batch_.pop_front();
    }
    dispatching_ = true;
    queue_depth_.Set(
        static_cast<std::int64_t>(interactive_.size() + batch_.size()));
    lock.unlock();

    RunRound(std::move(round));

    lock.lock();
    dispatching_ = false;
    if (interactive_.empty() && batch_.empty()) drained_cv_.notify_all();
  }
}

void Frontend::RunRound(std::vector<Pending> round) {
  // Capture the epoch BEFORE executing: a mutation that lands between
  // capture and cache insert makes the new entries look stale (current
  // epoch moved on), which over-invalidates — never serves stale rows.
  const std::uint64_t epoch = engine_.backend().MutationEpoch();

  // A queued entry may have become answerable while it waited (an
  // earlier round cached its key).
  std::vector<ValueQuery> queries;
  std::vector<std::size_t> live;
  queries.reserve(round.size());
  live.reserve(round.size());
  for (std::size_t i = 0; i < round.size(); ++i) {
    if (options_.cache_enabled) {
      if (auto cached = cache_.Lookup(round[i].key, epoch, NowMs())) {
        cache_served_.Increment();
        Resolve(round[i], *std::move(cached));
        continue;
      }
    }
    queries.push_back(round[i].query);
    live.push_back(i);
  }
  if (queries.empty()) return;

  auto results = engine_.ExecuteBatch(queries);
  if (!results.ok()) {
    // The engine fails a batch as a whole only for malformed queries or
    // a blown enumeration budget; resolve each future with the cause.
    for (std::size_t j = 0; j < live.size(); ++j) {
      Resolve(round[live[j]], results.status());
    }
    return;
  }
  for (std::size_t j = 0; j < live.size(); ++j) {
    Pending& pending = round[live[j]];
    if (options_.cache_enabled) {
      cache_.Insert(pending.key, (*results)[j], epoch, NowMs());
    }
    Resolve(pending, std::move((*results)[j]));
  }
}

void Frontend::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] {
    return interactive_.empty() && batch_.empty() && !dispatching_;
  });
}

FrontendStats Frontend::Stats() const {
  FrontendStats stats;
  stats.submitted = submitted_.Value();
  stats.completed = completed_.Value();
  stats.failed = failed_.Value();
  stats.cache_served = cache_served_.Value();
  stats.shed_admission = shed_admission_.Value();
  stats.shed_overflow = shed_overflow_.Value();
  stats.queue_depth = queue_depth_.Value();
  stats.max_queue_depth = max_queue_depth_.Value();
  stats.cache = cache_.Stats();
  stats.clients = admission_.Stats();
  stats.interactive_latency = interactive_latency_.Snapshot();
  stats.batch_latency = batch_latency_.Snapshot();
  return stats;
}

std::string FrontendStats::ToString() const {
  std::ostringstream os;
  os << "frontend   submitted " << submitted << "  completed " << completed
     << "  failed " << failed << "\n";
  os << "cache      served " << cache_served << "  hits " << cache.hits
     << "  misses " << cache.misses << "  hit-rate ";
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%", 100.0 * hit_rate());
  os << rate << "\n";
  os << "cache mem  entries " << cache.entries << "  bytes " << cache.bytes
     << "  evictions " << cache.evictions << "  epoch-inval "
     << cache.epoch_invalidations << "  ttl-expired "
     << cache.ttl_expirations << "  memo-hits " << cache.hot_memo_hits
     << "\n";
  os << "cache neg  hits " << cache.negative_hits << "  entries "
     << cache.negative_entries << "\n";
  os << "shed       admission " << shed_admission << "  overflow "
     << shed_overflow << "\n";
  os << "queue      depth " << queue_depth << "  max depth "
     << max_queue_depth << "\n";
  os << "inter lat. p50 "
     << FormatMicros(interactive_latency.PercentileMicros(0.50)) << "  p95 "
     << FormatMicros(interactive_latency.PercentileMicros(0.95)) << "  p99 "
     << FormatMicros(interactive_latency.PercentileMicros(0.99)) << "\n";
  os << "batch lat. p50 "
     << FormatMicros(batch_latency.PercentileMicros(0.50)) << "  p95 "
     << FormatMicros(batch_latency.PercentileMicros(0.95)) << "  p99 "
     << FormatMicros(batch_latency.PercentileMicros(0.99)) << "\n";
  for (const AdmissionClientStats& client : clients) {
    os << "client     " << client.client_id << "  admitted "
       << client.admitted << "  shed " << client.shed << "\n";
  }
  return os.str();
}

std::string FrontendStats::ToJson() const {
  std::ostringstream os;
  os << "{\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"failed\":" << failed << ",\"cache_served\":" << cache_served
     << ",\"shed_admission\":" << shed_admission
     << ",\"shed_overflow\":" << shed_overflow
     << ",\"queue_depth\":" << queue_depth
     << ",\"max_queue_depth\":" << max_queue_depth;
  os << ",\"cache\":{\"hits\":" << cache.hits
     << ",\"misses\":" << cache.misses << ",\"hit_rate\":" << hit_rate()
     << ",\"evictions\":" << cache.evictions
     << ",\"epoch_invalidations\":" << cache.epoch_invalidations
     << ",\"ttl_expirations\":" << cache.ttl_expirations
     << ",\"hot_memo_hits\":" << cache.hot_memo_hits
     << ",\"negative_hits\":" << cache.negative_hits
     << ",\"entries\":" << cache.entries << ",\"bytes\":" << cache.bytes
     << ",\"negative_entries\":" << cache.negative_entries << "}";
  os << ",\"interactive_latency_us\":{\"p50\":"
     << interactive_latency.PercentileMicros(0.50)
     << ",\"p95\":" << interactive_latency.PercentileMicros(0.95)
     << ",\"p99\":" << interactive_latency.PercentileMicros(0.99) << "}";
  os << ",\"batch_latency_us\":{\"p50\":"
     << batch_latency.PercentileMicros(0.50)
     << ",\"p95\":" << batch_latency.PercentileMicros(0.95)
     << ",\"p99\":" << batch_latency.PercentileMicros(0.99) << "}";
  os << ",\"clients\":[";
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"client_id\":\"" << JsonEscape(clients[i].client_id)
       << "\",\"admitted\":" << clients[i].admitted
       << ",\"shed\":" << clients[i].shed << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace fxdist
