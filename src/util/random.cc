#include "util/random.h"

#include <cmath>

#include "util/status.h"

namespace fxdist {

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Xoshiro256::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::NextBounded(std::uint64_t bound) {
  FXDIST_DCHECK(bound >= 1);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Xoshiro256::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta), cdf_(n) {
  FXDIST_DCHECK(n >= 1);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::uint64_t ZipfSampler::Sample(Xoshiro256* rng) const {
  const double u = rng->NextDouble();
  // Binary search for the first cdf entry >= u.
  std::uint64_t lo = 0, hi = n_ - 1;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace fxdist
