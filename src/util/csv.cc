#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace fxdist {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) oss << ',';
      oss << Escape(row[i]);
    }
    oss << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << ToString();
  return out ? Status::OK()
             : Status::Internal("short write to " + path);
}

}  // namespace fxdist
