// Minimal fixed-size thread pool with a blocking ParallelFor.
//
// The simulator models each storage unit as an independent device; the
// executor uses this pool to actually run per-device work concurrently, so
// the declustering quality (largest response size) translates into
// measured wall-clock speedup, not just modeled milliseconds.

#ifndef FXDIST_UTIL_THREAD_POOL_H_
#define FXDIST_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fxdist {

class ThreadPool {
 public:
  /// `num_threads` >= 1; 0 selects the hardware concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, count), distributing indices over the
  /// pool via an atomic cursor.  Blocks until all invocations finish.
  /// fn must be safe to call concurrently for distinct i.
  ///
  /// If fn throws, the first exception is rethrown here after the
  /// remaining workers drain; indices not yet claimed at that point are
  /// skipped.  The pool stays usable afterwards.
  void ParallelFor(std::uint64_t count,
                   const std::function<void(std::uint64_t)>& fn);

  /// Enqueues one task; returns immediately.  Wait() blocks for all
  /// outstanding tasks.  Tasks own their error handling: an exception
  /// escaping a submitted task is swallowed (never terminates a worker
  /// and never wedges Wait()).
  void Submit(std::function<void()> task);
  void Wait();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  std::uint64_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace fxdist

#endif  // FXDIST_UTIL_THREAD_POOL_H_
