// Deterministic pseudo-random generators for workload synthesis.
//
// Benchmarks and tests need reproducible randomness across platforms, so we
// avoid std::mt19937 + distribution implementations (which differ between
// standard libraries) and ship explicit SplitMix64 / xoshiro256** engines
// plus our own bounded-integer and Zipf samplers.

#ifndef FXDIST_UTIL_RANDOM_H_
#define FXDIST_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace fxdist {

/// SplitMix64: tiny, fast, passes BigCrush as a seeder.  Used to expand a
/// single seed into engine state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project-wide workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Uniform over [0, 2^64).
  std::uint64_t Next();

  /// Uniform over [0, bound) for bound >= 1, via Lemire rejection.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform over [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p);

 private:
  std::uint64_t s_[4];
};

/// Zipf(N, theta) sampler over {0, ..., n-1} using the inverse-CDF table
/// method (exact, O(log n) per draw).  theta = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  std::uint64_t Sample(Xoshiro256* rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace fxdist

#endif  // FXDIST_UTIL_RANDOM_H_
