// Minimal CSV writer.  Bench binaries optionally dump their series as CSV
// (one file per table/figure) so results can be re-plotted.

#ifndef FXDIST_UTIL_CSV_H_
#define FXDIST_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace fxdist {

/// Row-oriented CSV document with RFC-4180 quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Serializes header + rows.
  std::string ToString() const;

  /// Writes the document to `path`, overwriting.
  Status WriteFile(const std::string& path) const;

 private:
  static std::string Escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fxdist

#endif  // FXDIST_UTIL_CSV_H_
