// ASCII table rendering for benchmark harnesses and examples.
//
// Every bench binary reproduces one of the paper's tables/figures; this
// printer renders rows with right-aligned numeric columns so the output can
// be compared side-by-side with the paper.

#ifndef FXDIST_UTIL_TABLE_PRINTER_H_
#define FXDIST_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace fxdist {

/// Accumulates rows of string cells and renders them with column-aligned
/// padding.  Cells are formatted by the caller (see Cell() helpers).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row.  Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Renders the header, a separator, and all rows.
  void Print(std::ostream& os) const;

  /// Renders to a string (used by golden tests).
  std::string ToString() const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Formats a double with `precision` digits after the decimal point.
  static std::string Cell(double value, int precision = 1);
  static std::string Cell(std::uint64_t value);
  static std::string Cell(std::int64_t value);
  static std::string Cell(int value) {
    return Cell(static_cast<std::int64_t>(value));
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fxdist

#endif  // FXDIST_UTIL_TABLE_PRINTER_H_
