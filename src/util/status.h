// Status / Result error model.
//
// Fallible public APIs in fxdist return Status (no payload) or Result<T>
// (payload or error), in the style of Arrow/RocksDB.  Internal invariant
// violations use FXDIST_DCHECK and abort in debug builds.

#ifndef FXDIST_UTIL_STATUS_H_
#define FXDIST_UTIL_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace fxdist {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the documented domain.
  kOutOfRange,        ///< Index or id beyond a container / id space.
  kNotFound,          ///< Lookup key absent.
  kAlreadyExists,     ///< Insert collided with an existing key.
  kUnimplemented,     ///< Feature intentionally not provided.
  kInternal,          ///< Invariant violation that was recoverable.
  kFailedPrecondition,  ///< Operation valid in general, but not in the
                        ///< object's current state (e.g. degraded mode).
  kUnavailable,      ///< Peer unreachable; the request was never delivered,
                     ///< so retrying any operation is safe.
  kDeadlineExceeded,  ///< No reply within the deadline; the request may have
                      ///< executed (retry only idempotent operations).
  kDataLoss,  ///< Reply truncated or failed checksum; the request may have
              ///< executed (retry only idempotent operations).
  kResourceExhausted,  ///< Shed by admission control or a full queue; the
                       ///< request never executed (retry after backoff).
};

/// Returns a stable human-readable name ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of an operation that produces no value.
///
/// A default-constructed Status is OK.  Statuses are cheap to copy (the
/// message is only allocated on error paths).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status.
///
/// Accessing the value of an errored Result aborts; check ok() first or use
/// ValueOr().
template <typename T>
class Result {
 public:
  /// Implicit from a value: `Result<int> r = 3;`
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status.  Must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK when a value is present, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(repr_);
  }
  T& value() & {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(repr_);
  }
  T&& value() && {
    if (!ok()) {
      std::abort();
    }
    return std::get<T>(std::move(repr_));
  }

  /// The stored value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates an error Status out of the enclosing function.
#define FXDIST_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::fxdist::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Debug-only invariant check.
#ifdef NDEBUG
#define FXDIST_DCHECK(cond) ((void)0)
#else
#define FXDIST_DCHECK(cond) assert(cond)
#endif

}  // namespace fxdist

#endif  // FXDIST_UTIL_STATUS_H_
