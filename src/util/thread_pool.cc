#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace fxdist {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A throwing task must not take down the worker or leak in_flight_
    // (Wait() would deadlock).  ParallelFor captures its fn's exceptions
    // itself and rethrows in the caller; bare Submit() tasks own their
    // error handling, so anything escaping here is dropped by design.
    try {
      task();
    } catch (...) {
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0 && tasks_.empty(); });
}

void ThreadPool::ParallelFor(std::uint64_t count,
                             const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  const unsigned workers = num_threads();
  // Shared by value so the state outlives early-returning tasks even if
  // the caller unwinds; the exception slot holds the first failure.
  struct ForState {
    std::atomic<std::uint64_t> cursor{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForState>();
  const unsigned tasks = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, count));
  for (unsigned t = 0; t < tasks; ++t) {
    Submit([state, count, &fn] {
      while (!state->failed.load(std::memory_order_relaxed)) {
        const std::uint64_t i = state->cursor.fetch_add(1);
        if (i >= count) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->error_mutex);
          if (!state->error) state->error = std::current_exception();
          state->failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  Wait();
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace fxdist
