#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace fxdist {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0 && tasks_.empty()) {
        all_done_.notify_all();
      }
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0 && tasks_.empty(); });
}

void ThreadPool::ParallelFor(std::uint64_t count,
                             const std::function<void(std::uint64_t)>& fn) {
  if (count == 0) return;
  const unsigned workers = num_threads();
  auto cursor = std::make_shared<std::atomic<std::uint64_t>>(0);
  const unsigned tasks = static_cast<unsigned>(
      std::min<std::uint64_t>(workers, count));
  for (unsigned t = 0; t < tasks; ++t) {
    Submit([cursor, count, &fn] {
      while (true) {
        const std::uint64_t i = cursor->fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  Wait();
}

}  // namespace fxdist
