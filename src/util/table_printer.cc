#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fxdist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << std::string(widths[c] - row[c].size(), ' ') << row[c];
    }
    os << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "-|") << std::string(widths[c] + 2, '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

std::string TablePrinter::Cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Cell(std::uint64_t value) {
  return std::to_string(value);
}

std::string TablePrinter::Cell(std::int64_t value) {
  return std::to_string(value);
}

}  // namespace fxdist
