// Lightweight serving metrics: counters, gauges, fixed-bucket latency
// histograms.
//
// The engine layer runs concurrent batches and needs cheap, contention-free
// instrumentation: every primitive here is a bare std::atomic with relaxed
// ordering (the values are statistics, not synchronization), and histograms
// use a fixed exponential bucket ladder so recording is one array index —
// no allocation, no locks, safe to hammer from worker shards.

#ifndef FXDIST_UTIL_METRICS_H_
#define FXDIST_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fxdist {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, in-flight batches).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }
  /// Tracks the largest value ever Set/Add'ed via UpdateMax.
  void UpdateMax(std::int64_t candidate) {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !value_.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Point-in-time copy of a LatencyHistogram, with quantile estimation.
struct HistogramSnapshot {
  /// One count per bucket of LatencyHistogram::kBounds.
  std::array<std::uint64_t, 26> counts{};
  std::uint64_t total = 0;
  double sum_micros = 0.0;

  double mean_micros() const {
    return total == 0 ? 0.0 : sum_micros / static_cast<double>(total);
  }
  /// Quantile estimate in microseconds (linear within the bucket).
  /// `q` in [0, 1]; returns 0 when the histogram is empty.
  double PercentileMicros(double q) const;
};

/// Fixed-bucket latency histogram over microseconds.
///
/// Bounds follow a 1-2-5 ladder from 1us to 100s; everything above the top
/// bound lands in the overflow bucket.  Record() is wait-free.
class LatencyHistogram {
 public:
  static constexpr std::size_t kNumBuckets = 26;
  /// Upper bounds (inclusive) of buckets 0..24 in microseconds; bucket 25
  /// is the overflow.
  static const std::array<double, kNumBuckets - 1>& Bounds();

  void Record(double micros);
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  // Accumulated in integer nanoseconds so the sum stays atomic without a
  // compare-exchange loop over doubles.
  std::atomic<std::uint64_t> sum_nanos_{0};
};

/// "12.3us" / "4.56ms" / "1.23s" — for snapshot printing.
std::string FormatMicros(double micros);

}  // namespace fxdist

#endif  // FXDIST_UTIL_METRICS_H_
