// Bit-level utilities used throughout FX distribution.
//
// The paper assumes every field size F_i and the device count M are powers
// of two; all of the declustering arithmetic then reduces to XOR, AND and
// shifts.  These helpers centralize that arithmetic.

#ifndef FXDIST_UTIL_BITOPS_H_
#define FXDIST_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>
#include <string>

namespace fxdist {

/// True iff `x` is a power of two (0 is not).
constexpr bool IsPowerOfTwo(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x >= 1.  Log2Exact additionally requires a power of 2.
constexpr unsigned FloorLog2(std::uint64_t x) {
  return x == 0 ? 0u : 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// log2(x) for x a power of two.
constexpr unsigned Log2Exact(std::uint64_t x) { return FloorLog2(x); }

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t CeilPowerOfTwo(std::uint64_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// The paper's T_M: keep only the rightmost log2(M) bits.  M must be a
/// power of two.
constexpr std::uint64_t TruncateMod(std::uint64_t value, std::uint64_t m) {
  return value & (m - 1);
}

/// Binary rendering with a fixed width, e.g. BitString(5, 4) == "0101".
/// Matches the field-value notation used in the paper's tables.
inline std::string BitString(std::uint64_t value, unsigned width) {
  std::string out(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if ((value >> i) & 1u) {
      out[width - 1 - i] = '1';
    }
  }
  return out;
}

/// Population count.
constexpr unsigned PopCount(std::uint64_t x) {
  return static_cast<unsigned>(std::popcount(x));
}

/// XOR-fold of the set {0, 1, ..., n-1}.  Useful in closed-form tests:
/// the fold is n-periodic with period 4.
constexpr std::uint64_t XorFoldRange(std::uint64_t n) {
  // XOR of 0..n-1 == XOR of 0..(n-1) which has the classic period-4 form.
  if (n == 0) return 0;
  const std::uint64_t k = n - 1;
  switch (k % 4) {
    case 0:
      return k;
    case 1:
      return 1;
    case 2:
      return k + 1;
    default:
      return 0;
  }
}

}  // namespace fxdist

#endif  // FXDIST_UTIL_BITOPS_H_
