// Small integer-math helpers (ceil-div, binomial coefficients, checked
// products) shared by the analysis and benchmark layers.

#ifndef FXDIST_UTIL_MATH_H_
#define FXDIST_UTIL_MATH_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace fxdist {

/// ceil(a / b) for b > 0.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Binomial coefficient C(n, k) in 64-bit arithmetic (exact for the small
/// n used here; saturates rather than overflowing).
constexpr std::uint64_t Binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    const std::uint64_t num = n - k + i;
    if (result > std::numeric_limits<std::uint64_t>::max() / num) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

/// Product of a vector of sizes, saturating at uint64 max.
inline std::uint64_t SaturatingProduct(const std::vector<std::uint64_t>& xs) {
  std::uint64_t p = 1;
  for (std::uint64_t x : xs) {
    if (x != 0 && p > std::numeric_limits<std::uint64_t>::max() / x) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    p *= x;
  }
  return p;
}

/// Iterates over all k-element subsets of {0..n-1}, invoking `fn` with a
/// vector of the chosen indices (ascending).  fn returning false stops the
/// enumeration early.
template <typename Fn>
void ForEachSubsetOfSize(unsigned n, unsigned k, Fn&& fn) {
  if (k > n) return;
  std::vector<unsigned> idx(k);
  for (unsigned i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    if (!fn(static_cast<const std::vector<unsigned>&>(idx))) return;
    // Advance to the next combination in lexicographic order.
    unsigned i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (unsigned j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace fxdist

#endif  // FXDIST_UTIL_MATH_H_
