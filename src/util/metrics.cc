#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace fxdist {

const std::array<double, LatencyHistogram::kNumBuckets - 1>&
LatencyHistogram::Bounds() {
  // 1-2-5 ladder: 1us .. 100s (8 decades + 1).
  static const std::array<double, kNumBuckets - 1> kBounds = {
      1e0, 2e0, 5e0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2,
      1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
      1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8};
  return kBounds;
}

void LatencyHistogram::Record(double micros) {
  if (!(micros >= 0.0)) micros = 0.0;  // also catches NaN
  const auto& bounds = Bounds();
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), micros);
  const auto bucket = static_cast<std::size_t>(it - bounds.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.total = total_.load(std::memory_order_relaxed);
  snap.sum_micros =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3;
  return snap;
}

double HistogramSnapshot::PercentileMicros(double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  const auto& bounds = LatencyHistogram::Bounds();
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : bounds.back() * 2.0;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.back();
}

std::string FormatMicros(double micros) {
  char buf[32];
  if (micros < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", micros);
  } else if (micros < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", micros / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", micros / 1e6);
  }
  return buf;
}

}  // namespace fxdist
