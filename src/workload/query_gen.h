// Partial match query workloads.
//
// Two levels mirror the paper's evaluation:
//  * hashed-level masks — enumerate or sample unspecified-field sets
//    (Figures 1-4, Tables 7-9 operate purely at this level), and
//  * value-level queries — wildcard fields of real records with a given
//    per-field specification probability, so examples retrieve actual
//    stored rows.

#ifndef FXDIST_WORKLOAD_QUERY_GEN_H_
#define FXDIST_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/field_spec.h"
#include "core/query.h"
#include "hashing/multikey_hash.h"
#include "util/random.h"
#include "util/status.h"

namespace fxdist {

/// Value-level query workload: each query takes a template record from a
/// pool and independently wildcards each field with probability
/// 1 - specified_probability.
class QueryGenerator {
 public:
  /// `pool` must stay alive while the generator is used and be non-empty.
  static Result<QueryGenerator> Create(const std::vector<Record>* pool,
                                       double specified_probability,
                                       std::uint64_t seed = 7);

  ValueQuery Next();

  /// As Next(), but with exactly `k` unspecified fields (uniformly chosen).
  ValueQuery NextWithUnspecified(unsigned k);

 private:
  QueryGenerator(const std::vector<Record>* pool, double specified_probability,
                 std::uint64_t seed)
      : pool_(pool), specified_probability_(specified_probability),
        rng_(seed) {}

  const std::vector<Record>* pool_;
  double specified_probability_;
  Xoshiro256 rng_;
};

/// Hashed-level workload: all C(n, k) unspecified masks for a spec.
std::vector<std::uint64_t> AllUnspecifiedMasks(const FieldSpec& spec,
                                               unsigned k);

/// A uniformly random unspecified mask with exactly k bits among n fields.
std::uint64_t RandomUnspecifiedMask(const FieldSpec& spec, unsigned k,
                                    Xoshiro256* rng);

}  // namespace fxdist

#endif  // FXDIST_WORKLOAD_QUERY_GEN_H_
