// Synthetic record generation.
//
// The paper's evaluation works on cartesian bucket spaces; the examples and
// integration tests additionally need *record*-level workloads.  The
// generator draws per-field values from a configurable distribution over a
// bounded domain, so hashed buckets cover the directory and queries drawn
// from the same pool actually match stored records.

#ifndef FXDIST_WORKLOAD_RECORD_GEN_H_
#define FXDIST_WORKLOAD_RECORD_GEN_H_

#include <cstdint>
#include <vector>

#include "hashing/multikey_hash.h"
#include "util/random.h"
#include "util/status.h"

namespace fxdist {

/// Per-field value distribution.
struct FieldDistribution {
  enum class Kind { kUniform, kZipf };
  Kind kind = Kind::kUniform;
  /// Distinct values the field can take (>= 1).  Defaults to 4x the
  /// field's directory size when 0.
  std::uint64_t domain = 0;
  /// Zipf skew (ignored for uniform).
  double zipf_theta = 1.0;
};

/// Draws records conforming to a Schema.
class RecordGenerator {
 public:
  /// Uniform fields with default domains.
  static Result<RecordGenerator> Uniform(const Schema& schema,
                                         std::uint64_t seed = 42);

  /// One FieldDistribution per schema field.
  static Result<RecordGenerator> Create(
      const Schema& schema, std::vector<FieldDistribution> distributions,
      std::uint64_t seed = 42);

  Record Next();

  /// Draws `count` records.
  std::vector<Record> Take(std::size_t count);

  /// Advances the generator past `count` records without materializing
  /// them, consuming exactly the RNG draws Next() would — so
  ///
  ///   Gen(seed).Skip(s).Take(n) == records [s, s+n) of Gen(seed)
  ///
  /// which is what lets a coordinator hand worker w the task "seed S,
  /// records [a, b)" and get the *same multiset* a serial build would
  /// produce, whichever worker runs it and however often it is retried.
  /// Cost is O(count) RNG draws (no value construction).
  RecordGenerator& Skip(std::size_t count);

  const Schema& schema() const { return schema_; }

 private:
  RecordGenerator(Schema schema, std::vector<FieldDistribution> dists,
                  std::uint64_t seed);

  /// Materializes ordinal `k` of field `i` as a typed value.
  FieldValue ValueFor(unsigned field, std::uint64_t ordinal) const;

  Schema schema_;
  std::vector<FieldDistribution> dists_;
  std::vector<ZipfSampler> zipf_;  ///< one per field (unused for uniform)
  Xoshiro256 rng_;
};

}  // namespace fxdist

#endif  // FXDIST_WORKLOAD_RECORD_GEN_H_
