#include "workload/query_gen.h"

#include <algorithm>

#include "util/math.h"

namespace fxdist {

Result<QueryGenerator> QueryGenerator::Create(const std::vector<Record>* pool,
                                              double specified_probability,
                                              std::uint64_t seed) {
  if (pool == nullptr || pool->empty()) {
    return Status::InvalidArgument("query pool must be non-empty");
  }
  if (specified_probability < 0.0 || specified_probability > 1.0) {
    return Status::InvalidArgument("specification probability not in [0,1]");
  }
  return QueryGenerator(pool, specified_probability, seed);
}

ValueQuery QueryGenerator::Next() {
  const Record& tmpl = (*pool_)[rng_.NextBounded(pool_->size())];
  ValueQuery query(tmpl.size());
  for (std::size_t i = 0; i < tmpl.size(); ++i) {
    if (rng_.NextBool(specified_probability_)) query[i] = tmpl[i];
  }
  return query;
}

ValueQuery QueryGenerator::NextWithUnspecified(unsigned k) {
  const Record& tmpl = (*pool_)[rng_.NextBounded(pool_->size())];
  const auto n = static_cast<unsigned>(tmpl.size());
  FXDIST_DCHECK(k <= n);
  // Floyd's algorithm for a uniform k-subset of fields to wildcard.
  std::vector<bool> wildcard(n, false);
  for (unsigned j = n - k; j < n; ++j) {
    const auto t = static_cast<unsigned>(rng_.NextBounded(j + 1));
    if (wildcard[t]) {
      wildcard[j] = true;
    } else {
      wildcard[t] = true;
    }
  }
  ValueQuery query(n);
  for (unsigned i = 0; i < n; ++i) {
    if (!wildcard[i]) query[i] = tmpl[i];
  }
  return query;
}

std::vector<std::uint64_t> AllUnspecifiedMasks(const FieldSpec& spec,
                                               unsigned k) {
  std::vector<std::uint64_t> masks;
  ForEachSubsetOfSize(spec.num_fields(), k,
                      [&](const std::vector<unsigned>& subset) {
    std::uint64_t mask = 0;
    for (unsigned f : subset) mask |= (std::uint64_t{1} << f);
    masks.push_back(mask);
    return true;
  });
  return masks;
}

std::uint64_t RandomUnspecifiedMask(const FieldSpec& spec, unsigned k,
                                    Xoshiro256* rng) {
  const unsigned n = spec.num_fields();
  FXDIST_DCHECK(k <= n);
  std::uint64_t mask = 0;
  for (unsigned j = n - k; j < n; ++j) {
    const auto t = static_cast<unsigned>(rng->NextBounded(j + 1));
    const std::uint64_t bit_t = std::uint64_t{1} << t;
    if ((mask & bit_t) != 0) {
      mask |= std::uint64_t{1} << j;
    } else {
      mask |= bit_t;
    }
  }
  return mask;
}

}  // namespace fxdist
