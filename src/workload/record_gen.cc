#include "workload/record_gen.h"

namespace fxdist {

RecordGenerator::RecordGenerator(Schema schema,
                                 std::vector<FieldDistribution> dists,
                                 std::uint64_t seed)
    : schema_(std::move(schema)), dists_(std::move(dists)), rng_(seed) {
  zipf_.reserve(dists_.size());
  for (const auto& d : dists_) {
    zipf_.emplace_back(d.domain,
                       d.kind == FieldDistribution::Kind::kZipf
                           ? d.zipf_theta
                           : 0.0);
  }
}

Result<RecordGenerator> RecordGenerator::Uniform(const Schema& schema,
                                                 std::uint64_t seed) {
  return Create(schema,
                std::vector<FieldDistribution>(schema.num_fields()), seed);
}

Result<RecordGenerator> RecordGenerator::Create(
    const Schema& schema, std::vector<FieldDistribution> distributions,
    std::uint64_t seed) {
  if (distributions.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "one field distribution per schema field required");
  }
  for (unsigned i = 0; i < schema.num_fields(); ++i) {
    if (distributions[i].domain == 0) {
      distributions[i].domain = schema.field(i).directory_size * 4;
    }
  }
  return RecordGenerator(schema, std::move(distributions), seed);
}

FieldValue RecordGenerator::ValueFor(unsigned field,
                                     std::uint64_t ordinal) const {
  switch (schema_.field(field).type) {
    case ValueType::kInt64:
      return static_cast<std::int64_t>(ordinal);
    case ValueType::kDouble:
      // Spread ordinals over the reals away from integer lattice points.
      return 0.5 + static_cast<double>(ordinal) * 1.25;
    case ValueType::kString:
      return schema_.field(field).name + "_" + std::to_string(ordinal);
  }
  return std::int64_t{0};
}

Record RecordGenerator::Next() {
  Record record;
  record.reserve(schema_.num_fields());
  for (unsigned i = 0; i < schema_.num_fields(); ++i) {
    const FieldDistribution& d = dists_[i];
    const std::uint64_t ordinal = d.kind == FieldDistribution::Kind::kZipf
                                      ? zipf_[i].Sample(&rng_)
                                      : rng_.NextBounded(d.domain);
    record.push_back(ValueFor(i, ordinal));
  }
  return record;
}

RecordGenerator& RecordGenerator::Skip(std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    // Mirror Next()'s draw sequence exactly — one sample per field —
    // discarding the ordinals (ValueFor consumes no randomness).
    for (unsigned i = 0; i < schema_.num_fields(); ++i) {
      const FieldDistribution& d = dists_[i];
      if (d.kind == FieldDistribution::Kind::kZipf) {
        (void)zipf_[i].Sample(&rng_);
      } else {
        (void)rng_.NextBounded(d.domain);
      }
    }
  }
  return *this;
}

std::vector<Record> RecordGenerator::Take(std::size_t count) {
  std::vector<Record> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

}  // namespace fxdist
