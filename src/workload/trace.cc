#include "workload/trace.h"

#include <fstream>

#include "hashing/value_codec.h"

namespace fxdist {

namespace {

Status ExpectWord(std::istream& in, const std::string& word) {
  std::string w;
  if (!(in >> w)) return Status::InvalidArgument("unexpected EOF");
  if (w != word) {
    return Status::InvalidArgument("expected '" + word + "', got '" + w +
                                   "'");
  }
  return Status::OK();
}

Result<std::uint64_t> ReadU64(std::istream& in) {
  std::uint64_t v = 0;
  if (!(in >> v)) return Status::InvalidArgument("expected integer");
  return v;
}

}  // namespace

Status SaveTrace(const WorkloadTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  if (trace.meta.empty()) {
    out << "fxdist-trace v1\n";
  } else {
    out << "fxdist-trace v2\n";
    out << "meta ";
    EncodeLengthPrefixed(out, trace.meta);
    out << '\n';
  }
  out << "fields " << trace.num_fields << '\n';
  out << "records " << trace.records.size() << '\n';
  for (const Record& r : trace.records) {
    if (r.size() != trace.num_fields) {
      return Status::InvalidArgument("record arity mismatch in trace");
    }
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i != 0) out << ' ';
      EncodeValue(out, r[i]);
    }
    out << '\n';
  }
  out << "queries " << trace.queries.size() << '\n';
  for (const ValueQuery& q : trace.queries) {
    if (q.size() != trace.num_fields) {
      return Status::InvalidArgument("query arity mismatch in trace");
    }
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (i != 0) out << ' ';
      if (q[i].has_value()) {
        EncodeValue(out, *q[i]);
      } else {
        out << '*';
      }
    }
    out << '\n';
  }
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<WorkloadTrace> LoadTrace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);

  FXDIST_RETURN_NOT_OK(ExpectWord(in, "fxdist-trace"));
  std::string version;
  if (!(in >> version)) return Status::InvalidArgument("unexpected EOF");
  if (version != "v1" && version != "v2") {
    return Status::InvalidArgument("unsupported trace version '" + version +
                                   "'");
  }
  WorkloadTrace trace;
  if (version == "v2") {
    FXDIST_RETURN_NOT_OK(ExpectWord(in, "meta"));
    auto meta = DecodeLengthPrefixed(in);
    FXDIST_RETURN_NOT_OK(meta.status());
    trace.meta = *std::move(meta);
  }
  FXDIST_RETURN_NOT_OK(ExpectWord(in, "fields"));
  auto num_fields = ReadU64(in);
  FXDIST_RETURN_NOT_OK(num_fields.status());
  if (*num_fields == 0 || *num_fields > 64) {
    return Status::InvalidArgument("implausible field count");
  }

  trace.num_fields = static_cast<unsigned>(*num_fields);

  FXDIST_RETURN_NOT_OK(ExpectWord(in, "records"));
  auto record_count = ReadU64(in);
  FXDIST_RETURN_NOT_OK(record_count.status());
  trace.records.reserve(*record_count);
  for (std::uint64_t r = 0; r < *record_count; ++r) {
    Record record;
    record.reserve(trace.num_fields);
    for (unsigned f = 0; f < trace.num_fields; ++f) {
      auto value = DecodeValue(in);
      FXDIST_RETURN_NOT_OK(value.status());
      record.push_back(*std::move(value));
    }
    trace.records.push_back(std::move(record));
  }

  FXDIST_RETURN_NOT_OK(ExpectWord(in, "queries"));
  auto query_count = ReadU64(in);
  FXDIST_RETURN_NOT_OK(query_count.status());
  trace.queries.reserve(*query_count);
  for (std::uint64_t q = 0; q < *query_count; ++q) {
    ValueQuery query(trace.num_fields);
    for (unsigned f = 0; f < trace.num_fields; ++f) {
      // Peek: '*' is a wildcard, anything else is a value.
      if (!(in >> std::ws)) {
        return Status::InvalidArgument("unexpected EOF in query");
      }
      if (in.peek() == '*') {
        in.get();
        continue;
      }
      auto value = DecodeValue(in);
      FXDIST_RETURN_NOT_OK(value.status());
      query[f] = *std::move(value);
    }
    trace.queries.push_back(std::move(query));
  }
  return trace;
}

}  // namespace fxdist
