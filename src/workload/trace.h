// Workload traces: persist record and query streams for replay.
//
// Reproducible experiments need the *workload* pinned, not just the
// seeds: a trace file captures a concrete record stream and query stream
// so a result can be re-run byte-for-byte later (or against a different
// method/machine).  The value encoding is shared with the ParallelFile
// persistence format (length-prefixed strings, hex doubles).
//
// Format:
//   fxdist-trace v1
//   fields <n>
//   records <count>
//   <value> ... <value>                  (one line per record)
//   queries <count>
//   <value-or-*> ... <value-or-*>        (one line per query)
//
// v2 adds one provenance line between the header and the fields line:
//   fxdist-trace v2
//   meta <length-prefixed string>
//   fields <n>
//   ...
// `meta` is free-form generator provenance (seed, zipf exponent,
// spec-prob, ...) so a replayed run can report how its workload was
// produced.  SaveTrace writes v1 when meta is empty — existing traces
// and their readers stay byte-identical — and v2 otherwise; LoadTrace
// accepts both.

#ifndef FXDIST_WORKLOAD_TRACE_H_
#define FXDIST_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "hashing/multikey_hash.h"
#include "util/status.h"

namespace fxdist {

struct WorkloadTrace {
  unsigned num_fields = 0;
  /// Generator provenance (v2 traces); empty round-trips as v1.
  std::string meta;
  std::vector<Record> records;
  std::vector<ValueQuery> queries;
};

/// Writes the trace to `path`, overwriting.
Status SaveTrace(const WorkloadTrace& trace, const std::string& path);

/// Loads a trace saved by SaveTrace.
Result<WorkloadTrace> LoadTrace(const std::string& path);

}  // namespace fxdist

#endif  // FXDIST_WORKLOAD_TRACE_H_
