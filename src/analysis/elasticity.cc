#include "analysis/elasticity.h"

#include "analysis/fast_response.h"
#include "core/device_map.h"
#include "core/registry.h"

namespace fxdist {

Result<ElasticityReport> DeviceDoublingReport(const FieldSpec& spec,
                                              const std::string& method_spec,
                                              std::uint64_t budget) {
  if (spec.TotalBuckets() > budget) {
    return Status::InvalidArgument("bucket space exceeds the budget");
  }
  auto doubled_spec =
      FieldSpec::Create(spec.field_sizes(), spec.num_devices() * 2);
  FXDIST_RETURN_NOT_OK(doubled_spec.status());
  auto before = MakeDistribution(spec, method_spec);
  FXDIST_RETURN_NOT_OK(before.status());
  auto after = MakeDistribution(*doubled_spec, method_spec);
  FXDIST_RETURN_NOT_OK(after.status());

  ElasticityReport report;
  const std::uint64_t m = spec.num_devices();
  // Both spaces fit the budget, so the maps are precomputed and the
  // whole-space comparison is two flat-table walks.
  const DeviceMap before_map(**before, budget);
  const DeviceMap after_map(**after, budget);
  const auto count_move = [&](std::uint64_t old_device,
                              std::uint64_t new_device) {
    ++report.buckets;
    if (new_device == old_device) return;
    ++report.moved;
    if (new_device == old_device + m) {
      ++report.split_moves;
    } else {
      ++report.cross_moves;
    }
  };
  if (before_map.precomputed() && after_map.precomputed()) {
    const auto& old_table = before_map.table();
    const auto& new_table = after_map.table();
    for (std::uint64_t linear = 0; linear < old_table.size(); ++linear) {
      count_move(old_table[linear], new_table[linear]);
    }
  } else {
    ForEachBucket(spec, [&](const BucketId& bucket) {
      count_move((*before)->DeviceOf(bucket), (*after)->DeviceOf(bucket));
      return true;
    });
  }
  if (report.buckets > 0) {
    report.moved_fraction = static_cast<double>(report.moved) /
                            static_cast<double>(report.buckets);
    report.cross_fraction = static_cast<double>(report.cross_moves) /
                            static_cast<double>(report.buckets);
  }

  // Quality after doubling.
  const unsigned n = spec.num_fields();
  std::uint64_t optimal = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (IsMaskStrictOptimal(after_map, mask)) ++optimal;
  }
  report.optimal_fraction_after = static_cast<double>(optimal) /
                                  static_cast<double>(std::uint64_t{1}
                                                      << n);
  return report;
}

}  // namespace fxdist
