#include "analysis/batch.h"

#include <algorithm>
#include <unordered_set>

#include "util/math.h"

namespace fxdist {

Result<BatchStats> AnalyzeBatch(const DistributionMethod& method,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t budget) {
  const FieldSpec& spec = method.spec();
  std::uint64_t total = 0;
  for (const PartialMatchQuery& q : batch) {
    if (q.num_fields() != spec.num_fields()) {
      return Status::InvalidArgument("query arity mismatch in batch");
    }
    total += q.NumQualifiedBuckets(spec);
    if (total > budget) {
      return Status::InvalidArgument(
          "batch enumeration exceeds the budget");
    }
  }

  BatchStats stats;
  stats.total_bucket_requests = total;
  stats.distinct_per_device.assign(spec.num_devices(), 0);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(total));
  for (const PartialMatchQuery& q : batch) {
    ForEachQualifiedBucket(spec, q, [&](const BucketId& bucket) {
      const std::uint64_t linear = LinearIndex(spec, bucket);
      if (seen.insert(linear).second) {
        ++stats.distinct_per_device[method.DeviceOf(bucket)];
      }
      return true;
    });
  }
  stats.distinct_buckets = seen.size();
  stats.largest_device_share =
      stats.distinct_per_device.empty()
          ? 0
          : *std::max_element(stats.distinct_per_device.begin(),
                              stats.distinct_per_device.end());
  stats.sharing_factor =
      stats.distinct_buckets == 0
          ? 1.0
          : static_cast<double>(total) /
                static_cast<double>(stats.distinct_buckets);
  stats.balanced =
      stats.largest_device_share <=
      CeilDiv(stats.distinct_buckets, spec.num_devices());
  return stats;
}

}  // namespace fxdist
