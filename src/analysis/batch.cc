#include "analysis/batch.h"

#include <algorithm>
#include <unordered_map>

#include "util/math.h"

namespace fxdist {

namespace {

/// Shared plan builder: `enumerate(q, fn)` must call `fn(linear)` for
/// every qualified bucket of batch query q on the target device, in the
/// solo enumeration order.  A non-null `live` filter drops dead buckets
/// from the scan bookkeeping (they still count toward qualified_counts
/// and bucket_requests, which is what solo accounting reports).
template <typename Enumerate>
DeviceBatchPlan BuildDevicePlan(
    const FieldSpec& spec, std::size_t batch_size, const Enumerate& enumerate,
    const std::function<bool(std::uint64_t)>* live = nullptr) {
  DeviceBatchPlan plan;
  plan.query_slots.resize(batch_size);
  plan.qualified_counts.assign(batch_size, 0);
  const auto visit = [&](std::uint32_t q, std::uint32_t scan,
                         bool inserted) {
    if (inserted) plan.scan_queries.emplace_back();
    auto& covering = plan.scan_queries[scan];
    plan.query_slots[q].emplace_back(
        scan, static_cast<std::uint32_t>(covering.size()));
    covering.push_back(q);
  };
  constexpr std::uint32_t kUnseen = 0xffffffffu;
  /// A distinct bucket the filter rejected: counted, never scanned.
  constexpr std::uint32_t kDead = 0xfffffffeu;
  // Dedup distinct buckets.  Small bucket spaces get a direct-mapped
  // table (one slot per linear bucket id); large ones — and every
  // filtered plan, whose point is sparseness — use a hash map so the
  // plan never allocates more than the batch enumerates.
  constexpr std::uint64_t kDirectMapLimit = std::uint64_t{1} << 20;
  if (live == nullptr && spec.TotalBuckets() <= kDirectMapLimit) {
    std::vector<std::uint32_t> scan_of(spec.TotalBuckets(), kUnseen);
    for (std::uint32_t q = 0; q < batch_size; ++q) {
      enumerate(q, [&](std::uint64_t linear) {
        ++plan.qualified_counts[q];
        ++plan.bucket_requests;
        std::uint32_t& scan = scan_of[linear];
        const bool inserted = scan == kUnseen;
        if (inserted) {
          scan = static_cast<std::uint32_t>(plan.scan_buckets.size());
          plan.scan_buckets.push_back(linear);
        }
        visit(q, scan, inserted);
        return true;
      });
    }
  } else {
    std::unordered_map<std::uint64_t, std::uint32_t> scan_of_bucket;
    for (std::uint32_t q = 0; q < batch_size; ++q) {
      enumerate(q, [&](std::uint64_t linear) {
        ++plan.qualified_counts[q];
        ++plan.bucket_requests;
        auto [it, inserted] = scan_of_bucket.try_emplace(linear, kUnseen);
        if (inserted) {
          it->second = (live == nullptr || (*live)(linear))
                           ? static_cast<std::uint32_t>(
                                 plan.scan_buckets.size())
                           : kDead;
          if (it->second != kDead) plan.scan_buckets.push_back(linear);
        }
        if (it->second != kDead) visit(q, it->second, inserted);
        return true;
      });
    }
  }
  return plan;
}

}  // namespace

DeviceBatchPlan PlanDeviceBatch(const DistributionMethod& method,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t device) {
  const FieldSpec& spec = method.spec();
  return BuildDevicePlan(
      spec, batch.size(),
      [&](std::uint32_t q, const std::function<bool(std::uint64_t)>& fn) {
        method.ForEachQualifiedBucketOnDevice(
            batch[q], device, [&](const BucketId& bucket) {
              return fn(LinearIndex(spec, bucket));
            });
      });
}

DeviceBatchPlan PlanDeviceBatch(const DeviceMap& map,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t device) {
  return BuildDevicePlan(
      map.spec(), batch.size(),
      [&](std::uint32_t q, const std::function<bool(std::uint64_t)>& fn) {
        map.ForEachQualifiedLinearOnDevice(batch[q], device, fn);
      });
}

DeviceBatchPlan PlanDeviceBatch(
    const DeviceMap& map, const std::vector<PartialMatchQuery>& batch,
    std::uint64_t device, const std::function<bool(std::uint64_t)>& live) {
  return BuildDevicePlan(
      map.spec(), batch.size(),
      [&](std::uint32_t q, const std::function<bool(std::uint64_t)>& fn) {
        map.ForEachQualifiedLinearOnDevice(batch[q], device, fn);
      },
      &live);
}

Result<BatchStats> AnalyzeBatch(const DistributionMethod& method,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t budget) {
  const FieldSpec& spec = method.spec();
  std::uint64_t total = 0;
  for (const PartialMatchQuery& q : batch) {
    if (q.num_fields() != spec.num_fields()) {
      return Status::InvalidArgument("query arity mismatch in batch");
    }
    total += q.NumQualifiedBuckets(spec);
    if (total > budget) {
      return Status::InvalidArgument(
          "batch enumeration exceeds the budget");
    }
  }

  // Each bucket lives on exactly one device, so the per-device plans
  // partition the union: summing their distinct counts is exact.
  BatchStats stats;
  stats.total_bucket_requests = total;
  stats.distinct_per_device.assign(spec.num_devices(), 0);
  for (std::uint64_t d = 0; d < spec.num_devices(); ++d) {
    const DeviceBatchPlan plan = PlanDeviceBatch(method, batch, d);
    stats.distinct_per_device[d] = plan.scan_buckets.size();
    stats.distinct_buckets += plan.scan_buckets.size();
  }
  stats.largest_device_share =
      stats.distinct_per_device.empty()
          ? 0
          : *std::max_element(stats.distinct_per_device.begin(),
                              stats.distinct_per_device.end());
  stats.sharing_factor =
      stats.distinct_buckets == 0
          ? 1.0
          : static_cast<double>(total) /
                static_cast<double>(stats.distinct_buckets);
  stats.balanced =
      stats.largest_device_share <=
      CeilDiv(stats.distinct_buckets, spec.num_devices());
  return stats;
}

}  // namespace fxdist
