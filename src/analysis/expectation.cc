#include "analysis/expectation.h"

#include <cmath>

#include "analysis/fast_response.h"
#include "util/math.h"

namespace fxdist {

Result<ExpectedQueryCost> ComputeExpectedCost(
    const DistributionMethod& method, double specified_probability,
    double per_bucket_ms) {
  const FieldSpec& spec = method.spec();
  const unsigned n = spec.num_fields();
  if (n >= 20) {
    return Status::InvalidArgument("mask sweep is 2^n; too many fields");
  }
  if (specified_probability < 0.0 || specified_probability > 1.0) {
    return Status::InvalidArgument("probability must be in [0, 1]");
  }
  const double p = specified_probability;

  ExpectedQueryCost cost;
  double weight_sum = 0.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    unsigned unspecified = 0;
    std::uint64_t qualified = 1;
    for (unsigned i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        ++unspecified;
        qualified *= spec.field_size(i);
      }
    }
    const double weight =
        std::pow(p, static_cast<double>(n - unspecified)) *
        std::pow(1.0 - p, static_cast<double>(unspecified));
    if (weight == 0.0) continue;
    weight_sum += weight;
    const std::uint64_t largest = MaskResponse(method, mask).Max();
    cost.expected_largest_response +=
        weight * static_cast<double>(largest);
    cost.expected_qualified += weight * static_cast<double>(qualified);
    if (largest <= CeilDiv(qualified, spec.num_devices())) {
      cost.probability_optimal += weight;
    }
  }
  if (weight_sum > 0.0) {
    cost.expected_largest_response /= weight_sum;
    cost.expected_qualified /= weight_sum;
    cost.probability_optimal /= weight_sum;
  }
  cost.expected_parallel_ms =
      cost.expected_largest_response * per_bucket_ms;
  return cost;
}

}  // namespace fxdist
