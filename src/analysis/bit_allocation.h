// Field directory sizing from query statistics.
//
// Before distribution even starts, a multi-key hash file must decide how
// many directory bits each field gets — the problem of Rothnie & Lozano
// (1974) and Aho & Ullman (1979), which the paper cites as the classic
// companion question (and which [Du85] showed is NP-hard in general; for
// independently specified fields the greedy below is exact).
//
// Model: field i is specified independently with probability p_i.  With
// b_i bits on field i, a query's expected qualified-bucket count is
//     E[|R(q)|] = prod_i ( p_i + (1 - p_i) * 2^{b_i} )
// (specified fields contribute one coordinate, unspecified ones the whole
// 2^{b_i} directory).  Each additional bit on field i multiplies its
// factor by
//     r_i(b) = (p_i + (1-p_i) * 2^{b+1}) / (p_i + (1-p_i) * 2^b),
// which is increasing in b, so greedily assigning each of the B bits to
// the field with the smallest current ratio minimizes the product — the
// textbook exact solution for this separable convex objective.

#ifndef FXDIST_ANALYSIS_BIT_ALLOCATION_H_
#define FXDIST_ANALYSIS_BIT_ALLOCATION_H_

#include <cstdint>
#include <vector>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

struct BitAllocation {
  /// Bits per field; field sizes are 2^bits.
  std::vector<unsigned> bits;
  /// E[|R(q)|] under the model.
  double expected_qualified = 0.0;

  std::vector<std::uint64_t> FieldSizes() const;
};

/// Allocates `total_bits` directory bits over fields with specification
/// probabilities `specified_probability` (each in [0, 1]), minimizing the
/// expected qualified-bucket count.  `max_bits_per_field` caps any single
/// directory (0 = unlimited up to 40 bits).
Result<BitAllocation> AllocateFieldBits(
    const std::vector<double>& specified_probability, unsigned total_bits,
    unsigned max_bits_per_field = 0);

/// Expected qualified buckets for an explicit allocation (model above).
double ExpectedQualifiedBuckets(
    const std::vector<double>& specified_probability,
    const std::vector<unsigned>& bits);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_BIT_ALLOCATION_H_
