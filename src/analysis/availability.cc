#include "analysis/availability.h"

#include <algorithm>
#include <vector>

#include "analysis/fast_response.h"
#include "util/math.h"

namespace fxdist {

namespace {

/// Max load over survivors after failing device `failed` and re-routing
/// its `loads[failed]` buckets per `placement`.
double DegradedMax(const std::vector<std::uint64_t>& loads,
                   std::uint64_t failed, ReplicaPlacement placement) {
  const std::uint64_t m = loads.size();
  std::vector<double> degraded(m);
  for (std::uint64_t d = 0; d < m; ++d) {
    degraded[d] = static_cast<double>(loads[d]);
  }
  const double orphaned = degraded[failed];
  degraded[failed] = 0.0;
  switch (placement) {
    case ReplicaPlacement::kMirrored:
      degraded[(failed + m / 2) % m] += orphaned;
      break;
    case ReplicaPlacement::kChained: {
      // Ideal chained declustering: the survivors share the orphaned
      // work evenly by shifting primary/backup responsibility around the
      // chain — the standard idealized model charges each of the m-1
      // survivors an equal slice.
      const double slice = orphaned / static_cast<double>(m - 1);
      for (std::uint64_t d = 0; d < m; ++d) {
        if (d != failed) degraded[d] += slice;
      }
      break;
    }
  }
  double max = 0.0;
  for (std::uint64_t d = 0; d < m; ++d) {
    max = std::max(max, degraded[d]);
  }
  return max;
}

}  // namespace

Result<DegradedModeReport> AnalyzeDegradedMode(
    const DistributionMethod& method, unsigned k,
    ReplicaPlacement placement) {
  const FieldSpec& spec = method.spec();
  const std::uint64_t m = spec.num_devices();
  if (m < 2) {
    return Status::InvalidArgument("degraded mode needs at least 2 devices");
  }
  if (k > spec.num_fields()) {
    return Status::InvalidArgument("k exceeds the field count");
  }

  DegradedModeReport report;
  double healthy_sum = 0.0;
  double degraded_sum = 0.0;
  ForEachSubsetOfSize(spec.num_fields(), k,
                      [&](const std::vector<unsigned>& subset) {
    std::uint64_t mask = 0;
    for (unsigned f : subset) mask |= std::uint64_t{1} << f;
    const std::vector<std::uint64_t> loads =
        MaskResponse(method, mask).per_device;
    healthy_sum += static_cast<double>(
        *std::max_element(loads.begin(), loads.end()));
    // Average over which device fails.
    double over_failures = 0.0;
    for (std::uint64_t failed = 0; failed < m; ++failed) {
      over_failures += DegradedMax(loads, failed, placement);
    }
    degraded_sum += over_failures / static_cast<double>(m);
    ++report.classes;
    return true;
  });
  if (report.classes > 0) {
    report.healthy_largest =
        healthy_sum / static_cast<double>(report.classes);
    report.degraded_largest =
        degraded_sum / static_cast<double>(report.classes);
    if (report.healthy_largest > 0.0) {
      report.degradation_factor =
          report.degraded_largest / report.healthy_largest;
    }
  }
  return report;
}

}  // namespace fxdist
