// Elastic scale-out: what moves when the machine doubles?
//
// Growing from M to 2M devices reassigns buckets.  For the mod/XOR
// methods the new device id extends the old one by a single bit —
// `T_2M(x) mod M == T_M(x)`, `(s mod 2M) mod M == s mod M` — so every
// bucket either stays put or *splits off* to its old device's new sibling
// (old id + M): no traffic between old devices, exactly the
// consistent-hashing-style minimal movement one wants from declustering.
//
// Extended FX complicates this: the transformations are parameterized by
// M (`d = M/F` changes), so a re-planned FX reshuffles buckets between
// old devices.  The report separates "split" moves (to the sibling) from
// "cross" moves (anything else), quantifying the price of re-planning —
// and the planner's option of *keeping* the old plan (valid, since every
// X^{M,F} image is also a subset of Z_2M) trades balance for zero cross
// traffic.
//
// Note the perhaps-surprising corollary covered in the tests: *any*
// method that truncates a fixed per-bucket quantity (including seeded
// random hashing and even the round-robin spanning-path table, whose
// path ignores M) is split-only; cross traffic appears exactly when the
// allocation function itself is recomputed for the new M — re-planned
// Extended FX being the canonical case.

#ifndef FXDIST_ANALYSIS_ELASTICITY_H_
#define FXDIST_ANALYSIS_ELASTICITY_H_

#include <cstdint>
#include <string>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

struct ElasticityReport {
  std::uint64_t buckets = 0;
  /// Buckets whose device changed at all.
  std::uint64_t moved = 0;
  /// Moves to the old device's sibling (old id + M) — cheap splits.
  std::uint64_t split_moves = 0;
  /// Moves anywhere else — expensive cross-device traffic.
  std::uint64_t cross_moves = 0;
  double moved_fraction = 0.0;
  double cross_fraction = 0.0;
  /// Strict-optimal class fraction after doubling (the quality side of
  /// the trade-off).
  double optimal_fraction_after = 0.0;
};

/// Compares `method_spec` instantiated on M vs 2M devices over the whole
/// bucket space.  Enumerates every bucket; refuses spaces larger than
/// `budget`.
Result<ElasticityReport> DeviceDoublingReport(
    const FieldSpec& spec, const std::string& method_spec,
    std::uint64_t budget = std::uint64_t{1} << 22);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_ELASTICITY_H_
