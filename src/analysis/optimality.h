// Exhaustive optimality checking.
//
// Definitions from the paper (§2):
//  * A distribution is *strict optimal* for query q when no device holds
//    more than ceil(|R(q)| / M) qualified buckets.
//  * It is *k-optimal* when it is strict optimal for every query with
//    exactly k unspecified fields.
//  * It is *perfect optimal* when it is k-optimal for all k = 0..n.
//
// The checker enumerates qualified buckets directly.  For shift-invariant
// methods (FX / Modulo / GDM), the per-device response multiset does not
// depend on the specified values, so one representative query per
// unspecified-field set suffices; otherwise every specified-value
// combination is enumerated.

#ifndef FXDIST_ANALYSIS_OPTIMALITY_H_
#define FXDIST_ANALYSIS_OPTIMALITY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/device_map.h"
#include "core/distribution.h"
#include "core/query.h"

namespace fxdist {

/// Per-device qualified-bucket counts for one query.
struct ResponseVector {
  std::vector<std::uint64_t> per_device;

  std::uint64_t Max() const;
  std::uint64_t Total() const;
};

/// Counts R(q)'s buckets per device by enumeration.
ResponseVector ComputeResponseVector(const DistributionMethod& method,
                                     const PartialMatchQuery& query);

/// Same counts through the cached placement plane — flat table lookups
/// instead of a virtual DeviceOf per bucket.
ResponseVector ComputeResponseVector(const DeviceMap& map,
                                     const PartialMatchQuery& query);

/// max_i r_i(q) — the paper's "largest response size".
std::uint64_t LargestResponseSize(const DistributionMethod& method,
                                  const PartialMatchQuery& query);

std::uint64_t LargestResponseSize(const DeviceMap& map,
                                  const PartialMatchQuery& query);

/// ceil(|R(q)| / M), the strict-optimal bound.
std::uint64_t StrictOptimalBound(const FieldSpec& spec,
                                 const PartialMatchQuery& query);

/// True iff no device exceeds the strict-optimal bound for `query`.
bool IsStrictOptimal(const DistributionMethod& method,
                     const PartialMatchQuery& query);

bool IsStrictOptimal(const DeviceMap& map, const PartialMatchQuery& query);

/// Outcome of a k-/perfect-optimality sweep.
struct OptimalityReport {
  bool optimal = true;
  /// A witness query that violated the bound, when !optimal.
  std::optional<PartialMatchQuery> counterexample;
  std::uint64_t queries_checked = 0;
};

/// Checks strict optimality for every query with exactly `k` unspecified
/// fields.  Uses the one-representative-per-mask fast path when
/// `method.IsShiftInvariant()`; set `force_exhaustive` to enumerate every
/// specified-value combination regardless (cross-validation in tests).
OptimalityReport CheckKOptimal(const DistributionMethod& method, unsigned k,
                               bool force_exhaustive = false);

/// Sweep through an existing placement plane (the method forms build one
/// DeviceMap and delegate here).
OptimalityReport CheckKOptimal(const DeviceMap& map, unsigned k,
                               bool force_exhaustive = false);

/// Checks all k = 0..n.
OptimalityReport CheckPerfectOptimal(const DistributionMethod& method,
                                     bool force_exhaustive = false);

OptimalityReport CheckPerfectOptimal(const DeviceMap& map,
                                     bool force_exhaustive = false);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_OPTIMALITY_H_
