// Analytic sufficient conditions for strict optimality (paper §4.2).
//
// These predicates answer "does the theory *guarantee* strict optimality
// for this unspecified-field set?" without touching a single bucket.  They
// are deliberately exactly the paper's published conditions — the
// probability figures (1-4) are computed from them, as in the paper — and
// are cross-validated against the exhaustive checker in the test suite
// (sufficient ⇒ actually optimal).

#ifndef FXDIST_ANALYSIS_CONDITIONS_H_
#define FXDIST_ANALYSIS_CONDITIONS_H_

#include <vector>

#include "core/field_spec.h"
#include "core/transform.h"

namespace fxdist {

/// FX distribution with the per-field methods `kinds` (identity on fields
/// with F >= M).  Returns true iff one of the paper's conditions
/// (§4.2 (1)-(5)) guarantees strict optimality for every query whose
/// unspecified fields are exactly `unspecified`.
///
/// Conditions implemented:
///  (1) |q(f)| <= 1                                       [Theorem 1]
///  (2) some unspecified field has F >= M                 [Theorem 2]
///  (3) |q(f)| = 2 with different methods                 [Thms 4-8]
///  (4a/5a) two unspecified fields with F_p * F_q >= M and different
///      methods (IU1+IU2 does not count as different)     [Cor 6.1/9.1]
///  (4b) |q(f)| = 3, methods are exactly {I, U, IU2} with the IU2 field a
///      genuine IU2 (F^2 < M) no smaller than the U field [Lemma 9.1]
///  (5b) |q(f)| >= 4 and some triple i,j,k with F_i*F_j*F_k >= M whose
///      methods are {I, U, IU2} under the same size rule  [Cor 9.1]
bool FxStrictOptimalSufficient(const FieldSpec& spec,
                               const std::vector<TransformKind>& kinds,
                               const std::vector<unsigned>& unspecified);

/// Disk Modulo (DuSo82) sufficient condition: at most one unspecified
/// field, or some unspecified field whose size is a multiple of M.
bool ModuloStrictOptimalSufficient(const FieldSpec& spec,
                                   const std::vector<unsigned>& unspecified);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_CONDITIONS_H_
