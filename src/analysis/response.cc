#include "analysis/response.h"

#include <algorithm>
#include <vector>

#include "analysis/fast_response.h"
#include "analysis/optimality.h"
#include "util/math.h"
#include "util/status.h"

namespace fxdist {

namespace {

template <typename PerSubset>
LargestResponseStats AverageOverSubsets(const FieldSpec& spec, unsigned k,
                                        PerSubset&& largest_for_subset) {
  LargestResponseStats stats;
  double sum = 0.0;
  ForEachSubsetOfSize(spec.num_fields(), k,
                      [&](const std::vector<unsigned>& subset) {
    const std::uint64_t largest = largest_for_subset(subset);
    sum += static_cast<double>(largest);
    stats.max = std::max(stats.max, largest);
    ++stats.queries;
    return true;
  });
  if (stats.queries > 0) {
    stats.average = sum / static_cast<double>(stats.queries);
  }
  return stats;
}

std::uint64_t MaskOf(const std::vector<unsigned>& subset) {
  std::uint64_t mask = 0;
  for (unsigned f : subset) mask |= (std::uint64_t{1} << f);
  return mask;
}

}  // namespace

LargestResponseStats AverageLargestResponse(const DistributionMethod& method,
                                            unsigned k) {
  const FieldSpec& spec = method.spec();
  FXDIST_DCHECK(method.IsShiftInvariant());
  // One placement plane for the whole sweep: every subset's enumeration
  // then costs table lookups instead of virtual DeviceOf calls.
  const DeviceMap map(method);
  return AverageOverSubsets(
      spec, k, [&](const std::vector<unsigned>& subset) {
        auto query =
            PartialMatchQuery::FromUnspecifiedMaskZero(spec, MaskOf(subset));
        FXDIST_DCHECK(query.ok());
        return LargestResponseSize(map, *query);
      });
}

LargestResponseStats OptimalLargestResponse(const FieldSpec& spec,
                                            unsigned k) {
  return AverageOverSubsets(
      spec, k, [&](const std::vector<unsigned>& subset) {
        std::uint64_t qualified = 1;
        for (unsigned f : subset) qualified *= spec.field_size(f);
        return CeilDiv(qualified, spec.num_devices());
      });
}

ResponsePercentiles LargestResponsePercentiles(
    const DistributionMethod& method, unsigned k) {
  const FieldSpec& spec = method.spec();
  std::vector<std::uint64_t> maxima;
  ForEachSubsetOfSize(spec.num_fields(), k,
                      [&](const std::vector<unsigned>& subset) {
    maxima.push_back(MaskResponse(method, MaskOf(subset)).Max());
    return true;
  });
  ResponsePercentiles out;
  out.classes = maxima.size();
  if (maxima.empty()) return out;
  std::sort(maxima.begin(), maxima.end());
  out.p50 = static_cast<double>(maxima[maxima.size() / 2]);
  out.p95 = static_cast<double>(maxima[maxima.size() * 95 / 100]);
  out.max = static_cast<double>(maxima.back());
  return out;
}

}  // namespace fxdist
