// Largest-response-size statistics (paper §5.2.1, Tables 7-9).
//
// For a query q, device i's response size r_i(q) is the number of qualified
// buckets it holds; the query's parallel response is governed by
// max_i r_i(q).  The tables average that maximum over every query with
// exactly k unspecified fields.

#ifndef FXDIST_ANALYSIS_RESPONSE_H_
#define FXDIST_ANALYSIS_RESPONSE_H_

#include <cstdint>

#include "core/distribution.h"
#include "core/field_spec.h"

namespace fxdist {

struct LargestResponseStats {
  double average = 0.0;       ///< mean over the query population
  std::uint64_t max = 0;      ///< worst query
  std::uint64_t queries = 0;  ///< population size (subsets evaluated)
};

/// Average/max largest response size over all C(n, k) unspecified-field
/// subsets with exactly `k` unspecified fields.  The method must be
/// shift-invariant (FX/Modulo/GDM are), so one representative query per
/// subset is exact — this matches how the paper's Tables 7-9 are averaged.
LargestResponseStats AverageLargestResponse(const DistributionMethod& method,
                                            unsigned k);

/// The unbeatable baseline: average of ceil(|R(q)| / M) over the same
/// population (the tables' "Optimal" column).
LargestResponseStats OptimalLargestResponse(const FieldSpec& spec,
                                            unsigned k);

/// Distribution (not just mean) of the largest response over the C(n, k)
/// query classes — a mean can hide a catastrophic class; the tail cannot.
struct ResponsePercentiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
  std::uint64_t classes = 0;
};

/// Percentiles of largest response size over all k-unspecified classes,
/// via the closed-form response vectors (fast for FX/Modulo/GDM/AFX).
ResponsePercentiles LargestResponsePercentiles(
    const DistributionMethod& method, unsigned k);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_RESPONSE_H_
