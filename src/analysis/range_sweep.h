// Partitionable bucket-range response sweeps — the analysis kernel of
// the distributed plane.
//
// The fig 1-4 sweeps ask, per unspecified-field set ("mask"), how the
// qualified buckets of one representative query spread across devices.
// For shift-invariant methods (FX / Modulo / GDM) one representative per
// mask is exact, and per-device *counts over a linear bucket range* are
// mergeable partials: counts over [a,b) plus counts over [b,c) are the
// counts over [a,c), integer-exact, in any merge order.  That is what
// lets a coordinator split one mask's sweep across N shard servers (the
// kAnalyzeRange opcode) and still reproduce the serial checker's
// integers bit for bit.
//
// What is *not* mergeable is the derived statistic (worst excess = max
// per-device count minus the strict-optimal floor): a max of partial
// maxes is not the max of sums.  So the wire carries only the raw
// per-device counts; FinalizeMaskSweep derives excess/optimality once
// after the merge, exactly as the serial path does.
//
// AnalyzeBucketRange is deliberately a free function over DeviceMap so
// the shard server (server-side sweep) and the coordinator's client-side
// fallback (old servers without kWireFeatureAnalyzeRange) run the *same*
// code on the *same* placement plane — bit-identical by construction,
// not by testing luck.

#ifndef FXDIST_ANALYSIS_RANGE_SWEEP_H_
#define FXDIST_ANALYSIS_RANGE_SWEEP_H_

#include <cstdint>
#include <vector>

#include "analysis/optimality.h"
#include "analysis/probability.h"
#include "analysis/scheme_search.h"
#include "core/device_map.h"
#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// Per-device qualified-bucket counts of one mask's representative query
/// restricted to a linear bucket range — the unit the wire carries.
struct RangePartial {
  std::vector<std::uint64_t> per_device;
  /// Qualified buckets in the range (== sum of per_device).
  std::uint64_t qualified = 0;
};

/// Counts, per device, the buckets of [start, end) that qualify for the
/// representative query of `unspecified_mask` (bit i set = field i
/// unspecified; specified fields pinned to 0).  `end` is exclusive and
/// must not exceed the spec's TotalBuckets; the mask must not have bits
/// at or beyond num_fields.  Works in both DeviceMap modes (precomputed
/// table or virtual fallback).
Result<RangePartial> AnalyzeBucketRange(const DeviceMap& map,
                                        std::uint64_t unspecified_mask,
                                        std::uint64_t start,
                                        std::uint64_t end);

/// Accumulates `part` into `*into` (element-wise sum).  InvalidArgument
/// on a device-arity mismatch; an empty `*into` adopts part's arity.
Status MergeRangePartial(RangePartial* into, const RangePartial& part);

/// One mask's merged sweep, finalized to the serial checker's terms.
struct MaskSweepStats {
  std::uint64_t unspecified_mask = 0;
  /// Merged per-device counts — ComputeResponseVector's integers.
  ResponseVector response;
  std::uint64_t qualified = 0;     ///< |R(q)|
  std::uint64_t bound = 0;         ///< ceil(|R(q)| / M), the strict floor
  std::uint64_t worst_excess = 0;  ///< max(response) - bound, clamped at 0
  bool strict_optimal = false;     ///< worst_excess == 0
};

/// Derives bound/excess/optimality from a fully merged partial.  The
/// caller asserts the merge covered the whole bucket space; qualified is
/// cross-checked against the closed form (product of unspecified sizes)
/// and a mismatch — a lost or duplicated range — is DataLoss.
Result<MaskSweepStats> FinalizeMaskSweep(const FieldSpec& spec,
                                         std::uint64_t unspecified_mask,
                                         const RangePartial& merged);

/// Folds per-mask sweeps into the fig 1-4 probability structure, with
/// the same weighting as OptimalityProbabilityOver (p^{#specified} *
/// (1-p)^{#unspecified} per mask).  The sweep list must cover each mask
/// at most once.
OptimalityProbability SweepOptimality(const FieldSpec& spec,
                                      const std::vector<MaskSweepStats>& masks,
                                      double specified_probability = 0.5);

/// Folds per-mask sweeps into scheme_search's score.  Valid for
/// shift-invariant methods only: each mask's representative stands for
/// (product of specified sizes) identical-excess queries, which is what
/// `queries` and `total_excess` count — the same totals ScoreScheme gets
/// by enumerating every specified-value combination.
AllocationScore SweepScore(const FieldSpec& spec,
                           const std::vector<MaskSweepStats>& masks);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_RANGE_SWEEP_H_
