// Degraded-mode analysis: response balance after a device failure.
//
// Parallel files replicate for availability; when device f fails, its
// share of every query re-routes to wherever the copies live, and the
// declustering question returns in degraded form: how lopsided is the
// load now?  Two classic replica placements are modeled:
//
//  * mirrored   — bucket's backup lives on (primary + M/2) mod M; the
//                 mirror absorbs the failed device's entire share.
//  * chained    — backup on (primary + 1) mod M (Hsiao & DeWitt's
//                 chained declustering, the canonical fix): in degraded
//                 mode the surviving devices can re-balance primary vs
//                 backup work around the chain, spreading the failed
//                 node's load across *all* survivors.
//
// The analysis is exact: it reuses the closed-form response vectors and
// applies the degraded re-routing to each query class.  This extends the
// paper (which does not treat failures) with the 1990s literature that
// grew out of it.

#ifndef FXDIST_ANALYSIS_AVAILABILITY_H_
#define FXDIST_ANALYSIS_AVAILABILITY_H_

#include <cstdint>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

enum class ReplicaPlacement {
  kMirrored,  ///< backup at primary + M/2
  kChained,   ///< backup at primary + 1, ideal chain re-balancing
};

struct DegradedModeReport {
  /// avg over k-unspecified classes of max device load, healthy.
  double healthy_largest = 0.0;
  /// Same with one device failed and its load re-routed.
  double degraded_largest = 0.0;
  /// degraded / healthy — the failure penalty multiplier.
  double degradation_factor = 1.0;
  std::uint64_t classes = 0;
};

/// Evaluates the degraded-mode largest response over all classes with
/// exactly `k` unspecified fields, failing each device in turn and
/// averaging.  Requires M >= 2.
Result<DegradedModeReport> AnalyzeDegradedMode(
    const DistributionMethod& method, unsigned k,
    ReplicaPlacement placement);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_AVAILABILITY_H_
