#include "analysis/plan_search.h"

#include <algorithm>

#include "analysis/fast_response.h"
#include "core/fx.h"
#include "util/math.h"
#include "util/random.h"

namespace fxdist {

namespace {

struct Score {
  double non_optimal_fraction = 1.0;
  double mean_overload = 1e30;

  bool operator<(const Score& other) const {
    if (non_optimal_fraction != other.non_optimal_fraction) {
      return non_optimal_fraction < other.non_optimal_fraction;
    }
    return mean_overload < other.mean_overload;
  }
};

Score EvaluateKinds(const FieldSpec& spec,
                    const std::vector<TransformKind>& kinds) {
  auto plan = TransformPlan::Create(spec, kinds);
  FXDIST_DCHECK(plan.ok());
  auto fx = FXDistribution::WithPlan(*std::move(plan));
  const unsigned n = spec.num_fields();
  const std::uint64_t total = std::uint64_t{1} << n;
  std::uint64_t optimal = 0;
  double overload_sum = 0.0;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    std::uint64_t qualified = 1;
    for (unsigned i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) qualified *= spec.field_size(i);
    }
    const std::uint64_t bound = CeilDiv(qualified, spec.num_devices());
    const std::uint64_t largest = FxMaskResponse(*fx, mask).Max();
    if (largest <= bound) ++optimal;
    overload_sum +=
        static_cast<double>(largest) / static_cast<double>(bound);
  }
  Score s;
  s.non_optimal_fraction =
      1.0 - static_cast<double>(optimal) / static_cast<double>(total);
  s.mean_overload = overload_sum / static_cast<double>(total);
  return s;
}

constexpr TransformKind kAllKinds[4] = {
    TransformKind::kIdentity, TransformKind::kU, TransformKind::kIU1,
    TransformKind::kIU2};

}  // namespace

double PlanOptimalMaskFraction(const TransformPlan& plan) {
  return 1.0 -
         EvaluateKinds(plan.spec(), plan.kinds()).non_optimal_fraction;
}

Result<PlanSearchResult> SearchTransformPlan(
    const FieldSpec& spec, const PlanSearchOptions& options) {
  if (spec.num_fields() >= 20) {
    return Status::InvalidArgument(
        "mask sweep is 2^n; too many fields for plan search");
  }
  const std::vector<unsigned> small = spec.SmallFields();
  const std::size_t L = small.size();

  // Theory baseline.
  const TransformPlan theory = TransformPlan::Plan(spec, PlanFamily::kIU2);
  Score best_score = EvaluateKinds(spec, theory.kinds());
  std::vector<TransformKind> best_kinds = theory.kinds();
  const double theory_fraction = 1.0 - best_score.non_optimal_fraction;
  std::uint64_t evaluated = 1;

  // 4^L candidate assignments over the small fields.
  double exhaustive_size = 1.0;
  for (std::size_t i = 0; i < L; ++i) exhaustive_size *= 4.0;

  if (exhaustive_size <= static_cast<double>(options.exhaustive_budget)) {
    std::vector<TransformKind> kinds(spec.num_fields(),
                                     TransformKind::kIdentity);
    std::vector<unsigned> digits(L, 0);
    while (true) {
      for (std::size_t i = 0; i < L; ++i) {
        kinds[small[i]] = kAllKinds[digits[i]];
      }
      const Score s = EvaluateKinds(spec, kinds);
      ++evaluated;
      if (s < best_score) {
        best_score = s;
        best_kinds = kinds;
      }
      // Advance the base-4 odometer.
      std::size_t pos = 0;
      while (pos < L && ++digits[pos] == 4) {
        digits[pos] = 0;
        ++pos;
      }
      if (pos == L) break;
      if (L == 0) break;
    }
  } else {
    Xoshiro256 rng(options.seed);
    for (unsigned restart = 0; restart < options.restarts; ++restart) {
      std::vector<TransformKind> current(spec.num_fields(),
                                         TransformKind::kIdentity);
      if (restart == 0) {
        current = theory.kinds();
      } else {
        for (unsigned f : small) {
          current[f] = kAllKinds[rng.NextBounded(4)];
        }
      }
      Score current_score = EvaluateKinds(spec, current);
      ++evaluated;
      for (unsigned sweep = 0; sweep < options.sweeps; ++sweep) {
        bool improved = false;
        for (unsigned f : small) {
          const TransformKind original = current[f];
          TransformKind best_here = original;
          for (TransformKind cand : kAllKinds) {
            if (cand == original) continue;
            current[f] = cand;
            const Score s = EvaluateKinds(spec, current);
            ++evaluated;
            if (s < current_score) {
              current_score = s;
              best_here = cand;
              improved = true;
            }
          }
          current[f] = best_here;
        }
        if (!improved) break;
      }
      if (current_score < best_score) {
        best_score = current_score;
        best_kinds = current;
      }
    }
  }

  auto plan = TransformPlan::Create(spec, best_kinds);
  FXDIST_RETURN_NOT_OK(plan.status());
  PlanSearchResult out{*std::move(plan)};
  out.optimal_mask_fraction = 1.0 - best_score.non_optimal_fraction;
  out.mean_overload = best_score.mean_overload;
  out.plans_evaluated = evaluated;
  out.theory_fraction = theory_fraction;
  return out;
}

}  // namespace fxdist
