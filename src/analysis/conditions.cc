#include "analysis/conditions.h"

#include <optional>

namespace fxdist {

namespace {

/// True when {a, b, c} carry methods {I, U, IU2} (one each), the IU2 field
/// is a genuine IU2 (F^2 < M, otherwise it collapses to IU1 and Lemma 9.1
/// does not apply), and the IU2 field is at least as large as the U field.
bool IsTheorem9Triple(const FieldSpec& spec,
                      const std::vector<TransformKind>& kinds, unsigned a,
                      unsigned b, unsigned c) {
  std::optional<unsigned> id_field, u_field, iu2_field;
  for (unsigned f : {a, b, c}) {
    switch (kinds[f]) {
      case TransformKind::kIdentity:
        if (id_field) return false;
        id_field = f;
        break;
      case TransformKind::kU:
        if (u_field) return false;
        u_field = f;
        break;
      case TransformKind::kIU2:
        if (iu2_field) return false;
        iu2_field = f;
        break;
      case TransformKind::kIU1:
        return false;
    }
  }
  if (!id_field || !u_field || !iu2_field) return false;
  const std::uint64_t f_iu2 = spec.field_size(*iu2_field);
  const std::uint64_t f_u = spec.field_size(*u_field);
  if (f_iu2 * f_iu2 >= spec.num_devices()) return false;
  return f_iu2 >= f_u;
}

}  // namespace

bool FxStrictOptimalSufficient(const FieldSpec& spec,
                               const std::vector<TransformKind>& kinds,
                               const std::vector<unsigned>& unspecified) {
  const std::uint64_t m = spec.num_devices();
  const std::size_t k = unspecified.size();

  // (1) Theorem 1: at most one unspecified field.
  if (k <= 1) return true;

  // (2) Theorem 2: some unspecified field with F >= M.
  for (unsigned f : unspecified) {
    if (spec.field_size(f) >= m) return true;
  }

  // All unspecified fields are small from here on.
  // (3) two unspecified fields with different methods.
  if (k == 2) {
    return AreDifferentMethods(kinds[unspecified[0]], kinds[unspecified[1]]);
  }

  // (4a)/(5a): a pair with F_p * F_q >= M and different methods.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const unsigned p = unspecified[i], q = unspecified[j];
      if (spec.field_size(p) * spec.field_size(q) >= m &&
          AreDifferentMethods(kinds[p], kinds[q])) {
        return true;
      }
    }
  }

  if (k == 3) {
    // (4b) Lemma 9.1: the three methods are I, U, IU2 with the size rule.
    return IsTheorem9Triple(spec, kinds, unspecified[0], unspecified[1],
                            unspecified[2]);
  }

  // (5b) |q(f)| >= 4: some triple with F_i*F_j*F_k >= M that satisfies the
  // I/U/IU2 rule.
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      for (std::size_t l = j + 1; l < k; ++l) {
        const unsigned a = unspecified[i], b = unspecified[j],
                       c = unspecified[l];
        if (spec.field_size(a) * spec.field_size(b) * spec.field_size(c) >=
                m &&
            IsTheorem9Triple(spec, kinds, a, b, c)) {
          return true;
        }
      }
    }
  }
  return false;
}

bool ModuloStrictOptimalSufficient(const FieldSpec& spec,
                                   const std::vector<unsigned>& unspecified) {
  if (unspecified.size() <= 1) return true;
  for (unsigned f : unspecified) {
    if (spec.field_size(f) % spec.num_devices() == 0) return true;
  }
  return false;
}

}  // namespace fxdist
