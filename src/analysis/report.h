// Method comparison reports.
//
// One call that characterizes a distribution method on a file system the
// way §5 of the paper does: strict-optimal query-class fraction, average
// largest response per unspecified-field count, and the address
// computation cycle budget.  Used by the method_matrix bench and the
// examples; kept in the library so downstream users can run the same
// evaluation on their own specs.

#ifndef FXDIST_ANALYSIS_REPORT_H_
#define FXDIST_ANALYSIS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

struct MethodReport {
  std::string method_name;
  /// Fraction of the 2^n unspecified-field classes that are strict
  /// optimal (ground truth; shift-invariant methods use closed forms,
  /// others enumerate the representative query).
  double optimal_class_fraction = 0.0;
  /// avg largest response, indexed by k = number of unspecified fields
  /// (entry 0 = k_min).
  std::vector<double> avg_largest_by_k;
  unsigned k_min = 0;
  /// Modeled MC68000 cycles for one DeviceOf evaluation.
  std::uint64_t address_cycles = 0;
};

struct ReportOptions {
  unsigned k_min = 2;
  unsigned k_max = 0;  ///< 0 = num_fields
  /// Non-shift-invariant methods need one full response enumeration per
  /// mask; refuse specs with more buckets than this.
  std::uint64_t enumeration_budget = std::uint64_t{1} << 22;
};

/// Evaluates `method` on its own spec.
Result<MethodReport> EvaluateMethod(const DistributionMethod& method,
                                    const ReportOptions& options = {});

/// Convenience: build each named method via the registry and evaluate it.
/// Methods that fail to construct for this spec (e.g. "spanning" on a
/// huge bucket space) are skipped.
Result<std::vector<MethodReport>> CompareMethods(
    const FieldSpec& spec, const std::vector<std::string>& method_specs,
    const ReportOptions& options = {});

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_REPORT_H_
