#include "analysis/scheme_search.h"

#include <algorithm>

#include "core/bucket.h"
#include "core/device_map.h"
#include "core/query.h"
#include "core/registry.h"
#include "core/table_dist.h"
#include "util/math.h"

namespace fxdist {

namespace {

/// One query of the exhaustive sweep, pre-resolved to its qualified
/// linear buckets and strict bound.
struct SweepQuery {
  std::vector<std::uint32_t> buckets;
  std::uint64_t bound = 0;
};

Result<std::vector<SweepQuery>> BuildSweep(const FieldSpec& spec,
                                           std::uint64_t max_buckets) {
  if (spec.TotalBuckets() > max_buckets) {
    return Status::InvalidArgument(
        "scheme search is exhaustive and gated to small bucket spaces: " +
        std::to_string(spec.TotalBuckets()) + " buckets > cap " +
        std::to_string(max_buckets));
  }
  const unsigned n = spec.num_fields();
  if (n >= 20) {
    return Status::InvalidArgument("too many fields for the sweep");
  }
  std::vector<SweepQuery> sweep;
  // Every nonempty unspecified set (fully-specified queries hit one
  // bucket — excess 0 by construction), every specified assignment:
  // arbitrary tables are not shift-invariant, so one representative per
  // class is not enough.
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<std::uint64_t> values(n, 0);
    while (true) {
      PartialMatchQuery query(n);
      for (unsigned i = 0; i < n; ++i) {
        if ((mask & (1u << i)) == 0) query.Specify(i, values[i]);
      }
      SweepQuery sq;
      ForEachQualifiedLinear(spec, query, [&sq](std::uint64_t linear) {
        sq.buckets.push_back(static_cast<std::uint32_t>(linear));
        return true;
      });
      sq.bound = CeilDiv(static_cast<std::uint64_t>(sq.buckets.size()),
                         spec.num_devices());
      sweep.push_back(std::move(sq));
      // Odometer over the specified fields.
      unsigned i = n;
      bool advanced = false;
      while (i > 0) {
        --i;
        if ((mask & (1u << i)) != 0) continue;
        if (++values[i] < spec.field_size(i)) {
          advanced = true;
          break;
        }
        values[i] = 0;
      }
      if (!advanced) break;
    }
  }
  return sweep;
}

AllocationScore ScoreOnSweep(const std::vector<SweepQuery>& sweep,
                             std::uint64_t num_devices,
                             const std::vector<std::uint32_t>& table) {
  AllocationScore score;
  score.queries = sweep.size();
  std::vector<std::uint64_t> counts(num_devices);
  for (const SweepQuery& q : sweep) {
    std::fill(counts.begin(), counts.end(), 0);
    for (std::uint32_t b : q.buckets) ++counts[table[b]];
    const std::uint64_t largest =
        *std::max_element(counts.begin(), counts.end());
    const std::uint64_t excess = largest > q.bound ? largest - q.bound : 0;
    score.worst_excess = std::max(score.worst_excess, excess);
    score.total_excess += excess;
  }
  return score;
}

Result<std::vector<std::uint32_t>> TableOfScheme(const FieldSpec& spec,
                                                 const std::string& scheme) {
  auto method = MakeDistribution(spec, scheme);
  FXDIST_RETURN_NOT_OK(method.status());
  std::vector<std::uint32_t> table(spec.TotalBuckets());
  for (std::uint64_t b = 0; b < table.size(); ++b) {
    table[b] = static_cast<std::uint32_t>(
        (*method)->DeviceOf(BucketFromLinear(spec, b)));
  }
  return table;
}

/// Greedy single-bucket-reassignment descent from `table` to a local
/// optimum of (worst, total); mutates `table` and returns its score.
AllocationScore DescendFrom(const std::vector<SweepQuery>& sweep,
                            std::uint64_t m, unsigned max_passes,
                            std::vector<std::uint32_t>& table) {
  AllocationScore best = ScoreOnSweep(sweep, m, table);
  for (unsigned pass = 0; pass < max_passes; ++pass) {
    bool changed = false;
    for (std::uint64_t b = 0; b < table.size(); ++b) {
      const std::uint32_t original = table[b];
      std::uint32_t best_device = original;
      for (std::uint32_t d = 0; d < m; ++d) {
        if (d == original) continue;
        table[b] = d;
        const AllocationScore candidate = ScoreOnSweep(sweep, m, table);
        if (candidate < best) {
          best = candidate;
          best_device = d;
        }
      }
      table[b] = best_device;
      if (best_device != original) changed = true;
    }
    if (!changed) break;
  }
  return best;
}

}  // namespace

Result<AllocationScore> ScoreScheme(const FieldSpec& spec,
                                    const std::string& scheme,
                                    std::uint64_t max_buckets) {
  auto table = TableOfScheme(spec, scheme);
  FXDIST_RETURN_NOT_OK(table.status());
  return ScoreTable(spec, *table, max_buckets);
}

Result<AllocationScore> ScoreTable(const FieldSpec& spec,
                                   const std::vector<std::uint32_t>& table,
                                   std::uint64_t max_buckets) {
  if (table.size() != spec.TotalBuckets()) {
    return Status::InvalidArgument("table size != bucket count");
  }
  auto sweep = BuildSweep(spec, max_buckets);
  FXDIST_RETURN_NOT_OK(sweep.status());
  return ScoreOnSweep(*sweep, spec.num_devices(), table);
}

Result<SchemeSearchResult> SearchAllocation(
    const FieldSpec& spec, const SchemeSearchOptions& options) {
  auto sweep = BuildSweep(spec, options.max_buckets);
  FXDIST_RETURN_NOT_OK(sweep.status());
  auto table = TableOfScheme(spec, options.seed);
  FXDIST_RETURN_NOT_OK(table.status());

  const std::uint64_t m = spec.num_devices();
  SchemeSearchResult result;
  result.seed_score = ScoreOnSweep(*sweep, m, *table);
  result.table = *std::move(table);
  AllocationScore best =
      DescendFrom(*sweep, m, options.max_passes, result.table);

  // The descent only moves downhill, so a seed sitting in a local
  // optimum (FX usually is — it is excellent, just not always optimal)
  // goes nowhere.  Restart from the other closed-form schemes: their
  // basins differ, and descents from a *worse* start routinely end
  // *below* FX's local optimum.  All deterministic, so the search stays
  // reproducible.
  static const char* kRestarts[] = {"modulo", "gdm1", "spanning"};
  for (const char* restart : kRestarts) {
    if (restart == options.seed) continue;
    auto restart_table = TableOfScheme(spec, restart);
    if (!restart_table.ok()) continue;  // scheme inapplicable to spec
    const AllocationScore candidate =
        DescendFrom(*sweep, m, options.max_passes, *restart_table);
    if (candidate < best) {
      best = candidate;
      result.table = *std::move(restart_table);
    }
  }

  result.score = best;
  result.improved = best.worst_excess < result.seed_score.worst_excess;
  auto dist = TableDistribution::Make(spec, result.table);
  FXDIST_RETURN_NOT_OK(dist.status());
  result.spec_string = (*dist)->name();
  return result;
}

Result<std::string> ChooseReshardScheme(const FieldSpec& spec,
                                        const SchemeSearchOptions& options) {
  if (spec.TotalBuckets() > options.max_buckets) {
    // Too large to sweep — FX's closed form is the only honest answer.
    return options.seed;
  }
  auto seed_score = ScoreScheme(spec, options.seed, options.max_buckets);
  FXDIST_RETURN_NOT_OK(seed_score.status());
  if (seed_score->worst_excess == 0) return options.seed;
  auto searched = SearchAllocation(spec, options);
  FXDIST_RETURN_NOT_OK(searched.status());
  if (searched->improved) return searched->spec_string;
  return options.seed;
}

}  // namespace fxdist
