// Expected query cost under the independent-specification model.
//
// The paper's §5 assumes each field is specified independently with equal
// probability.  For a given per-field probability p, every quantity of
// interest is a weighted sum over the 2^n unspecified-field classes
// (weight p^{#spec} (1-p)^{#unspec}), and the per-class largest response
// comes from the closed-form response vectors — so the whole
// "selectivity sweep" is exact and instant.  This generalizes the
// figures' single p = 1/2 point into full curves
// (bench/selectivity_sweep).

#ifndef FXDIST_ANALYSIS_EXPECTATION_H_
#define FXDIST_ANALYSIS_EXPECTATION_H_

#include <cstdint>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

struct ExpectedQueryCost {
  /// E[max_i r_i(q)] — expected largest response (buckets).
  double expected_largest_response = 0.0;
  /// E[|R(q)|] — expected qualified buckets (method-independent).
  double expected_qualified = 0.0;
  /// Expected parallel disk time, E[max r_i] * per-bucket cost.
  double expected_parallel_ms = 0.0;
  /// P(strict optimal) under the same weighting.
  double probability_optimal = 0.0;
};

/// Exact expectation over all query classes for per-field specification
/// probability `specified_probability`.  The method must have a
/// closed-form or enumerable response (all built-ins qualify; see
/// MaskResponse).  `per_bucket_ms` prices a device's bucket access
/// (positioning + transfer; default matches sim/timing.h's disk model).
Result<ExpectedQueryCost> ComputeExpectedCost(
    const DistributionMethod& method, double specified_probability,
    double per_bucket_ms = 30.0);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_EXPECTATION_H_
