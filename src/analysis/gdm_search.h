// GDM multiplier search.
//
// The paper repeatedly notes that GDM's multipliers "can only be found by
// trial and error".  This module is that trial-and-error, systematized: a
// seeded random/coordinate-descent search over odd multipliers scoring a
// candidate by (1) its strict-optimal mask fraction and (2) its average
// largest response, both evaluated with the closed-form additive
// convolution — so each candidate costs O(n * M^2), not a bucket sweep.
//
// It doubles as an honest strengthening of the paper's comparison: the
// Tables 7-9 benches can pit FX against a *searched* GDM rather than only
// the three published multiplier sets.

#ifndef FXDIST_ANALYSIS_GDM_SEARCH_H_
#define FXDIST_ANALYSIS_GDM_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

struct GdmSearchOptions {
  /// Random restarts (each followed by coordinate descent).
  unsigned restarts = 8;
  /// Candidate multipliers are 1..max_multiplier (even values included —
  /// progression tilings of Z_M need them).
  std::uint64_t max_multiplier = 63;
  /// Coordinate-descent sweeps per restart.
  unsigned sweeps = 3;
  std::uint64_t seed = 1;
};

struct GdmSearchResult {
  std::vector<std::uint64_t> multipliers;
  /// Fraction of the 2^n unspecified masks that are strict optimal.
  double optimal_mask_fraction = 0.0;
  /// Mean largest response over all masks, normalized by the optimal
  /// bound (1.0 = perfect).
  double mean_overload = 0.0;
  std::uint64_t candidates_evaluated = 0;
};

/// Searches for good GDM multipliers for `spec`.
Result<GdmSearchResult> SearchGdmMultipliers(
    const FieldSpec& spec, const GdmSearchOptions& options = {});

/// Scores a fixed multiplier vector with the same metric the search uses.
GdmSearchResult ScoreGdmMultipliers(
    const FieldSpec& spec, const std::vector<std::uint64_t>& multipliers);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_GDM_SEARCH_H_
