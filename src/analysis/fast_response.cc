#include "analysis/fast_response.h"

#include <algorithm>
#include <vector>

#include "core/afx.h"
#include "core/gdm.h"
#include "core/modulo.h"
#include "util/math.h"

namespace fxdist {

namespace {

// GCC/Clang extension; suppress -Wpedantic for the typedef only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using Int128 = __int128;
#pragma GCC diagnostic pop

/// In-place Walsh-Hadamard transform (no normalization); size must be a
/// power of two.  Self-inverse up to a factor of size.
void Wht(std::vector<Int128>* a) {
  const std::size_t n = a->size();
  for (std::size_t len = 1; len < n; len <<= 1) {
    for (std::size_t i = 0; i < n; i += len << 1) {
      for (std::size_t j = i; j < i + len; ++j) {
        const Int128 u = (*a)[j];
        const Int128 v = (*a)[j + len];
        (*a)[j] = u + v;
        (*a)[j + len] = u - v;
      }
    }
  }
}

}  // namespace

ResponseVector FxMaskResponse(const FXDistribution& fx,
                              std::uint64_t unspecified_mask) {
  const FieldSpec& spec = fx.spec();
  const std::uint64_t m = spec.num_devices();
  // Start from the delta at device 0 (all specified values zero fold to 0);
  // its WHT is the all-ones vector.
  std::vector<Int128> acc(m, 1);
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (((unspecified_mask >> i) & 1u) == 0) continue;
    std::vector<std::uint64_t> hist = fx.ResidueHistogram(i);
    std::vector<Int128> h(m);
    for (std::uint64_t z = 0; z < m; ++z) {
      h[z] = static_cast<Int128>(hist[z]);
    }
    Wht(&h);
    for (std::uint64_t z = 0; z < m; ++z) acc[z] *= h[z];
  }
  Wht(&acc);
  ResponseVector rv;
  rv.per_device.resize(m);
  for (std::uint64_t z = 0; z < m; ++z) {
    const Int128 count = acc[z] / static_cast<Int128>(m);
    FXDIST_DCHECK(count >= 0);
    FXDIST_DCHECK(acc[z] % static_cast<Int128>(m) == 0);
    rv.per_device[z] = static_cast<std::uint64_t>(count);
  }
  return rv;
}

ResponseVector CyclicMaskResponse(
    const FieldSpec& spec,
    const std::vector<std::vector<std::uint64_t>>& histograms,
    std::uint64_t unspecified_mask) {
  FXDIST_DCHECK(histograms.size() == spec.num_fields());
  const std::uint64_t m = spec.num_devices();
  std::vector<std::uint64_t> acc(m, 0);
  acc[0] = 1;
  std::vector<std::uint64_t> next(m);
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (((unspecified_mask >> i) & 1u) == 0) continue;
    const std::vector<std::uint64_t>& hist = histograms[i];
    FXDIST_DCHECK(hist.size() == m);
    std::fill(next.begin(), next.end(), 0);
    for (std::uint64_t a = 0; a < m; ++a) {
      if (acc[a] == 0) continue;
      for (std::uint64_t b = 0; b < m; ++b) {
        if (hist[b] == 0) continue;
        next[(a + b) % m] += acc[a] * hist[b];
      }
    }
    acc.swap(next);
  }
  ResponseVector rv;
  rv.per_device = std::move(acc);
  return rv;
}

ResponseVector AdditiveMaskResponse(
    const FieldSpec& spec, const std::vector<std::uint64_t>& multipliers,
    std::uint64_t unspecified_mask) {
  FXDIST_DCHECK(multipliers.size() == spec.num_fields());
  const std::uint64_t m = spec.num_devices();
  std::vector<std::vector<std::uint64_t>> histograms(spec.num_fields());
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    histograms[i].assign(m, 0);
    for (std::uint64_t l = 0; l < spec.field_size(i); ++l) {
      ++histograms[i][(multipliers[i] * l) % m];
    }
  }
  return CyclicMaskResponse(spec, histograms, unspecified_mask);
}

namespace {

/// Closed-form dispatch shared by both MaskResponse overloads; returns
/// false when `method` has no closed form.
bool ClosedFormMaskResponse(const DistributionMethod& method,
                            std::uint64_t unspecified_mask,
                            ResponseVector* out) {
  if (const auto* fx = dynamic_cast<const FXDistribution*>(&method)) {
    *out = FxMaskResponse(*fx, unspecified_mask);
    return true;
  }
  if (dynamic_cast<const ModuloDistribution*>(&method) != nullptr) {
    *out = AdditiveMaskResponse(
        method.spec(),
        std::vector<std::uint64_t>(method.spec().num_fields(), 1),
        unspecified_mask);
    return true;
  }
  if (const auto* gdm = dynamic_cast<const GDMDistribution*>(&method)) {
    *out = AdditiveMaskResponse(method.spec(), gdm->multipliers(),
                                unspecified_mask);
    return true;
  }
  if (const auto* afx =
          dynamic_cast<const AdditiveFoldDistribution*>(&method)) {
    std::vector<std::vector<std::uint64_t>> histograms;
    for (unsigned i = 0; i < method.spec().num_fields(); ++i) {
      histograms.push_back(afx->ResidueHistogram(i));
    }
    *out = CyclicMaskResponse(method.spec(), histograms, unspecified_mask);
    return true;
  }
  return false;
}

/// ceil(|R(q)| / M) in 128 bits: |R(q)| can exceed 2^64 (e.g. six
/// 4096-wide fields), even though the per-device counts it divides into
/// still fit in 64 bits.
Int128 MaskStrictBound(const FieldSpec& spec,
                       std::uint64_t unspecified_mask) {
  Int128 qualified = 1;
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if ((unspecified_mask >> i) & 1u) {
      qualified *= static_cast<Int128>(spec.field_size(i));
    }
  }
  const Int128 m = static_cast<Int128>(spec.num_devices());
  return (qualified + m - 1) / m;
}

}  // namespace

ResponseVector MaskResponse(const DistributionMethod& method,
                            std::uint64_t unspecified_mask) {
  ResponseVector rv;
  if (ClosedFormMaskResponse(method, unspecified_mask, &rv)) return rv;
  auto query = PartialMatchQuery::FromUnspecifiedMaskZero(method.spec(),
                                                          unspecified_mask);
  FXDIST_DCHECK(query.ok());
  return ComputeResponseVector(method, *query);
}

ResponseVector MaskResponse(const DeviceMap& map,
                            std::uint64_t unspecified_mask) {
  ResponseVector rv;
  if (ClosedFormMaskResponse(map.method(), unspecified_mask, &rv)) return rv;
  auto query = PartialMatchQuery::FromUnspecifiedMaskZero(map.spec(),
                                                          unspecified_mask);
  FXDIST_DCHECK(query.ok());
  return ComputeResponseVector(map, *query);
}

bool IsMaskStrictOptimal(const DistributionMethod& method,
                         std::uint64_t unspecified_mask) {
  return static_cast<Int128>(MaskResponse(method, unspecified_mask).Max()) <=
         MaskStrictBound(method.spec(), unspecified_mask);
}

bool IsMaskStrictOptimal(const DeviceMap& map,
                         std::uint64_t unspecified_mask) {
  return static_cast<Int128>(MaskResponse(map, unspecified_mask).Max()) <=
         MaskStrictBound(map.spec(), unspecified_mask);
}

}  // namespace fxdist
