// Search-based transformation planning — the paper's stated future work.
//
// §6: "current FX distribution does not guarantee strict optimal
// distribution when the number of parallel devices [is] quite large and
// all field sizes are much smaller ... We are developing more general
// transformation functions to achieve optimal data distribution for much
// larger class of partial match queries."
//
// The theory picks transformations by sufficient conditions; nothing stops
// us from *measuring* instead.  This module searches over per-field
// assignments of {I, U, IU1, IU2}, scoring each candidate plan by its
// ground-truth strict-optimal mask fraction (closed-form WHT response
// vectors, so a candidate costs O(2^n * M log M), not a bucket sweep).
// Small field counts are searched exhaustively (4^L plans); larger ones by
// seeded hill-climbing from the theory plan.
//
// On the paper's own hard regime (Table 9-like: every field far below M)
// the searched plan often strictly beats the round-robin theory plan —
// see bench/ablation_plan_search.

#ifndef FXDIST_ANALYSIS_PLAN_SEARCH_H_
#define FXDIST_ANALYSIS_PLAN_SEARCH_H_

#include <cstdint>

#include "core/field_spec.h"
#include "core/transform.h"
#include "util/status.h"

namespace fxdist {

struct PlanSearchOptions {
  /// Exhaustive search when 4^(small fields) stays within this budget;
  /// hill-climbing otherwise.
  std::uint64_t exhaustive_budget = 1 << 10;
  /// Hill-climbing restarts (first restart seeds from the theory plan).
  unsigned restarts = 4;
  unsigned sweeps = 4;
  std::uint64_t seed = 1;
  /// Weight of each mask: true = uniform over masks (p = 0.5); the
  /// optimal fraction reported is always uniform.
  double specified_probability = 0.5;
};

struct PlanSearchResult {
  TransformPlan plan;
  double optimal_mask_fraction = 0.0;
  /// Mean largest-response overload (1.0 = every mask optimal).
  double mean_overload = 0.0;
  std::uint64_t plans_evaluated = 0;
  /// The theory (round-robin / Theorem 9) plan's fraction, for reference.
  double theory_fraction = 0.0;
};

/// Searches transformation assignments for `spec`.  Fails if n >= 20
/// (the mask sweep is 2^n).
Result<PlanSearchResult> SearchTransformPlan(
    const FieldSpec& spec, const PlanSearchOptions& options = {});

/// Scores one plan with the search's metric (uniform mask weighting).
double PlanOptimalMaskFraction(const TransformPlan& plan);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_PLAN_SEARCH_H_
