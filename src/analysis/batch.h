// Batch partial-match analysis: shared bucket fetches.
//
// Real workloads issue query *batches*; overlapping queries qualify the
// same buckets, and a device only needs to fetch each bucket once per
// batch.  The per-device cost of a batch is therefore the size of the
// *union* of its queries' device shares, not the sum.  This module
// computes those unions and the resulting balance — declustering quality
// has to hold up for unions too, which no single-query theorem speaks to
// (another place where measurement complements the paper's §4 theory).

#ifndef FXDIST_ANALYSIS_BATCH_H_
#define FXDIST_ANALYSIS_BATCH_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/device_map.h"
#include "core/distribution.h"
#include "core/query.h"
#include "util/status.h"

namespace fxdist {

/// A shared-scan plan for one device and a batch of hashed queries: each
/// distinct qualified bucket the device owns appears once, tagged with
/// every query it serves, so an executor makes exactly one pass per
/// bucket.  This is the cost model of AnalyzeBatch turned into an
/// executable schedule.
struct DeviceBatchPlan {
  /// Distinct qualified linear bucket ids on this device, in first-touch
  /// order (query 0's enumeration order, then query 1's new buckets, ...).
  std::vector<std::uint64_t> scan_buckets;
  /// scan_queries[s] — indices of the batch queries bucket s qualifies
  /// for, in batch order.
  std::vector<std::vector<std::uint32_t>> scan_queries;
  /// query_slots[q] — q's qualified buckets as (scan index, slot within
  /// scan_queries[scan]) pairs, in q's own ForEachQualifiedBucketOnDevice
  /// enumeration order.  |query_slots[q]| is the paper's r_device(q), and
  /// walking it reproduces the exact record order of a solo execution.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      query_slots;
  /// Sum over queries of their qualified-bucket count here (the
  /// no-sharing cost; >= scan_buckets.size()).
  std::uint64_t bucket_requests = 0;
  /// qualified_counts[q] — q's full qualified-bucket count on this
  /// device, the paper's r_device(q).  Equal to |query_slots[q]| unless a
  /// live-bucket filter excluded dead buckets from the scan list: solo
  /// Execute counts empty buckets too, so executors must report this,
  /// not the slot count.
  std::vector<std::uint64_t> qualified_counts;
};

/// Builds the shared-scan plan of `batch` on `device`.  Every query must
/// have the spec's arity (enforced by the callers' validation; violations
/// are undefined).  Cost: one qualified-bucket enumeration per query.
DeviceBatchPlan PlanDeviceBatch(const DistributionMethod& method,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t device);

/// Same plan through the cached placement plane: enumeration goes through
/// DeviceMap's strategy selection (no virtual DeviceOf per bucket) and
/// hands out linear ids directly.  Identical output to the method form.
DeviceBatchPlan PlanDeviceBatch(const DeviceMap& map,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t device);

/// Live-filtered plan for sparse bucket spaces (|R(q)| far beyond the
/// live buckets, e.g. grown dynamic directories): only buckets
/// `live(linear)` approves get scan entries — dead buckets carry no
/// records, so skipping them cannot change results — while
/// qualified_counts still counts every qualified bucket, preserving solo
/// accounting.  Dedup always goes through a hash map sized by what the
/// batch enumerates, never a TotalBuckets-sized table, and `live` runs
/// once per distinct bucket.
DeviceBatchPlan PlanDeviceBatch(const DeviceMap& map,
                                const std::vector<PartialMatchQuery>& batch,
                                std::uint64_t device,
                                const std::function<bool(std::uint64_t)>& live);

struct BatchStats {
  /// Sum over queries of |R(q)| — the no-sharing cost.
  std::uint64_t total_bucket_requests = 0;
  /// |union of R(q)| — what actually has to be fetched.
  std::uint64_t distinct_buckets = 0;
  /// Distinct buckets per device.
  std::vector<std::uint64_t> distinct_per_device;
  std::uint64_t largest_device_share = 0;
  /// requests / distinct (>= 1; higher = more sharing exploited).
  double sharing_factor = 1.0;
  /// Is the union spread within ceil(distinct / M) per device?
  bool balanced = false;
};

/// Analyzes a batch against `method`.  Enumerates each query's qualified
/// buckets; refuses batches whose total enumeration exceeds `budget`.
Result<BatchStats> AnalyzeBatch(
    const DistributionMethod& method,
    const std::vector<PartialMatchQuery>& batch,
    std::uint64_t budget = std::uint64_t{1} << 24);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_BATCH_H_
