// Batch partial-match analysis: shared bucket fetches.
//
// Real workloads issue query *batches*; overlapping queries qualify the
// same buckets, and a device only needs to fetch each bucket once per
// batch.  The per-device cost of a batch is therefore the size of the
// *union* of its queries' device shares, not the sum.  This module
// computes those unions and the resulting balance — declustering quality
// has to hold up for unions too, which no single-query theorem speaks to
// (another place where measurement complements the paper's §4 theory).

#ifndef FXDIST_ANALYSIS_BATCH_H_
#define FXDIST_ANALYSIS_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/distribution.h"
#include "core/query.h"
#include "util/status.h"

namespace fxdist {

struct BatchStats {
  /// Sum over queries of |R(q)| — the no-sharing cost.
  std::uint64_t total_bucket_requests = 0;
  /// |union of R(q)| — what actually has to be fetched.
  std::uint64_t distinct_buckets = 0;
  /// Distinct buckets per device.
  std::vector<std::uint64_t> distinct_per_device;
  std::uint64_t largest_device_share = 0;
  /// requests / distinct (>= 1; higher = more sharing exploited).
  double sharing_factor = 1.0;
  /// Is the union spread within ceil(distinct / M) per device?
  bool balanced = false;
};

/// Analyzes a batch against `method`.  Enumerates each query's qualified
/// buckets; refuses batches whose total enumeration exceeds `budget`.
Result<BatchStats> AnalyzeBatch(
    const DistributionMethod& method,
    const std::vector<PartialMatchQuery>& batch,
    std::uint64_t budget = std::uint64_t{1} << 24);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_BATCH_H_
