// Probability of strict optimality over the space of partial match queries
// (paper §5.1, Figures 1-4).
//
// Following the paper, each field is specified independently with the same
// probability; the default 0.5 weights all 2^n unspecified-field sets
// equally (which is what "percentage of strict optimal distribution for
// all possible partial match queries" counts).  Two evaluation modes:
//
//  * Analytic  — per unspecified set, ask a sufficient-condition predicate
//                (exactly how the paper computed its figures).
//  * Empirical — per unspecified set, run the exhaustive checker on a
//                shift-invariant method (ground truth; can only be *higher*
//                than the analytic number since conditions are sufficient,
//                not necessary).

#ifndef FXDIST_ANALYSIS_PROBABILITY_H_
#define FXDIST_ANALYSIS_PROBABILITY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/distribution.h"
#include "core/field_spec.h"
#include "core/transform.h"

namespace fxdist {

struct OptimalityProbability {
  /// Probability-weighted fraction of strict-optimal queries.
  double probability = 0.0;
  /// Unweighted counts of unspecified-field sets (masks).
  std::uint64_t optimal_masks = 0;
  std::uint64_t total_masks = 0;
};

/// Decides optimality per unspecified-field set.
using MaskPredicate =
    std::function<bool(const std::vector<unsigned>& unspecified)>;

/// Sweeps all 2^n unspecified-field sets, weighting each by
/// p^{#specified} * (1-p)^{#unspecified} with p = `specified_probability`.
OptimalityProbability OptimalityProbabilityOver(
    const FieldSpec& spec, const MaskPredicate& is_optimal,
    double specified_probability = 0.5);

/// Analytic FX probability from the §4.2 sufficient conditions.
OptimalityProbability FxAnalyticOptimality(
    const FieldSpec& spec, const std::vector<TransformKind>& kinds,
    double specified_probability = 0.5);

/// Analytic Modulo probability from the DuSo82 sufficient condition.
OptimalityProbability ModuloAnalyticOptimality(
    const FieldSpec& spec, double specified_probability = 0.5);

/// Ground truth for a shift-invariant method by exhaustive checking of one
/// representative query per unspecified set.
OptimalityProbability EmpiricalOptimality(const DistributionMethod& method,
                                          double specified_probability = 0.5);

/// Monte Carlo estimate over fully random queries (each field specified
/// with probability p, specified values uniform).  The only general
/// option for methods that are neither shift-invariant nor closed-form,
/// and a sampling cross-check for the exact calculators.  Each sampled
/// query is evaluated by enumeration; queries with |R(q)| above
/// `per_query_budget` are rejected with an error (choose a smaller spec
/// or budget accordingly).
Result<OptimalityProbability> MonteCarloOptimality(
    const DistributionMethod& method, std::uint64_t samples,
    std::uint64_t seed, double specified_probability = 0.5,
    std::uint64_t per_query_budget = std::uint64_t{1} << 22);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_PROBABILITY_H_
