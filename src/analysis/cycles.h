// CPU cost model for bucket address computation (paper §5.2.2).
//
// In main-memory databases the per-bucket device computation (and its
// inverse mapping) dominates, so the paper compares instruction-cycle
// budgets on an MC68000: XOR 8 cycles, ADD 4, AND 4, n-bit shift 6 + 2n,
// MUL 70.  FX needs only XOR/shift/AND (all multipliers are powers of
// two); Modulo needs ADD/AND; GDM needs genuine multiplies because its
// multipliers are odd/prime.  The model reproduces the paper's claim that
// FX costs about one third of GDM.

#ifndef FXDIST_ANALYSIS_CYCLES_H_
#define FXDIST_ANALYSIS_CYCLES_H_

#include <cstdint>
#include <string>

#include "core/distribution.h"

namespace fxdist {

/// Per-operation cycle costs.  Defaults are the paper's MC68000 numbers.
struct CycleModel {
  std::uint64_t xor_cycles = 8;
  std::uint64_t add_cycles = 4;
  std::uint64_t and_cycles = 4;
  std::uint64_t mul_cycles = 70;
  std::uint64_t shift_base_cycles = 6;
  std::uint64_t shift_per_bit_cycles = 2;

  std::uint64_t ShiftCost(unsigned bits) const {
    return shift_base_cycles + shift_per_bit_cycles * bits;
  }
};

/// Operation counts + modeled cycles for computing one bucket's device
/// number.
struct AddressComputationCost {
  std::string method_name;
  std::uint64_t xors = 0;
  std::uint64_t adds = 0;
  std::uint64_t ands = 0;
  std::uint64_t muls = 0;
  std::uint64_t shifts = 0;        ///< count of shift instructions
  std::uint64_t shift_cycles = 0;  ///< their total cycle cost
  std::uint64_t total_cycles = 0;
};

/// Statically analyses `method` (FX / Modulo / GDM) and prices one
/// DeviceOf() evaluation under `model`.  Unknown method types are priced
/// pessimistically as GDM-style multiply-accumulate.
AddressComputationCost EstimateAddressCost(const DistributionMethod& method,
                                           const CycleModel& model = {});

/// Named presets.  MC68000 is the paper's table; the 80286 numbers are
/// the contemporary Intel costs the paper says give "almost similar"
/// ratios; the modern preset reflects a pipelined core where
/// multiplication is cheap — under it GDM's §5.2.2 penalty disappears.
CycleModel Mc68000CycleModel();
CycleModel I80286CycleModel();
CycleModel ModernCycleModel();

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_CYCLES_H_
