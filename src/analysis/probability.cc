#include "analysis/probability.h"

#include <cmath>

#include "analysis/conditions.h"
#include "analysis/optimality.h"
#include "util/random.h"
#include "util/status.h"

namespace fxdist {

OptimalityProbability OptimalityProbabilityOver(
    const FieldSpec& spec, const MaskPredicate& is_optimal,
    double specified_probability) {
  const unsigned n = spec.num_fields();
  FXDIST_DCHECK(n < 64);
  const double p = specified_probability;
  OptimalityProbability out;
  double weight_sum = 0.0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    std::vector<unsigned> unspecified;
    for (unsigned i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) unspecified.push_back(i);
    }
    const auto k = static_cast<double>(unspecified.size());
    const double weight =
        std::pow(p, static_cast<double>(n) - k) * std::pow(1.0 - p, k);
    weight_sum += weight;
    ++out.total_masks;
    if (is_optimal(unspecified)) {
      ++out.optimal_masks;
      out.probability += weight;
    }
  }
  if (weight_sum > 0) out.probability /= weight_sum;
  return out;
}

OptimalityProbability FxAnalyticOptimality(
    const FieldSpec& spec, const std::vector<TransformKind>& kinds,
    double specified_probability) {
  return OptimalityProbabilityOver(
      spec,
      [&](const std::vector<unsigned>& unspecified) {
        return FxStrictOptimalSufficient(spec, kinds, unspecified);
      },
      specified_probability);
}

OptimalityProbability ModuloAnalyticOptimality(const FieldSpec& spec,
                                               double specified_probability) {
  return OptimalityProbabilityOver(
      spec,
      [&](const std::vector<unsigned>& unspecified) {
        return ModuloStrictOptimalSufficient(spec, unspecified);
      },
      specified_probability);
}

Result<OptimalityProbability> MonteCarloOptimality(
    const DistributionMethod& method, std::uint64_t samples,
    std::uint64_t seed, double specified_probability,
    std::uint64_t per_query_budget) {
  const FieldSpec& spec = method.spec();
  if (samples == 0) {
    return Status::InvalidArgument("need at least one sample");
  }
  if (specified_probability < 0.0 || specified_probability > 1.0) {
    return Status::InvalidArgument("probability must be in [0, 1]");
  }
  Xoshiro256 rng(seed);
  OptimalityProbability out;
  std::uint64_t optimal = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    PartialMatchQuery query(spec.num_fields());
    std::uint64_t qualified = 1;
    for (unsigned i = 0; i < spec.num_fields(); ++i) {
      if (rng.NextBool(specified_probability)) {
        query.Specify(i, rng.NextBounded(spec.field_size(i)));
      } else {
        qualified *= spec.field_size(i);
      }
    }
    if (qualified > per_query_budget) {
      return Status::InvalidArgument(
          "sampled query exceeds the per-query enumeration budget");
    }
    ++out.total_masks;
    if (IsStrictOptimal(method, query)) {
      ++optimal;
      ++out.optimal_masks;
    }
  }
  out.probability =
      static_cast<double>(optimal) / static_cast<double>(samples);
  return out;
}

OptimalityProbability EmpiricalOptimality(const DistributionMethod& method,
                                          double specified_probability) {
  const FieldSpec& spec = method.spec();
  FXDIST_DCHECK(method.IsShiftInvariant());
  return OptimalityProbabilityOver(
      spec,
      [&](const std::vector<unsigned>& unspecified) {
        std::uint64_t mask = 0;
        for (unsigned f : unspecified) mask |= (std::uint64_t{1} << f);
        auto query = PartialMatchQuery::FromUnspecifiedMaskZero(spec, mask);
        FXDIST_DCHECK(query.ok());
        return IsStrictOptimal(method, *query);
      },
      specified_probability);
}

}  // namespace fxdist
