// Load-balance statistics over per-device counts.
//
// Bucket-level optimality (the paper's metric) assumes each bucket holds
// comparable data.  Real data skews: hot values pile records into a few
// buckets, and no bucket-to-device map can split a single hot bucket.
// These statistics quantify the resulting device imbalance for any count
// vector — records per device, qualified buckets per device, busy time
// per device — so the examples and benches can report balance uniformly.

#ifndef FXDIST_ANALYSIS_BALANCE_H_
#define FXDIST_ANALYSIS_BALANCE_H_

#include <cstdint>
#include <vector>

namespace fxdist {

struct BalanceReport {
  std::uint64_t devices = 0;
  std::uint64_t total = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  /// Coefficient of variation (stddev / mean); 0 = perfectly even.
  double cv = 0.0;
  /// max / mean; 1 = perfectly even.  The parallel-response multiplier.
  double peak_over_mean = 0.0;
  /// Gini coefficient in [0, 1); 0 = perfectly even.
  double gini = 0.0;
};

/// Computes the report for any per-device count vector.
BalanceReport AnalyzeBalance(const std::vector<std::uint64_t>& counts);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_BALANCE_H_
