// Scheme search beyond FX.
//
// The paper's FX allocation is strictly optimal for broad classes of
// (field sizes, M), but not for every M — Doerr/Hebbinghaus/Werth's
// declustering discrepancy bounds (PAPERS.md) prove gaps for general
// device counts.  When live resharding changes M, the new M may be one
// FX does not serve optimally; this module searches for an explicit
// allocation (core/table_dist) that beats it.
//
// The objective is the paper's own yardstick: worst-case *excess*
// response over all partial match queries,
//
//     max_q ( L(q) − ceil(|R(q)| / M) ),
//
// i.e. how far the largest per-device response sits above the strict
// optimal bound; 0 means strictly optimal on every query.  The sweep is
// exhaustive over every query (all unspecified-field subsets, all
// specified values), so it is honest for arbitrary tables — which are
// not shift-invariant — and therefore gated to small bucket spaces.
//
// Search: greedy local descent — repeated passes reassigning single
// buckets to the device that lexicographically improves (worst excess,
// total excess) until a fixed point — run from the seed scheme (FX by
// default) and restarted from the other closed-form schemes (modulo,
// GDM, spanning), keeping the best local optimum.  FX is usually itself
// a local optimum, so the restarts are what actually find the
// improvements.  Deterministic: no randomness, stable tie-breaks.

#ifndef FXDIST_ANALYSIS_SCHEME_SEARCH_H_
#define FXDIST_ANALYSIS_SCHEME_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// (worst, total) excess of an allocation over the exhaustive query
/// sweep; compared lexicographically.
struct AllocationScore {
  std::uint64_t worst_excess = 0;
  std::uint64_t total_excess = 0;
  std::uint64_t queries = 0;

  friend bool operator<(const AllocationScore& a, const AllocationScore& b) {
    if (a.worst_excess != b.worst_excess) {
      return a.worst_excess < b.worst_excess;
    }
    return a.total_excess < b.total_excess;
  }
};

struct SchemeSearchOptions {
  /// Registry spec string of the starting allocation.
  std::string seed = "fx";
  /// Full single-bucket-reassignment passes before giving up.
  unsigned max_passes = 16;
  /// Refuse bucket spaces larger than this (the sweep is exhaustive).
  std::uint64_t max_buckets = 4096;
};

struct SchemeSearchResult {
  /// The searched allocation, one device per linear bucket.
  std::vector<std::uint32_t> table;
  /// Registry spec string ("table:<csv>") of `table`.
  std::string spec_string;
  AllocationScore score;
  /// The seed scheme's score on the same sweep.
  AllocationScore seed_score;
  /// True iff the search strictly beat the seed's worst-case excess.
  bool improved = false;
};

/// Scores a registry scheme on the exhaustive sweep.
Result<AllocationScore> ScoreScheme(const FieldSpec& spec,
                                    const std::string& scheme,
                                    std::uint64_t max_buckets = 4096);

/// Scores an explicit table on the exhaustive sweep.
Result<AllocationScore> ScoreTable(const FieldSpec& spec,
                                   const std::vector<std::uint32_t>& table,
                                   std::uint64_t max_buckets = 4096);

/// Runs the local search (see file comment).
Result<SchemeSearchResult> SearchAllocation(
    const FieldSpec& spec, const SchemeSearchOptions& options = {});

/// The resharding hook: the scheme a migration onto `spec` should use.
/// Returns the seed scheme when it is already excess-0 (FX optimal at
/// this M) or when the search cannot beat it; otherwise the searched
/// "table:<csv>" allocation.
Result<std::string> ChooseReshardScheme(
    const FieldSpec& spec, const SchemeSearchOptions& options = {});

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_SCHEME_SEARCH_H_
