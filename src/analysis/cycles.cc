#include "analysis/cycles.h"

#include "core/afx.h"
#include "core/fx.h"
#include "core/gdm.h"
#include "core/modulo.h"
#include "util/bitops.h"

namespace fxdist {

namespace {

void AddTransformOps(const FieldTransform& t, const CycleModel& model,
                     AddressComputationCost* cost) {
  switch (t.kind()) {
    case TransformKind::kIdentity:
      break;
    case TransformKind::kU:
      ++cost->shifts;
      cost->shift_cycles += model.ShiftCost(Log2Exact(t.d1()));
      break;
    case TransformKind::kIU1:
      ++cost->shifts;
      cost->shift_cycles += model.ShiftCost(Log2Exact(t.d1()));
      ++cost->xors;
      break;
    case TransformKind::kIU2:
      ++cost->shifts;
      cost->shift_cycles += model.ShiftCost(Log2Exact(t.d1()));
      ++cost->xors;
      if (t.d2() != 0) {
        ++cost->shifts;
        cost->shift_cycles += model.ShiftCost(Log2Exact(t.d2()));
        ++cost->xors;
      }
      break;
  }
}

void Finalize(AddressComputationCost* cost, const CycleModel& model) {
  cost->total_cycles = cost->xors * model.xor_cycles +
                       cost->adds * model.add_cycles +
                       cost->ands * model.and_cycles +
                       cost->muls * model.mul_cycles + cost->shift_cycles;
}

AddressComputationCost CostForFx(const FXDistribution& fx,
                                 const CycleModel& model) {
  AddressComputationCost cost;
  const FieldSpec& spec = fx.spec();
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    AddTransformOps(fx.plan().transform(i), model, &cost);
  }
  // Fold the n transformed values with n-1 XORs, then T_M as one AND.
  cost.xors += spec.num_fields() - 1;
  cost.ands += 1;
  Finalize(&cost, model);
  return cost;
}

AddressComputationCost CostForAfx(const AdditiveFoldDistribution& afx,
                                  const CycleModel& model) {
  AddressComputationCost cost;
  const FieldSpec& spec = afx.spec();
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    AddTransformOps(afx.plan().transform(i), model, &cost);
  }
  // Additive fold: n-1 ADDs; mod M is one AND (M is a power of two).
  cost.adds += spec.num_fields() - 1;
  cost.ands += 1;
  Finalize(&cost, model);
  return cost;
}

AddressComputationCost CostForModulo(const ModuloDistribution& modulo,
                                     const CycleModel& model) {
  AddressComputationCost cost;
  // n-1 ADDs, then mod M as one AND (M is a power of two).
  cost.adds = modulo.spec().num_fields() - 1;
  cost.ands = 1;
  Finalize(&cost, model);
  return cost;
}

AddressComputationCost CostForGdm(const GDMDistribution& gdm,
                                  const CycleModel& model) {
  AddressComputationCost cost;
  // One MUL per field (multipliers are odd/prime: no shift substitution),
  // n-1 ADDs, mod M as one AND.
  cost.muls = gdm.spec().num_fields();
  cost.adds = gdm.spec().num_fields() - 1;
  cost.ands = 1;
  Finalize(&cost, model);
  return cost;
}

}  // namespace

CycleModel Mc68000CycleModel() { return CycleModel{}; }

CycleModel I80286CycleModel() {
  CycleModel model;
  model.xor_cycles = 2;
  model.add_cycles = 2;
  model.and_cycles = 2;
  model.mul_cycles = 21;  // IMUL r16
  model.shift_base_cycles = 5;
  model.shift_per_bit_cycles = 1;
  return model;
}

CycleModel ModernCycleModel() {
  CycleModel model;
  model.xor_cycles = 1;
  model.add_cycles = 1;
  model.and_cycles = 1;
  model.mul_cycles = 3;  // pipelined integer multiply
  model.shift_base_cycles = 1;
  model.shift_per_bit_cycles = 0;  // barrel shifter
  return model;
}

AddressComputationCost EstimateAddressCost(const DistributionMethod& method,
                                           const CycleModel& model) {
  AddressComputationCost cost;
  if (const auto* fx = dynamic_cast<const FXDistribution*>(&method)) {
    cost = CostForFx(*fx, model);
  } else if (const auto* afx =
                 dynamic_cast<const AdditiveFoldDistribution*>(&method)) {
    cost = CostForAfx(*afx, model);
  } else if (const auto* modulo =
                 dynamic_cast<const ModuloDistribution*>(&method)) {
    cost = CostForModulo(*modulo, model);
  } else if (const auto* gdm =
                 dynamic_cast<const GDMDistribution*>(&method)) {
    cost = CostForGdm(*gdm, model);
  } else {
    // Unknown method: price as multiply-accumulate.
    cost.muls = method.spec().num_fields();
    cost.adds = method.spec().num_fields() - 1;
    cost.ands = 1;
    Finalize(&cost, model);
  }
  cost.method_name = method.name();
  return cost;
}

}  // namespace fxdist
