#include "analysis/report.h"

#include <algorithm>
#include <optional>

#include "analysis/cycles.h"
#include "analysis/fast_response.h"
#include "analysis/optimality.h"
#include "core/registry.h"
#include "util/math.h"

namespace fxdist {

Result<MethodReport> EvaluateMethod(const DistributionMethod& method,
                                    const ReportOptions& options) {
  const FieldSpec& spec = method.spec();
  const unsigned n = spec.num_fields();
  if (n >= 20) {
    return Status::InvalidArgument("mask sweep is 2^n; too many fields");
  }
  if (!method.IsShiftInvariant() &&
      spec.TotalBuckets() > options.enumeration_budget) {
    return Status::InvalidArgument(
        method.name() +
        " is not shift-invariant and the bucket space exceeds the "
        "enumeration budget");
  }

  MethodReport report;
  report.method_name = method.name();
  report.address_cycles = EstimateAddressCost(method).total_cycles;
  report.k_min = options.k_min;
  const unsigned k_max =
      options.k_max == 0 ? n : std::min(options.k_max, n);

  // Non-shift-invariant methods have no closed-form mask response, so
  // every mask below enumerates the bucket space.  Pay one placement-
  // plane build up front (the space fits the budget — checked above) and
  // the sweeps become table lookups.  Shift-invariant methods never
  // enumerate, so skip the build; their space may be astronomically
  // larger than any table anyway.
  std::optional<DeviceMap> map;
  if (!method.IsShiftInvariant()) {
    map.emplace(method, options.enumeration_budget);
  }
  const auto mask_response = [&](std::uint64_t mask) {
    return map ? MaskResponse(*map, mask) : MaskResponse(method, mask);
  };
  const auto mask_optimal = [&](std::uint64_t mask) {
    return map ? IsMaskStrictOptimal(*map, mask)
               : IsMaskStrictOptimal(method, mask);
  };

  // Optimal-class fraction over all masks.  For non-shift-invariant
  // methods this is the zero-specified representative — an optimistic
  // proxy, which is fine for a comparison table (noted in the bench).
  std::uint64_t optimal = 0;
  const std::uint64_t total_masks = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < total_masks; ++mask) {
    if (mask_optimal(mask)) ++optimal;
  }
  report.optimal_class_fraction =
      static_cast<double>(optimal) / static_cast<double>(total_masks);

  for (unsigned k = options.k_min; k <= k_max; ++k) {
    double sum = 0.0;
    std::uint64_t subsets = 0;
    ForEachSubsetOfSize(n, k, [&](const std::vector<unsigned>& subset) {
      std::uint64_t mask = 0;
      for (unsigned f : subset) mask |= std::uint64_t{1} << f;
      sum += static_cast<double>(mask_response(mask).Max());
      ++subsets;
      return true;
    });
    report.avg_largest_by_k.push_back(
        subsets == 0 ? 0.0 : sum / static_cast<double>(subsets));
  }
  return report;
}

Result<std::vector<MethodReport>> CompareMethods(
    const FieldSpec& spec, const std::vector<std::string>& method_specs,
    const ReportOptions& options) {
  std::vector<MethodReport> out;
  for (const std::string& name : method_specs) {
    auto method = MakeDistribution(spec, name);
    if (!method.ok()) continue;  // e.g. spanning on a huge space
    auto report = EvaluateMethod(**method, options);
    if (!report.ok()) continue;
    out.push_back(*std::move(report));
  }
  if (out.empty()) {
    return Status::InvalidArgument("no method evaluable on " +
                                   spec.ToString());
  }
  return out;
}

}  // namespace fxdist
