#include "analysis/range_sweep.h"

#include <string>

#include "util/math.h"

namespace fxdist {

Result<RangePartial> AnalyzeBucketRange(const DeviceMap& map,
                                        std::uint64_t unspecified_mask,
                                        std::uint64_t start,
                                        std::uint64_t end) {
  const FieldSpec& spec = map.spec();
  const unsigned n = spec.num_fields();
  if (n < 64 && (unspecified_mask >> n) != 0) {
    return Status::InvalidArgument("unspecified mask has bits beyond field " +
                                   std::to_string(n - 1));
  }
  const std::uint64_t total = spec.TotalBuckets();
  if (start > end || end > total) {
    return Status::InvalidArgument(
        "bucket range [" + std::to_string(start) + ", " + std::to_string(end) +
        ") outside [0, " + std::to_string(total) + ")");
  }

  // Row-major strides, field 0 most significant — the linear-id layout
  // every enumeration in the repo shares (see ForEachQualifiedLinear).
  std::vector<std::uint64_t> stride(n);
  std::uint64_t s = 1;
  for (unsigned i = n; i > 0;) {
    --i;
    stride[i] = s;
    s *= spec.field_size(i);
  }
  std::vector<unsigned> specified;
  for (unsigned i = 0; i < n; ++i) {
    if (((unspecified_mask >> i) & 1u) == 0) specified.push_back(i);
  }

  RangePartial out;
  out.per_device.assign(spec.num_devices(), 0);
  for (std::uint64_t linear = start; linear < end; ++linear) {
    bool qualifies = true;
    for (const unsigned f : specified) {
      if ((linear / stride[f]) % spec.field_size(f) != 0) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    ++out.qualified;
    ++out.per_device[map.DeviceOfLinear(linear)];
  }
  return out;
}

Status MergeRangePartial(RangePartial* into, const RangePartial& part) {
  if (into->per_device.empty()) {
    *into = part;
    return Status::OK();
  }
  if (into->per_device.size() != part.per_device.size()) {
    return Status::InvalidArgument(
        "cannot merge partials over " + std::to_string(part.per_device.size()) +
        " devices into " + std::to_string(into->per_device.size()));
  }
  for (std::size_t i = 0; i < part.per_device.size(); ++i) {
    into->per_device[i] += part.per_device[i];
  }
  into->qualified += part.qualified;
  return Status::OK();
}

Result<MaskSweepStats> FinalizeMaskSweep(const FieldSpec& spec,
                                         std::uint64_t unspecified_mask,
                                         const RangePartial& merged) {
  // Closed form for |R(q)|: product of the unspecified field sizes.  A
  // merge that lost or double-counted a range cannot match it.
  std::uint64_t expect = 1;
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if ((unspecified_mask >> i) & 1u) expect *= spec.field_size(i);
  }
  if (merged.qualified != expect) {
    return Status::DataLoss("merged sweep of mask " +
                            std::to_string(unspecified_mask) + " covered " +
                            std::to_string(merged.qualified) +
                            " qualified buckets, expected " +
                            std::to_string(expect));
  }
  MaskSweepStats stats;
  stats.unspecified_mask = unspecified_mask;
  stats.response.per_device = merged.per_device;
  stats.qualified = merged.qualified;
  stats.bound = CeilDiv(merged.qualified, spec.num_devices());
  const std::uint64_t max = stats.response.Max();
  stats.worst_excess = max > stats.bound ? max - stats.bound : 0;
  stats.strict_optimal = stats.worst_excess == 0;
  return stats;
}

OptimalityProbability SweepOptimality(const FieldSpec& spec,
                                      const std::vector<MaskSweepStats>& masks,
                                      double specified_probability) {
  const unsigned n = spec.num_fields();
  OptimalityProbability out;
  out.total_masks = std::uint64_t{1} << n;
  for (const MaskSweepStats& stats : masks) {
    if (!stats.strict_optimal) continue;
    ++out.optimal_masks;
    double weight = 1.0;
    for (unsigned i = 0; i < n; ++i) {
      weight *= ((stats.unspecified_mask >> i) & 1u)
                    ? (1.0 - specified_probability)
                    : specified_probability;
    }
    out.probability += weight;
  }
  return out;
}

AllocationScore SweepScore(const FieldSpec& spec,
                           const std::vector<MaskSweepStats>& masks) {
  AllocationScore score;
  for (const MaskSweepStats& stats : masks) {
    // One representative stands for every specified-value combination —
    // identical excess under shift invariance.
    std::uint64_t multiplicity = 1;
    for (unsigned i = 0; i < spec.num_fields(); ++i) {
      if (((stats.unspecified_mask >> i) & 1u) == 0) {
        multiplicity *= spec.field_size(i);
      }
    }
    score.queries += multiplicity;
    score.total_excess += multiplicity * stats.worst_excess;
    if (stats.worst_excess > score.worst_excess) {
      score.worst_excess = stats.worst_excess;
    }
  }
  return score;
}

}  // namespace fxdist
