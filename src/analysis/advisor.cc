#include "analysis/advisor.h"

#include <algorithm>

#include "analysis/cycles.h"
#include "core/registry.h"

namespace fxdist {

Result<MethodRecommendation> RecommendMethod(
    const FieldSpec& spec, double specified_probability,
    std::vector<std::string> candidates) {
  if (candidates.empty()) candidates = KnownDistributionNames();

  MethodRecommendation out;
  for (const std::string& name : candidates) {
    auto method = MakeDistribution(spec, name);
    if (!method.ok()) continue;
    auto cost = ComputeExpectedCost(**method, specified_probability);
    if (!cost.ok()) continue;
    CandidateEvaluation eval;
    eval.method_spec = name;
    eval.cost = *cost;
    eval.address_cycles = EstimateAddressCost(**method).total_cycles;
    out.ranking.push_back(std::move(eval));
  }
  if (out.ranking.empty()) {
    return Status::InvalidArgument("no candidate evaluable on " +
                                   spec.ToString());
  }
  std::stable_sort(out.ranking.begin(), out.ranking.end(),
                   [](const CandidateEvaluation& a,
                      const CandidateEvaluation& b) {
                     if (a.cost.expected_largest_response !=
                         b.cost.expected_largest_response) {
                       return a.cost.expected_largest_response <
                              b.cost.expected_largest_response;
                     }
                     return a.address_cycles < b.address_cycles;
                   });
  out.recommended = out.ranking.front().method_spec;
  return out;
}

}  // namespace fxdist
