#include "analysis/gdm_search.h"

#include <algorithm>

#include "analysis/fast_response.h"
#include "util/math.h"
#include "util/random.h"

namespace fxdist {

namespace {

/// Lower score is better: primary = non-optimal mask fraction, secondary =
/// mean overload.  Packed as a pair for lexicographic comparison.
struct Score {
  double non_optimal_fraction = 1.0;
  double mean_overload = 1e30;

  bool operator<(const Score& other) const {
    if (non_optimal_fraction != other.non_optimal_fraction) {
      return non_optimal_fraction < other.non_optimal_fraction;
    }
    return mean_overload < other.mean_overload;
  }
};

Score Evaluate(const FieldSpec& spec,
               const std::vector<std::uint64_t>& multipliers) {
  const unsigned n = spec.num_fields();
  std::uint64_t optimal = 0;
  double overload_sum = 0.0;
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < total; ++mask) {
    std::uint64_t qualified = 1;
    for (unsigned i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) qualified *= spec.field_size(i);
    }
    const std::uint64_t bound = CeilDiv(qualified, spec.num_devices());
    const std::uint64_t largest =
        AdditiveMaskResponse(spec, multipliers, mask).Max();
    if (largest <= bound) ++optimal;
    overload_sum +=
        static_cast<double>(largest) / static_cast<double>(bound);
  }
  Score s;
  s.non_optimal_fraction =
      1.0 - static_cast<double>(optimal) / static_cast<double>(total);
  s.mean_overload = overload_sum / static_cast<double>(total);
  return s;
}

}  // namespace

GdmSearchResult ScoreGdmMultipliers(
    const FieldSpec& spec, const std::vector<std::uint64_t>& multipliers) {
  const Score s = Evaluate(spec, multipliers);
  GdmSearchResult out;
  out.multipliers = multipliers;
  out.optimal_mask_fraction = 1.0 - s.non_optimal_fraction;
  out.mean_overload = s.mean_overload;
  out.candidates_evaluated = 1;
  return out;
}

Result<GdmSearchResult> SearchGdmMultipliers(const FieldSpec& spec,
                                             const GdmSearchOptions& options) {
  if (spec.num_fields() >= 20) {
    return Status::InvalidArgument(
        "mask sweep is 2^n; too many fields for GDM search");
  }
  if (options.max_multiplier < 1) {
    return Status::InvalidArgument("max_multiplier must be >= 1");
  }
  // All multipliers 1..max.  Even values matter: tiling Z_M with short
  // arithmetic progressions needs stride jumps (the paper's own perfect
  // example for F1=F2=4, M=16 multiplies by 3 and 4).
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t m = 1; m <= options.max_multiplier; ++m) {
    candidates.push_back(m);
  }

  Xoshiro256 rng(options.seed);
  const unsigned n = spec.num_fields();
  GdmSearchResult best;
  Score best_score;
  std::uint64_t evaluated = 0;

  for (unsigned restart = 0; restart < options.restarts; ++restart) {
    std::vector<std::uint64_t> current(n);
    for (auto& m : current) {
      m = candidates[rng.NextBounded(candidates.size())];
    }
    Score current_score = Evaluate(spec, current);
    ++evaluated;

    for (unsigned sweep = 0; sweep < options.sweeps; ++sweep) {
      bool improved = false;
      for (unsigned field = 0; field < n; ++field) {
        const std::uint64_t original = current[field];
        std::uint64_t best_here = original;
        for (std::uint64_t cand : candidates) {
          if (cand == original) continue;
          current[field] = cand;
          const Score s = Evaluate(spec, current);
          ++evaluated;
          if (s < current_score) {
            current_score = s;
            best_here = cand;
            improved = true;
          }
        }
        current[field] = best_here;
      }
      if (!improved) break;
    }

    if (restart == 0 || current_score < best_score) {
      best_score = current_score;
      best.multipliers = current;
    }
  }

  best.optimal_mask_fraction = 1.0 - best_score.non_optimal_fraction;
  best.mean_overload = best_score.mean_overload;
  best.candidates_evaluated = evaluated;
  return best;
}

}  // namespace fxdist
