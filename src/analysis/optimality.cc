#include "analysis/optimality.h"

#include <algorithm>
#include <numeric>

#include "util/math.h"

namespace fxdist {

std::uint64_t ResponseVector::Max() const {
  return per_device.empty()
             ? 0
             : *std::max_element(per_device.begin(), per_device.end());
}

std::uint64_t ResponseVector::Total() const {
  return std::accumulate(per_device.begin(), per_device.end(),
                         std::uint64_t{0});
}

ResponseVector ComputeResponseVector(const DistributionMethod& method,
                                     const PartialMatchQuery& query) {
  ResponseVector rv;
  rv.per_device.assign(method.spec().num_devices(), 0);
  ForEachQualifiedBucket(method.spec(), query, [&](const BucketId& bucket) {
    ++rv.per_device[method.DeviceOf(bucket)];
    return true;
  });
  return rv;
}

ResponseVector ComputeResponseVector(const DeviceMap& map,
                                     const PartialMatchQuery& query) {
  ResponseVector rv;
  rv.per_device = map.ResponseCounts(query);
  return rv;
}

std::uint64_t LargestResponseSize(const DistributionMethod& method,
                                  const PartialMatchQuery& query) {
  return ComputeResponseVector(method, query).Max();
}

std::uint64_t LargestResponseSize(const DeviceMap& map,
                                  const PartialMatchQuery& query) {
  return ComputeResponseVector(map, query).Max();
}

std::uint64_t StrictOptimalBound(const FieldSpec& spec,
                                 const PartialMatchQuery& query) {
  return CeilDiv(query.NumQualifiedBuckets(spec), spec.num_devices());
}

bool IsStrictOptimal(const DistributionMethod& method,
                     const PartialMatchQuery& query) {
  return LargestResponseSize(method, query) <=
         StrictOptimalBound(method.spec(), query);
}

bool IsStrictOptimal(const DeviceMap& map, const PartialMatchQuery& query) {
  return LargestResponseSize(map, query) <=
         StrictOptimalBound(map.spec(), query);
}

namespace {

/// Invokes `fn(query)` for every query with unspecified set = `free_fields`.
/// With `one_representative`, only the all-zero specified assignment is
/// visited.  fn returning false stops the sweep.
template <typename Fn>
void ForEachQueryWithUnspecified(const FieldSpec& spec,
                                 const std::vector<unsigned>& free_fields,
                                 bool one_representative, Fn&& fn) {
  const unsigned n = spec.num_fields();
  std::vector<bool> is_free(n, false);
  for (unsigned f : free_fields) is_free[f] = true;

  PartialMatchQuery query(n);
  BucketId specified(n, 0);
  while (true) {
    for (unsigned i = 0; i < n; ++i) {
      if (is_free[i]) {
        query.Unspecify(i);
      } else {
        query.Specify(i, specified[i]);
      }
    }
    if (!fn(static_cast<const PartialMatchQuery&>(query))) return;
    if (one_representative) return;
    // Odometer over the *specified* fields only.
    unsigned i = n;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (is_free[i]) continue;
      if (++specified[i] < spec.field_size(i)) {
        advanced = true;
        break;
      }
      specified[i] = 0;
    }
    if (!advanced) return;
  }
}

}  // namespace

OptimalityReport CheckKOptimal(const DeviceMap& map, unsigned k,
                               bool force_exhaustive) {
  const FieldSpec& spec = map.spec();
  const bool one_representative =
      map.method().IsShiftInvariant() && !force_exhaustive;
  OptimalityReport report;
  ForEachSubsetOfSize(spec.num_fields(), k,
                      [&](const std::vector<unsigned>& subset) {
    ForEachQueryWithUnspecified(
        spec, subset, one_representative,
        [&](const PartialMatchQuery& query) {
          ++report.queries_checked;
          if (!IsStrictOptimal(map, query)) {
            report.optimal = false;
            report.counterexample = query;
            return false;
          }
          return true;
        });
    return report.optimal;
  });
  return report;
}

OptimalityReport CheckKOptimal(const DistributionMethod& method, unsigned k,
                               bool force_exhaustive) {
  return CheckKOptimal(DeviceMap(method), k, force_exhaustive);
}

OptimalityReport CheckPerfectOptimal(const DeviceMap& map,
                                     bool force_exhaustive) {
  OptimalityReport report;
  for (unsigned k = 0; k <= map.spec().num_fields(); ++k) {
    OptimalityReport sub = CheckKOptimal(map, k, force_exhaustive);
    report.queries_checked += sub.queries_checked;
    if (!sub.optimal) {
      report.optimal = false;
      report.counterexample = sub.counterexample;
      return report;
    }
  }
  return report;
}

OptimalityReport CheckPerfectOptimal(const DistributionMethod& method,
                                     bool force_exhaustive) {
  return CheckPerfectOptimal(DeviceMap(method), force_exhaustive);
}

}  // namespace fxdist
