#include "analysis/balance.h"

#include <algorithm>
#include <cmath>

namespace fxdist {

BalanceReport AnalyzeBalance(const std::vector<std::uint64_t>& counts) {
  BalanceReport report;
  report.devices = counts.size();
  if (counts.empty()) return report;

  report.min = counts[0];
  report.max = counts[0];
  for (std::uint64_t c : counts) {
    report.total += c;
    report.min = std::min(report.min, c);
    report.max = std::max(report.max, c);
  }
  const auto n = static_cast<double>(counts.size());
  report.mean = static_cast<double>(report.total) / n;
  if (report.mean > 0.0) {
    double variance = 0.0;
    for (std::uint64_t c : counts) {
      const double d = static_cast<double>(c) - report.mean;
      variance += d * d;
    }
    variance /= n;
    report.cv = std::sqrt(variance) / report.mean;
    report.peak_over_mean = static_cast<double>(report.max) / report.mean;

    // Gini via the sorted mean-difference formula.
    std::vector<std::uint64_t> sorted = counts;
    std::sort(sorted.begin(), sorted.end());
    double weighted = 0.0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) *
                  static_cast<double>(sorted[i]);
    }
    report.gini = weighted / (n * static_cast<double>(report.total));
  }
  return report;
}

}  // namespace fxdist
