// Closed-form response vectors without bucket enumeration.
//
// For shift-invariant methods the response vector of a query class (an
// unspecified-field mask, specified values taken as zero) factors over the
// fields:
//
//  * FX:      counts = XOR-convolution of the unspecified fields' residue
//             histograms.  Computed with a Walsh-Hadamard transform in
//             O(n*M + M log M) using 128-bit integers — exact while
//             M * prod(F_unspecified) < 2^126.
//  * Modulo / GDM: counts = cyclic (additive) convolution of the
//             histograms of (a_i * l) mod M, O(n * M^2).
//
// This is what makes the Figure 1-4 benches able to evaluate *empirical*
// optimality for bucket spaces of 4096^10 buckets in microseconds, and is
// itself an interesting ablation against plain enumeration (the
// ablation_fast_response bench).

#ifndef FXDIST_ANALYSIS_FAST_RESPONSE_H_
#define FXDIST_ANALYSIS_FAST_RESPONSE_H_

#include <cstdint>

#include "analysis/optimality.h"
#include "core/device_map.h"
#include "core/distribution.h"
#include "core/fx.h"

namespace fxdist {

/// FX response vector for the representative query of `unspecified_mask`
/// via Walsh-Hadamard transform.
ResponseVector FxMaskResponse(const FXDistribution& fx,
                              std::uint64_t unspecified_mask);

/// Modulo/GDM response vector for the representative query via cyclic
/// convolution.  `multipliers` has one entry per field (all 1 for Modulo).
ResponseVector AdditiveMaskResponse(const FieldSpec& spec,
                                    const std::vector<std::uint64_t>&
                                        multipliers,
                                    std::uint64_t unspecified_mask);

/// General cyclic-convolution form: per-field histograms of (whatever the
/// method adds) mod M.  Used by GDM/Modulo and the additive-fold ablation.
ResponseVector CyclicMaskResponse(
    const FieldSpec& spec,
    const std::vector<std::vector<std::uint64_t>>& histograms,
    std::uint64_t unspecified_mask);

/// Dispatch: FX -> WHT, Modulo/GDM -> cyclic convolution, anything else ->
/// plain enumeration of the representative query.
ResponseVector MaskResponse(const DistributionMethod& method,
                            std::uint64_t unspecified_mask);

/// Same dispatch through a cached placement plane: methods with a closed
/// form use it; the enumeration fallback goes through the map's flat
/// table instead of a virtual DeviceOf per bucket.
ResponseVector MaskResponse(const DeviceMap& map,
                            std::uint64_t unspecified_mask);

/// Strict-optimality of the query class using MaskResponse.
bool IsMaskStrictOptimal(const DistributionMethod& method,
                         std::uint64_t unspecified_mask);

bool IsMaskStrictOptimal(const DeviceMap& map,
                         std::uint64_t unspecified_mask);

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_FAST_RESPONSE_H_
