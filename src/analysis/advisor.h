// Method advisor: which declustering fits this file and workload?
//
// Given the file system and the per-field specification probability (the
// workload statistic the paper's §5 model uses), evaluate every candidate
// method's exact expected largest response, optimality probability and
// address cost, and recommend.  The ranking is expected largest response
// first (the disk-regime bottleneck), address cycles as tie-break (the
// main-memory regime) — the two §5.2 criteria, mechanized.

#ifndef FXDIST_ANALYSIS_ADVISOR_H_
#define FXDIST_ANALYSIS_ADVISOR_H_

#include <string>
#include <vector>

#include "analysis/expectation.h"
#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

struct CandidateEvaluation {
  std::string method_spec;
  ExpectedQueryCost cost;
  std::uint64_t address_cycles = 0;
};

struct MethodRecommendation {
  /// The winner's registry spec string.
  std::string recommended;
  /// All candidates that evaluated successfully, best first.
  std::vector<CandidateEvaluation> ranking;
};

/// Evaluates `candidates` (default: every argument-free registry method)
/// on `spec` under the given workload statistic and ranks them.
/// Candidates that fail to construct or evaluate are skipped.
Result<MethodRecommendation> RecommendMethod(
    const FieldSpec& spec, double specified_probability,
    std::vector<std::string> candidates = {});

}  // namespace fxdist

#endif  // FXDIST_ANALYSIS_ADVISOR_H_
