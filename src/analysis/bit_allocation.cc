#include "analysis/bit_allocation.h"

#include <cmath>

namespace fxdist {

namespace {

double Factor(double p, unsigned bits) {
  return p + (1.0 - p) * std::ldexp(1.0, static_cast<int>(bits));
}

double Ratio(double p, unsigned bits) {
  return Factor(p, bits + 1) / Factor(p, bits);
}

}  // namespace

std::vector<std::uint64_t> BitAllocation::FieldSizes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(bits.size());
  for (unsigned b : bits) sizes.push_back(std::uint64_t{1} << b);
  return sizes;
}

double ExpectedQualifiedBuckets(
    const std::vector<double>& specified_probability,
    const std::vector<unsigned>& bits) {
  double product = 1.0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    product *= Factor(specified_probability[i], bits[i]);
  }
  return product;
}

Result<BitAllocation> AllocateFieldBits(
    const std::vector<double>& specified_probability, unsigned total_bits,
    unsigned max_bits_per_field) {
  if (specified_probability.empty()) {
    return Status::InvalidArgument("need at least one field");
  }
  for (double p : specified_probability) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "specification probabilities must be in [0, 1]");
    }
  }
  const unsigned cap = max_bits_per_field == 0 ? 40 : max_bits_per_field;
  if (total_bits > cap * specified_probability.size()) {
    return Status::InvalidArgument(
        "total bits exceed the per-field caps times the field count");
  }

  BitAllocation out;
  out.bits.assign(specified_probability.size(), 0);
  for (unsigned assigned = 0; assigned < total_bits; ++assigned) {
    // Give the next bit to the field whose factor grows the least —
    // i.e. the field most likely to be unspecified benefits least from
    // more buckets... inverted: a *specified* field absorbs bits with
    // ratio near (close to 1 when p is high), so high-p fields soak up
    // bits first, exactly the classic result.
    std::size_t best = specified_probability.size();
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < specified_probability.size(); ++i) {
      if (out.bits[i] >= cap) continue;
      const double r = Ratio(specified_probability[i], out.bits[i]);
      if (best == specified_probability.size() || r < best_ratio) {
        best = i;
        best_ratio = r;
      }
    }
    FXDIST_DCHECK(best < specified_probability.size());
    ++out.bits[best];
  }
  out.expected_qualified =
      ExpectedQualifiedBuckets(specified_probability, out.bits);
  return out;
}

}  // namespace fxdist
