// Distributed bulk-load / analysis coordinator (MapReduce-style).
//
// The serial tools cap deployments at what one process can generate and
// verify.  This plane partitions the two embarrassingly parallel jobs —
// record generation + ingest, and bucket-space response sweeps — across
// N shard-server workers over the wire protocol the shards already
// speak: ingest rides kInsertBatch (tagged with dedup tokens), sweeps
// ride the feature-negotiated kAnalyzeRange (client-side fallback when
// a server predates the feature).
//
// Task model.  A BulkLoad over `total_records` becomes ceil(total /
// records_per_task) ingest tasks, task t owning records [t*chunk,
// ...) of the *serial* generator stream (RecordGenerator::Skip makes
// "seed S, records [a,b)" a pure function — any worker, any retry,
// same multiset).  A Sweep becomes one analyze task per (unspecified
// mask, bucket range) cell; each returns per-device qualified counts
// over its range, which merge by integer addition into exactly the
// serial checker's response vectors (see analysis/range_sweep.h).
//
// Scheduling.  One thread per worker pulls from a shared task table
// under a single mutex.  Claiming a task takes a lease
// (options.lease_ms); a task whose lease expired may be claimed again:
//
//  * analyze tasks are pure — any idle worker steals an expired lease,
//    first completion wins, later results are discarded;
//  * ingest tasks are sticky to their assigned worker — retrying there
//    is exactly-once (the server's dedup-token registry turns a re-send
//    of an already-applied chunk into an ack), while a *different*
//    worker may only take over after the original is fenced.
//
// Worker loss.  options.max_worker_failures consecutive task failures
// mark a worker lost and *fence* it: it leaves the deployment, its
// thread exits, and every ingest task it was assigned — completed or
// not — is reassigned to survivors.  Fencing is what keeps re-dispatch
// exactly-once across workers: the union of surviving workers' records
// contains each task's records exactly once no matter how far the lost
// worker got, because none of its records are part of the merged
// deployment (see DESIGN.md §16 for the full argument).
//
// Merge integrity.  FinalizeMaskSweep cross-checks every mask's merged
// qualified count against the closed form (product of unspecified field
// sizes); a lost or double-merged range cannot pass.  BulkLoad reports
// per-worker record counts so callers can gate the union against
// total_records.

#ifndef FXDIST_DIST_COORDINATOR_H_
#define FXDIST_DIST_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/range_sweep.h"
#include "core/field_spec.h"
#include "hashing/multikey_hash.h"
#include "net/remote_backend.h"
#include "util/status.h"
#include "workload/record_gen.h"

namespace fxdist {

/// One worker the coordinator can dispatch to.  Implementations must be
/// callable from the coordinator's per-worker thread (one thread per
/// worker; no call overlaps another call *to the same worker*).
class DistWorker {
 public:
  virtual ~DistWorker() = default;

  virtual std::string name() const = 0;

  /// Applies `records` exactly once under retries of the same (records,
  /// token) pair — a re-send the server has already applied must ack
  /// without re-applying.
  virtual Status Ingest(const std::vector<Record>& records,
                        std::uint64_t token) = 0;

  /// Per-device qualified counts of `mask`'s representative query over
  /// linear buckets [start, end).  Pure.  Unimplemented signals "no
  /// server-side sweep" and makes the coordinator run the range on the
  /// reference placement plane instead.
  virtual Result<RangePartial> Analyze(std::uint64_t mask,
                                       std::uint64_t start,
                                       std::uint64_t end) = 0;

  /// Records currently stored on this worker.
  virtual Result<std::uint64_t> NumRecords() const = 0;

  /// The worker's placement plane, when it has a local one (a remote
  /// worker's handshake twin).  Used to verify all workers share one
  /// blueprint and as the client-side Analyze fallback; may be null.
  virtual const DeviceMap* placement() const { return nullptr; }
};

/// DistWorker over a connected RemoteBackend: Ingest = tagged
/// kInsertBatch chunks, Analyze = kAnalyzeRange (Unimplemented when the
/// server did not grant the feature — the coordinator then computes the
/// range on the handshake twin's DeviceMap, same integers).
class RemoteDistWorker final : public DistWorker {
 public:
  RemoteDistWorker(std::string name, std::unique_ptr<RemoteBackend> backend)
      : name_(std::move(name)), backend_(std::move(backend)) {}

  std::string name() const override { return name_; }
  Status Ingest(const std::vector<Record>& records,
                std::uint64_t token) override {
    return backend_->InsertBatchTagged(records, token);
  }
  Result<RangePartial> Analyze(std::uint64_t mask, std::uint64_t start,
                               std::uint64_t end) override {
    return backend_->AnalyzeRange(mask, start, end);
  }
  Result<std::uint64_t> NumRecords() const override {
    FXDIST_RETURN_NOT_OK(backend_->Health());
    return backend_->num_records();
  }
  const DeviceMap* placement() const override {
    return &backend_->device_map();
  }

  RemoteBackend& backend() { return *backend_; }

 private:
  std::string name_;
  std::unique_ptr<RemoteBackend> backend_;
};

struct CoordinatorOptions {
  /// Records per ingest task (the unit of assignment and re-dispatch;
  /// the RemoteBackend below further chunks to insert_batch_chunk).
  std::uint64_t records_per_task = 32768;
  /// Linear buckets per analyze task.
  std::uint64_t buckets_per_task = 65536;
  /// Lease on a claimed task; past it the task may be claimed again
  /// (same worker for ingest, any worker for analyze).
  int lease_ms = 2000;
  /// Consecutive failures that mark a worker lost and fence it.
  int max_worker_failures = 2;
  /// Attempts per task (across all workers) before the run aborts.
  int max_task_attempts = 8;
};

/// How records are generated for BulkLoad — the job is named by value,
/// so any worker can (re)produce any slice of it.
struct IngestSpec {
  Schema schema;
  /// One per field; empty selects uniform with default domains.
  std::vector<FieldDistribution> distributions;
  std::uint64_t seed = 42;
  std::uint64_t total_records = 0;
};

struct IngestReport {
  std::uint64_t records_sent = 0;  ///< == total_records on success
  std::uint64_t tasks = 0;
  /// Task executions beyond each task's first (straggler/failure
  /// re-dispatches and fence-driven re-runs).
  std::uint64_t retries = 0;
  std::vector<std::string> fenced_workers;
  /// Worker name -> records it holds after the load (fenced workers
  /// excluded; sums to records_sent when every survivor started empty).
  std::vector<std::pair<std::string, std::uint64_t>> records_per_worker;
};

struct SweepReport {
  /// One entry per unspecified-field mask, ascending by mask.
  std::vector<MaskSweepStats> masks;
  OptimalityProbability probability;  ///< the fig 1-4 number
  AllocationScore score;              ///< scheme_search's yardstick
  std::uint64_t tasks = 0;
  std::uint64_t retries = 0;
  /// Analyze tasks computed client-side (server lacked the feature).
  std::uint64_t fallback_tasks = 0;
  std::vector<std::string> fenced_workers;
};

/// See file comment.  Workers are driven from one thread each; the
/// coordinator itself is single-use-at-a-time (no concurrent BulkLoad /
/// Sweep calls on one instance).
class Coordinator {
 public:
  /// Verifies every worker with a placement plane agrees on the bucket
  /// space (field sizes + device count) — a mixed deployment would merge
  /// incomparable partials.
  static Result<std::unique_ptr<Coordinator>> Create(
      std::vector<std::unique_ptr<DistWorker>> workers,
      CoordinatorOptions options = {});

  /// Generates and ingests spec.total_records across the workers.
  Result<IngestReport> BulkLoad(const IngestSpec& spec);

  /// Runs the full fig-1 sweep (every unspecified-field mask, whole
  /// bucket space) across the workers and merges the partials.
  Result<SweepReport> Sweep();

  std::size_t num_workers() const { return workers_.size(); }
  DistWorker& worker(std::size_t i) { return *workers_[i]; }

 private:
  struct Task;
  struct Run;

  Coordinator(std::vector<std::unique_ptr<DistWorker>> workers,
              CoordinatorOptions options)
      : workers_(std::move(workers)), options_(options) {}

  /// Executes `tasks` on the worker fleet (see file comment for the
  /// lease / steal / fence rules); on success every task is done.
  Status RunTasks(Run& run);
  /// Per-worker scheduler thread body.
  void WorkerLoop(Run& run, std::size_t w);
  /// Executes one claimed task on worker `w` (no locks held).
  Result<RangePartial> ExecuteTask(Run& run, std::size_t w, const Task& task);

  /// The reference placement plane (first worker that has one).
  const DeviceMap* ReferencePlacement() const;

  std::vector<std::unique_ptr<DistWorker>> workers_;
  const CoordinatorOptions options_;
};

}  // namespace fxdist

#endif  // FXDIST_DIST_COORDINATOR_H_
