#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fxdist {

namespace {

using Clock = std::chrono::steady_clock;

/// splitmix64 finalizer — the per-task dedup token is a pure function
/// of (generator seed, first record), so a re-run of the same task
/// re-sends byte- and token-identical chunks wherever it executes.
std::uint64_t MixToken(std::uint64_t seed, std::uint64_t first_record) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (first_record + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

struct Coordinator::Task {
  enum class Kind { kIngest, kAnalyze };
  Kind kind = Kind::kAnalyze;

  // Ingest identity (pure function of the run's IngestSpec).
  std::uint64_t first_record = 0;
  std::uint64_t num_records = 0;
  std::uint64_t token = 0;
  int assigned = -1;  ///< worker this ingest task's records live on

  // Analyze identity.
  std::uint64_t mask = 0;
  std::uint64_t range_start = 0;
  std::uint64_t range_end = 0;

  // Scheduling state (guarded by Run::mutex).
  int attempts = 0;
  bool done = false;
  int owner = -1;  ///< current lease holder, -1 when free
  Clock::time_point lease_deadline{};
  RangePartial result;  ///< analyze result once done
};

struct Coordinator::Run {
  std::vector<Task> tasks;
  const IngestSpec* ingest = nullptr;  ///< null for sweeps

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<char> alive;
  std::vector<int> failures;  ///< consecutive, per worker
  std::size_t done_count = 0;
  std::size_t reassign_rr = 0;  ///< round-robin cursor for fencing
  std::uint64_t retries = 0;
  std::uint64_t fallback_tasks = 0;
  Status fatal;  ///< first unrecoverable error; aborts every thread
};

Result<std::unique_ptr<Coordinator>> Coordinator::Create(
    std::vector<std::unique_ptr<DistWorker>> workers,
    CoordinatorOptions options) {
  if (workers.empty()) {
    return Status::InvalidArgument("coordinator needs at least one worker");
  }
  options.records_per_task = std::max<std::uint64_t>(1, options.records_per_task);
  options.buckets_per_task = std::max<std::uint64_t>(1, options.buckets_per_task);
  // Every worker with a local placement plane must agree on the bucket
  // space, or the merged partials would be incomparable.
  const DeviceMap* reference = nullptr;
  for (const auto& worker : workers) {
    const DeviceMap* placement = worker->placement();
    if (placement == nullptr) continue;
    if (reference == nullptr) {
      reference = placement;
      continue;
    }
    if (placement->spec().field_sizes() != reference->spec().field_sizes() ||
        placement->spec().num_devices() != reference->spec().num_devices()) {
      return Status::FailedPrecondition(
          "worker '" + worker->name() +
          "' serves a different bucket space than the first worker — a "
          "mixed deployment cannot merge partial sweeps");
    }
  }
  return std::unique_ptr<Coordinator>(
      new Coordinator(std::move(workers), options));
}

const DeviceMap* Coordinator::ReferencePlacement() const {
  for (const auto& worker : workers_) {
    if (const DeviceMap* placement = worker->placement()) return placement;
  }
  return nullptr;
}

Result<IngestReport> Coordinator::BulkLoad(const IngestSpec& spec) {
  if (spec.total_records == 0) {
    return Status::InvalidArgument("BulkLoad of zero records");
  }
  if (!spec.distributions.empty() &&
      spec.distributions.size() != spec.schema.num_fields()) {
    return Status::InvalidArgument(
        "one field distribution per schema field required");
  }

  Run run;
  run.ingest = &spec;
  const std::uint64_t chunk = options_.records_per_task;
  for (std::uint64_t first = 0; first < spec.total_records; first += chunk) {
    Task task;
    task.kind = Task::Kind::kIngest;
    task.first_record = first;
    task.num_records = std::min(chunk, spec.total_records - first);
    task.token = MixToken(spec.seed, first);
    task.assigned =
        static_cast<int>((first / chunk) % workers_.size());
    run.tasks.push_back(task);
  }
  FXDIST_RETURN_NOT_OK(RunTasks(run));

  IngestReport report;
  report.records_sent = spec.total_records;
  report.tasks = run.tasks.size();
  report.retries = run.retries;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!run.alive[w]) {
      report.fenced_workers.push_back(workers_[w]->name());
      continue;
    }
    auto count = workers_[w]->NumRecords();
    FXDIST_RETURN_NOT_OK(count.status());
    report.records_per_worker.emplace_back(workers_[w]->name(), *count);
  }
  return report;
}

Result<SweepReport> Coordinator::Sweep() {
  const DeviceMap* reference = ReferencePlacement();
  if (reference == nullptr) {
    return Status::FailedPrecondition(
        "sweep needs at least one worker with a placement plane");
  }
  const FieldSpec& spec = reference->spec();
  const unsigned n = spec.num_fields();
  if (n >= 20) {
    return Status::InvalidArgument(
        "sweep enumerates 2^n masks; n=" + std::to_string(n) +
        " is past the sane limit");
  }
  const std::uint64_t num_masks = std::uint64_t{1} << n;
  const std::uint64_t total = spec.TotalBuckets();
  const std::uint64_t chunk = options_.buckets_per_task;

  Run run;
  for (std::uint64_t mask = 0; mask < num_masks; ++mask) {
    for (std::uint64_t start = 0; start < total; start += chunk) {
      Task task;
      task.kind = Task::Kind::kAnalyze;
      task.mask = mask;
      task.range_start = start;
      task.range_end = std::min(start + chunk, total);
      run.tasks.push_back(task);
    }
  }
  FXDIST_RETURN_NOT_OK(RunTasks(run));

  SweepReport report;
  report.tasks = run.tasks.size();
  report.retries = run.retries;
  report.fallback_tasks = run.fallback_tasks;
  report.masks.reserve(num_masks);
  for (std::uint64_t mask = 0; mask < num_masks; ++mask) {
    RangePartial merged;
    for (const Task& task : run.tasks) {
      if (task.mask != mask) continue;
      FXDIST_RETURN_NOT_OK(MergeRangePartial(&merged, task.result));
    }
    auto stats = FinalizeMaskSweep(spec, mask, merged);
    FXDIST_RETURN_NOT_OK(stats.status());
    report.masks.push_back(*std::move(stats));
  }
  report.probability = SweepOptimality(spec, report.masks);
  report.score = SweepScore(spec, report.masks);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!run.alive[w]) report.fenced_workers.push_back(workers_[w]->name());
  }
  return report;
}

Status Coordinator::RunTasks(Run& run) {
  if (run.tasks.empty()) return Status::OK();
  run.alive.assign(workers_.size(), 1);
  run.failures.assign(workers_.size(), 0);

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    threads.emplace_back([this, &run, w] { WorkerLoop(run, w); });
  }
  for (std::thread& thread : threads) thread.join();

  std::lock_guard<std::mutex> lock(run.mutex);
  FXDIST_RETURN_NOT_OK(run.fatal);
  if (run.done_count != run.tasks.size()) {
    return Status::Unavailable(
        "run stalled with " +
        std::to_string(run.tasks.size() - run.done_count) +
        " unfinished task(s) — every worker is lost");
  }
  return Status::OK();
}

void Coordinator::WorkerLoop(Run& run, std::size_t w) {
  const int me = static_cast<int>(w);
  std::unique_lock<std::mutex> lock(run.mutex);
  for (;;) {
    if (!run.fatal.ok() || run.done_count == run.tasks.size() ||
        !run.alive[w]) {
      run.cv.notify_all();
      return;
    }

    // Claim: a free task this worker may run (ingest: assigned here;
    // analyze: anyone), or one whose lease expired — an expired analyze
    // lease is *stolen* (first completion wins), an expired ingest lease
    // is only ever re-claimed by its assigned worker (cross-worker
    // takeover requires fencing first).
    const auto now = Clock::now();
    std::size_t pick = run.tasks.size();
    Clock::time_point next_deadline = now + std::chrono::milliseconds(50);
    for (std::size_t i = 0; i < run.tasks.size(); ++i) {
      Task& task = run.tasks[i];
      if (task.done) continue;
      if (task.kind == Task::Kind::kIngest && task.assigned != me) continue;
      if (task.owner == -1 || task.lease_deadline <= now) {
        if (task.owner == me) continue;  // impossible, but never self-steal
        pick = i;
        break;
      }
      next_deadline = std::min(next_deadline, task.lease_deadline);
    }
    if (pick == run.tasks.size()) {
      run.cv.wait_until(lock, next_deadline);
      continue;
    }

    Task& task = run.tasks[pick];
    ++task.attempts;
    if (task.attempts > options_.max_task_attempts) {
      run.fatal = Status::Unavailable(
          "task exceeded " + std::to_string(options_.max_task_attempts) +
          " attempts");
      run.cv.notify_all();
      return;
    }
    if (task.attempts > 1) ++run.retries;
    task.owner = me;
    task.lease_deadline =
        Clock::now() + std::chrono::milliseconds(std::max(1, options_.lease_ms));
    const Task claimed = task;  // immutable identity fields, copied so
                                // execution never races a fence's rewrite
    lock.unlock();

    auto result = ExecuteTask(run, w, claimed);

    lock.lock();
    Task& t = run.tasks[pick];
    if (result.ok()) {
      run.failures[w] = 0;
      // Discard if a fence removed this worker mid-flight (its ingest
      // work is off-deployment) or a steal finished the task first.
      if (run.alive[w] && !t.done) {
        t.done = true;
        t.result = *std::move(result);
        ++run.done_count;
      }
      if (t.owner == me) t.owner = -1;
      run.cv.notify_all();
      continue;
    }
    if (t.owner == me) t.owner = -1;
    if (++run.failures[w] >= options_.max_worker_failures) {
      // Fence: this worker leaves the deployment.  Its analyze leases
      // are already released above; every ingest task it was assigned —
      // done or not — moves to a survivor and re-runs, which is safe
      // exactly *because* the fenced worker's records are not part of
      // the merged deployment anymore.
      run.alive[w] = 0;
      std::vector<std::size_t> survivors;
      for (std::size_t v = 0; v < workers_.size(); ++v) {
        if (run.alive[v]) survivors.push_back(v);
      }
      if (survivors.empty()) {
        run.fatal = Status::Unavailable(
            "every worker is lost (last failure on '" + workers_[w]->name() +
            "': " + result.status().ToString() + ")");
        run.cv.notify_all();
        return;
      }
      for (Task& other : run.tasks) {
        if (other.kind != Task::Kind::kIngest || other.assigned != me) {
          continue;
        }
        other.assigned = static_cast<int>(
            survivors[run.reassign_rr++ % survivors.size()]);
        if (other.done) {
          other.done = false;
          --run.done_count;
        }
        if (other.owner == me) other.owner = -1;
      }
      run.cv.notify_all();
      return;
    }
    run.cv.notify_all();
  }
}

Result<RangePartial> Coordinator::ExecuteTask(Run& run, std::size_t w,
                                              const Task& task) {
  DistWorker& worker = *workers_[w];
  if (task.kind == Task::Kind::kIngest) {
    const IngestSpec& spec = *run.ingest;
    auto gen = spec.distributions.empty()
                   ? RecordGenerator::Uniform(spec.schema, spec.seed)
                   : RecordGenerator::Create(spec.schema, spec.distributions,
                                             spec.seed);
    FXDIST_RETURN_NOT_OK(gen.status());
    gen->Skip(task.first_record);
    FXDIST_RETURN_NOT_OK(worker.Ingest(
        gen->Take(static_cast<std::size_t>(task.num_records)), task.token));
    return RangePartial{};
  }
  auto partial = worker.Analyze(task.mask, task.range_start, task.range_end);
  if (partial.status().code() == StatusCode::kUnimplemented) {
    // Negotiation fallback: the server predates kAnalyzeRange, so run
    // the identical computation on the reference placement plane.
    const DeviceMap* reference = ReferencePlacement();
    if (reference == nullptr) return partial.status();
    {
      std::lock_guard<std::mutex> lock(run.mutex);
      ++run.fallback_tasks;
    }
    return AnalyzeBucketRange(*reference, task.mask, task.range_start,
                              task.range_end);
  }
  return partial;
}

}  // namespace fxdist
