#include "engine/query_engine.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "analysis/batch.h"
#include "analysis/optimality.h"
#include "core/query_key.h"
#include "hashing/query_key.h"

namespace fxdist {

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Everything one device contributes to a batch.  Each device task writes
/// only its own slot, so the fan-out needs no synchronization.
struct DeviceOutcome {
  std::vector<std::uint64_t> qualified;            // per rep., served here
  std::vector<std::uint64_t> examined;             // per representative
  std::vector<std::vector<const Record*>> matched; // per rep., solo order
  /// Per representative: (serving device, bucket count) for buckets this
  /// device planned but a degraded backend served elsewhere.  Only
  /// populated while the backend re-routes.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> rerouted;
  /// Owned copies of the gathered records, one list per scanned bucket,
  /// populated only when the backend's scan references are not stable
  /// (packed backends decode out of a bounded cache).  `matched` then
  /// points into these lists, which live as long as the outcome.
  std::vector<std::vector<Record>> pinned;
  std::uint64_t buckets_scanned = 0;
  std::uint64_t reroutes = 0;        // scans served away from this device
  std::uint64_t routed_queries = 0;  // reps with any qualified bucket here
  double busy_ms = 0.0;
};

}  // namespace

QueryEngine::QueryEngine(const StorageBackend& backend, EngineOptions options)
    : backend_(backend), options_([&options] {
        options.max_batch_size = std::max<std::size_t>(1,
                                                       options.max_batch_size);
        return options;
      }()),
      pool_(options_.num_threads), start_(Clock::now()) {
  device_counters_.reserve(backend_.num_devices());
  for (std::uint64_t d = 0; d < backend_.num_devices(); ++d) {
    device_counters_.push_back(std::make_unique<DeviceCounters>());
  }
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();
}

Result<std::vector<QueryResult>> QueryEngine::ExecuteBatch(
    const std::vector<ValueQuery>& batch) {
  const auto start = Clock::now();
  auto results = ExecuteBatchInternal(batch);
  if (results.ok()) {
    const double micros = MicrosSince(start);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      query_latency_.Record(micros);
    }
  }
  return results;
}

Result<std::vector<QueryResult>> QueryEngine::ExecuteBatchInternal(
    const std::vector<ValueQuery>& batch) {
  if (batch.empty()) return std::vector<QueryResult>{};
  const auto start = Clock::now();
  // Only the field *sizes* matter here (budget accounting); they are
  // invariant across a topology cutover, unlike the device count.
  const FieldSpec& spec = backend_.spec();

  std::vector<PartialMatchQuery> hashed;
  hashed.reserve(batch.size());
  std::uint64_t requested = 0;
  for (const ValueQuery& query : batch) {
    auto h = backend_.HashQuery(query);
    if (!h.ok()) {
      queries_failed_.Increment(batch.size());
      return h.status();
    }
    requested += h->NumQualifiedBuckets(spec);
    if (requested > options_.enumeration_budget) {
      queries_failed_.Increment(batch.size());
      return Status::InvalidArgument(
          "batch enumeration exceeds the engine budget");
    }
    hashed.push_back(*std::move(h));
  }

  batches_executed_.Increment();
  max_batch_size_seen_.UpdateMax(static_cast<std::int64_t>(batch.size()));

  // Collapse value-identical queries: representatives execute, duplicates
  // copy the representative's result.  Keyed on the canonical QueryKey —
  // one hash probe per query instead of the old pairwise ValueQuery==
  // sweep, and the same identity the front-door result cache uses, so
  // collapse and cache hits agree on what "the same query" means.  (Key
  // equality is bit-level: a +0.0/-0.0 pair stays uncollapsed — a
  // harmless missed share — while bit-identical NaN queries collapse
  // safely, both filtering identically.)
  std::vector<std::uint32_t> rep_of(batch.size(), 0);
  std::vector<std::uint32_t> reps;
  if (options_.collapse_duplicates) {
    std::unordered_map<QueryKey, std::uint32_t, QueryKeyHash> rep_index;
    rep_index.reserve(batch.size());
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      auto [slot, inserted] = rep_index.try_emplace(
          CanonicalQueryKey(batch[i]),
          static_cast<std::uint32_t>(reps.size()));
      rep_of[i] = slot->second;
      if (inserted) reps.push_back(i);
    }
  } else {
    reps.resize(batch.size());
    for (std::uint32_t i = 0; i < batch.size(); ++i) {
      reps[i] = i;
      rep_of[i] = i;
    }
  }
  duplicates_collapsed_.Increment(batch.size() - reps.size());

  std::vector<PartialMatchQuery> rep_hashed;
  rep_hashed.reserve(reps.size());
  for (std::uint32_t r : reps) rep_hashed.push_back(hashed[r]);

  // Topology-stable execution (seqlock-style): each attempt runs the
  // whole plan/scan/merge against ONE DeviceMap captured up front, with
  // the backend's TopologyVersion loaded before and re-checked after.
  // A migrating backend that cut over mid-attempt may have served later
  // scans from the new placement while the plan addressed the old one —
  // those results are untrustworthy, so the attempt is discarded and
  // the batch re-planned against the new map.  The retired plane stays
  // allocated inside the wrapper, so references captured just before
  // the swap stay valid (stale) rather than dangling.  Cutovers are
  // rare; more than a few inside one batch means something is thrashing
  // and the batch fails honestly instead of spinning.
  constexpr int kMaxTopologyRetries = 4;

  std::vector<QueryResult> rep_results;
  std::uint64_t performed = 0, examined_total = 0, matched_total = 0;

  auto attempt = [&]() -> Status {
    rep_results.assign(reps.size(), QueryResult{});
    performed = examined_total = matched_total = 0;

    // One map, one spec, one device count for the whole attempt: every
    // index below (outcomes, qualified_per_device, counters) derives
    // from this single capture, so a cutover landing between two loads
    // can never mix sizes from two placements.
    const DeviceMap& map = backend_.device_map();
    const FieldSpec& map_spec = map.spec();
    const std::uint64_t num_devices = map_spec.num_devices();
    EnsureDeviceCounters(num_devices);

    // Degraded re-routing and the sparse live-bucket filter are mutually
    // exclusive by design: a filtered (dead) bucket never learns its
    // serving device, and a re-routing backend needs every bucket charged
    // to its server.  Healthy backends route in place, so the filter is
    // safe whenever the bucket space dwarfs the live records (grown
    // dynamic directories) — skipping dead buckets changes no results,
    // only the plan bookkeeping that was losing to the serial fast path.
    const bool rerouting = backend_.HasDegradedRouting();
    const bool sparse =
        !rerouting &&
        map_spec.TotalBuckets() >
            4 * std::max<std::uint64_t>(1, backend_.num_records());

    // Per-device shared scans: plan each device's distinct buckets, make
    // one pass per bucket, evaluate every covering query against its
    // records.
    const auto scan_start = Clock::now();
    std::vector<DeviceOutcome> outcomes(num_devices);
    auto run_device = [&](std::uint64_t d) {
      const auto device_start = Clock::now();
      const DeviceBatchPlan plan =
          sparse ? PlanDeviceBatch(
                       map, rep_hashed, d,
                       [&](std::uint64_t linear) {
                         return backend_.IsBucketLive(d, linear);
                       })
                 : PlanDeviceBatch(map, rep_hashed, d);
      DeviceOutcome& out = outcomes[d];
      const std::size_t num_reps = reps.size();
      out.qualified.assign(num_reps, 0);
      out.examined.assign(num_reps, 0);
      out.matched.resize(num_reps);
      // Resolve each scanned bucket's serving device once; the scan
      // itself already fetches from the right copy (backend_.ScanBucket
      // routes), so this is purely the accounting side of degraded mode.
      std::vector<std::uint32_t> server_of;
      if (rerouting) {
        out.rerouted.resize(num_reps);
        server_of.resize(plan.scan_buckets.size());
        for (std::size_t s = 0; s < plan.scan_buckets.size(); ++s) {
          server_of[s] = static_cast<std::uint32_t>(
              backend_.ServingDevice(d, plan.scan_buckets[s]));
          if (server_of[s] != d) ++out.reroutes;
        }
      }
      // Gather every planned bucket ONCE with the device's batch as a
      // single ScanMany scatter — a remote shard sees one frame per
      // chunk instead of one round trip per (bucket, covering slot) —
      // then stream each covering slot past the gathered records.  The
      // pointers stay valid until the next mutation (local backends hand
      // out references into their own storage; a remote backend pins the
      // decoded bucket), and the per-slot pass preserves exactly the
      // order and examined accounting of the old scan-per-slot loop.
      std::vector<BucketRef> refs;
      refs.reserve(plan.scan_buckets.size());
      for (std::uint64_t linear : plan.scan_buckets) {
        refs.push_back({d, linear});
      }
      std::vector<std::vector<const Record*>> gathered(refs.size());
      scan_many_calls_.Increment();
      if (backend_.ScanRecordsAreStable()) {
        backend_.ScanMany(refs,
                          [&gathered](std::size_t s, const Record& record) {
                            gathered[s].push_back(&record);
                            return true;
                          });
      } else {
        // Unstable scan references (packed backends materialize records
        // out of a bounded decode cache; a migrating wrapper only pins
        // them for the scan's shared lock) die with the callback: copy
        // each record into the outcome's pinned storage and point at the
        // copies.  The pointer lists are built only after the gather —
        // push_back may reallocate a pinned list mid-scan.
        out.pinned.assign(refs.size(), {});
        backend_.ScanMany(refs,
                          [&out](std::size_t s, const Record& record) {
                            out.pinned[s].push_back(record);
                            return true;
                          });
        for (std::size_t s = 0; s < refs.size(); ++s) {
          gathered[s].reserve(out.pinned[s].size());
          for (const Record& record : out.pinned[s]) {
            gathered[s].push_back(&record);
          }
        }
      }
      std::vector<std::vector<std::vector<const Record*>>> scan_matches(
          plan.scan_buckets.size());
      for (std::size_t s = 0; s < plan.scan_buckets.size(); ++s) {
        const auto& covering = plan.scan_queries[s];
        scan_matches[s].resize(covering.size());
        for (std::size_t slot = 0; slot < covering.size(); ++slot) {
          const std::uint32_t q = covering[slot];
          const ValueQuery& value_query = batch[reps[q]];
          auto& hits = scan_matches[s][slot];
          for (const Record* record : gathered[s]) {
            ++out.examined[q];
            if (RecordMatchesValueQuery(value_query, *record)) {
              hits.push_back(record);
            }
          }
        }
      }
      // Reassemble each query's matches in its solo enumeration order.
      // qualified_counts (not slot counts) feed the stats: a sparse plan
      // filters dead buckets out of the scan list but solo Execute still
      // counts them; a re-routing backend instead splits each count
      // between this device and the server that actually fetched.
      std::uint64_t device_examined = 0;
      for (std::size_t q = 0; q < num_reps; ++q) {
        if (plan.qualified_counts[q] > 0) ++out.routed_queries;
        if (rerouting) {
          auto& moved = out.rerouted[q];
          for (const auto& [scan, slot] : plan.query_slots[q]) {
            (void)slot;
            const std::uint32_t server = server_of[scan];
            if (server == static_cast<std::uint32_t>(d)) {
              ++out.qualified[q];
              continue;
            }
            auto it = std::find_if(
                moved.begin(), moved.end(),
                [server](const auto& p) { return p.first == server; });
            if (it == moved.end()) {
              moved.emplace_back(server, 1);
            } else {
              ++it->second;
            }
          }
        } else {
          out.qualified[q] = plan.qualified_counts[q];
        }
        device_examined += out.examined[q];
        auto& matched = out.matched[q];
        for (const auto& [scan, slot] : plan.query_slots[q]) {
          const auto& hits = scan_matches[scan][slot];
          matched.insert(matched.end(), hits.begin(), hits.end());
        }
      }
      out.buckets_scanned = plan.scan_buckets.size();
      out.busy_ms = MillisSince(device_start);
      // Fetch the cell pointer under the vector lock; the cell itself is
      // atomic and outlives any growth.
      DeviceCounters* counters;
      {
        std::shared_lock<std::shared_mutex> lock(counters_mutex_);
        counters = device_counters_[d].get();
      }
      counters->bucket_scans.Increment(out.buckets_scanned);
      counters->records_examined.Increment(device_examined);
      counters->routed_queries.Increment(out.routed_queries);
      counters->degraded_reroutes.Increment(out.reroutes);
      counters->busy_nanos.Increment(
          static_cast<std::uint64_t>(out.busy_ms * 1e6));
    };
    if (pool_.num_threads() > 1 && num_devices > 1) {
      pool_.ParallelFor(num_devices, run_device);
    } else {
      for (std::uint64_t d = 0; d < num_devices; ++d) run_device(d);
    }
    const double scan_wall_ms = MillisSince(scan_start);

    // ScanBucket cannot report errors, so a backend that lost storage
    // mid-sweep (remote shard past its retry budget, poisoned composite)
    // silently contributed nothing.  Re-check health and fail the batch
    // instead of returning partial results.
    FXDIST_RETURN_NOT_OK(backend_.Health());

    // Merge per-device shares into per-representative results.
    for (std::uint64_t d = 0; d < num_devices; ++d) {
      performed += outcomes[d].buckets_scanned;
    }
    for (std::size_t q = 0; q < reps.size(); ++q) {
      QueryResult& result = rep_results[q];
      QueryStats& stats = result.stats;
      stats.qualified_per_device.assign(num_devices, 0);
      stats.device_wall_ms.assign(num_devices, 0.0);
      for (std::uint64_t d = 0; d < num_devices; ++d) {
        const DeviceOutcome& out = outcomes[d];
        stats.qualified_per_device[d] += out.qualified[q];
        if (!out.rerouted.empty()) {
          // Degraded mode: charge re-routed buckets to their servers,
          // the same accounting the backend's own Execute reports.
          for (const auto& [server, count] : out.rerouted[q]) {
            stats.qualified_per_device[server] += count;
          }
        }
        stats.device_wall_ms[d] = out.busy_ms;
        stats.records_examined += out.examined[q];
        stats.records_matched += out.matched[q].size();
      }
      result.records.reserve(stats.records_matched);
      for (std::uint64_t d = 0; d < num_devices; ++d) {
        for (const Record* record : outcomes[d].matched[q]) {
          result.records.push_back(*record);
        }
      }
      for (std::uint64_t c : stats.qualified_per_device) {
        stats.total_qualified += c;
        stats.largest_response = std::max(stats.largest_response, c);
      }
      stats.optimal_bound = StrictOptimalBound(map_spec, rep_hashed[q]);
      stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
      stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
      stats.wall_ms = scan_wall_ms;
      examined_total += stats.records_examined;
      matched_total += stats.records_matched;
    }
    return Status::OK();
  };

  for (int tries = 0;; ++tries) {
    const std::uint64_t version = backend_.TopologyVersion();
    if (Status st = attempt(); !st.ok()) {
      queries_failed_.Increment(batch.size());
      return st;
    }
    if (backend_.TopologyVersion() == version) break;
    topology_retries_.Increment();
    if (tries + 1 >= kMaxTopologyRetries) {
      queries_failed_.Increment(batch.size());
      return Status::Unavailable(
          "topology kept changing while the batch executed; resubmit");
    }
  }

  bucket_scans_requested_.Increment(requested);
  bucket_scans_performed_.Increment(performed);
  records_examined_.Increment(examined_total);
  records_matched_.Increment(matched_total);
  queries_completed_.Increment(batch.size());
  batch_latency_.Record(MicrosSince(start));

  // Expand representatives back to batch order (duplicates copy, the
  // representative's own slot takes the original by move).
  std::vector<QueryResult> results(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    if (reps[rep_of[i]] != i) results[i] = rep_results[rep_of[i]];
  }
  for (std::uint32_t j = 0; j < reps.size(); ++j) {
    results[reps[j]] = std::move(rep_results[j]);
  }
  return results;
}

void QueryEngine::EnsureDeviceCounters(std::uint64_t count) {
  {
    std::shared_lock<std::shared_mutex> lock(counters_mutex_);
    if (device_counters_.size() >= count) return;
  }
  std::unique_lock<std::shared_mutex> lock(counters_mutex_);
  while (device_counters_.size() < count) {
    device_counters_.push_back(std::make_unique<DeviceCounters>());
  }
}

std::future<Result<QueryResult>> QueryEngine::Submit(ValueQuery query) {
  Pending pending;
  pending.query = std::move(query);
  pending.admitted = Clock::now();
  std::future<Result<QueryResult>> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(pending));
    queries_submitted_.Increment();
    queue_depth_.Set(static_cast<std::int64_t>(queue_.size()));
    max_queue_depth_.UpdateMax(static_cast<std::int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

void QueryEngine::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // drained; shutting down
      continue;
    }
    const std::size_t take =
        std::min(queue_.size(), options_.max_batch_size);
    std::vector<Pending> group;
    group.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    dispatching_ = true;
    queue_depth_.Set(static_cast<std::int64_t>(queue_.size()));
    lock.unlock();

    // Pre-validate so one malformed query cannot fail its batch
    // neighbours; survivors execute as one shared-scan batch.
    std::vector<ValueQuery> batch;
    std::vector<std::size_t> live;
    batch.reserve(group.size());
    live.reserve(group.size());
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (auto h = backend_.HashQuery(group[i].query); !h.ok()) {
        queries_failed_.Increment();
        group[i].promise.set_value(h.status());
      } else {
        batch.push_back(group[i].query);
        live.push_back(i);
      }
    }
    if (!batch.empty()) {
      auto results = ExecuteBatchInternal(batch);
      for (std::size_t j = 0; j < live.size(); ++j) {
        Pending& pending = group[live[j]];
        query_latency_.Record(MicrosSince(pending.admitted));
        if (results.ok()) {
          pending.promise.set_value(std::move((*results)[j]));
        } else {
          pending.promise.set_value(results.status());
        }
      }
    }

    lock.lock();
    dispatching_ = false;
    if (queue_.empty()) drained_cv_.notify_all();
  }
}

void QueryEngine::Flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock,
                   [this] { return queue_.empty() && !dispatching_; });
}

StatsSnapshot QueryEngine::Snapshot() const {
  StatsSnapshot snap;
  snap.queries_submitted = queries_submitted_.Value();
  snap.queries_completed = queries_completed_.Value();
  snap.queries_failed = queries_failed_.Value();
  snap.batches_executed = batches_executed_.Value();
  snap.max_batch_size =
      static_cast<std::uint64_t>(max_batch_size_seen_.Value());
  snap.duplicates_collapsed = duplicates_collapsed_.Value();
  snap.bucket_scans_requested = bucket_scans_requested_.Value();
  snap.bucket_scans_performed = bucket_scans_performed_.Value();
  snap.scan_many_calls = scan_many_calls_.Value();
  snap.records_examined = records_examined_.Value();
  snap.records_matched = records_matched_.Value();
  snap.topology_retries = topology_retries_.Value();
  snap.topology_version = backend_.TopologyVersion();
  snap.migrating_buckets = backend_.BucketsInMigration();
  snap.queue_depth = queue_depth_.Value();
  snap.max_queue_depth = max_queue_depth_.Value();
  snap.uptime_ms = MillisSince(start_);
  snap.query_latency = query_latency_.Snapshot();
  snap.batch_latency = batch_latency_.Snapshot();
  std::shared_lock<std::shared_mutex> counters_lock(counters_mutex_);
  snap.devices.reserve(device_counters_.size());
  for (const auto& counters : device_counters_) {
    DeviceStats device;
    device.bucket_scans = counters->bucket_scans.Value();
    device.records_examined = counters->records_examined.Value();
    device.routed_queries = counters->routed_queries.Value();
    device.degraded_reroutes = counters->degraded_reroutes.Value();
    device.busy_ms =
        static_cast<double>(counters->busy_nanos.Value()) / 1e6;
    device.utilization =
        snap.uptime_ms <= 0.0 ? 0.0 : device.busy_ms / snap.uptime_ms;
    snap.routed_queries += device.routed_queries;
    snap.degraded_reroutes += device.degraded_reroutes;
    snap.devices.push_back(device);
  }
  return snap;
}

}  // namespace fxdist
