// QueryEngine: a concurrent batch serving layer over any StorageBackend.
//
// StorageBackend::Execute answers one query at a time; under serving load
// the engine instead admits *batches* of partial-match queries and exploits
// two structural properties of query streams (Doerr et al. evaluate
// declustering over streams; Fukuyama's randomized-wildcard model makes
// overlap the common case):
//
//  * shared bucket scans — overlapping queries qualify the same buckets, so
//    each device makes one pass per distinct qualified bucket and evaluates
//    every covering query against its records (the executable form of
//    analysis/batch's union cost model, via PlanDeviceBatch), and
//  * duplicate collapse — value-identical queries in a batch (Zipf-popular
//    queries repeat) execute once and share the result.
//
// Both transformations are result-preserving: every query's records, match
// counts, per-device qualified counts and largest response are bit-identical
// to the backend's own solo Execute — flat, paged, or dynamic (enforced by
// the differential tests).  Bucket enumeration and scan planning go through
// the backend's cached DeviceMap, and record access through ScanBucket, so
// the engine never touches backend-specific storage.
//
// Two entry points:
//  * ExecuteBatch() — synchronous; the caller's batch is the unit of
//    sharing.  Per-device work fans out over the worker shards.
//  * Submit() — asynchronous admission: queries queue up and a dispatcher
//    thread drains them in groups of up to max_batch_size, so batches form
//    naturally under backlog.  Returns a future per query.
//
// The engine is read-only over the backend: callers must not mutate it
// while an engine serves it.  The one sanctioned exception is a
// MigratingBackend (sim/migration.h), which is internally synchronized
// and changes its topology — device count and scheme — at cutover.  The
// engine brackets every batch with two TopologyVersion() loads
// (seqlock-style): the whole plan/scan/merge runs against ONE DeviceMap
// captured at the start, and if the version moved by the end the
// attempt is discarded and re-planned against the new map, so no batch
// ever mixes accounting (or bucket routing) from two placements.

#ifndef FXDIST_ENGINE_QUERY_ENGINE_H_
#define FXDIST_ENGINE_QUERY_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "engine/stats_snapshot.h"
#include "sim/storage_backend.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fxdist {

struct EngineOptions {
  /// Worker shards for per-device scan fan-out; 0 = hardware concurrency.
  /// With 1 shard the engine runs scans inline on the dispatching thread
  /// (fully deterministic execution order).
  unsigned num_threads = 0;
  /// Largest group the dispatcher drains per batch (>= 1).
  std::size_t max_batch_size = 64;
  /// Refuse batches whose total qualified-bucket enumeration exceeds this.
  std::uint64_t enumeration_budget = std::uint64_t{1} << 24;
  /// Execute value-identical queries of a batch once, sharing the result.
  bool collapse_duplicates = true;
};

class QueryEngine {
 public:
  /// `backend` must outlive the engine and stay unmodified while serving.
  explicit QueryEngine(const StorageBackend& backend,
                       EngineOptions options = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Executes `batch` with shared scans; results arrive in batch order and
  /// each element is bit-identical to backend.Execute(batch[i]).  Fails as
  /// a whole on an invalid query or a blown enumeration budget.
  Result<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<ValueQuery>& batch);

  /// Enqueues one query for the dispatcher.  Invalid queries resolve their
  /// future with the error without failing batch neighbours.
  std::future<Result<QueryResult>> Submit(ValueQuery query);

  /// Blocks until the admission queue is empty and no batch is in flight.
  void Flush();

  StatsSnapshot Snapshot() const;

  const StorageBackend& backend() const { return backend_; }
  const EngineOptions& options() const { return options_; }

 private:
  struct Pending {
    ValueQuery query;
    std::promise<Result<QueryResult>> promise;
    std::chrono::steady_clock::time_point admitted;
  };

  struct DeviceCounters {
    Counter bucket_scans;
    Counter records_examined;
    Counter routed_queries;
    Counter degraded_reroutes;
    Counter busy_nanos;
  };

  void DispatcherLoop();
  /// Shared-scan core; records scan/batch metrics but not query latency
  /// (each entry point measures its own admission-to-completion time).
  Result<std::vector<QueryResult>> ExecuteBatchInternal(
      const std::vector<ValueQuery>& batch);
  /// Grows device_counters_ to at least `count` slots (a cutover can
  /// raise the device count mid-serve).  Existing slots keep counting.
  void EnsureDeviceCounters(std::uint64_t count);

  const StorageBackend& backend_;
  const EngineOptions options_;
  ThreadPool pool_;
  const std::chrono::steady_clock::time_point start_;

  // Metrics.
  Counter queries_submitted_;
  Counter queries_completed_;
  Counter queries_failed_;
  Counter batches_executed_;
  Counter duplicates_collapsed_;
  Counter bucket_scans_requested_;
  Counter bucket_scans_performed_;
  Counter scan_many_calls_;
  Counter records_examined_;
  Counter records_matched_;
  Counter topology_retries_;
  Gauge queue_depth_;
  Gauge max_queue_depth_;
  Gauge max_batch_size_seen_;
  LatencyHistogram query_latency_;
  LatencyHistogram batch_latency_;
  /// Guards the device_counters_ *vector* (it grows at a cutover to more
  /// devices); the Counter cells themselves are atomic and are reached
  /// through stable unique_ptrs, so holders of a cell pointer never need
  /// the lock.
  mutable std::shared_mutex counters_mutex_;
  std::vector<std::unique_ptr<DeviceCounters>> device_counters_;

  // Admission queue.
  mutable std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable drained_cv_;
  std::deque<Pending> queue_;
  bool dispatching_ = false;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace fxdist

#endif  // FXDIST_ENGINE_QUERY_ENGINE_H_
