#include "engine/stats_snapshot.h"

#include <cstdio>
#include <sstream>

namespace fxdist {

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  char line[160];

  std::snprintf(line, sizeof(line),
                "queries    submitted %llu  completed %llu  failed %llu\n",
                static_cast<unsigned long long>(queries_submitted),
                static_cast<unsigned long long>(queries_completed),
                static_cast<unsigned long long>(queries_failed));
  os << line;
  std::snprintf(line, sizeof(line),
                "batches    executed %llu  avg size %.2f  max size %llu  "
                "duplicates collapsed %llu\n",
                static_cast<unsigned long long>(batches_executed),
                avg_batch_size(),
                static_cast<unsigned long long>(max_batch_size),
                static_cast<unsigned long long>(duplicates_collapsed));
  os << line;
  std::snprintf(line, sizeof(line),
                "scans      requested %llu  performed %llu  sharing %.2fx  "
                "scan-many %llu\n",
                static_cast<unsigned long long>(bucket_scans_requested),
                static_cast<unsigned long long>(bucket_scans_performed),
                sharing_factor(),
                static_cast<unsigned long long>(scan_many_calls));
  os << line;
  std::snprintf(line, sizeof(line),
                "records    examined %llu  matched %llu\n",
                static_cast<unsigned long long>(records_examined),
                static_cast<unsigned long long>(records_matched));
  os << line;
  std::snprintf(line, sizeof(line),
                "routing    routed %llu  rerouted %llu\n",
                static_cast<unsigned long long>(routed_queries),
                static_cast<unsigned long long>(degraded_reroutes));
  os << line;
  std::snprintf(line, sizeof(line),
                "topology   version %llu  migrating buckets %llu  "
                "batch retries %llu\n",
                static_cast<unsigned long long>(topology_version),
                static_cast<unsigned long long>(migrating_buckets),
                static_cast<unsigned long long>(topology_retries));
  os << line;
  std::snprintf(line, sizeof(line),
                "queue      depth %lld  max depth %lld\n",
                static_cast<long long>(queue_depth),
                static_cast<long long>(max_queue_depth));
  os << line;
  os << "latency    p50 " << FormatMicros(query_latency.PercentileMicros(0.50))
     << "  p95 " << FormatMicros(query_latency.PercentileMicros(0.95))
     << "  p99 " << FormatMicros(query_latency.PercentileMicros(0.99))
     << "  mean " << FormatMicros(query_latency.mean_micros()) << "\n";
  os << "batch lat. p50 " << FormatMicros(batch_latency.PercentileMicros(0.50))
     << "  p95 " << FormatMicros(batch_latency.PercentileMicros(0.95))
     << "  p99 " << FormatMicros(batch_latency.PercentileMicros(0.99))
     << "\n";
  std::snprintf(line, sizeof(line), "uptime     %.2f ms\n", uptime_ms);
  os << line;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    std::snprintf(line, sizeof(line),
                  "device %-3zu scans %llu  examined %llu  routed %llu  "
                  "rerouted %llu  busy %.2f ms  util %.1f%%\n",
                  d,
                  static_cast<unsigned long long>(devices[d].bucket_scans),
                  static_cast<unsigned long long>(
                      devices[d].records_examined),
                  static_cast<unsigned long long>(devices[d].routed_queries),
                  static_cast<unsigned long long>(
                      devices[d].degraded_reroutes),
                  devices[d].busy_ms, 100.0 * devices[d].utilization);
    os << line;
  }
  return os.str();
}

std::string StatsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{";
  os << "\"queries_submitted\":" << queries_submitted
     << ",\"queries_completed\":" << queries_completed
     << ",\"queries_failed\":" << queries_failed
     << ",\"batches_executed\":" << batches_executed
     << ",\"avg_batch_size\":" << avg_batch_size()
     << ",\"max_batch_size\":" << max_batch_size
     << ",\"duplicates_collapsed\":" << duplicates_collapsed
     << ",\"bucket_scans_requested\":" << bucket_scans_requested
     << ",\"bucket_scans_performed\":" << bucket_scans_performed
     << ",\"sharing_factor\":" << sharing_factor()
     << ",\"scan_many_calls\":" << scan_many_calls
     << ",\"records_examined\":" << records_examined
     << ",\"records_matched\":" << records_matched
     << ",\"routed_queries\":" << routed_queries
     << ",\"degraded_reroutes\":" << degraded_reroutes
     << ",\"topology_version\":" << topology_version
     << ",\"migrating_buckets\":" << migrating_buckets
     << ",\"topology_retries\":" << topology_retries
     << ",\"queue_depth\":" << queue_depth
     << ",\"max_queue_depth\":" << max_queue_depth
     << ",\"uptime_ms\":" << uptime_ms;
  os << ",\"query_latency_us\":{\"p50\":"
     << query_latency.PercentileMicros(0.50)
     << ",\"p95\":" << query_latency.PercentileMicros(0.95)
     << ",\"p99\":" << query_latency.PercentileMicros(0.99)
     << ",\"mean\":" << query_latency.mean_micros() << "}";
  os << ",\"batch_latency_us\":{\"p50\":"
     << batch_latency.PercentileMicros(0.50)
     << ",\"p95\":" << batch_latency.PercentileMicros(0.95)
     << ",\"p99\":" << batch_latency.PercentileMicros(0.99) << "}";
  os << ",\"devices\":[";
  for (std::size_t d = 0; d < devices.size(); ++d) {
    if (d > 0) os << ",";
    os << "{\"device\":" << d
       << ",\"bucket_scans\":" << devices[d].bucket_scans
       << ",\"records_examined\":" << devices[d].records_examined
       << ",\"routed_queries\":" << devices[d].routed_queries
       << ",\"degraded_reroutes\":" << devices[d].degraded_reroutes
       << ",\"busy_ms\":" << devices[d].busy_ms
       << ",\"utilization\":" << devices[d].utilization << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace fxdist
