// StatsSnapshot: a point-in-time copy of the QueryEngine's metrics.
//
// The counters are exact and — under a fixed seed and a single worker
// shard — deterministic, so tests can assert on them; the timing fields
// (latency quantiles, utilization) are wall-clock measurements and vary
// run to run.

#ifndef FXDIST_ENGINE_STATS_SNAPSHOT_H_
#define FXDIST_ENGINE_STATS_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace fxdist {

/// One device's share of the engine's work.
struct DeviceStats {
  std::uint64_t bucket_scans = 0;      ///< distinct buckets scanned
  std::uint64_t records_examined = 0;
  /// Representative queries with at least one qualified bucket placed on
  /// this device (a sharded composite's per-shard routing counter).
  std::uint64_t routed_queries = 0;
  /// Qualified buckets this device owned but a degraded backend served
  /// from another device (0 unless a replica is down).
  std::uint64_t degraded_reroutes = 0;
  double busy_ms = 0.0;                ///< summed scan wall-clock
  double utilization = 0.0;            ///< busy_ms / engine uptime
};

struct StatsSnapshot {
  // -- Deterministic counters ------------------------------------------
  std::uint64_t queries_submitted = 0;   ///< admitted via Submit()
  std::uint64_t queries_completed = 0;
  std::uint64_t queries_failed = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t max_batch_size = 0;
  std::uint64_t duplicates_collapsed = 0;
  /// Sum over executed queries of |R(q)| — what one-at-a-time execution
  /// would fetch.
  std::uint64_t bucket_scans_requested = 0;
  /// Distinct (bucket, batch) scans actually performed.
  std::uint64_t bucket_scans_performed = 0;
  /// ScanMany scatter-gathers issued to the backend (one per device per
  /// batch; against a remote shard each becomes one frame per chunk).
  std::uint64_t scan_many_calls = 0;
  std::uint64_t records_examined = 0;
  std::uint64_t records_matched = 0;
  /// Sums of the per-device counters (devices[i].routed_queries /
  /// .degraded_reroutes) so aggregate dashboards need not re-sum.
  std::uint64_t routed_queries = 0;
  std::uint64_t degraded_reroutes = 0;
  /// Batches re-planned because a topology cutover landed mid-batch.
  std::uint64_t topology_retries = 0;

  // -- Topology plane ---------------------------------------------------
  /// The backend's active topology generation (1 unless a migrating
  /// wrapper has cut over).
  std::uint64_t topology_version = 1;
  /// Buckets an in-progress migration has not yet copied (0 when idle).
  std::uint64_t migrating_buckets = 0;

  // -- Point-in-time levels --------------------------------------------
  std::int64_t queue_depth = 0;
  std::int64_t max_queue_depth = 0;

  // -- Wall-clock measurements -----------------------------------------
  double uptime_ms = 0.0;
  HistogramSnapshot query_latency;  ///< submit/call to completion, us
  HistogramSnapshot batch_latency;  ///< per executed batch, us
  std::vector<DeviceStats> devices;

  double avg_batch_size() const {
    return batches_executed == 0
               ? 0.0
               : static_cast<double>(queries_completed) /
                     static_cast<double>(batches_executed);
  }
  /// requested / performed (>= 1; higher = more sharing exploited).
  double sharing_factor() const {
    return bucket_scans_performed == 0
               ? 1.0
               : static_cast<double>(bucket_scans_requested) /
                     static_cast<double>(bucket_scans_performed);
  }

  /// Multi-line human-readable report (the `serve-bench` output block).
  std::string ToString() const;

  /// The same snapshot as one JSON object (no trailing newline) — the
  /// `serve-bench --format=json` machine-readable form.
  std::string ToJson() const;
};

}  // namespace fxdist

#endif  // FXDIST_ENGINE_STATS_SNAPSHOT_H_
