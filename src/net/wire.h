// Framed wire protocol for remote StorageBackend access.
//
// Two header layouts are in service.  Version 1 (the PR 4 format, still
// fully supported for old peers):
//
//   offset  size  field
//   0       4     magic   0x46585721 ("FXW!"), little-endian
//   4       2     version (1)
//   6       1     opcode  (WireOp)
//   7       1     flags   (bit 0: reply)
//   8       4     payload length, little-endian
//   12      n     payload
//   12+n    8     FNV-1a 64 checksum over header + payload, little-endian
//
// Version 2 adds a correlation id so replies can complete out of order on
// a multiplexed connection:
//
//   offset  size  field
//   0       4     magic   0x46585721 ("FXW!"), little-endian
//   4       2     version (2)
//   6       1     opcode  (WireOp)
//   7       1     flags   (bit 0: reply)
//   8       8     correlation id, little-endian (echoed verbatim in reply)
//   16      4     payload length, little-endian
//   20      n     payload
//   20+n    8     FNV-1a 64 checksum over header + payload, little-endian
//
// All integers on the wire are little-endian and written byte-by-byte, so
// the format is host-endianness independent.  A stream reader pulls the
// first kWireHeaderSize bytes, asks WireHeaderSizeFromPrefix how long the
// header actually is (both layouts share the magic/version prefix), then
// FrameSizeFromHeader for the full frame length.  DecodeFrame validates
// magic, version, opcode, length and checksum before returning; a frame
// that fails any check is rejected with DataLoss (corruption / over-limit
// length) or InvalidArgument (wrong protocol/version) and never causes an
// over-read or an attacker-sized allocation.
//
// Payloads are op-specific and built with PayloadWriter / parsed with
// PayloadReader, a bounds-checked cursor whose every read can fail.
// Reply payloads always start with an encoded Status; body fields follow
// only when the status is OK.
//
// Payload size limits: kWireMaxPayload (4 MiB) is the default per-frame
// cap; peers may negotiate a higher one at handshake up to
// kWireMaxPayloadCeiling (64 MiB), past which every build refuses the
// frame outright.  FrameSizeFromHeader takes the negotiated cap so the
// limit is enforced from the header alone, before the payload is ever
// buffered.

#ifndef FXDIST_NET_WIRE_H_
#define FXDIST_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hashing/multikey_hash.h"
#include "hashing/value.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

inline constexpr std::uint32_t kWireMagic = 0x46585721u;  // "FXW!"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::uint16_t kWireVersionMux = 2;
inline constexpr std::size_t kWireHeaderSize = 12;      ///< v1 layout
inline constexpr std::size_t kWireHeaderSizeMux = 20;   ///< v2 layout
inline constexpr std::size_t kWireChecksumSize = 8;
/// Default per-frame payload cap, enforced from the header before any
/// allocation.  Handshake negotiation may raise it per connection.
inline constexpr std::uint32_t kWireMaxPayload = 4u << 20;
/// Absolute ceiling no negotiation can exceed.
inline constexpr std::uint32_t kWireMaxPayloadCeiling = 64u << 20;

/// Operations of the remote StorageBackend surface.  Values are part of
/// the wire format; append only.
enum class WireOp : std::uint8_t {
  kHandshake = 1,     ///< -> version + construction blueprint text
  kInsert = 2,        ///< record -> current bucket-space shape
  kDelete = 3,        ///< query -> removed count
  kExecute = 4,       ///< query -> QueryResult
  kScanBucket = 5,    ///< (device, bucket) -> records
  kIsBucketLive = 6,  ///< (device, bucket) -> bool
  kNumRecords = 7,    ///< -> u64
  kRecordCounts = 8,  ///< -> per-device u64s
  kMarkDown = 9,      ///< device -> ()
  kMarkUp = 10,       ///< device -> ()
  kListRecords = 11,  ///< -> every live record (persistence hook)
  kScanMany = 12,     ///< (device, bucket)... -> records per ref (v2 only)
  kInsertBatch = 13,  ///< records -> inserted count + shape (v2 only)
  kTopology = 14,     ///< -> version + migrating buckets + plane blueprint
  kAnalyzeRange = 15, ///< (mask, bucket range) -> per-device partial counts
  kError = 127,       ///< reply to an undecodable request: Status only
};

/// Feature bits exchanged in the v2 handshake.
inline constexpr std::uint32_t kWireFeatureScanMany = 1u << 0;
inline constexpr std::uint32_t kWireFeatureInsertBatch = 1u << 1;
/// Server runs bucket-range response sweeps (kAnalyzeRange) so a
/// coordinator can fan the fig-1..4 sweeps out; clients talking to a
/// server without the bit run the range on their own placement twin.
inline constexpr std::uint32_t kWireFeatureAnalyzeRange = 1u << 2;

/// The opcode, or InvalidArgument for a byte outside the enum.
Result<WireOp> ParseWireOp(std::uint8_t raw);

/// Stable name for diagnostics ("Insert", "ScanBucket", ...).
const char* WireOpName(WireOp op);

/// One decoded frame.  `version` / `correlation_id` default to the v1
/// layout (no correlation), so aggregate-initializing the first three
/// members keeps producing frames old peers understand.
struct WireFrame {
  WireOp op = WireOp::kHandshake;
  bool is_reply = false;
  std::string payload;
  std::uint16_t version = kWireVersion;
  std::uint64_t correlation_id = 0;
};

/// FNV-1a 64 over `bytes`.
std::uint64_t WireChecksum(std::string_view bytes);

/// Serializes header + payload + checksum in the layout `frame.version`
/// names.  The payload must not exceed kWireMaxPayloadCeiling (DCHECK'd;
/// oversized payloads indicate a caller bug — fallible callers go through
/// EncodeFrameBounded).
std::string EncodeFrame(const WireFrame& frame);

/// EncodeFrame with the limit enforced as a returned error instead of a
/// DCHECK: InvalidArgument when the payload exceeds `max_payload` (or the
/// absolute ceiling).  The choke point for anything that serializes
/// unbounded user data (record lists, scan results).
Result<std::string> EncodeFrameBounded(const WireFrame& frame,
                                       std::uint32_t max_payload);

/// Header length (kWireHeaderSize or kWireHeaderSizeMux) announced by a
/// frame prefix of at least 6 bytes, after validating magic and version.
/// Stream readers call this on the first kWireHeaderSize bytes to learn
/// whether more header follows.
Result<std::size_t> WireHeaderSizeFromPrefix(std::string_view prefix);

/// Total frame size (header + payload + checksum) announced by a complete
/// header, after validating magic, version and payload length against
/// `max_payload` — what a stream reader needs before the full frame has
/// arrived.  Over-limit lengths are DataLoss: the bytes are not trusted
/// enough to allocate for.
Result<std::size_t> FrameSizeFromHeader(
    std::string_view header, std::uint32_t max_payload = kWireMaxPayload);

/// Validates and decodes one complete frame.
Result<WireFrame> DecodeFrame(std::string_view bytes,
                              std::uint32_t max_payload = kWireMaxPayload);

/// Append-only payload builder.  Writes cannot fail mid-stream; instead a
/// length field that cannot be represented in its 32-bit wire slot
/// poisons the writer (sticky), every later write becomes a no-op, and
/// the encode choke points turn `ok() == false` into InvalidArgument.
/// Nothing oversized is ever half-appended.
class PayloadWriter {
 public:
  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void F64(double v);  ///< IEEE-754 bits, little-endian
  void Str(std::string_view s);

  void WriteStatus(const Status& status);
  void WriteValue(const FieldValue& value);
  void WriteRecord(const Record& record);
  void WriteRecords(const std::vector<Record>& records);
  void WriteQuery(const ValueQuery& query);
  void WriteStats(const QueryStats& stats);
  void WriteResult(const QueryResult& result);

  /// False once any length field overflowed its wire slot.
  bool ok() const { return !overflow_; }
  /// OK, or the InvalidArgument describing the first overflow.
  Status CheckOk() const;

  const std::string& payload() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  /// Encodes a size_t into a u32 length slot; poisons on overflow and
  /// reports whether the caller may proceed with the variable part.
  bool Len(std::size_t n, const char* what);

  std::string out_;
  bool overflow_ = false;
  std::string overflow_what_;
};

/// Bounds-checked payload cursor.  Every read returns an error instead of
/// over-reading; element counts are sanity-checked against the remaining
/// byte budget before any allocation, so a corrupted count cannot force a
/// huge reserve.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  Result<std::uint8_t> U8();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<double> F64();
  Result<std::string> Str();

  /// Parses an encoded status into `*out`.  The returned Status is the
  /// *parse* outcome, not the parsed value (Result<Status> would be
  /// ambiguous).
  Status ReadStatusInto(Status* out);
  Result<FieldValue> ReadValue();
  Result<Record> ReadRecord();
  Result<std::vector<Record>> ReadRecords();
  Result<ValueQuery> ReadQuery();
  Result<QueryStats> ReadStats();
  Result<QueryResult> ReadResult();

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool AtEnd() const { return pos_ == payload_.size(); }
  /// DataLoss unless the whole payload was consumed (catches truncated
  /// writers and desynced readers alike).
  Status ExpectEnd() const;

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_NET_WIRE_H_
