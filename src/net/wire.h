// Framed wire protocol for remote StorageBackend access.
//
// Every message is one frame:
//
//   offset  size  field
//   0       4     magic   0x46585721 ("FXW!"), little-endian
//   4       2     version (kWireVersion; peers must match exactly)
//   6       1     opcode  (WireOp)
//   7       1     flags   (bit 0: reply)
//   8       4     payload length, little-endian (<= kWireMaxPayload)
//   12      n     payload
//   12+n    8     FNV-1a 64 checksum over header + payload, little-endian
//
// All integers on the wire are little-endian and written byte-by-byte, so
// the format is host-endianness independent.  DecodeFrame validates magic,
// version, opcode, length and checksum before returning; a frame that
// fails any check is rejected with DataLoss (corruption) or
// InvalidArgument (wrong protocol/version) and never causes an over-read.
//
// Payloads are op-specific and built with PayloadWriter / parsed with
// PayloadReader, a bounds-checked cursor whose every read can fail.
// Reply payloads always start with an encoded Status; body fields follow
// only when the status is OK.

#ifndef FXDIST_NET_WIRE_H_
#define FXDIST_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hashing/multikey_hash.h"
#include "hashing/value.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

inline constexpr std::uint32_t kWireMagic = 0x46585721u;  // "FXW!"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kWireHeaderSize = 12;
inline constexpr std::size_t kWireChecksumSize = 8;
/// Frames larger than this are rejected before any allocation.
inline constexpr std::uint32_t kWireMaxPayload = 64u << 20;

/// Operations of the remote StorageBackend surface.  Values are part of
/// the wire format; append only.
enum class WireOp : std::uint8_t {
  kHandshake = 1,     ///< -> version + construction blueprint text
  kInsert = 2,        ///< record -> current bucket-space shape
  kDelete = 3,        ///< query -> removed count
  kExecute = 4,       ///< query -> QueryResult
  kScanBucket = 5,    ///< (device, bucket) -> records
  kIsBucketLive = 6,  ///< (device, bucket) -> bool
  kNumRecords = 7,    ///< -> u64
  kRecordCounts = 8,  ///< -> per-device u64s
  kMarkDown = 9,      ///< device -> ()
  kMarkUp = 10,       ///< device -> ()
  kListRecords = 11,  ///< -> every live record (persistence hook)
  kError = 127,       ///< reply to an undecodable request: Status only
};

/// The opcode, or InvalidArgument for a byte outside the enum.
Result<WireOp> ParseWireOp(std::uint8_t raw);

/// Stable name for diagnostics ("Insert", "ScanBucket", ...).
const char* WireOpName(WireOp op);

/// One decoded frame.
struct WireFrame {
  WireOp op = WireOp::kHandshake;
  bool is_reply = false;
  std::string payload;
};

/// FNV-1a 64 over `bytes`.
std::uint64_t WireChecksum(std::string_view bytes);

/// Serializes header + payload + checksum.  The payload must not exceed
/// kWireMaxPayload (DCHECK'd; oversized payloads indicate a caller bug).
std::string EncodeFrame(const WireFrame& frame);

/// Total frame size (header + payload + checksum) announced by a header
/// prefix of at least kWireHeaderSize bytes, after validating magic,
/// version and payload length — what a stream reader needs before the
/// full frame has arrived.
Result<std::size_t> FrameSizeFromHeader(std::string_view header);

/// Validates and decodes one complete frame.
Result<WireFrame> DecodeFrame(std::string_view bytes);

/// Append-only payload builder.  All writes are infallible.
class PayloadWriter {
 public:
  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void F64(double v);  ///< IEEE-754 bits, little-endian
  void Str(std::string_view s);

  void WriteStatus(const Status& status);
  void WriteValue(const FieldValue& value);
  void WriteRecord(const Record& record);
  void WriteRecords(const std::vector<Record>& records);
  void WriteQuery(const ValueQuery& query);
  void WriteStats(const QueryStats& stats);
  void WriteResult(const QueryResult& result);

  const std::string& payload() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked payload cursor.  Every read returns an error instead of
/// over-reading; element counts are sanity-checked against the remaining
/// byte budget before any allocation, so a corrupted count cannot force a
/// huge reserve.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  Result<std::uint8_t> U8();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<double> F64();
  Result<std::string> Str();

  /// Parses an encoded status into `*out`.  The returned Status is the
  /// *parse* outcome, not the parsed value (Result<Status> would be
  /// ambiguous).
  Status ReadStatusInto(Status* out);
  Result<FieldValue> ReadValue();
  Result<Record> ReadRecord();
  Result<std::vector<Record>> ReadRecords();
  Result<ValueQuery> ReadQuery();
  Result<QueryStats> ReadStats();
  Result<QueryResult> ReadResult();

  std::size_t remaining() const { return payload_.size() - pos_; }
  bool AtEnd() const { return pos_ == payload_.size(); }
  /// DataLoss unless the whole payload was consumed (catches truncated
  /// writers and desynced readers alike).
  Status ExpectEnd() const;

 private:
  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_NET_WIRE_H_
