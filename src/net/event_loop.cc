#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace fxdist {

namespace {

// Address of a thread_local, used as a cheap thread identity for
// InLoopThread() without dragging in std::thread::id comparisons.
const void* ThisThreadTag() {
  static thread_local char tag;
  return &tag;
}

}  // namespace

Result<std::unique_ptr<EventLoop>> EventLoop::Create(std::uint64_t tick_ms) {
  if (tick_ms == 0) {
    return Status::InvalidArgument("event loop tick must be >= 1ms");
  }
  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    int err = errno;
    ::close(epoll_fd);
    return Status::Internal(std::string("eventfd: ") + std::strerror(err));
  }
  std::unique_ptr<EventLoop> loop(new EventLoop(epoll_fd, wake_fd, tick_ms));
  Status added = loop->Add(wake_fd, EPOLLIN, /*edge_triggered=*/false,
                           [wake_fd](std::uint32_t) {
                             std::uint64_t n;
                             while (::read(wake_fd, &n, sizeof(n)) > 0) {
                             }
                           });
  if (!added.ok()) return added;
  return loop;
}

EventLoop::EventLoop(int epoll_fd, int wake_fd, std::uint64_t tick_ms)
    : epoll_fd_(epoll_fd), wake_fd_(wake_fd), tick_ms_(tick_ms) {}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

Status EventLoop::Add(int fd, std::uint32_t events, bool edge_triggered,
                      IoCallback callback) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | (edge_triggered ? EPOLLET : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(ADD): ") +
                            std::strerror(errno));
  }
  FdState state;
  state.callback = std::move(callback);
  state.events = events;
  state.edge = edge_triggered;
  fds_[fd] = std::move(state);
  return Status::OK();
}

Status EventLoop::Modify(int fd, std::uint32_t events) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) {
    return Status::NotFound("fd not registered with event loop");
  }
  if (it->second.events == events) return Status::OK();
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | (it->second.edge ? EPOLLET : 0u);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(MOD): ") +
                            std::strerror(errno));
  }
  it->second.events = events;
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  if (fds_.erase(fd) == 0) return;
  // Failure here means the fd is already gone from the kernel set
  // (closed); nothing to unwind.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

std::uint64_t EventLoop::AddTimer(std::uint64_t delay_ms,
                                  std::function<void()> fn) {
  if (timers_.empty()) {
    // The wheel freezes while no timers are armed; restart the tick
    // clock from now so the frozen stretch doesn't count against this
    // deadline.
    next_tick_at_ = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(tick_ms_);
  }
  std::uint64_t ticks = (delay_ms + tick_ms_ - 1) / tick_ms_;
  if (ticks == 0) ticks = 1;
  auto timer = std::make_shared<Timer>();
  timer->id = next_timer_id_++;
  timer->rounds = (ticks - 1) / kWheelSlots;
  timer->fn = std::move(fn);
  std::size_t slot =
      (wheel_pos_ + static_cast<std::size_t>(ticks)) % kWheelSlots;
  std::uint64_t id = timer->id;
  wheel_[slot].push_back(timer);
  timers_[id] = std::move(timer);
  return id;
}

void EventLoop::CancelTimer(std::uint64_t id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  // The wheel slot still holds a (cancelled) entry; the sweep drops it.
  it->second->cancelled = true;
  timers_.erase(it);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(fn));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::RunTasks() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  for (auto& task : batch) task();
}

void EventLoop::AdvanceWheel() {
  if (timers_.empty()) return;
  auto now = std::chrono::steady_clock::now();
  while (now >= next_tick_at_) {
    next_tick_at_ += std::chrono::milliseconds(tick_ms_);
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    // Splice the slot out so callbacks may arm new timers (possibly
    // into this very slot) without invalidating the sweep.
    TimerSlot due;
    due.swap(wheel_[wheel_pos_]);
    for (auto& timer : due) {
      if (timer->cancelled) continue;
      if (timer->rounds > 0) {
        --timer->rounds;
        wheel_[wheel_pos_].push_back(timer);
        continue;
      }
      timers_.erase(timer->id);
      timer->fn();
    }
    if (timers_.empty()) return;
  }
}

int EventLoop::NextTimeoutMs() const {
  if (timers_.empty()) return -1;
  auto now = std::chrono::steady_clock::now();
  if (now >= next_tick_at_) return 0;
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                next_tick_at_ - now)
                .count();
  // +1 so we wake just after the tick boundary, not a hair before it.
  if (ms >= 3600 * 1000) return 3600 * 1000;
  return static_cast<int>(ms) + 1;
}

void EventLoop::Run() {
  loop_thread_.store(ThisThreadTag(), std::memory_order_release);
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, NextTimeoutMs());
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      auto it = fds_.find(fd);
      if (it == fds_.end()) continue;  // removed by an earlier callback
      // Copy: the callback may Remove(fd) and invalidate the map entry.
      IoCallback callback = it->second.callback;
      callback(events[i].events);
    }
    RunTasks();
    AdvanceWheel();
  }
  // Teardown tasks posted together with Stop() still run, on this
  // thread, before Run returns.
  RunTasks();
  loop_thread_.store(nullptr, std::memory_order_release);
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::InLoopThread() const {
  return loop_thread_.load(std::memory_order_acquire) == ThisThreadTag();
}

}  // namespace fxdist
