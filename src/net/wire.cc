#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace fxdist {

namespace {

void AppendU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t LoadU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[0]) |
                                    static_cast<std::uint16_t>(b[1]) << 8);
}

std::uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint32_t>(b[i]);
  return v;
}

std::uint64_t LoadU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint64_t>(b[i]);
  return v;
}

constexpr std::uint8_t kFlagReply = 0x01;

std::size_t HeaderSizeForVersion(std::uint16_t version) {
  return version == kWireVersionMux ? kWireHeaderSizeMux : kWireHeaderSize;
}

}  // namespace

Result<WireOp> ParseWireOp(std::uint8_t raw) {
  if ((raw >= 1 && raw <= 15) ||
      raw == static_cast<std::uint8_t>(WireOp::kError)) {
    return static_cast<WireOp>(raw);
  }
  return Status::InvalidArgument("unknown wire opcode " +
                                 std::to_string(static_cast<unsigned>(raw)));
}

const char* WireOpName(WireOp op) {
  switch (op) {
    case WireOp::kHandshake: return "Handshake";
    case WireOp::kInsert: return "Insert";
    case WireOp::kDelete: return "Delete";
    case WireOp::kExecute: return "Execute";
    case WireOp::kScanBucket: return "ScanBucket";
    case WireOp::kIsBucketLive: return "IsBucketLive";
    case WireOp::kNumRecords: return "NumRecords";
    case WireOp::kRecordCounts: return "RecordCounts";
    case WireOp::kMarkDown: return "MarkDown";
    case WireOp::kMarkUp: return "MarkUp";
    case WireOp::kListRecords: return "ListRecords";
    case WireOp::kScanMany: return "ScanMany";
    case WireOp::kInsertBatch: return "InsertBatch";
    case WireOp::kTopology: return "Topology";
    case WireOp::kAnalyzeRange: return "AnalyzeRange";
    case WireOp::kError: return "Error";
  }
  return "?";
}

std::uint64_t WireChecksum(std::string_view bytes) {
  // FNV-1a 64.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string EncodeFrame(const WireFrame& frame) {
  FXDIST_DCHECK(frame.version == kWireVersion ||
                frame.version == kWireVersionMux);
  FXDIST_DCHECK(frame.payload.size() <= kWireMaxPayloadCeiling);
  std::string out;
  out.reserve(HeaderSizeForVersion(frame.version) + frame.payload.size() +
              kWireChecksumSize);
  AppendU32(out, kWireMagic);
  AppendU16(out, frame.version);
  out.push_back(static_cast<char>(frame.op));
  out.push_back(static_cast<char>(frame.is_reply ? kFlagReply : 0));
  if (frame.version == kWireVersionMux) {
    AppendU64(out, frame.correlation_id);
  }
  AppendU32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  AppendU64(out, WireChecksum(out));
  return out;
}

Result<std::string> EncodeFrameBounded(const WireFrame& frame,
                                       std::uint32_t max_payload) {
  const std::uint64_t limit =
      std::min<std::uint64_t>(max_payload, kWireMaxPayloadCeiling);
  if (frame.payload.size() > limit) {
    return Status::InvalidArgument(
        std::string(WireOpName(frame.op)) + " payload of " +
        std::to_string(frame.payload.size()) +
        " bytes exceeds the frame limit of " + std::to_string(limit));
  }
  return EncodeFrame(frame);
}

Result<std::size_t> WireHeaderSizeFromPrefix(std::string_view prefix) {
  if (prefix.size() < 6) {
    return Status::DataLoss("wire header truncated");
  }
  if (LoadU32(prefix.data()) != kWireMagic) {
    return Status::InvalidArgument("bad wire magic");
  }
  const std::uint16_t version = LoadU16(prefix.data() + 4);
  if (version != kWireVersion && version != kWireVersionMux) {
    return Status::InvalidArgument("wire version mismatch: peer speaks v" +
                                   std::to_string(version) +
                                   ", this build v1/v" +
                                   std::to_string(kWireVersionMux));
  }
  return HeaderSizeForVersion(version);
}

Result<std::size_t> FrameSizeFromHeader(std::string_view header,
                                        std::uint32_t max_payload) {
  auto header_size = WireHeaderSizeFromPrefix(header);
  FXDIST_RETURN_NOT_OK(header_size.status());
  if (header.size() < *header_size) {
    return Status::DataLoss("wire header truncated");
  }
  const std::uint32_t payload_len =
      LoadU32(header.data() + (*header_size - 4));
  const std::uint64_t limit =
      std::min<std::uint64_t>(max_payload, kWireMaxPayloadCeiling);
  if (payload_len > limit) {
    // DataLoss, not InvalidArgument: the length is read before the
    // checksum can vouch for it, so an over-limit value is treated as
    // corruption and never allocated for.
    return Status::DataLoss("wire payload length " +
                            std::to_string(payload_len) +
                            " exceeds the frame limit of " +
                            std::to_string(limit));
  }
  return *header_size + payload_len + kWireChecksumSize;
}

Result<WireFrame> DecodeFrame(std::string_view bytes,
                              std::uint32_t max_payload) {
  auto total = FrameSizeFromHeader(bytes, max_payload);
  FXDIST_RETURN_NOT_OK(total.status());
  if (bytes.size() != *total) {
    return Status::DataLoss("wire frame size mismatch: have " +
                            std::to_string(bytes.size()) + " bytes, header " +
                            "announces " + std::to_string(*total));
  }
  const std::size_t body = *total - kWireChecksumSize;
  if (LoadU64(bytes.data() + body) != WireChecksum(bytes.substr(0, body))) {
    return Status::DataLoss("wire frame failed checksum");
  }
  auto op = ParseWireOp(static_cast<std::uint8_t>(bytes[6]));
  FXDIST_RETURN_NOT_OK(op.status());
  WireFrame frame;
  frame.op = *op;
  frame.is_reply = (static_cast<std::uint8_t>(bytes[7]) & kFlagReply) != 0;
  frame.version = LoadU16(bytes.data() + 4);
  std::size_t header_size = kWireHeaderSize;
  if (frame.version == kWireVersionMux) {
    frame.correlation_id = LoadU64(bytes.data() + 8);
    header_size = kWireHeaderSizeMux;
  }
  frame.payload.assign(bytes.data() + header_size, body - header_size);
  return frame;
}

// -- PayloadWriter -------------------------------------------------------

bool PayloadWriter::Len(std::size_t n, const char* what) {
  if (overflow_) return false;
  if (n > 0xffffffffull) {
    overflow_ = true;
    overflow_what_ = what;
    return false;
  }
  AppendU32(out_, static_cast<std::uint32_t>(n));
  return true;
}

Status PayloadWriter::CheckOk() const {
  if (!overflow_) return Status::OK();
  return Status::InvalidArgument("wire payload " + overflow_what_ +
                                 " length exceeds the 32-bit wire slot");
}

void PayloadWriter::U8(std::uint8_t v) {
  if (overflow_) return;
  out_.push_back(static_cast<char>(v));
}

void PayloadWriter::U32(std::uint32_t v) {
  if (overflow_) return;
  AppendU32(out_, v);
}

void PayloadWriter::U64(std::uint64_t v) {
  if (overflow_) return;
  AppendU64(out_, v);
}

void PayloadWriter::F64(double v) {
  if (overflow_) return;
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out_, bits);
}

void PayloadWriter::Str(std::string_view s) {
  // The length gate runs before the body is touched, so a poisoned write
  // never half-appends (and never dereferences) an oversized view.
  if (!Len(s.size(), "string")) return;
  out_.append(s);
}

void PayloadWriter::WriteStatus(const Status& status) {
  U8(static_cast<std::uint8_t>(status.code()));
  Str(status.message());
}

void PayloadWriter::WriteValue(const FieldValue& value) {
  U8(static_cast<std::uint8_t>(TypeOf(value)));
  switch (TypeOf(value)) {
    case ValueType::kInt64:
      U64(static_cast<std::uint64_t>(std::get<std::int64_t>(value)));
      break;
    case ValueType::kDouble:
      F64(std::get<double>(value));
      break;
    case ValueType::kString:
      Str(std::get<std::string>(value));
      break;
  }
}

void PayloadWriter::WriteRecord(const Record& record) {
  if (!Len(record.size(), "record arity")) return;
  for (const FieldValue& value : record) WriteValue(value);
}

void PayloadWriter::WriteRecords(const std::vector<Record>& records) {
  if (!Len(records.size(), "record count")) return;
  for (const Record& record : records) WriteRecord(record);
}

void PayloadWriter::WriteQuery(const ValueQuery& query) {
  if (!Len(query.size(), "query arity")) return;
  for (const auto& field : query) {
    U8(field.has_value() ? 1 : 0);
    if (field.has_value()) WriteValue(*field);
  }
}

void PayloadWriter::WriteStats(const QueryStats& stats) {
  if (!Len(stats.qualified_per_device.size(), "device count")) return;
  for (const std::uint64_t q : stats.qualified_per_device) U64(q);
  U64(stats.total_qualified);
  U64(stats.largest_response);
  U64(stats.optimal_bound);
  U8(stats.strict_optimal ? 1 : 0);
  U64(stats.records_examined);
  U64(stats.records_matched);
  F64(stats.disk_timing.parallel_ms);
  F64(stats.disk_timing.serial_ms);
  F64(stats.disk_timing.speedup);
  F64(stats.wall_ms);
  if (!Len(stats.device_wall_ms.size(), "device wall count")) return;
  for (const double w : stats.device_wall_ms) F64(w);
}

void PayloadWriter::WriteResult(const QueryResult& result) {
  WriteRecords(result.records);
  WriteStats(result.stats);
}

// -- PayloadReader -------------------------------------------------------

namespace {

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("wire payload truncated reading ") +
                          what);
}

}  // namespace

Result<std::uint8_t> PayloadReader::U8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<std::uint8_t>(payload_[pos_++]);
}

Result<std::uint32_t> PayloadReader::U32() {
  if (remaining() < 4) return Truncated("u32");
  const std::uint32_t v = LoadU32(payload_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> PayloadReader::U64() {
  if (remaining() < 8) return Truncated("u64");
  const std::uint64_t v = LoadU64(payload_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<double> PayloadReader::F64() {
  auto bits = U64();
  FXDIST_RETURN_NOT_OK(bits.status());
  double v = 0.0;
  std::memcpy(&v, &*bits, sizeof(v));
  return v;
}

Result<std::string> PayloadReader::Str() {
  auto len = U32();
  FXDIST_RETURN_NOT_OK(len.status());
  if (remaining() < *len) return Truncated("string body");
  std::string s(payload_.substr(pos_, *len));
  pos_ += *len;
  return s;
}

Status PayloadReader::ExpectEnd() const {
  if (!AtEnd()) {
    return Status::DataLoss("wire payload has " + std::to_string(remaining()) +
                            " trailing bytes");
  }
  return Status::OK();
}

Status PayloadReader::ReadStatusInto(Status* out) {
  auto code = U8();
  FXDIST_RETURN_NOT_OK(code.status());
  if (*code > static_cast<std::uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::DataLoss("wire status code out of range");
  }
  auto message = Str();
  FXDIST_RETURN_NOT_OK(message.status());
  if (*code == 0 && !message->empty()) {
    return Status::DataLoss("wire OK status carries a message");
  }
  *out = Status(static_cast<StatusCode>(*code), *std::move(message));
  return Status::OK();
}

Result<FieldValue> PayloadReader::ReadValue() {
  auto tag = U8();
  FXDIST_RETURN_NOT_OK(tag.status());
  switch (*tag) {
    case static_cast<std::uint8_t>(ValueType::kInt64): {
      auto v = U64();
      FXDIST_RETURN_NOT_OK(v.status());
      return FieldValue(static_cast<std::int64_t>(*v));
    }
    case static_cast<std::uint8_t>(ValueType::kDouble): {
      auto v = F64();
      FXDIST_RETURN_NOT_OK(v.status());
      return FieldValue(*v);
    }
    case static_cast<std::uint8_t>(ValueType::kString): {
      auto v = Str();
      FXDIST_RETURN_NOT_OK(v.status());
      return FieldValue(*std::move(v));
    }
    default:
      return Status::DataLoss("wire value has unknown type tag");
  }
}

Result<Record> PayloadReader::ReadRecord() {
  auto count = U32();
  FXDIST_RETURN_NOT_OK(count.status());
  // Every value costs at least one tag byte.
  if (*count > remaining()) return Truncated("record values");
  Record record;
  record.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto value = ReadValue();
    FXDIST_RETURN_NOT_OK(value.status());
    record.push_back(*std::move(value));
  }
  return record;
}

Result<std::vector<Record>> PayloadReader::ReadRecords() {
  auto count = U32();
  FXDIST_RETURN_NOT_OK(count.status());
  // Every record costs at least its 4-byte arity.
  if (*count > remaining() / 4) return Truncated("record list");
  std::vector<Record> records;
  records.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto record = ReadRecord();
    FXDIST_RETURN_NOT_OK(record.status());
    records.push_back(*std::move(record));
  }
  return records;
}

Result<ValueQuery> PayloadReader::ReadQuery() {
  auto count = U32();
  FXDIST_RETURN_NOT_OK(count.status());
  if (*count > remaining()) return Truncated("query fields");
  ValueQuery query;
  query.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto present = U8();
    FXDIST_RETURN_NOT_OK(present.status());
    if (*present > 1) return Status::DataLoss("wire query flag out of range");
    if (*present == 0) {
      query.push_back(std::nullopt);
      continue;
    }
    auto value = ReadValue();
    FXDIST_RETURN_NOT_OK(value.status());
    query.push_back(*std::move(value));
  }
  return query;
}

Result<QueryStats> PayloadReader::ReadStats() {
  QueryStats stats;
  auto devices = U32();
  FXDIST_RETURN_NOT_OK(devices.status());
  if (*devices > remaining() / 8) return Truncated("qualified counts");
  stats.qualified_per_device.reserve(*devices);
  for (std::uint32_t i = 0; i < *devices; ++i) {
    auto q = U64();
    FXDIST_RETURN_NOT_OK(q.status());
    stats.qualified_per_device.push_back(*q);
  }
#define FXDIST_WIRE_READ(field, reader)     \
  do {                                      \
    auto _v = reader();                     \
    FXDIST_RETURN_NOT_OK(_v.status());      \
    field = *_v;                            \
  } while (false)
  FXDIST_WIRE_READ(stats.total_qualified, U64);
  FXDIST_WIRE_READ(stats.largest_response, U64);
  FXDIST_WIRE_READ(stats.optimal_bound, U64);
  auto strict = U8();
  FXDIST_RETURN_NOT_OK(strict.status());
  if (*strict > 1) return Status::DataLoss("wire bool out of range");
  stats.strict_optimal = *strict != 0;
  FXDIST_WIRE_READ(stats.records_examined, U64);
  FXDIST_WIRE_READ(stats.records_matched, U64);
  FXDIST_WIRE_READ(stats.disk_timing.parallel_ms, F64);
  FXDIST_WIRE_READ(stats.disk_timing.serial_ms, F64);
  FXDIST_WIRE_READ(stats.disk_timing.speedup, F64);
  FXDIST_WIRE_READ(stats.wall_ms, F64);
#undef FXDIST_WIRE_READ
  auto walls = U32();
  FXDIST_RETURN_NOT_OK(walls.status());
  if (*walls > remaining() / 8) return Truncated("device wall times");
  stats.device_wall_ms.reserve(*walls);
  for (std::uint32_t i = 0; i < *walls; ++i) {
    auto w = F64();
    FXDIST_RETURN_NOT_OK(w.status());
    stats.device_wall_ms.push_back(*w);
  }
  return stats;
}

Result<QueryResult> PayloadReader::ReadResult() {
  QueryResult result;
  auto records = ReadRecords();
  FXDIST_RETURN_NOT_OK(records.status());
  result.records = *std::move(records);
  auto stats = ReadStats();
  FXDIST_RETURN_NOT_OK(stats.status());
  result.stats = *std::move(stats);
  return result;
}

}  // namespace fxdist
