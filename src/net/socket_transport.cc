#include "net/socket_transport.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "net/wire.h"

namespace fxdist {

namespace {

timeval TimeoutToTimeval(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  return tv;
}

bool IsTimeoutErrno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

/// Resolves `host` and opens a connected SOCK_STREAM fd with the send /
/// receive deadlines and TCP_NODELAY applied — the dial step shared by
/// SocketTransport and SocketFrameChannel.
Result<int> DialStream(const std::string& host, std::uint16_t port,
                       int io_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &found);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + ::gai_strerror(rc));
  }

  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const timeval tv = TimeoutToTimeval(io_timeout_ms);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    return Status::Unavailable("connect " + host + ":" + port_str + ": " +
                               std::strerror(last_errno));
  }
  return fd;
}

Result<std::uint16_t> ParsePortSpec(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("bad remote address (want host:port): " +
                                   host_port);
  }
  char* end = nullptr;
  const unsigned long long port =
      std::strtoull(host_port.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad remote port in: " + host_port);
  }
  return static_cast<std::uint16_t>(port);
}

}  // namespace

Status SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::Internal(std::string("fcntl(F_GETFL): ") +
                            std::strerror(errno));
  }
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) != 0) {
    return Status::Internal(std::string("fcntl(F_SETFL): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Result<int> CreateListenSocket(std::uint16_t port, int backlog,
                               std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable("bind port " + std::to_string(port) + ": " +
                               std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(err));
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  return fd;
}

Result<int> DialShardStream(const std::string& host, std::uint16_t port,
                            int io_timeout_ms) {
  return DialStream(host, port, io_timeout_ms);
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, std::uint16_t port, Options options) {
  if (host.empty()) return Status::InvalidArgument("empty host");
  if (port == 0) return Status::InvalidArgument("port 0");
  std::unique_ptr<SocketTransport> transport(
      new SocketTransport(host, port, options));
  {
    std::lock_guard<std::mutex> lock(transport->mutex_);
    FXDIST_RETURN_NOT_OK(transport->EnsureConnectedLocked());
  }
  return transport;
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectSpec(
    const std::string& host_port, Options options) {
  auto port = ParsePortSpec(host_port);
  FXDIST_RETURN_NOT_OK(port.status());
  return Connect(host_port.substr(0, host_port.rfind(':')), *port, options);
}

SocketTransport::~SocketTransport() {
  std::lock_guard<std::mutex> lock(mutex_);
  CloseLocked();
}

void SocketTransport::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SocketTransport::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::OK();
  auto fd = DialStream(host_, port_, options_.io_timeout_ms);
  FXDIST_RETURN_NOT_OK(fd.status());
  fd_ = *fd;
  return Status::OK();
}

Result<std::string> SocketTransport::RoundTrip(const std::string& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  FXDIST_RETURN_NOT_OK(EnsureConnectedLocked());

  // Send the whole frame.  A failure before the first byte leaves the
  // request undelivered (Unavailable); after that it is indeterminate.
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      CloseLocked();
      const std::string detail =
          n == 0 ? "connection closed" : std::strerror(err);
      if (sent == 0 && !IsTimeoutErrno(err)) {
        return Status::Unavailable("send to " + host_ + ": " + detail);
      }
      if (IsTimeoutErrno(err)) {
        return Status::DeadlineExceeded("send to " + host_ + " timed out");
      }
      return Status::DataLoss("send to " + host_ + " died mid-request: " +
                              detail);
    }
    sent += static_cast<std::size_t>(n);
  }

  // Receive header, size the frame, then receive the rest.
  std::string reply;
  auto recv_exact = [&](std::size_t want) -> Status {
    const std::size_t base = reply.size();
    reply.resize(base + want);
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n =
          ::recv(fd_, reply.data() + base + got, want - got, 0);
      if (n == 0) {
        CloseLocked();
        return Status::DataLoss("connection to " + host_ +
                                " closed mid-reply");
      }
      if (n < 0) {
        const int err = errno;
        CloseLocked();
        if (IsTimeoutErrno(err)) {
          return Status::DeadlineExceeded("no reply from " + host_ +
                                          " within deadline");
        }
        return Status::DataLoss("recv from " + host_ + ": " +
                                std::strerror(err));
      }
      got += static_cast<std::size_t>(n);
    }
    return Status::OK();
  };

  FXDIST_RETURN_NOT_OK(recv_exact(kWireHeaderSize));
  auto header_size = WireHeaderSizeFromPrefix(reply);
  if (!header_size.ok()) {
    CloseLocked();
    return Status::DataLoss("reply from " + host_ + " rejected: " +
                            header_size.status().message());
  }
  if (*header_size > reply.size()) {
    FXDIST_RETURN_NOT_OK(recv_exact(*header_size - reply.size()));
  }
  auto total =
      FrameSizeFromHeader(reply, max_payload_.load(std::memory_order_relaxed));
  if (!total.ok()) {
    // Garbage header: the stream is beyond recovery.
    CloseLocked();
    return Status::DataLoss("reply from " + host_ + " rejected: " +
                            total.status().message());
  }
  FXDIST_RETURN_NOT_OK(recv_exact(*total - reply.size()));
  return reply;
}

// -- SocketFrameChannel --------------------------------------------------

Result<std::unique_ptr<SocketFrameChannel>> SocketFrameChannel::Connect(
    const std::string& host, std::uint16_t port, Options options) {
  if (host.empty()) return Status::InvalidArgument("empty host");
  if (port == 0) return Status::InvalidArgument("port 0");
  std::unique_ptr<SocketFrameChannel> channel(
      new SocketFrameChannel(host, port, options));
  {
    std::lock_guard<std::mutex> lock(channel->state_mutex_);
    FXDIST_RETURN_NOT_OK(channel->EnsureConnectedLocked());
  }
  return channel;
}

Result<std::unique_ptr<SocketFrameChannel>> SocketFrameChannel::ConnectSpec(
    const std::string& host_port, Options options) {
  auto port = ParsePortSpec(host_port);
  FXDIST_RETURN_NOT_OK(port.status());
  return Connect(host_port.substr(0, host_port.rfind(':')), *port, options);
}

SocketFrameChannel::~SocketFrameChannel() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SocketFrameChannel::EnsureConnectedLocked() {
  if (shutdown_) return Status::Unavailable("frame channel shut down");
  if (fd_ >= 0) return Status::OK();
  auto fd = DialStream(host_, port_, options_.io_timeout_ms);
  FXDIST_RETURN_NOT_OK(fd.status());
  fd_ = *fd;
  return Status::OK();
}

int SocketFrameChannel::CurrentFd() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return fd_;
}

Status SocketFrameChannel::Send(const std::string& frame) {
  // Serialized under state_mutex_ so concurrent senders cannot
  // interleave bytes on the stream; Recv runs on an fd snapshot and
  // never blocks on this lock mid-frame.
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (shutdown_) return Status::Unavailable("frame channel shut down");
  if (fd_ < 0) return Status::Unavailable("frame channel not connected");
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      const std::string detail =
          n == 0 ? "connection closed" : std::strerror(err);
      if (sent == 0 && !IsTimeoutErrno(err)) {
        return Status::Unavailable("send to " + host_ + ": " + detail);
      }
      if (IsTimeoutErrno(err)) {
        return Status::DeadlineExceeded("send to " + host_ + " timed out");
      }
      return Status::DataLoss("send to " + host_ + " died mid-request: " +
                              detail);
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<std::string> SocketFrameChannel::Recv() {
  const int fd = CurrentFd();
  if (fd < 0) return Status::Unavailable("frame channel not connected");

  std::string frame;
  // `idle_ok` marks the wait for a frame's first byte: a receive timeout
  // there means the connection is merely quiet, so keep waiting.  Once
  // any byte of a frame has arrived, a timeout is a real error.
  auto recv_exact = [&](std::size_t want, bool idle_ok) -> Status {
    const std::size_t base = frame.size();
    frame.resize(base + want);
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::recv(fd, frame.data() + base + got, want - got, 0);
      if (n == 0) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_) return Status::Unavailable("frame channel shut down");
        return base + got == 0
                   ? Status::Unavailable("connection to " + host_ +
                                         " closed by peer")
                   : Status::DataLoss("connection to " + host_ +
                                      " closed mid-frame");
      }
      if (n < 0) {
        const int err = errno;
        if (IsTimeoutErrno(err)) {
          if (idle_ok && base + got == 0) {
            std::lock_guard<std::mutex> lock(state_mutex_);
            if (shutdown_) {
              return Status::Unavailable("frame channel shut down");
            }
            continue;  // idle between frames
          }
          return Status::DeadlineExceeded("reply from " + host_ +
                                          " stalled mid-frame");
        }
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_) return Status::Unavailable("frame channel shut down");
        return Status::DataLoss("recv from " + host_ + ": " +
                                std::strerror(err));
      }
      got += static_cast<std::size_t>(n);
    }
    return Status::OK();
  };

  FXDIST_RETURN_NOT_OK(recv_exact(kWireHeaderSize, /*idle_ok=*/true));
  auto header_size = WireHeaderSizeFromPrefix(frame);
  if (!header_size.ok()) {
    return Status::DataLoss("frame from " + host_ + " rejected: " +
                            header_size.status().message());
  }
  if (*header_size > frame.size()) {
    FXDIST_RETURN_NOT_OK(
        recv_exact(*header_size - frame.size(), /*idle_ok=*/false));
  }
  auto total =
      FrameSizeFromHeader(frame, max_payload_.load(std::memory_order_relaxed));
  if (!total.ok()) {
    return Status::DataLoss("frame from " + host_ + " rejected: " +
                            total.status().message());
  }
  FXDIST_RETURN_NOT_OK(recv_exact(*total - frame.size(), /*idle_ok=*/false));
  return frame;
}

Status SocketFrameChannel::Reset() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (shutdown_) return Status::Unavailable("frame channel shut down");
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return EnsureConnectedLocked();
}

void SocketFrameChannel::Shutdown() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  shutdown_ = true;
  if (fd_ >= 0) {
    // Unblocks a Recv parked on the socket without racing the fd close.
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

}  // namespace fxdist
