#include "net/socket_transport.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "net/wire.h"

namespace fxdist {

namespace {

timeval TimeoutToTimeval(int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  return tv;
}

bool IsTimeoutErrno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

}  // namespace

Result<std::unique_ptr<SocketTransport>> SocketTransport::Connect(
    const std::string& host, std::uint16_t port, Options options) {
  if (host.empty()) return Status::InvalidArgument("empty host");
  if (port == 0) return Status::InvalidArgument("port 0");
  std::unique_ptr<SocketTransport> transport(
      new SocketTransport(host, port, options));
  {
    std::lock_guard<std::mutex> lock(transport->mutex_);
    FXDIST_RETURN_NOT_OK(transport->EnsureConnectedLocked());
  }
  return transport;
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::ConnectSpec(
    const std::string& host_port, Options options) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("bad remote address (want host:port): " +
                                   host_port);
  }
  char* end = nullptr;
  const unsigned long long port =
      std::strtoull(host_port.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad remote port in: " + host_port);
  }
  return Connect(host_port.substr(0, colon), static_cast<std::uint16_t>(port),
                 options);
}

SocketTransport::~SocketTransport() {
  std::lock_guard<std::mutex> lock(mutex_);
  CloseLocked();
}

void SocketTransport::CloseLocked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SocketTransport::EnsureConnectedLocked() {
  if (fd_ >= 0) return Status::OK();

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port_str = std::to_string(port_);
  const int rc = ::getaddrinfo(host_.c_str(), port_str.c_str(), &hints,
                               &found);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host_ + ": " +
                               ::gai_strerror(rc));
  }

  int fd = -1;
  int last_errno = 0;
  for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const timeval tv = TimeoutToTimeval(options_.io_timeout_ms);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0) {
    return Status::Unavailable("connect " + host_ + ":" + port_str + ": " +
                               std::strerror(last_errno));
  }
  fd_ = fd;
  return Status::OK();
}

Result<std::string> SocketTransport::RoundTrip(const std::string& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  FXDIST_RETURN_NOT_OK(EnsureConnectedLocked());

  // Send the whole frame.  A failure before the first byte leaves the
  // request undelivered (Unavailable); after that it is indeterminate.
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      CloseLocked();
      const std::string detail =
          n == 0 ? "connection closed" : std::strerror(err);
      if (sent == 0 && !IsTimeoutErrno(err)) {
        return Status::Unavailable("send to " + host_ + ": " + detail);
      }
      if (IsTimeoutErrno(err)) {
        return Status::DeadlineExceeded("send to " + host_ + " timed out");
      }
      return Status::DataLoss("send to " + host_ + " died mid-request: " +
                              detail);
    }
    sent += static_cast<std::size_t>(n);
  }

  // Receive header, size the frame, then receive the rest.
  std::string reply;
  auto recv_exact = [&](std::size_t want) -> Status {
    const std::size_t base = reply.size();
    reply.resize(base + want);
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n =
          ::recv(fd_, reply.data() + base + got, want - got, 0);
      if (n == 0) {
        CloseLocked();
        return Status::DataLoss("connection to " + host_ +
                                " closed mid-reply");
      }
      if (n < 0) {
        const int err = errno;
        CloseLocked();
        if (IsTimeoutErrno(err)) {
          return Status::DeadlineExceeded("no reply from " + host_ +
                                          " within deadline");
        }
        return Status::DataLoss("recv from " + host_ + ": " +
                                std::strerror(err));
      }
      got += static_cast<std::size_t>(n);
    }
    return Status::OK();
  };

  FXDIST_RETURN_NOT_OK(recv_exact(kWireHeaderSize));
  auto total = FrameSizeFromHeader(reply);
  if (!total.ok()) {
    // Garbage header: the stream is beyond recovery.
    CloseLocked();
    return Status::DataLoss("reply from " + host_ + " rejected: " +
                            total.status().message());
  }
  FXDIST_RETURN_NOT_OK(recv_exact(*total - kWireHeaderSize));
  return reply;
}

}  // namespace fxdist
