// Event-driven shard server: thousands of connections, a handful of
// threads.
//
// The blocking ShardServer pins one pool thread to each connection for
// its whole lifetime, so its connection capacity IS its thread count —
// fine for a few shard-to-shard links, hopeless for a C10K front door.
// EventShardServer serves the same ShardService over an EventLoop
// instead: one loop thread owns every socket and all per-connection
// state; a small worker pool runs only the actual query work.  Both
// servers share EncodeShardReply/HandleFrame, so for the same request
// bytes they produce byte-identical reply bytes — the differential
// tests and bench/connection_scaling gate exactly that.
//
// Per-connection data path:
//
//   readable -> read to EAGAIN -> FrameReassembler -> ready_frames
//     -> dispatch up to `max_in_flight` to the worker pool
//     -> workers Post completions back to the loop
//     -> replies emitted in request order (a Serializer: completions
//        park in a min-heap keyed by per-connection sequence until
//        their turn) -> write buffer -> socket, EPOLLOUT when it blocks
//
// Backpressure is explicit, never emergent:
//   * The in-flight window is exact: frames past it park in
//     ready_frames and EPOLLIN interest is dropped while any are
//     parked, so a client that pipelines a thousand requests holds at
//     most `max_in_flight` worker slots and one read chunk of parked
//     frames; the rest backs up into its own TCP window.
//   * A write buffer over `max_write_buffer` also pauses reading AND
//     dispatch: a peer that sends but never reads stops being read,
//     and requests already parked stay parked, so its memory cost is
//     bounded by the watermark plus one window of replies.
//   * A connection over `max_connections` is shed at accept with a
//     kResourceExhausted error frame and an immediate close — clients
//     get a decodable reason instead of an accept-queue timeout.
//
// Deadlines target exactly the slow-loris shape: the read deadline is
// armed when a frame *starts* (reassembler goes mid-frame) and cleared
// only when it completes — per-byte progress does not reset it, so a
// peer dribbling one byte per second is evicted on schedule while
// costing only its own connection state, never a worker thread.  Idle
// connections between frames owe nothing and live indefinitely.
//
// A malformed frame header (bad magic/version, over-limit length)
// poisons the connection's reassembler: the server answers with an
// error frame and closes after the write drains.  A checksum failure
// under an honest header stays a per-frame error inside HandleFrame —
// the connection survives, same as the blocking server.

#ifndef FXDIST_NET_EVENT_SHARD_SERVER_H_
#define FXDIST_NET_EVENT_SHARD_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/event_loop.h"
#include "net/frame_reassembler.h"
#include "net/shard_server.h"
#include "sim/storage_backend.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fxdist {

struct EventShardServerOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port
  unsigned workers = 4;    ///< query worker pool size
  /// Accepted connections beyond this are shed with kResourceExhausted.
  std::size_t max_connections = 4096;
  /// Per-connection cap on requests dispatched but not yet answered.
  std::size_t max_in_flight = 32;
  /// Pause reading a connection whose unsent replies exceed this.
  std::size_t max_write_buffer = 4u << 20;
  /// A frame started must complete within this budget or the
  /// connection is evicted.  0 disables eviction.
  std::uint64_t read_deadline_ms = 5000;
  int listen_backlog = 1024;
  std::uint64_t tick_ms = 10;  ///< timer-wheel resolution
};

/// Counters a test or bench can assert on.  Monotonic except
/// cur_connections; a snapshot, consistent as of one loop pass.
struct EventServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t shed_connections = 0;   ///< over-cap, got the shed frame
  std::uint64_t deadline_evictions = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t replies_out = 0;
  std::uint64_t protocol_errors = 0;  ///< poisoned reassemblers
  std::uint64_t reads_paused = 0;     ///< unpaused->paused transitions
  /// Worker completions for connections already gone (peer vanished
  /// mid-request); their replies are accounted here, never sent.
  std::uint64_t dropped_replies = 0;
  std::uint64_t max_concurrent = 0;        ///< peak live connections
  std::uint64_t max_write_buffer_bytes = 0;  ///< peak single write buffer
  std::uint64_t cur_connections = 0;
};

class EventShardServer {
 public:
  using Options = EventShardServerOptions;

  /// Binds, listens and starts the loop + worker threads.  The backend
  /// must outlive the server.
  static Result<std::unique_ptr<EventShardServer>> Start(
      StorageBackend& backend, Options options = {});

  ~EventShardServer();

  EventShardServer(const EventShardServer&) = delete;
  EventShardServer& operator=(const EventShardServer&) = delete;

  /// The bound port (useful with Options::port == 0).
  std::uint16_t port() const { return port_; }

  EventServerStats Stats() const;

  std::vector<std::string> AnnouncedClients() const {
    return service_.AnnouncedClients();
  }

  /// Idempotent: closes the listener and every connection, drains the
  /// worker pool, stops and joins the loop.  In-flight queries finish
  /// executing; their replies are dropped (the sockets are gone).
  void Stop();
  /// Blocks until Stop() is called from another thread.
  void Wait();

 private:
  struct PendingReply {
    std::uint64_t seq = 0;
    std::string frame;
  };
  struct LaterSeq {
    bool operator()(const PendingReply& a, const PendingReply& b) const {
      return a.seq > b.seq;  // min-heap: earliest sequence on top
    }
  };

  /// All Conn state is loop-thread confined.
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    FrameReassembler reassembler;
    /// Complete frames not yet dispatched (parked by the window).
    std::deque<std::string> ready_frames;
    std::uint64_t next_seq = 0;  ///< sequence of the next dispatch
    std::uint64_t emit_seq = 0;  ///< sequence the peer gets next
    std::size_t in_flight = 0;   ///< dispatched, reply not yet emitted
    /// Out-of-order completions waiting for their turn (Serializer).
    std::priority_queue<PendingReply, std::vector<PendingReply>, LaterSeq>
        done;
    std::string write_buf;
    std::size_t write_pos = 0;
    std::uint64_t deadline_timer = 0;  ///< 0: not armed
    std::uint32_t interest = 0;        ///< current epoll interest set
    bool paused = false;     ///< EPOLLIN dropped (window/write pressure)
    bool closing = false;    ///< error queued; close once write drains
    bool peer_eof = false;   ///< read side done; flush then close
  };

  EventShardServer(StorageBackend& backend, Options options)
      : service_(backend), options_(options) {}

  // Everything below runs on the loop thread.
  void HandleAccept();
  void HandleIo(std::uint64_t conn_id, std::uint32_t events);
  void ReadFromPeer(Conn& conn);
  void DispatchReady(Conn& conn);
  /// Emits every completion whose turn has come into the write buffer.
  void EmitReady(Conn& conn);
  void FlushWrites(Conn& conn);
  /// Recomputes EPOLLIN/EPOLLOUT interest from the conn's state.
  void UpdateInterest(Conn& conn);
  void ArmOrClearDeadline(Conn& conn);
  void OnDeadline(std::uint64_t conn_id);
  /// Queues an error reply and closes once it drains.
  void PoisonConn(Conn& conn, const Status& status);
  void CloseConn(Conn& conn);
  /// Close-when-everything-drained check for EOF'd / closing conns.
  void MaybeFinish(Conn& conn);
  void OnWorkerDone(std::uint64_t conn_id, std::uint64_t seq,
                    std::string reply);

  ShardService service_;
  const Options options_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  /// Loop-thread only.  Keyed by monotonic id, not fd: a worker
  /// completion must never resolve to a recycled descriptor.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;

  mutable std::mutex stats_mutex_;
  EventServerStats stats_;

  std::mutex stop_mutex_;
  std::condition_variable stopped_cv_;
  bool stopping_ = false;
};

}  // namespace fxdist

#endif  // FXDIST_NET_EVENT_SHARD_SERVER_H_
