#include "net/backend_spec.h"

#include <cstdlib>
#include <utility>

#include "core/registry.h"
#include "sim/composite_backend.h"
#include "sim/dynamic_parallel_file.h"
#include "sim/packed_backend.h"
#include "sim/paged_parallel_file.h"
#include "sim/parallel_file.h"

namespace fxdist {

namespace {

Result<std::uint64_t> ParseCount(const std::string& text,
                                 const std::string& what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v == 0) {
    return Status::InvalidArgument("bad " + what + ": " + text);
  }
  return static_cast<std::uint64_t>(v);
}

unsigned Log2OfPow2(std::uint64_t v) {
  unsigned bits = 0;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

Result<std::unique_ptr<StorageBackend>> MakeChildBackend(
    const std::string& child_spec, const Schema& schema,
    std::uint64_t num_devices, const std::string& method_spec,
    std::uint64_t seed, const ChildBackendOptions& options) {
  std::string kind = child_spec;
  std::string arg;
  std::string prefix;
  std::string rest;
  if (SplitSpecPrefix(child_spec, &prefix, &rest)) {
    kind = prefix;
    arg = rest;
  }

  if (kind == "flat") {
    auto file = ParallelFile::Create(schema, num_devices, method_spec, seed);
    FXDIST_RETURN_NOT_OK(file.status());
    return std::unique_ptr<StorageBackend>(
        std::make_unique<ParallelFile>(*std::move(file)));
  }
  if (kind == "paged") {
    std::uint64_t page_size = options.page_size;
    if (!arg.empty()) {
      auto parsed = ParseCount(arg, "page size");
      FXDIST_RETURN_NOT_OK(parsed.status());
      page_size = *parsed;
    }
    auto file = PagedParallelFile::Create(schema, num_devices, method_spec,
                                          static_cast<std::size_t>(page_size),
                                          seed);
    FXDIST_RETURN_NOT_OK(file.status());
    return std::unique_ptr<StorageBackend>(
        std::make_unique<PagedParallelFile>(*std::move(file)));
  }
  if (kind == "dynamic") {
    std::uint64_t page_capacity = options.page_capacity;
    if (!arg.empty()) {
      auto parsed = ParseCount(arg, "page capacity");
      FXDIST_RETURN_NOT_OK(parsed.status());
      page_capacity = *parsed;
    }
    // Provision each directory to the schema's size so the composite's
    // frozen plane has room (see composite_backend.h).
    std::vector<DynamicFieldDecl> fields;
    std::vector<unsigned> depths;
    fields.reserve(schema.num_fields());
    depths.reserve(schema.num_fields());
    for (unsigned i = 0; i < schema.num_fields(); ++i) {
      fields.push_back({schema.field(i).name, schema.field(i).type});
      depths.push_back(Log2OfPow2(schema.field(i).directory_size));
    }
    const PlanFamily family =
        method_spec == "fx-iu1" ? PlanFamily::kIU1 : PlanFamily::kIU2;
    auto file = DynamicParallelFile::Create(
        std::move(fields), num_devices,
        static_cast<std::size_t>(page_capacity), family, seed,
        std::move(depths));
    FXDIST_RETURN_NOT_OK(file.status());
    return std::unique_ptr<StorageBackend>(
        std::make_unique<DynamicParallelFile>(*std::move(file)));
  }
  if (kind == "packed") {
    if (arg.empty()) {
      return Status::InvalidArgument("packed spec needs a path: packed:<path>");
    }
    auto packed = PackedBackend::Open(arg);
    FXDIST_RETURN_NOT_OK(packed.status());
    if ((*packed)->num_devices() != num_devices) {
      return Status::InvalidArgument(
          "packed file " + arg + " is built for " +
          std::to_string((*packed)->num_devices()) + " devices, want " +
          std::to_string(num_devices));
    }
    if ((*packed)->spec().num_fields() != schema.num_fields()) {
      return Status::InvalidArgument(
          "packed file " + arg + " has " +
          std::to_string((*packed)->spec().num_fields()) +
          " fields, want " + std::to_string(schema.num_fields()));
    }
    return std::unique_ptr<StorageBackend>(*std::move(packed));
  }
  if (kind == "remote") {
    auto remote = RemoteBackend::ConnectTcp(arg, options.remote);
    FXDIST_RETURN_NOT_OK(remote.status());
    if ((*remote)->num_devices() != num_devices) {
      return Status::InvalidArgument(
          "remote shard " + arg + " is built for " +
          std::to_string((*remote)->num_devices()) + " devices, want " +
          std::to_string(num_devices));
    }
    if ((*remote)->spec().num_fields() != schema.num_fields()) {
      return Status::InvalidArgument(
          "remote shard " + arg + " has " +
          std::to_string((*remote)->spec().num_fields()) +
          " fields, want " + std::to_string(schema.num_fields()));
    }
    return std::unique_ptr<StorageBackend>(*std::move(remote));
  }
  return Status::InvalidArgument(
      "unknown child backend spec (want flat|paged[:P]|dynamic[:C]|"
      "packed:path|remote:host:port): " +
      child_spec);
}

Result<std::unique_ptr<StorageBackend>> MakeShardedBackend(
    const std::vector<std::string>& child_specs, const Schema& schema,
    std::uint64_t num_devices, const std::string& method_spec,
    std::uint64_t seed, const ChildBackendOptions& options) {
  if (child_specs.empty()) {
    return Status::InvalidArgument("no child specs");
  }
  if (child_specs.size() != 1 && child_specs.size() != num_devices) {
    return Status::InvalidArgument(
        "want 1 or " + std::to_string(num_devices) + " child specs, got " +
        std::to_string(child_specs.size()));
  }
  std::vector<std::unique_ptr<StorageBackend>> children;
  children.reserve(num_devices);
  for (std::uint64_t device = 0; device < num_devices; ++device) {
    const std::string& spec =
        child_specs.size() == 1 ? child_specs.front()
                                : child_specs[static_cast<std::size_t>(device)];
    auto child = MakeChildBackend(spec, schema, num_devices, method_spec,
                                  seed, options);
    FXDIST_RETURN_NOT_OK(child.status());
    children.push_back(*std::move(child));
  }
  auto sharded = ShardedBackend::Create(std::move(children));
  FXDIST_RETURN_NOT_OK(sharded.status());
  return std::unique_ptr<StorageBackend>(
      std::make_unique<ShardedBackend>(*std::move(sharded)));
}

}  // namespace fxdist
