// Connection multiplexing for the shard transport.
//
// PR 4's Transport is strictly request/response: RoundTrip holds the
// connection for the whole exchange, so a batch of bucket scans pays one
// full round trip per bucket per shard — the ~17x serialization tax the
// shard_matrix bench measures.  MuxTransport keeps the blocking
// RoundTrip surface (RemoteBackend is unchanged above it) but runs many
// calls on one connection at once:
//
//   * every v2 request frame carries a correlation id chosen by the
//     caller; MuxTransport sends it without waiting for earlier replies,
//   * a single receiver thread reads reply frames off the connection and
//     completes whichever waiter's correlation id they name — replies
//     may arrive in any order,
//   * at most `window` requests are in flight; callers past that block
//     until a slot frees (back-pressure, not an error, unless the wait
//     exhausts the call timeout),
//   * a v1 frame (no correlation id — the handshake fallback for old
//     servers) is sent in exclusive mode: it waits for the pipe to
//     drain, then owns the connection for one classic round trip.
//
// Ordering/association contract: correlation ids must come from an
// increasing per-connection sequence (RemoteBackend's attempt counter).
// A reply naming an id that is pending completes it; an id that was
// issued but abandoned (its waiter timed out) is dropped and counted in
// stale_replies(); an id that was never issued means the peer is
// desynced — every pending call fails with DataLoss and the connection
// is marked broken.  A broken connection heals lazily: the next
// RoundTrip with no calls pending asks the channel to Reset().
//
// The byte pipe itself is a FrameChannel — one-way Send plus blocking
// Recv — with a loopback implementation here and the TCP one in
// net/socket_transport.h.

#ifndef FXDIST_NET_MUX_TRANSPORT_H_
#define FXDIST_NET_MUX_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/transport.h"
#include "util/status.h"

namespace fxdist {

/// A full-duplex frame pipe: the transport-level substrate MuxTransport
/// multiplexes over.  Send may be called from many threads at once; Recv
/// has a single caller (the mux receiver thread).
class FrameChannel {
 public:
  virtual ~FrameChannel() = default;

  /// Ships one encoded frame.  Thread-safe.  Errors follow the transport
  /// taxonomy: Unavailable when the frame was never delivered, DataLoss /
  /// DeadlineExceeded when delivery is indeterminate.
  virtual Status Send(const std::string& frame) = 0;

  /// Blocks until the next reply frame arrives (or the channel dies).
  /// Single consumer.
  virtual Result<std::string> Recv() = 0;

  /// Drops broken connection state so the next Send may reconnect.
  virtual Status Reset() { return Status::OK(); }

  /// Permanently unblocks Recv (teardown).
  virtual void Shutdown() {}
};

/// In-process FrameChannel: Send runs the handler synchronously and
/// queues its reply for Recv.  Deterministic, no sockets — the pipelined
/// analogue of LoopbackTransport for differential tests and bench rows.
class LoopbackFrameChannel final : public FrameChannel {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  explicit LoopbackFrameChannel(Handler handler)
      : handler_(std::move(handler)) {}

  Status Send(const std::string& frame) override;
  Result<std::string> Recv() override;
  void Shutdown() override;

 private:
  Handler handler_;
  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::string> replies_;
  bool shutdown_ = false;
};

struct MuxTransportOptions {
  /// Max requests in flight on the connection; further callers block.
  std::size_t window = 32;
  /// Per-call budget: covers waiting for a window slot and waiting for
  /// the reply.  A call past it abandons its correlation id (a late
  /// reply is dropped as stale) and returns DeadlineExceeded.
  std::uint64_t call_timeout_ms = 5000;
};

/// A Transport that pipelines concurrent RoundTrips over one
/// FrameChannel.  See the file comment for the full contract.
class MuxTransport final : public Transport {
 public:
  using Options = MuxTransportOptions;

  explicit MuxTransport(std::unique_ptr<FrameChannel> channel,
                        Options options = {});
  ~MuxTransport() override;

  Result<std::string> RoundTrip(const std::string& request) override;

  /// High-water mark of concurrently pending requests.
  std::size_t max_in_flight() const;
  /// Replies that arrived after their waiter gave up (dropped).
  std::uint64_t stale_replies() const;

 private:
  struct PendingCall {
    bool done = false;
    Status status = Status::OK();
    std::string reply;
  };

  Result<std::string> RoundTripExclusive(const std::string& request,
                                         std::unique_lock<std::mutex>& lock);
  /// Fails every pending waiter (and the exclusive one) with `error`.
  void FailAllLocked(const Status& error);
  /// Heals a broken connection if nothing is pending; returns false when
  /// the connection stays broken.
  bool TryReviveLocked();
  void ReceiveLoop();

  const std::unique_ptr<FrameChannel> channel_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, PendingCall*> pending_;
  std::uint64_t max_cid_issued_ = 0;
  PendingCall* exclusive_waiter_ = nullptr;
  bool exclusive_active_ = false;
  /// v1 replies still owed to waiters that timed out (drop as stale).
  std::uint64_t stale_v1_expected_ = 0;
  bool broken_ = false;
  bool shutdown_ = false;
  std::size_t max_in_flight_ = 0;
  std::uint64_t stale_replies_ = 0;
  std::thread receiver_;
};

}  // namespace fxdist

#endif  // FXDIST_NET_MUX_TRANSPORT_H_
