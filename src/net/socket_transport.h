// Blocking TCP transport: one connection, one in-flight request — plus
// the TCP FrameChannel the multiplexer pipelines over.
//
// Timeouts are plain socket deadlines (SO_RCVTIMEO / SO_SNDTIMEO); the
// error taxonomy follows net/transport.h: connect failures and
// nothing-sent write failures map to Unavailable (the request never left
// this host), receive timeouts to DeadlineExceeded, and short reads /
// peer resets after the request went out to DataLoss.  Any failure
// closes the connection; the next RoundTrip reconnects, so a restarted
// shard server is picked up transparently within the retry budget.
//
// SocketFrameChannel is the same socket with the round-trip coupling
// removed: Send ships one frame, Recv blocks for the next inbound frame
// regardless of which request it answers.  Recv treats a receive timeout
// *between* frames as idle (keeps waiting — per-call deadlines belong to
// MuxTransport), and only a timeout mid-frame as an error.  Reset
// reconnects a dead channel; MuxTransport calls it once no requests are
// pending.
//
// Both classes cap inbound frames at a per-connection max payload
// (default kWireMaxPayload); RemoteBackend raises it to the
// handshake-negotiated limit via set_max_payload().  The cap is enforced
// from the frame header, before the payload is buffered.

#ifndef FXDIST_NET_SOCKET_TRANSPORT_H_
#define FXDIST_NET_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/mux_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/status.h"

namespace fxdist {

// -- Shared socket plumbing ----------------------------------------------
// Small fd-level helpers used by both shard servers (blocking and
// event-driven), the fan-in load generator, and tests.  They live here so
// net/ has exactly one copy of the bind/listen/dial boilerplate.

/// Sets or clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool enable = true);

/// Creates an INADDR_ANY TCP listening socket (SO_REUSEADDR, `backlog`
/// pending connections).  `*bound_port` receives the actual port, which
/// matters when `port` is 0 (ephemeral).
Result<int> CreateListenSocket(std::uint16_t port, int backlog,
                               std::uint16_t* bound_port);

/// Resolves and connects a blocking TCP stream with TCP_NODELAY and
/// send/receive deadlines applied — the dial step shared by the
/// transports and by net/loadgen.h clients.
Result<int> DialShardStream(const std::string& host, std::uint16_t port,
                            int io_timeout_ms);

struct SocketTransportOptions {
  /// Per-operation socket deadline (send and receive), milliseconds.
  int io_timeout_ms = 5000;
};

class SocketTransport final : public Transport {
 public:
  using Options = SocketTransportOptions;

  /// Resolves and connects eagerly so a bad address fails here, not on
  /// the first operation.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, std::uint16_t port, Options options = {});

  /// Parses "host:port" (the `remote:` child-spec body).
  static Result<std::unique_ptr<SocketTransport>> ConnectSpec(
      const std::string& host_port, Options options = {});

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  /// Raises/lowers the inbound frame cap (handshake negotiation).
  void set_max_payload(std::uint32_t max_payload) {
    max_payload_.store(max_payload, std::memory_order_relaxed);
  }

  Result<std::string> RoundTrip(const std::string& request) override;

 private:
  SocketTransport(std::string host, std::uint16_t port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Connects fd_ if needed.  Caller holds mutex_.
  Status EnsureConnectedLocked();
  void CloseLocked();

  const std::string host_;
  const std::uint16_t port_;
  const Options options_;
  std::atomic<std::uint32_t> max_payload_{kWireMaxPayload};

  std::mutex mutex_;
  int fd_ = -1;
};

/// TCP FrameChannel for MuxTransport (see file comment).
class SocketFrameChannel final : public FrameChannel {
 public:
  using Options = SocketTransportOptions;

  static Result<std::unique_ptr<SocketFrameChannel>> Connect(
      const std::string& host, std::uint16_t port, Options options = {});

  /// Parses "host:port" (the `remote:` child-spec body).
  static Result<std::unique_ptr<SocketFrameChannel>> ConnectSpec(
      const std::string& host_port, Options options = {});

  ~SocketFrameChannel() override;

  SocketFrameChannel(const SocketFrameChannel&) = delete;
  SocketFrameChannel& operator=(const SocketFrameChannel&) = delete;

  void set_max_payload(std::uint32_t max_payload) {
    max_payload_.store(max_payload, std::memory_order_relaxed);
  }

  Status Send(const std::string& frame) override;
  Result<std::string> Recv() override;
  Status Reset() override;
  void Shutdown() override;

 private:
  SocketFrameChannel(std::string host, std::uint16_t port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}

  Status EnsureConnectedLocked();
  int CurrentFd();

  const std::string host_;
  const std::uint16_t port_;
  const Options options_;
  std::atomic<std::uint32_t> max_payload_{kWireMaxPayload};

  /// Guards fd_ open/close; I/O itself runs on a snapshot of the fd so
  /// Send and Recv overlap freely on the live connection.
  std::mutex state_mutex_;
  int fd_ = -1;
  bool shutdown_ = false;
};

}  // namespace fxdist

#endif  // FXDIST_NET_SOCKET_TRANSPORT_H_
