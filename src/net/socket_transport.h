// Blocking TCP transport: one connection, one in-flight request.
//
// Timeouts are plain socket deadlines (SO_RCVTIMEO / SO_SNDTIMEO); the
// error taxonomy follows net/transport.h: connect failures and
// nothing-sent write failures map to Unavailable (the request never left
// this host), receive timeouts to DeadlineExceeded, and short reads /
// peer resets after the request went out to DataLoss.  Any failure
// closes the connection; the next RoundTrip reconnects, so a restarted
// shard server is picked up transparently within the retry budget.

#ifndef FXDIST_NET_SOCKET_TRANSPORT_H_
#define FXDIST_NET_SOCKET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "net/transport.h"
#include "util/status.h"

namespace fxdist {

struct SocketTransportOptions {
  /// Per-operation socket deadline (send and receive), milliseconds.
  int io_timeout_ms = 5000;
};

class SocketTransport final : public Transport {
 public:
  using Options = SocketTransportOptions;

  /// Resolves and connects eagerly so a bad address fails here, not on
  /// the first operation.
  static Result<std::unique_ptr<SocketTransport>> Connect(
      const std::string& host, std::uint16_t port, Options options = {});

  /// Parses "host:port" (the `remote:` child-spec body).
  static Result<std::unique_ptr<SocketTransport>> ConnectSpec(
      const std::string& host_port, Options options = {});

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  Result<std::string> RoundTrip(const std::string& request) override;

 private:
  SocketTransport(std::string host, std::uint16_t port, Options options)
      : host_(std::move(host)), port_(port), options_(options) {}

  /// Connects fd_ if needed.  Caller holds mutex_.
  Status EnsureConnectedLocked();
  void CloseLocked();

  const std::string host_;
  const std::uint16_t port_;
  const Options options_;

  std::mutex mutex_;
  int fd_ = -1;
};

}  // namespace fxdist

#endif  // FXDIST_NET_SOCKET_TRANSPORT_H_
