#include "net/frame_reassembler.h"

#include <utility>

namespace fxdist {

Status FrameReassembler::Feed(std::string_view bytes,
                              std::vector<std::string>* out) {
  if (!poisoned_.ok()) return poisoned_;
  buffer_.append(bytes);
  for (;;) {
    if (buffer_.size() < kWireHeaderSize) return Status::OK();
    auto header_size = WireHeaderSizeFromPrefix(buffer_);
    if (!header_size.ok()) {
      poisoned_ = header_size.status();
      return poisoned_;
    }
    if (buffer_.size() < *header_size) return Status::OK();
    auto total = FrameSizeFromHeader(buffer_, max_payload_);
    if (!total.ok()) {
      poisoned_ = total.status();
      return poisoned_;
    }
    if (buffer_.size() < *total) return Status::OK();
    if (buffer_.size() == *total) {
      // Common case: the chunk ended exactly on a frame boundary — hand
      // the buffer over without copying the frame out of it.
      out->push_back(std::move(buffer_));
      buffer_.clear();
      return Status::OK();
    }
    out->push_back(buffer_.substr(0, *total));
    buffer_.erase(0, *total);
  }
}

}  // namespace fxdist
