#include "net/loadgen.h"

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "net/socket_transport.h"

namespace fxdist {

namespace {

Status SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") +
                                 (n < 0 ? std::strerror(errno) : "closed"));
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// Appends exactly `want` more bytes to `buf`.  A timeout before the
/// first byte of a read is DeadlineExceeded; EOF mid-frame is DataLoss.
Status RecvExact(int fd, std::string& buf, std::size_t want) {
  const std::size_t base = buf.size();
  buf.resize(base + want);
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, buf.data() + base + got, want - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    buf.resize(base + got);
    if (n == 0) {
      return Status::DataLoss("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("receive timed out");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
  return Status::OK();
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t last = sorted.size() - 1;
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(last) + 0.5);
  return sorted[std::min(idx, last)];
}

}  // namespace

Result<std::string> RecvFrameOnFd(int fd, std::uint32_t max_payload) {
  std::string frame;
  FXDIST_RETURN_NOT_OK(RecvExact(fd, frame, kWireHeaderSize));
  auto header_size = WireHeaderSizeFromPrefix(frame);
  FXDIST_RETURN_NOT_OK(header_size.status());
  if (*header_size > frame.size()) {
    FXDIST_RETURN_NOT_OK(RecvExact(fd, frame, *header_size - frame.size()));
  }
  auto total = FrameSizeFromHeader(frame, max_payload);
  FXDIST_RETURN_NOT_OK(total.status());
  FXDIST_RETURN_NOT_OK(RecvExact(fd, frame, *total - frame.size()));
  return frame;
}

Result<std::string> RoundTripOnFd(int fd, const std::string& request,
                                  std::uint32_t max_payload) {
  FXDIST_RETURN_NOT_OK(SendAll(fd, request));
  return RecvFrameOnFd(fd, max_payload);
}

std::string EncodeExecuteFrame(const ValueQuery& query) {
  PayloadWriter writer;
  writer.WriteQuery(query);
  WireFrame frame;
  frame.op = WireOp::kExecute;
  frame.payload = writer.Take();
  return EncodeFrame(frame);
}

std::uint64_t TryRaiseNoFileLimit(std::uint64_t want) {
  struct rlimit lim;
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < want) {
    struct rlimit raised = lim;
    raised.rlim_cur =
        lim.rlim_max == RLIM_INFINITY
            ? want
            : std::min<rlim_t>(static_cast<rlim_t>(want), lim.rlim_max);
    if (::setrlimit(RLIMIT_NOFILE, &raised) == 0) lim = raised;
  }
  return lim.rlim_cur == RLIM_INFINITY
             ? ~std::uint64_t{0}
             : static_cast<std::uint64_t>(lim.rlim_cur);
}

Result<ProbeResult> ProbeConnection(const std::string& host,
                                    std::uint16_t port, int wait_ms) {
  auto fd = DialShardStream(host, port, wait_ms);
  FXDIST_RETURN_NOT_OK(fd.status());
  auto frame = RecvFrameOnFd(*fd);
  ::close(*fd);
  ProbeResult probe;
  if (!frame.ok()) {
    // Silence until the deadline — or an immediate close with nothing
    // said — means nobody shed us with a reason.
    if (frame.status().code() == StatusCode::kDeadlineExceeded ||
        frame.status().code() == StatusCode::kDataLoss) {
      return probe;
    }
    return frame.status();
  }
  auto decoded = DecodeFrame(*frame);
  FXDIST_RETURN_NOT_OK(decoded.status());
  probe.got_frame = true;
  probe.op = decoded->op;
  PayloadReader reader(decoded->payload);
  FXDIST_RETURN_NOT_OK(reader.ReadStatusInto(&probe.frame_status));
  return probe;
}

Result<FanInReport> RunQueryFanIn(const std::vector<ValueQuery>& queries,
                                  const FanInOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("fan-in needs at least one query");
  }
  if (options.clients == 0 || options.waves == 0) {
    return Status::InvalidArgument("fan-in needs clients >= 1, waves >= 1");
  }
  if (options.port == 0) {
    return Status::InvalidArgument("fan-in needs a port");
  }

  // Two fds per loopback connection (client + server end), plus slack
  // for the process's own files.
  TryRaiseNoFileLimit(options.clients * 2 + 256);

  // Pre-encode one frame per distinct query; connections share them.
  std::vector<std::string> encoded;
  encoded.reserve(queries.size());
  for (const ValueQuery& query : queries) {
    encoded.push_back(EncodeExecuteFrame(query));
  }

  const std::size_t num_threads =
      std::max<std::size_t>(1, std::min(options.threads, options.clients));

  struct ThreadTally {
    std::uint64_t replies = 0;
    std::uint64_t transport_errors = 0;
    std::uint64_t error_replies = 0;
    std::uint64_t matched_total = 0;
    std::uint64_t bytes_down = 0;
    std::vector<double> latencies_ms;
  };
  std::vector<ThreadTally> tallies(num_threads);
  // All connections dialed before any query flies and held open until
  // the last wave drains: `clients` really is the server's concurrent
  // connection count, not the driver thread count.  -1 marks a
  // connection that failed (at dial or mid-run) and sits out the rest.
  std::vector<int> fds(options.clients, -1);

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> dialers;
    dialers.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      dialers.emplace_back([&, t] {
        for (std::size_t c = t; c < options.clients; c += num_threads) {
          auto fd = DialShardStream(options.host, options.port,
                                    options.io_timeout_ms);
          if (fd.ok()) {
            fds[c] = *fd;
          } else {
            tallies[t].transport_errors += options.waves;
          }
        }
      });
    }
    for (std::thread& dialer : dialers) dialer.join();
  }

  std::vector<std::thread> drivers;
  drivers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    drivers.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      // Thread t drives connections t, t+T, t+2T, ... wave-major, so
      // every live connection advances through wave w before any moves
      // to wave w+1 on this thread.
      for (std::size_t w = 0; w < options.waves; ++w) {
        for (std::size_t c = t; c < options.clients; c += num_threads) {
          if (fds[c] < 0) continue;
          const std::size_t stream_index = w * options.clients + c;
          const std::string& request =
              encoded[stream_index % encoded.size()];
          const auto start = std::chrono::steady_clock::now();
          auto reply = RoundTripOnFd(fds[c], request);
          const auto end = std::chrono::steady_clock::now();
          bool conn_dead = false;
          if (!reply.ok()) {
            conn_dead = true;
          } else {
            tally.latencies_ms.push_back(
                std::chrono::duration<double, std::milli>(end - start)
                    .count());
            tally.bytes_down += reply->size();
            auto frame = DecodeFrame(*reply);
            PayloadReader reader(frame.ok()
                                     ? std::string_view(frame->payload)
                                     : std::string_view());
            Status reply_status;
            if (!frame.ok() ||
                !reader.ReadStatusInto(&reply_status).ok()) {
              conn_dead = true;
            } else if (!reply_status.ok()) {
              ++tally.error_replies;
              ++tally.replies;
            } else if (auto result = reader.ReadResult(); !result.ok()) {
              conn_dead = true;
            } else {
              ++tally.replies;
              tally.matched_total += result->stats.records_matched;
            }
          }
          if (conn_dead) {
            tally.transport_errors += options.waves - w;
            ::close(fds[c]);
            fds[c] = -1;
          }
        }
      }
      for (std::size_t c = t; c < options.clients; c += num_threads) {
        if (fds[c] >= 0) {
          ::close(fds[c]);
          fds[c] = -1;
        }
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const auto t1 = std::chrono::steady_clock::now();

  FanInReport report;
  report.elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::vector<double> latencies;
  for (ThreadTally& tally : tallies) {
    report.replies += tally.replies;
    report.transport_errors += tally.transport_errors;
    report.error_replies += tally.error_replies;
    report.matched_total += tally.matched_total;
    report.bytes_down += tally.bytes_down;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.p50_ms = Quantile(latencies, 0.50);
  report.p99_ms = Quantile(latencies, 0.99);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return report;
}

}  // namespace fxdist
