#include "net/shard_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "analysis/range_sweep.h"
#include "net/socket_transport.h"
#include "sim/persistence.h"

namespace fxdist {

namespace {

std::uint16_t LoadU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[0]) |
                                    static_cast<std::uint16_t>(b[1]) << 8);
}

std::uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint32_t>(b[i]);
  return v;
}

std::uint64_t LoadU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint64_t>(b[i]);
  return v;
}

/// writer.Take() with the satellite-2 overflow check applied: a payload
/// whose length field could not be represented never leaves the server
/// as a well-formed-but-wrong frame.
Result<std::string> Finish(PayloadWriter& writer) {
  FXDIST_RETURN_NOT_OK(writer.CheckOk());
  return writer.Take();
}

}  // namespace

std::string EncodeShardReply(WireOp op, const Status& status,
                             const std::string& body, std::uint16_t version,
                             std::uint64_t correlation_id) {
  PayloadWriter writer;
  writer.WriteStatus(status);
  WireFrame reply;
  reply.op = op;
  reply.is_reply = true;
  reply.payload = writer.Take();
  reply.payload.append(body);
  reply.version = version;
  reply.correlation_id = correlation_id;
  return EncodeFrame(reply);
}

std::string EncodeShardErrorReplyFor(std::string_view request,
                                     const Status& status) {
  std::uint16_t version = kWireVersion;
  std::uint64_t correlation_id = 0;
  if (request.size() >= 6 && LoadU32(request.data()) == kWireMagic &&
      LoadU16(request.data() + 4) == kWireVersionMux) {
    version = kWireVersionMux;
    if (request.size() >= 16) correlation_id = LoadU64(request.data() + 8);
  }
  return EncodeShardReply(WireOp::kError, status, "", version,
                          correlation_id);
}

ShardService::ShardService(StorageBackend& backend)
    : backend_(backend),
      replicated_(dynamic_cast<ReplicatedBackend*>(&backend)) {}

std::vector<std::string> ShardService::AnnouncedClients() const {
  std::lock_guard<std::mutex> lock(clients_mutex_);
  return announced_clients_;
}

std::string ShardService::HandleFrame(const std::string& request) {
  auto frame = DecodeFrame(request);
  if (!frame.ok()) {
    return EncodeShardErrorReplyFor(request, frame.status());
  }
  if (frame->is_reply || frame->op == WireOp::kError) {
    return EncodeShardErrorReplyFor(
        request,
        Status::InvalidArgument("request expected, got a reply frame"));
  }
  PayloadReader reader(frame->payload);
  auto body = Dispatch(*frame, reader);
  if (!body.ok()) {
    return EncodeShardReply(frame->op, body.status(), "", frame->version,
                            frame->correlation_id);
  }
  // A reply the negotiated frame limit cannot carry is refused here —
  // better an explicit error than an undecodable frame at the peer.
  if (body->size() > kWireMaxPayload - 16) {
    return EncodeShardReply(
        frame->op,
        Status::InvalidArgument(
            std::string(WireOpName(frame->op)) + " reply of " +
            std::to_string(body->size()) +
            " bytes exceeds the frame payload limit"),
        "", frame->version, frame->correlation_id);
  }
  return EncodeShardReply(frame->op, Status::OK(), *body, frame->version,
                          frame->correlation_id);
}

Result<std::string> ShardService::Dispatch(const WireFrame& frame,
                                           PayloadReader& reader) {
  const WireOp op = frame.op;
  PayloadWriter writer;
  switch (op) {
    case WireOp::kHandshake: {
      if (frame.version == kWireVersionMux) {
        // v2 handshake: the client announces its frame limit and feature
        // wants; the reply carries the blueprint plus this server's
        // limit and the features it will actually serve.  (A v1 server
        // never sees this payload — it rejects the v2 frame at the
        // header, which is the client's cue to fall back.)
        auto client_max = reader.U64();
        FXDIST_RETURN_NOT_OK(client_max.status());
        auto features = reader.U32();
        FXDIST_RETURN_NOT_OK(features.status());
        // Optional trailing tenant id (absent from older clients).
        if (!reader.AtEnd()) {
          auto client_id = reader.Str();
          FXDIST_RETURN_NOT_OK(client_id.status());
          FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
          if (!client_id->empty()) {
            std::lock_guard<std::mutex> clients_lock(clients_mutex_);
            if (std::find(announced_clients_.begin(),
                          announced_clients_.end(),
                          *client_id) == announced_clients_.end()) {
              announced_clients_.push_back(*std::move(client_id));
            }
          }
        }
        std::shared_lock<std::shared_mutex> lock(backend_mutex_);
        // The blueprint describes the *serving plane*: a migrating
        // wrapper hands out its active plane's construction (the
        // "migrating" kind itself is a persistence-v4 body, not a wire
        // blueprint — old readers must get a buildable text, not a
        // crash).
        writer.Str(BackendBlueprintText(backend_.ServingPlane()));
        writer.U64(kWireMaxPayload);
        writer.U32(*features & (kWireFeatureScanMany |
                                kWireFeatureInsertBatch |
                                kWireFeatureAnalyzeRange));
        return Finish(writer);
      }
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      writer.Str(BackendBlueprintText(backend_.ServingPlane()));
      return Finish(writer);
    }
    case WireOp::kInsert: {
      auto record = reader.ReadRecord();
      FXDIST_RETURN_NOT_OK(record.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::unique_lock<std::shared_mutex> lock(backend_mutex_);
      FXDIST_RETURN_NOT_OK(backend_.Insert(*std::move(record)));
      // Current bucket-space shape: the client's frozen-plane check
      // (a dynamic backend that grew no longer matches the twin).
      const auto& sizes = backend_.spec().field_sizes();
      writer.U32(static_cast<std::uint32_t>(sizes.size()));
      for (const std::uint64_t size : sizes) writer.U64(size);
      // Trailing authoritative epoch (optional for old clients): lets a
      // client's cache see *other* writers' mutations, not just its own.
      writer.U64(backend_.MutationEpoch());
      return Finish(writer);
    }
    case WireOp::kDelete: {
      auto query = reader.ReadQuery();
      FXDIST_RETURN_NOT_OK(query.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::unique_lock<std::shared_mutex> lock(backend_mutex_);
      auto removed = backend_.Delete(*query);
      FXDIST_RETURN_NOT_OK(removed.status());
      writer.U64(*removed);
      writer.U64(backend_.MutationEpoch());
      return Finish(writer);
    }
    case WireOp::kExecute: {
      auto query = reader.ReadQuery();
      FXDIST_RETURN_NOT_OK(query.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      auto result = backend_.Execute(*query);
      FXDIST_RETURN_NOT_OK(result.status());
      writer.WriteResult(*result);
      return Finish(writer);
    }
    case WireOp::kScanBucket:
    case WireOp::kIsBucketLive: {
      auto device = reader.U64();
      FXDIST_RETURN_NOT_OK(device.status());
      auto bucket = reader.U64();
      FXDIST_RETURN_NOT_OK(bucket.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      if (*device >= backend_.num_devices()) {
        return Status::OutOfRange("device " + std::to_string(*device) +
                                  " out of range");
      }
      if (*bucket >= backend_.spec().TotalBuckets()) {
        return Status::OutOfRange("bucket " + std::to_string(*bucket) +
                                  " out of range");
      }
      if (op == WireOp::kIsBucketLive) {
        writer.U8(backend_.IsBucketLive(*device, *bucket) ? 1 : 0);
        return Finish(writer);
      }
      std::vector<Record> records;
      backend_.ScanBucket(*device, *bucket, [&](const Record& record) {
        records.push_back(record);
        return true;
      });
      writer.WriteRecords(records);
      return Finish(writer);
    }
    case WireOp::kScanMany: {
      // The batched scatter-gather op: (device, bucket)... in, one
      // record list per ref out, in request order.  v2-only (the client
      // learns it from the handshake feature bits).
      if (frame.version != kWireVersionMux) {
        return Status::InvalidArgument("ScanMany requires a v2 frame");
      }
      auto count = reader.U64();
      FXDIST_RETURN_NOT_OK(count.status());
      // Every ref costs 16 payload bytes; a larger count is corruption.
      if (*count > reader.remaining() / 16) {
        return Status::DataLoss("wire payload truncated reading bucket refs");
      }
      std::vector<BucketRef> refs;
      refs.reserve(*count);
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto device = reader.U64();
        FXDIST_RETURN_NOT_OK(device.status());
        auto bucket = reader.U64();
        FXDIST_RETURN_NOT_OK(bucket.status());
        refs.push_back({*device, *bucket});
      }
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      for (const BucketRef& ref : refs) {
        if (ref.device >= backend_.num_devices()) {
          return Status::OutOfRange("device " + std::to_string(ref.device) +
                                    " out of range");
        }
        if (ref.linear_bucket >= backend_.spec().TotalBuckets()) {
          return Status::OutOfRange(
              "bucket " + std::to_string(ref.linear_bucket) + " out of range");
        }
      }
      std::vector<std::vector<Record>> gathered(refs.size());
      backend_.ScanMany(refs, [&](std::size_t i, const Record& record) {
        gathered[i].push_back(record);
        return true;
      });
      writer.U64(gathered.size());
      for (const auto& records : gathered) writer.WriteRecords(records);
      return Finish(writer);
    }
    case WireOp::kInsertBatch: {
      // The bulk-load / migration-copy op: a record list in, the count
      // and the bucket-space shape out (the same frozen-plane echo as
      // kInsert, checked once per chunk instead of once per record).
      // v2-only, like ScanMany: the client learns it from the handshake
      // feature bits.
      if (frame.version != kWireVersionMux) {
        return Status::InvalidArgument("InsertBatch requires a v2 frame");
      }
      auto records = reader.ReadRecords();
      FXDIST_RETURN_NOT_OK(records.status());
      // Optional trailing dedup token (absent from untagged senders): a
      // retried chunk with the same token acks the remembered count
      // instead of applying twice — the exactly-once marker under
      // indeterminate failures.
      bool tagged = false;
      std::uint64_t token = 0;
      if (!reader.AtEnd()) {
        auto t = reader.U64();
        FXDIST_RETURN_NOT_OK(t.status());
        FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
        tagged = true;
        token = *t;
      }
      const std::uint64_t count = records->size();
      std::unique_lock<std::shared_mutex> lock(backend_mutex_);
      bool duplicate = false;
      std::uint64_t applied = count;
      if (tagged) {
        auto it = applied_tokens_.find(token);
        if (it != applied_tokens_.end()) {
          duplicate = true;
          applied = it->second;
        }
      }
      if (!duplicate) {
        FXDIST_RETURN_NOT_OK(backend_.InsertBatch(*std::move(records)));
        if (tagged) {
          applied_tokens_.emplace(token, count);
          token_order_.push_back(token);
          if (token_order_.size() > kMaxRememberedTokens) {
            applied_tokens_.erase(token_order_.front());
            token_order_.pop_front();
          }
        }
      }
      writer.U64(applied);
      const auto& sizes = backend_.spec().field_sizes();
      writer.U32(static_cast<std::uint32_t>(sizes.size()));
      for (const std::uint64_t size : sizes) writer.U64(size);
      writer.U64(backend_.MutationEpoch());
      if (tagged) writer.U8(duplicate ? 1 : 0);
      return Finish(writer);
    }
    case WireOp::kTopology: {
      // Topology probe: active version, buckets an in-progress migration
      // has not copied yet, and the serving plane's blueprint — what a
      // control tool needs to watch a live reshard from outside.
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      writer.U64(backend_.TopologyVersion());
      writer.U64(backend_.BucketsInMigration());
      writer.Str(BackendBlueprintText(backend_.ServingPlane()));
      // Trailing authoritative epoch (optional for old clients) — the
      // cheap probe a cache refreshes multi-writer staleness with.
      writer.U64(backend_.MutationEpoch());
      return Finish(writer);
    }
    case WireOp::kNumRecords: {
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      writer.U64(backend_.num_records());
      return Finish(writer);
    }
    case WireOp::kRecordCounts: {
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      const auto counts = backend_.RecordCountsPerDevice();
      writer.U32(static_cast<std::uint32_t>(counts.size()));
      for (const std::uint64_t count : counts) writer.U64(count);
      return Finish(writer);
    }
    case WireOp::kMarkDown:
    case WireOp::kMarkUp: {
      auto device = reader.U64();
      FXDIST_RETURN_NOT_OK(device.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      if (replicated_ == nullptr) {
        return Status::Unimplemented("backend '" + backend_.backend_name() +
                                     "' has no replica plane");
      }
      std::unique_lock<std::shared_mutex> lock(backend_mutex_);
      FXDIST_RETURN_NOT_OK(op == WireOp::kMarkDown
                               ? replicated_->MarkDown(*device)
                               : replicated_->MarkUp(*device));
      writer.U64(backend_.MutationEpoch());
      return Finish(writer);
    }
    case WireOp::kListRecords: {
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      std::vector<Record> records;
      backend_.ForEachLiveRecord(
          [&](const Record& record) { records.push_back(record); });
      writer.WriteRecords(records);
      return Finish(writer);
    }
    case WireOp::kAnalyzeRange: {
      // Distributed sweep partial: (mask, [start, end)) in, per-device
      // qualified counts over the range out.  v2-only and feature-
      // negotiated; a coordinator that was not granted the bit runs the
      // same AnalyzeBucketRange on its placement twin instead.
      if (frame.version != kWireVersionMux) {
        return Status::InvalidArgument("AnalyzeRange requires a v2 frame");
      }
      auto mask = reader.U64();
      FXDIST_RETURN_NOT_OK(mask.status());
      auto start = reader.U64();
      FXDIST_RETURN_NOT_OK(start.status());
      auto end = reader.U64();
      FXDIST_RETURN_NOT_OK(end.status());
      FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
      std::shared_lock<std::shared_mutex> lock(backend_mutex_);
      auto partial =
          AnalyzeBucketRange(backend_.device_map(), *mask, *start, *end);
      FXDIST_RETURN_NOT_OK(partial.status());
      writer.U32(static_cast<std::uint32_t>(partial->per_device.size()));
      for (const std::uint64_t count : partial->per_device) {
        writer.U64(count);
      }
      writer.U64(partial->qualified);
      return Finish(writer);
    }
    case WireOp::kError:
      break;  // rejected by HandleFrame
  }
  return Status::InvalidArgument("unhandled wire opcode");
}

// -- ShardServer ---------------------------------------------------------

Result<std::unique_ptr<ShardServer>> ShardServer::Start(
    StorageBackend& backend, Options options) {
  std::unique_ptr<ShardServer> server(new ShardServer(backend, options));

  std::uint16_t bound_port = 0;
  auto fd = CreateListenSocket(options.port, options.listen_backlog,
                               &bound_port);
  if (!fd.ok()) return fd.status();

  server->listen_fd_ = *fd;
  server->port_ = bound_port;
  server->pool_ = std::make_unique<ThreadPool>(
      std::max(1u, options.max_connections));
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

ShardServer::~ShardServer() { Stop(); }

void ShardServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
    // Wakes the blocked accept().
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Wakes every connection handler blocked in recv/send; the handlers
    // erase and close their own fds.
    std::lock_guard<std::mutex> lock(mutex_);
    for (const int fd : connections_) (void)::shutdown(fd, SHUT_RDWR);
  }
  pool_->Wait();
  ::close(listen_fd_);
  listen_fd_ = -1;
  stopped_.notify_all();
}

void ShardServer::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_.wait(lock, [this] { return stopping_; });
}

void ShardServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket shut down (or broken beyond repair)
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.push_back(fd);
    pool_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void ShardServer::ServeConnection(int fd) {
  auto recv_exact = [fd](std::string& buf, std::size_t want) -> bool {
    const std::size_t base = buf.size();
    buf.resize(base + want);
    std::size_t got = 0;
    while (got < want) {
      const ssize_t n = ::recv(fd, buf.data() + base + got, want - got, 0);
      if (n <= 0) return false;  // peer done (or shut down by Stop)
      got += static_cast<std::size_t>(n);
    }
    return true;
  };

  for (;;) {
    std::string request;
    if (!recv_exact(request, kWireHeaderSize)) break;
    // Both header layouts share the first kWireHeaderSize bytes; a v2
    // header needs another 8 before the length field is visible.
    auto header_size = WireHeaderSizeFromPrefix(request);
    if (header_size.ok() && *header_size > request.size() &&
        !recv_exact(request, *header_size - request.size())) {
      break;
    }
    auto total = header_size.ok()
                     ? FrameSizeFromHeader(request, kWireMaxPayload)
                     : Result<std::size_t>(header_size.status());
    // An unframed or oversized request leaves the stream unrecoverable:
    // answer with an error frame and drop the connection.
    if (!total.ok()) {
      const std::string reply = EncodeShardErrorReplyFor(request, total.status());
      (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      break;
    }
    if (!recv_exact(request, *total - request.size())) break;

    const std::string reply = service_.HandleFrame(request);
    std::size_t sent = 0;
    bool send_ok = true;
    while (sent < reply.size()) {
      const ssize_t n = ::send(fd, reply.data() + sent, reply.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        send_ok = false;
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    if (!send_ok) break;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), fd),
      connections_.end());
  ::close(fd);
}

}  // namespace fxdist
