#include "net/mux_transport.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/wire.h"

namespace fxdist {

namespace {

std::uint16_t LoadU16(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[0]) |
                                    static_cast<std::uint16_t>(b[1]) << 8);
}

std::uint32_t LoadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<std::uint32_t>(b[i]);
  return v;
}

std::uint64_t LoadU64(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<std::uint64_t>(b[i]);
  return v;
}

}  // namespace

// -- LoopbackFrameChannel ------------------------------------------------

Status LoopbackFrameChannel::Send(const std::string& frame) {
  // The handler runs outside the lock, so concurrent Sends execute
  // concurrently — the in-process analogue of requests overlapping on
  // the wire.
  std::string reply = handler_(frame);
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) return Status::Unavailable("loopback channel shut down");
  replies_.push_back(std::move(reply));
  ready_.notify_one();
  return Status::OK();
}

Result<std::string> LoopbackFrameChannel::Recv() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return shutdown_ || !replies_.empty(); });
  if (replies_.empty()) {
    return Status::Unavailable("loopback channel shut down");
  }
  std::string reply = std::move(replies_.front());
  replies_.pop_front();
  return reply;
}

void LoopbackFrameChannel::Shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = true;
  ready_.notify_all();
}

// -- MuxTransport --------------------------------------------------------

MuxTransport::MuxTransport(std::unique_ptr<FrameChannel> channel,
                           Options options)
    : channel_(std::move(channel)), options_(options) {
  receiver_ = std::thread(&MuxTransport::ReceiveLoop, this);
}

MuxTransport::~MuxTransport() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    FailAllLocked(Status::Unavailable("mux transport shut down"));
    cv_.notify_all();
  }
  channel_->Shutdown();
  if (receiver_.joinable()) receiver_.join();
}

std::size_t MuxTransport::max_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_in_flight_;
}

std::uint64_t MuxTransport::stale_replies() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stale_replies_;
}

void MuxTransport::FailAllLocked(const Status& error) {
  for (auto& [cid, call] : pending_) {
    call->status = error;
    call->done = true;
  }
  pending_.clear();
  if (exclusive_waiter_ != nullptr) {
    exclusive_waiter_->status = error;
    exclusive_waiter_->done = true;
    exclusive_waiter_ = nullptr;
  }
  cv_.notify_all();
}

bool MuxTransport::TryReviveLocked() {
  if (!pending_.empty() || exclusive_active_) return false;
  if (!channel_->Reset().ok()) return false;
  broken_ = false;
  cv_.notify_all();  // wake the receiver back onto Recv
  return true;
}

Result<std::string> MuxTransport::RoundTrip(const std::string& request) {
  auto header_size = WireHeaderSizeFromPrefix(request);
  FXDIST_RETURN_NOT_OK(header_size.status());
  std::unique_lock<std::mutex> lock(mutex_);
  if (*header_size == kWireHeaderSize) {
    return RoundTripExclusive(request, lock);
  }
  if (request.size() < kWireHeaderSizeMux) {
    return Status::InvalidArgument("mux request header truncated");
  }
  const std::uint64_t cid = LoadU64(request.data() + 8);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.call_timeout_ms);
  for (;;) {
    if (shutdown_) return Status::Unavailable("mux transport shut down");
    if (broken_ && !TryReviveLocked()) {
      return Status::Unavailable("mux connection broken");
    }
    if (!exclusive_active_ && pending_.size() < options_.window) break;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::DeadlineExceeded(
          "mux in-flight window stayed full past the call deadline");
    }
  }

  PendingCall call;
  pending_.emplace(cid, &call);
  max_cid_issued_ = std::max(max_cid_issued_, cid);
  max_in_flight_ = std::max(max_in_flight_, pending_.size());
  lock.unlock();
  const Status sent = channel_->Send(request);
  lock.lock();
  if (!sent.ok()) {
    // Delivered-or-not is the channel's verdict; just withdraw the call.
    if (pending_.erase(cid) > 0) cv_.notify_all();
    if (call.done && !call.status.ok()) return call.status;
    return sent;
  }
  while (!call.done) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !call.done) {
      // Abandon: the id stays "issued", so a late reply is dropped as
      // stale instead of poisoning the connection.
      pending_.erase(cid);
      cv_.notify_all();
      return Status::DeadlineExceeded("mux call timed out after " +
                                      std::to_string(options_.call_timeout_ms) +
                                      "ms");
    }
  }
  FXDIST_RETURN_NOT_OK(call.status);
  return std::move(call.reply);
}

Result<std::string> MuxTransport::RoundTripExclusive(
    const std::string& request, std::unique_lock<std::mutex>& lock) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.call_timeout_ms);
  for (;;) {
    if (shutdown_) return Status::Unavailable("mux transport shut down");
    if (broken_ && !TryReviveLocked()) {
      return Status::Unavailable("mux connection broken");
    }
    if (!exclusive_active_ && pending_.empty()) break;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::DeadlineExceeded(
          "mux pipe did not drain for a v1 round trip before the deadline");
    }
  }

  PendingCall call;
  exclusive_active_ = true;
  exclusive_waiter_ = &call;
  lock.unlock();
  const Status sent = channel_->Send(request);
  lock.lock();
  if (!sent.ok()) {
    exclusive_active_ = false;
    if (exclusive_waiter_ == &call) exclusive_waiter_ = nullptr;
    cv_.notify_all();
    if (call.done && !call.status.ok()) return call.status;
    return sent;
  }
  while (!call.done) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        !call.done) {
      exclusive_active_ = false;
      exclusive_waiter_ = nullptr;
      ++stale_v1_expected_;
      cv_.notify_all();
      return Status::DeadlineExceeded(
          "mux v1 round trip timed out after " +
          std::to_string(options_.call_timeout_ms) + "ms");
    }
  }
  exclusive_active_ = false;
  cv_.notify_all();
  FXDIST_RETURN_NOT_OK(call.status);
  return std::move(call.reply);
}

void MuxTransport::ReceiveLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!shutdown_) {
    if (broken_) {
      cv_.wait(lock);
      continue;
    }
    lock.unlock();
    auto raw = channel_->Recv();
    lock.lock();
    if (shutdown_) break;
    if (!raw.ok()) {
      FailAllLocked(raw.status());
      broken_ = true;
      continue;
    }
    const std::string& bytes = *raw;
    if (bytes.size() < kWireHeaderSize ||
        LoadU32(bytes.data()) != kWireMagic) {
      FailAllLocked(Status::DataLoss("mux received an unframed reply"));
      broken_ = true;
      continue;
    }
    if (LoadU16(bytes.data() + 4) != kWireVersionMux) {
      // v1 reply: only the exclusive round trip can have asked for it.
      if (exclusive_waiter_ != nullptr) {
        exclusive_waiter_->reply = *std::move(raw);
        exclusive_waiter_->done = true;
        exclusive_waiter_ = nullptr;
        cv_.notify_all();
      } else if (stale_v1_expected_ > 0) {
        --stale_v1_expected_;
        ++stale_replies_;
      } else {
        FailAllLocked(Status::DataLoss("mux received an unsolicited v1 reply"));
        broken_ = true;
      }
      continue;
    }
    if (bytes.size() < kWireHeaderSizeMux) {
      FailAllLocked(Status::DataLoss("mux reply header truncated"));
      broken_ = true;
      continue;
    }
    const std::uint64_t cid = LoadU64(bytes.data() + 8);
    auto it = pending_.find(cid);
    if (it != pending_.end()) {
      it->second->reply = *std::move(raw);
      it->second->done = true;
      pending_.erase(it);
      cv_.notify_all();
    } else if (cid <= max_cid_issued_) {
      // Issued but abandoned — its waiter already returned.
      ++stale_replies_;
    } else {
      FailAllLocked(
          Status::DataLoss("mux reply names a correlation id never issued"));
      broken_ = true;
    }
  }
}

}  // namespace fxdist
