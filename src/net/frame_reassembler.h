// Incremental wire-frame reassembly for readiness-driven readers.
//
// The blocking transports pull exactly one frame at a time with
// recv-exact loops; an event-driven reader instead gets arbitrary byte
// chunks whenever the socket is readable — half a header, three frames
// and a tail, one byte at a time from a slow peer.  FrameReassembler
// turns that stream back into complete frames without ever blocking:
//
//   * Feed() appends bytes and extracts every complete frame, using the
//     same header validation as the blocking readers
//     (WireHeaderSizeFromPrefix + FrameSizeFromHeader), so an announced
//     length over the cap is rejected before any allocation is sized
//     from it.
//   * A malformed prefix (bad magic/version, over-limit length) poisons
//     the reassembler: Feed returns the error, keeps returning it, and
//     no further frames are extracted.  The stream is unframed beyond
//     repair at that point — the caller answers with an error frame and
//     closes.  Checksum validation stays in DecodeFrame: a corrupt
//     payload under an honest header is a per-frame failure the
//     connection survives.
//   * mid_frame() reports whether a partial frame is buffered — the
//     condition the event server arms its read deadline on (a peer that
//     starts a frame must finish it in time; an idle connection owes
//     nothing).
//
// Extracted frames are byte-identical to the fed input: whatever split
// points the network chose, the concatenation of outputs equals the
// concatenation of inputs (pinned by tests/net/frame_reassembly_test.cc
// across every split point and under bit-flip fuzz, in CI under ASan).

#ifndef FXDIST_NET_FRAME_REASSEMBLER_H_
#define FXDIST_NET_FRAME_REASSEMBLER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"
#include "util/status.h"

namespace fxdist {

class FrameReassembler {
 public:
  explicit FrameReassembler(std::uint32_t max_payload = kWireMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends `bytes` and moves every newly completed frame into `*out`
  /// (appended in stream order; `out` is not cleared).  On a malformed
  /// header the error is returned and sticky; frames completed by this
  /// very call before the bad prefix are still delivered.
  Status Feed(std::string_view bytes, std::vector<std::string>* out);

  /// True while a started-but-incomplete frame is buffered.
  bool mid_frame() const { return poisoned_.ok() && !buffer_.empty(); }

  /// Bytes currently buffered (partial frame, or the rejected prefix
  /// after poisoning — kept so the caller can echo version/correlation
  /// id in its error reply).
  const std::string& buffered() const { return buffer_; }

  /// The sticky error, or OK.
  const Status& poisoned() const { return poisoned_; }

  /// Raises/lowers the per-frame payload cap (handshake negotiation).
  void set_max_payload(std::uint32_t max_payload) {
    max_payload_ = max_payload;
  }

 private:
  std::uint32_t max_payload_;
  std::string buffer_;
  Status poisoned_;
};

}  // namespace fxdist

#endif  // FXDIST_NET_FRAME_REASSEMBLER_H_
