// Fan-in load generation against a shard server — the client half of
// the C10K story.
//
// RunQueryFanIn opens `clients` concurrent TCP connections (driven by
// `threads` OS threads, blocking I/O — the *server* under test is the
// event-driven part) and plays `waves` query round trips on each.  The
// query stream is deterministic: connection c's wave w executes
// queries[(w * clients + c) % queries.size()], so two runs with the
// same clients*waves total execute the same query multiset and any two
// correct servers must report the same matched_total — the bit-identity
// gate bench/connection_scaling and the differential tests lean on.
//
// ProbeConnection answers "did the server shed me?": it connects and
// waits briefly for an unsolicited frame.  A server over its connection
// cap sends a kResourceExhausted error frame at accept; a server that
// accepted sends nothing until spoken to.
//
// TryRaiseNoFileLimit lifts RLIMIT_NOFILE toward `want` — a thousand
// in-process loopback connections cost two fds each, which overruns the
// usual 1024 soft limit long before the test gets interesting.

#ifndef FXDIST_NET_LOADGEN_H_
#define FXDIST_NET_LOADGEN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct FanInOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t clients = 100;  ///< concurrent connections
  std::size_t threads = 8;    ///< driver threads (capped at `clients`)
  std::size_t waves = 4;      ///< round trips per connection
  int io_timeout_ms = 10000;  ///< per-operation socket deadline
};

struct FanInReport {
  std::uint64_t replies = 0;        ///< complete round trips
  std::uint64_t transport_errors = 0;  ///< dial/send/recv/decode failures
  std::uint64_t error_replies = 0;  ///< decodable replies carrying a
                                    ///< non-OK status
  std::uint64_t matched_total = 0;  ///< sum of records_matched
  std::uint64_t bytes_down = 0;     ///< reply bytes received
  double elapsed_ms = 0.0;          ///< whole fan-in wall clock
  double p50_ms = 0.0;              ///< per-round-trip latency quantiles
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Runs the fan-in.  Fails only on empty inputs; per-connection
/// failures are reported in the counters (a load test wants the tally,
/// not the first error).  A connection that fails abandons its
/// remaining waves, counting each as a transport error.
Result<FanInReport> RunQueryFanIn(const std::vector<ValueQuery>& queries,
                                  const FanInOptions& options);

/// Sends `request` (a complete encoded frame) on `fd` and reads exactly
/// one reply frame, raw.  Blocking; respects the fd's socket deadlines.
Result<std::string> RoundTripOnFd(int fd, const std::string& request,
                                  std::uint32_t max_payload = kWireMaxPayload);

/// Reads exactly one frame from `fd` without sending anything first.
Result<std::string> RecvFrameOnFd(int fd,
                                  std::uint32_t max_payload = kWireMaxPayload);

/// What a fresh connection was greeted with.
struct ProbeResult {
  bool got_frame = false;  ///< false: accepted silently (no greeting)
  WireOp op = WireOp::kError;
  Status frame_status;  ///< leading Status of the greeting frame
};

/// Connects and waits up to `wait_ms` for an unsolicited frame (the
/// shed path sends one; the accept path stays silent).
Result<ProbeResult> ProbeConnection(const std::string& host,
                                    std::uint16_t port, int wait_ms);

/// Best-effort bump of RLIMIT_NOFILE to at least `want` (capped at the
/// hard limit).  Returns the resulting soft limit.
std::uint64_t TryRaiseNoFileLimit(std::uint64_t want);

/// Encodes a v1 kExecute request frame for `query` — the loadgen's unit
/// of work, exposed for tests that drive connections by hand.
std::string EncodeExecuteFrame(const ValueQuery& query);

}  // namespace fxdist

#endif  // FXDIST_NET_LOADGEN_H_
