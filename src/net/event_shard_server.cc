#include "net/event_shard_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <utility>

#include "net/socket_transport.h"

namespace fxdist {

namespace {

/// Unsent bytes queued on a connection.
std::size_t PendingWrite(const std::string& buf, std::size_t pos) {
  return buf.size() - pos;
}

}  // namespace

Result<std::unique_ptr<EventShardServer>> EventShardServer::Start(
    StorageBackend& backend, Options options) {
  std::unique_ptr<EventShardServer> server(
      new EventShardServer(backend, options));

  auto loop = EventLoop::Create(options.tick_ms);
  if (!loop.ok()) return loop.status();
  server->loop_ = *std::move(loop);

  std::uint16_t bound_port = 0;
  auto fd = CreateListenSocket(options.port, options.listen_backlog,
                               &bound_port);
  if (!fd.ok()) return fd.status();
  server->listen_fd_ = *fd;
  server->port_ = bound_port;
  FXDIST_RETURN_NOT_OK(SetNonBlocking(*fd));

  // Registered before the loop thread exists, which the EventLoop
  // threading contract explicitly allows.
  FXDIST_RETURN_NOT_OK(server->loop_->Add(
      *fd, EPOLLIN, /*edge_triggered=*/true,
      [raw = server.get()](std::uint32_t) { raw->HandleAccept(); }));

  server->pool_ =
      std::make_unique<ThreadPool>(std::max(1u, options.workers));
  server->loop_thread_ =
      std::thread([raw = server.get()] { raw->loop_->Run(); });
  return server;
}

EventShardServer::~EventShardServer() { Stop(); }

void EventShardServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (loop_thread_.joinable()) {
    // Tear down every socket on the loop thread, synchronously, so no
    // readiness callback can race the closes.  Worker completions still
    // in flight then resolve against an empty connection table and are
    // counted as dropped, never delivered to a recycled fd.
    std::promise<void> torn_down;
    loop_->Post([this, &torn_down] {
      if (listen_fd_ >= 0) {
        loop_->Remove(listen_fd_);
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [id, conn] : conns_) {
        if (conn->deadline_timer != 0) {
          loop_->CancelTimer(conn->deadline_timer);
        }
        loop_->Remove(conn->fd);
        ::close(conn->fd);
      }
      conns_.clear();
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.cur_connections = 0;
      }
      torn_down.set_value();
    });
    torn_down.get_future().wait();
    pool_->Wait();
    loop_->Stop();
    loop_thread_.join();
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_cv_.notify_all();
}

void EventShardServer::Wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stopped_cv_.wait(lock, [this] { return stopping_; });
}

EventServerStats EventShardServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void EventShardServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // drained (EAGAIN) or listener gone
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (conns_.size() >= options_.max_connections) {
      // Shed with a decodable reason.  The frame is ~50 bytes into a
      // fresh socket buffer; a short write only truncates the courtesy.
      const std::string shed = EncodeShardErrorReplyFor(
          "", Status::ResourceExhausted(
                  "connection limit " +
                  std::to_string(options_.max_connections) + " reached"));
      (void)::send(fd, shed.data(), shed.size(), MSG_NOSIGNAL);
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed_connections;
      continue;
    }

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->interest = EPOLLIN;
    const std::uint64_t id = conn->id;
    Status added = loop_->Add(
        fd, EPOLLIN, /*edge_triggered=*/true,
        [this, id](std::uint32_t events) { HandleIo(id, events); });
    if (!added.ok()) {
      ::close(fd);
      continue;
    }
    conns_[id] = std::move(conn);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
    stats_.cur_connections = conns_.size();
    stats_.max_concurrent = std::max<std::uint64_t>(stats_.max_concurrent,
                                                    conns_.size());
  }
}

void EventShardServer::HandleIo(std::uint64_t conn_id, std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;

  if (events & EPOLLOUT) {
    FlushWrites(conn);
    if (conns_.find(conn_id) == conns_.end()) return;
  }
  if (events & EPOLLIN) {
    ReadFromPeer(conn);
    if (conns_.find(conn_id) == conns_.end()) return;
  } else if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(conn);
    return;
  }

  DispatchReady(conn);
  FlushWrites(conn);
  if (conns_.find(conn_id) == conns_.end()) return;
  ArmOrClearDeadline(conn);
  UpdateInterest(conn);
  MaybeFinish(conn);
}

void EventShardServer::ReadFromPeer(Conn& conn) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      std::vector<std::string> frames;
      Status fed = conn.reassembler.Feed(
          std::string_view(buf, static_cast<std::size_t>(n)), &frames);
      if (!frames.empty()) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.frames_in += frames.size();
        }
        for (auto& frame : frames) {
          conn.ready_frames.push_back(std::move(frame));
        }
      }
      DispatchReady(conn);
      if (!fed.ok()) {
        PoisonConn(conn, fed);
        return;
      }
      // Backpressure: frames the window can't take are parked; stop
      // pulling more off the socket and let TCP push back on the peer.
      if (!conn.ready_frames.empty() ||
          PendingWrite(conn.write_buf, conn.write_pos) >
              options_.max_write_buffer) {
        return;
      }
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      if (errno == EINTR) continue;
      return;  // drained
    }
    CloseConn(conn);
    return;
  }
}

void EventShardServer::DispatchReady(Conn& conn) {
  // The write watermark gates dispatch too: parked requests whose
  // replies nobody is reading stay parked, so per-connection memory is
  // bounded by watermark + one window of replies — not by how many
  // tiny requests fit in one read chunk.
  while (conn.in_flight < options_.max_in_flight &&
         !conn.ready_frames.empty() &&
         PendingWrite(conn.write_buf, conn.write_pos) <=
             options_.max_write_buffer) {
    std::string request = std::move(conn.ready_frames.front());
    conn.ready_frames.pop_front();
    const std::uint64_t seq = conn.next_seq++;
    ++conn.in_flight;
    const std::uint64_t id = conn.id;
    pool_->Submit([this, id, seq, request = std::move(request)] {
      std::string reply = service_.HandleFrame(request);
      loop_->Post([this, id, seq, reply = std::move(reply)]() mutable {
        OnWorkerDone(id, seq, std::move(reply));
      });
    });
  }
}

void EventShardServer::OnWorkerDone(std::uint64_t conn_id, std::uint64_t seq,
                                    std::string reply) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.dropped_replies;
    return;
  }
  Conn& conn = *it->second;
  conn.done.push(PendingReply{seq, std::move(reply)});
  EmitReady(conn);
  // Flush before dispatching so the watermark gate in DispatchReady
  // sees post-flush pressure; otherwise a connection whose window just
  // emptied could stall with parked frames and no future event.
  FlushWrites(conn);
  if (conns_.find(conn_id) == conns_.end()) return;
  DispatchReady(conn);
  UpdateInterest(conn);
  MaybeFinish(conn);
}

void EventShardServer::EmitReady(Conn& conn) {
  std::uint64_t emitted = 0;
  while (!conn.done.empty() && conn.done.top().seq == conn.emit_seq) {
    // top() is const-qualified but the element is ours to consume; the
    // cast lets the (possibly large) reply move instead of copy.
    auto& top = const_cast<PendingReply&>(conn.done.top());
    conn.write_buf.append(top.frame);
    conn.done.pop();
    ++conn.emit_seq;
    --conn.in_flight;
    ++emitted;
  }
  if (emitted > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.replies_out += emitted;
    stats_.max_write_buffer_bytes = std::max<std::uint64_t>(
        stats_.max_write_buffer_bytes,
        PendingWrite(conn.write_buf, conn.write_pos));
  }
}

void EventShardServer::FlushWrites(Conn& conn) {
  while (conn.write_pos < conn.write_buf.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buf.data() + conn.write_pos,
               conn.write_buf.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (conn.write_pos == conn.write_buf.size()) {
    conn.write_buf.clear();
    conn.write_pos = 0;
  } else if (conn.write_pos > (1u << 20)) {
    // Keep a stuck peer's buffer from growing a dead prefix forever.
    conn.write_buf.erase(0, conn.write_pos);
    conn.write_pos = 0;
  }
}

void EventShardServer::UpdateInterest(Conn& conn) {
  const std::size_t pending = PendingWrite(conn.write_buf, conn.write_pos);
  const bool pressure_pause = !conn.ready_frames.empty() ||
                              pending > options_.max_write_buffer;
  const bool readable = !conn.closing && !conn.peer_eof &&
                        conn.reassembler.poisoned().ok() && !pressure_pause;
  std::uint32_t want = 0;
  if (readable) want |= EPOLLIN;
  if (pending > 0) want |= EPOLLOUT;

  const bool now_paused = pressure_pause && !conn.closing && !conn.peer_eof;
  if (now_paused && !conn.paused) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reads_paused;
  }
  conn.paused = now_paused;

  if (want != conn.interest) {
    // MOD re-arms edge-triggered delivery, so re-enabling EPOLLIN
    // redelivers data that arrived while reads were paused.
    (void)loop_->Modify(conn.fd, want);
    conn.interest = want;
  }
}

void EventShardServer::ArmOrClearDeadline(Conn& conn) {
  if (options_.read_deadline_ms == 0) return;
  const bool want_timer = conn.reassembler.mid_frame();
  if (want_timer && conn.deadline_timer == 0) {
    const std::uint64_t id = conn.id;
    // Armed when the frame starts and NOT reset by per-byte progress:
    // a dribbling peer must finish its frame inside one budget total.
    conn.deadline_timer = loop_->AddTimer(
        options_.read_deadline_ms, [this, id] { OnDeadline(id); });
  } else if (!want_timer && conn.deadline_timer != 0) {
    loop_->CancelTimer(conn.deadline_timer);
    conn.deadline_timer = 0;
  }
}

void EventShardServer::OnDeadline(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  conn.deadline_timer = 0;
  if (conn.reassembler.mid_frame() && !conn.closing && !conn.peer_eof) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_evictions;
    }
    // Clean eviction: a best-effort reason frame, then the close.  No
    // flush-wait — a loris peer gets no more of our memory or time.
    const std::string reply = EncodeShardErrorReplyFor(
        conn.reassembler.buffered(),
        Status::DeadlineExceeded("frame not completed within " +
                                 std::to_string(options_.read_deadline_ms) +
                                 "ms"));
    (void)::send(conn.fd, reply.data(), reply.size(), MSG_NOSIGNAL);
  }
  // For closing / draining connections this timer is the drain budget:
  // the peer didn't take its last bytes in time either way.
  CloseConn(conn);
}

void EventShardServer::PoisonConn(Conn& conn, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.protocol_errors;
  }
  // The stream is unframed beyond repair: answer (echoing whatever
  // version/correlation prefix survives in the buffer), flush, close.
  conn.write_buf.append(
      EncodeShardErrorReplyFor(conn.reassembler.buffered(), status));
  conn.closing = true;
  conn.ready_frames.clear();
}

void EventShardServer::MaybeFinish(Conn& conn) {
  const bool draining = conn.closing || conn.peer_eof;
  if (!draining) return;
  if (conn.in_flight == 0 && conn.ready_frames.empty() &&
      conn.done.empty() &&
      PendingWrite(conn.write_buf, conn.write_pos) == 0) {
    CloseConn(conn);
    return;
  }
  // Bound the drain: a closing peer that stops reading must not pin
  // this connection's memory forever.
  if (conn.deadline_timer == 0) {
    const std::uint64_t budget =
        options_.read_deadline_ms != 0 ? options_.read_deadline_ms : 5000;
    const std::uint64_t id = conn.id;
    conn.deadline_timer =
        loop_->AddTimer(budget, [this, id] { OnDeadline(id); });
  }
}

void EventShardServer::CloseConn(Conn& conn) {
  if (conn.deadline_timer != 0) {
    loop_->CancelTimer(conn.deadline_timer);
    conn.deadline_timer = 0;
  }
  loop_->Remove(conn.fd);
  ::close(conn.fd);
  const std::uint64_t id = conn.id;
  conns_.erase(id);  // `conn` is dangling from here on
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.cur_connections = conns_.size();
}

}  // namespace fxdist
