// Readiness event loop: epoll + a hashed timer wheel + a cross-thread
// task queue, the substrate EventShardServer multiplexes thousands of
// connections on.
//
// Threading contract: exactly one thread calls Run() (the "loop
// thread").  Add/Modify/Remove and AddTimer/CancelTimer are loop-thread
// only — except before Run() starts, when no concurrency exists yet
// (the server registers its listener there).  The two thread-safe entry
// points are Post(), which enqueues a closure the loop thread executes
// on its next pass (an eventfd wakes an idle epoll_wait), and Stop().
// Worker threads never touch fds or timers directly; they Post
// completions back, so all connection state is loop-thread confined —
// the property that keeps the server data-race free without a lock per
// connection.
//
// Fd readiness: each registered fd carries a callback receiving the
// epoll event mask.  Registration chooses level- or edge-triggered
// delivery per fd; EventShardServer drains sockets to EAGAIN either
// way, so both modes serve correctly (edge is the default — one wakeup
// per readiness transition instead of one per pass while data sits
// buffered).
//
// Timers: a classic hashed wheel (kWheelSlots slots of tick_ms each,
// rounds counters for deadlines beyond one revolution).  Insert and
// cancel are O(1); each tick sweeps one slot.  Resolution is tick_ms —
// deadlines fire within one tick after expiry, which is exactly what
// connection read deadlines need and far cheaper than a heap under
// thousands of armed-and-cancelled timers (every completed frame
// cancels one).  epoll_wait sleeps until the next tick only while
// timers are armed; an idle loop with no timers blocks indefinitely
// until an fd or Post wakes it.

#ifndef FXDIST_NET_EVENT_LOOP_H_
#define FXDIST_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace fxdist {

class EventLoop {
 public:
  /// Callback for fd readiness; receives the epoll event mask.
  using IoCallback = std::function<void(std::uint32_t)>;

  /// `tick_ms` is the timer-wheel resolution (>= 1).
  static Result<std::unique_ptr<EventLoop>> Create(
      std::uint64_t tick_ms = 10);

  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...).  The fd is not
  /// owned; the caller closes it after Remove().  Loop-thread only (or
  /// before Run starts).
  Status Add(int fd, std::uint32_t events, bool edge_triggered,
             IoCallback callback);

  /// Replaces the interest set; the callback and trigger mode persist.
  Status Modify(int fd, std::uint32_t events);

  /// Deregisters `fd`.  Safe to call for an fd that was never added.
  void Remove(int fd);

  /// Arms a one-shot timer `delay_ms` from now; returns its id (never
  /// 0).  The callback runs on the loop thread.  Loop-thread only.
  std::uint64_t AddTimer(std::uint64_t delay_ms, std::function<void()> fn);

  /// Disarms a timer; a no-op if it already fired or never existed.
  void CancelTimer(std::uint64_t id);

  /// Enqueues `fn` for the loop thread and wakes it.  Thread-safe; may
  /// be called from worker threads and from loop callbacks alike.
  /// Tasks posted after Stop() (or after Run returned) are discarded on
  /// destruction, never run on a foreign thread.
  void Post(std::function<void()> fn);

  /// Runs until Stop().  Executes ready fd callbacks, expired timers
  /// and posted tasks; drains the task queue once more before
  /// returning so teardown work posted alongside Stop still runs.
  void Run();

  /// Requests Run() to return.  Thread-safe, idempotent.
  void Stop();

  /// True when the calling thread is inside Run().
  bool InLoopThread() const;

 private:
  struct FdState {
    IoCallback callback;
    std::uint32_t events = 0;
    bool edge = false;
  };
  struct Timer {
    std::uint64_t id = 0;
    std::uint64_t rounds = 0;
    std::function<void()> fn;
    bool cancelled = false;
  };
  using TimerSlot = std::list<std::shared_ptr<Timer>>;

  EventLoop(int epoll_fd, int wake_fd, std::uint64_t tick_ms);

  void RunTasks();
  /// Fires every timer the elapsed wall time has made due.
  void AdvanceWheel();
  /// Milliseconds epoll may sleep before the next due tick (-1: forever).
  int NextTimeoutMs() const;

  const int epoll_fd_;
  const int wake_fd_;
  const std::uint64_t tick_ms_;

  std::unordered_map<int, FdState> fds_;

  static constexpr std::size_t kWheelSlots = 512;
  std::vector<TimerSlot> wheel_{kWheelSlots};
  std::unordered_map<std::uint64_t, std::shared_ptr<Timer>> timers_;
  std::size_t wheel_pos_ = 0;
  std::uint64_t next_timer_id_ = 1;
  std::chrono::steady_clock::time_point next_tick_at_{};

  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;

  std::atomic<bool> stop_{false};
  std::atomic<const void*> loop_thread_{nullptr};
};

}  // namespace fxdist

#endif  // FXDIST_NET_EVENT_LOOP_H_
