// Transport: how an encoded request frame reaches a shard server and its
// reply frame comes back.
//
// The error taxonomy is the retry contract (see net/remote_backend.h):
//
//   Unavailable       the request was never delivered — retrying is safe
//                     for every operation, including mutations.
//   DeadlineExceeded  the request may have executed but no reply arrived
//                     in time — retry only idempotent operations.
//   DataLoss          the reply was truncated or corrupted in flight —
//                     the request may have executed; retry only
//                     idempotent operations.  (Checksum rejections are
//                     raised by the frame decoder, not the transport.)
//
// Implementations here: LoopbackTransport calls a handler in-process
// (deterministic tests, zero sockets) and FaultInjectingTransport wraps
// any transport to force each failure mode on demand.  The real TCP
// transport lives in net/socket_transport.h.

#ifndef FXDIST_NET_TRANSPORT_H_
#define FXDIST_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "util/status.h"

namespace fxdist {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends one encoded request frame and returns the raw reply bytes.
  /// Blocking; implementations are internally synchronized (callers may
  /// share one transport across threads).
  virtual Result<std::string> RoundTrip(const std::string& request) = 0;
};

/// Delivers requests to an in-process handler — typically
/// ShardService::HandleFrame — with no sockets and no copies beyond the
/// frames themselves.  Deterministic: used by the differential tests and
/// the loopback-remote bench rows.
class LoopbackTransport final : public Transport {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  Result<std::string> RoundTrip(const std::string& request) override {
    return handler_(request);
  }

 private:
  Handler handler_;
};

/// Which failure a FaultInjectingTransport forces.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  /// Request never delivered; RoundTrip returns Unavailable.
  kDrop,
  /// Request delivered (side effects happen) but the reply misses the
  /// deadline; RoundTrip returns DeadlineExceeded.
  kDelayPastDeadline,
  /// Request delivered; reply bytes flipped in flight.  RoundTrip
  /// succeeds — the client's frame checksum is what must catch it.
  kCorruptReply,
  /// Request delivered; connection dies mid-reply.  RoundTrip returns
  /// DataLoss.
  kDisconnectMidReply,
};

/// Decorator that forces transport failures.  InjectFault(kind, n) makes
/// the next `n` calls fail that way and then heals — the shape retry
/// logic must survive ("N failures then success").  Thread-safe.
class FaultInjectingTransport final : public Transport {
 public:
  explicit FaultInjectingTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  /// The next `count` calls fail with `kind`; count < 0 means every call
  /// until the next InjectFault.
  void InjectFault(FaultKind kind, int count);

  std::uint64_t calls() const;      ///< RoundTrip invocations
  std::uint64_t faulted() const;    ///< calls that hit an injected fault
  std::uint64_t delivered() const;  ///< calls the inner transport saw

  Result<std::string> RoundTrip(const std::string& request) override;

 private:
  std::unique_ptr<Transport> inner_;
  mutable std::mutex mutex_;
  FaultKind kind_ = FaultKind::kNone;
  int fault_budget_ = 0;
  std::uint64_t calls_ = 0;
  std::uint64_t faulted_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_NET_TRANSPORT_H_
