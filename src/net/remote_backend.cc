#include "net/remote_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/socket_transport.h"
#include "sim/persistence.h"

namespace fxdist {

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    std::unique_ptr<Transport> transport, Options options) {
  std::unique_ptr<RemoteBackend> backend(
      new RemoteBackend(std::move(transport), options));
  auto body = backend->Call(WireOp::kHandshake, "", /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto blueprint = reader.Str();
  FXDIST_RETURN_NOT_OK(blueprint.status());
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  auto twin = BuildBackendFromBlueprintText(*blueprint);
  if (!twin.ok()) {
    return Status::Internal("remote blueprint rejected: " +
                            twin.status().message());
  }
  backend->twin_ = *std::move(twin);
  backend->twin_replicated_ =
      dynamic_cast<ReplicatedBackend*>(backend->twin_.get());
  return backend;
}

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::ConnectTcp(
    const std::string& host_port, Options options) {
  SocketTransport::Options socket_options;
  socket_options.io_timeout_ms = options.deadline_ms;
  auto transport = SocketTransport::ConnectSpec(host_port, socket_options);
  FXDIST_RETURN_NOT_OK(transport.status());
  return Connect(*std::move(transport), options);
}

Result<std::string> RemoteBackend::Call(WireOp op, std::string payload,
                                        bool idempotent) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  if (!terminal_.empty()) return Status::Unavailable(terminal_);

  WireFrame request;
  request.op = op;
  request.is_reply = false;
  request.payload = std::move(payload);
  const std::string request_bytes = EncodeFrame(request);

  const int max_attempts = std::max(1, options_.max_attempts);
  int backoff_ms = options_.backoff_initial_ms;
  Status last;
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && backoff_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options_.backoff_max_ms);
    }
    ++attempts;

    Status failure;
    auto raw = transport_->RoundTrip(request_bytes);
    if (!raw.ok()) {
      failure = raw.status();
    } else {
      auto reply = DecodeFrame(*raw);
      if (!reply.ok()) {
        failure = Status::DataLoss("reply rejected: " +
                                   reply.status().message());
      } else if (!reply->is_reply ||
                 (reply->op != op && reply->op != WireOp::kError)) {
        failure = Status::DataLoss(
            std::string("protocol desync: expected a ") + WireOpName(op) +
            " reply, got " + WireOpName(reply->op));
      } else {
        PayloadReader reader(reply->payload);
        Status remote_status;
        const Status parse = reader.ReadStatusInto(&remote_status);
        if (!parse.ok()) {
          failure = Status::DataLoss("malformed reply payload: " +
                                     parse.message());
        } else if (!remote_status.ok()) {
          // The server executed the operation and said no.  That is an
          // application error, not a transport failure: surface it
          // as-is, never retry, never go terminal.
          return remote_status;
        } else {
          return std::string(reply->payload.substr(
              reply->payload.size() - reader.remaining()));
        }
      }
    }

    last = failure;
    const bool retryable =
        failure.code() == StatusCode::kUnavailable ||
        (idempotent && (failure.code() == StatusCode::kDeadlineExceeded ||
                        failure.code() == StatusCode::kDataLoss));
    if (!retryable) break;
  }

  // Out of budget (or a mutation hit an indeterminate failure): go
  // terminal so this shard now looks like a local dead child.
  terminal_ = "remote shard unavailable after " + std::to_string(attempts) +
              " attempt(s): " + last.ToString();
  return Status::Unavailable(terminal_);
}

std::uint64_t RemoteBackend::num_records() const {
  auto body = Call(WireOp::kNumRecords, "", /*idempotent=*/true);
  if (!body.ok()) return 0;
  PayloadReader reader(*body);
  auto count = reader.U64();
  if (!count.ok() || !reader.AtEnd()) return 0;
  return *count;
}

Status RemoteBackend::Insert(Record record) {
  {
    // Any mutation attempt (even one that fails indeterminately) may
    // have changed the remote's buckets — drop the pinned scans first.
    std::lock_guard<std::mutex> lock(mutex_);
    scan_pins_.clear();
  }
  PayloadWriter writer;
  writer.WriteRecord(record);
  auto body = Call(WireOp::kInsert, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());

  // The reply echoes the remote's current bucket-space shape; a remote
  // dynamic child that grew past the blueprint the twin was built from
  // breaks the frozen placement plane — poison, exactly as ShardedBackend
  // does for a local child.
  PayloadReader reader(*body);
  auto arity = reader.U32();
  FXDIST_RETURN_NOT_OK(arity.status());
  std::vector<std::uint64_t> sizes;
  sizes.reserve(*arity);
  for (std::uint32_t i = 0; i < *arity; ++i) {
    auto size = reader.U64();
    FXDIST_RETURN_NOT_OK(size.status());
    sizes.push_back(*size);
  }
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  if (sizes != twin_->spec().field_sizes()) {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ =
        "remote shard outgrew the frozen placement plane: its bucket "
        "space no longer matches the handshake blueprint";
    return Status::FailedPrecondition(poisoned_);
  }
  return Status::OK();
}

Result<std::uint64_t> RemoteBackend::Delete(const ValueQuery& query) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scan_pins_.clear();
  }
  PayloadWriter writer;
  writer.WriteQuery(query);
  auto body = Call(WireOp::kDelete, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto removed = reader.U64();
  FXDIST_RETURN_NOT_OK(removed.status());
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return *removed;
}

bool RemoteBackend::IsBucketLive(std::uint64_t device,
                                 std::uint64_t linear_bucket) const {
  PayloadWriter writer;
  writer.U64(device);
  writer.U64(linear_bucket);
  auto body = Call(WireOp::kIsBucketLive, writer.Take(), /*idempotent=*/true);
  if (!body.ok()) return false;
  PayloadReader reader(*body);
  auto live = reader.U8();
  return live.ok() && reader.AtEnd() && *live != 0;
}

void RemoteBackend::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  PayloadWriter writer;
  writer.U64(device);
  writer.U64(linear_bucket);
  auto body = Call(WireOp::kScanBucket, writer.Take(), /*idempotent=*/true);
  if (!body.ok()) return;  // visits nothing; Health() reports the cause
  PayloadReader reader(*body);
  auto records = reader.ReadRecords();
  if (!records.ok() || !reader.AtEnd()) return;
  // Pin the decoded records so references handed to `fn` stay valid
  // until the next mutation, like a local backend's storage would.
  // Re-scans of the same bucket (the engine streams each covering query
  // past the bucket separately) must not move the pin while earlier
  // callers still hold pointers into it, so an unchanged bucket reuses
  // the existing pin.
  const std::vector<Record>* pinned = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Record>& pin = scan_pins_[{device, linear_bucket}];
    if (pin != *records) pin = *std::move(records);
    pinned = &pin;
  }
  for (const Record& record : *pinned) {
    if (!fn(record)) return;
  }
}

Result<QueryResult> RemoteBackend::Execute(const ValueQuery& query) const {
  PayloadWriter writer;
  writer.WriteQuery(query);
  auto body = Call(WireOp::kExecute, writer.Take(), /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto result = reader.ReadResult();
  FXDIST_RETURN_NOT_OK(result.status());
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return *std::move(result);
}

std::vector<std::uint64_t> RemoteBackend::RecordCountsPerDevice() const {
  const std::vector<std::uint64_t> zeros(num_devices(), 0);
  auto body = Call(WireOp::kRecordCounts, "", /*idempotent=*/true);
  if (!body.ok()) return zeros;
  PayloadReader reader(*body);
  auto arity = reader.U32();
  if (!arity.ok()) return zeros;
  std::vector<std::uint64_t> counts;
  counts.reserve(*arity);
  for (std::uint32_t i = 0; i < *arity; ++i) {
    auto count = reader.U64();
    if (!count.ok()) return zeros;
    counts.push_back(*count);
  }
  if (!reader.AtEnd()) return zeros;
  return counts;
}

void RemoteBackend::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  auto body = Call(WireOp::kListRecords, "", /*idempotent=*/true);
  if (!body.ok()) return;
  PayloadReader reader(*body);
  auto records = reader.ReadRecords();
  if (!records.ok() || !reader.AtEnd()) return;
  for (const Record& record : *records) fn(record);
}

Status RemoteBackend::MarkDown(std::uint64_t device) {
  PayloadWriter writer;
  writer.U64(device);
  auto body = Call(WireOp::kMarkDown, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  if (twin_replicated_ == nullptr) {
    return Status::Internal("remote accepted MarkDown but the twin has no "
                            "replica plane");
  }
  // Mirror onto the twin so ServingDevice routes like the server.
  return twin_replicated_->MarkDown(device);
}

Status RemoteBackend::MarkUp(std::uint64_t device) {
  PayloadWriter writer;
  writer.U64(device);
  auto body = Call(WireOp::kMarkUp, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  if (twin_replicated_ == nullptr) {
    return Status::Internal("remote accepted MarkUp but the twin has no "
                            "replica plane");
  }
  return twin_replicated_->MarkUp(device);
}

Status RemoteBackend::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  if (!terminal_.empty()) return Status::Unavailable(terminal_);
  return Status::OK();
}

}  // namespace fxdist
