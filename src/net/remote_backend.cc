#include "net/remote_backend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/mux_transport.h"
#include "net/socket_transport.h"
#include "sim/persistence.h"
#include "util/random.h"

namespace fxdist {

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::Connect(
    std::unique_ptr<Transport> transport, Options options) {
  std::unique_ptr<RemoteBackend> backend(
      new RemoteBackend(std::move(transport), std::move(options)));
  if (!backend->options_.force_wire_v1) {
    backend->wire_version_ = kWireVersionMux;
    PayloadWriter hello;
    hello.U64(kWireMaxPayload);
    hello.U32(kWireFeatureScanMany | kWireFeatureInsertBatch |
              kWireFeatureAnalyzeRange);
    // Optional trailing tenant id (only sent when set): current servers
    // read it when present; a pre-front-door v2 server rejects the
    // longer hello, which lands in the v1 fallback below — anonymous but
    // functional, the right degradation for an id only QoS-aware
    // servers use.
    if (!backend->options_.client_id.empty()) {
      hello.Str(backend->options_.client_id);
    }
    auto body = backend->Call(WireOp::kHandshake, hello.Take(),
                              /*idempotent=*/true, /*max_attempts_override=*/1);
    if (body.ok()) {
      FXDIST_RETURN_NOT_OK(backend->FinishHandshake(*body, /*v2=*/true));
      return backend;
    }
    // A v1 server rejects the v2 frame at the header: an InvalidArgument
    // error reply on a plain transport, or DataLoss through a mux whose
    // receiver finds an unsolicited v1 frame.  Fall back to the classic
    // dialect — a genuinely dead shard fails the v1 handshake too.
    std::lock_guard<std::mutex> lock(backend->mutex_);
    backend->terminal_.clear();
  }
  backend->wire_version_ = kWireVersion;
  backend->features_ = 0;
  backend->negotiated_max_payload_ = kWireMaxPayload;
  auto body = backend->Call(WireOp::kHandshake, "", /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  FXDIST_RETURN_NOT_OK(backend->FinishHandshake(*body, /*v2=*/false));
  return backend;
}

Result<std::unique_ptr<RemoteBackend>> RemoteBackend::ConnectTcp(
    const std::string& host_port, Options options) {
  SocketTransportOptions socket_options;
  socket_options.io_timeout_ms = options.deadline_ms;
  if (options.pipeline_window > 1 && !options.force_wire_v1) {
    auto channel = SocketFrameChannel::ConnectSpec(host_port, socket_options);
    FXDIST_RETURN_NOT_OK(channel.status());
    MuxTransportOptions mux_options;
    mux_options.window = options.pipeline_window;
    mux_options.call_timeout_ms =
        static_cast<std::uint64_t>(std::max(1, options.deadline_ms));
    return Connect(std::make_unique<MuxTransport>(*std::move(channel),
                                                  mux_options),
                   std::move(options));
  }
  auto transport = SocketTransport::ConnectSpec(host_port, socket_options);
  FXDIST_RETURN_NOT_OK(transport.status());
  return Connect(*std::move(transport), std::move(options));
}

Status RemoteBackend::FinishHandshake(const std::string& body, bool v2) {
  PayloadReader reader(body);
  auto blueprint = reader.Str();
  FXDIST_RETURN_NOT_OK(blueprint.status());
  if (v2) {
    auto server_max = reader.U64();
    FXDIST_RETURN_NOT_OK(server_max.status());
    auto features = reader.U32();
    FXDIST_RETURN_NOT_OK(features.status());
    FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
    // Negotiated limit: what both sides accept.  A nonsensical server
    // advertisement is clamped into [64 KiB, ceiling] rather than
    // crippling the connection.
    const std::uint64_t floor = 64u << 10;
    const std::uint64_t server_limit =
        std::min<std::uint64_t>(std::max<std::uint64_t>(*server_max, floor),
                                kWireMaxPayloadCeiling);
    negotiated_max_payload_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kWireMaxPayload, server_limit));
    features_ = *features & (kWireFeatureScanMany | kWireFeatureInsertBatch |
                             kWireFeatureAnalyzeRange);
  } else {
    FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  }
  auto twin = BuildBackendFromBlueprintText(*blueprint);
  if (!twin.ok()) {
    return Status::Internal("remote blueprint rejected: " +
                            twin.status().message());
  }
  twin_ = *std::move(twin);
  twin_replicated_ = dynamic_cast<ReplicatedBackend*>(twin_.get());
  return Status::OK();
}

Result<std::string> RemoteBackend::Call(WireOp op, std::string payload,
                                        bool idempotent,
                                        int max_attempts_override) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
    if (!terminal_.empty()) return Status::Unavailable(terminal_);
  }

  WireFrame request;
  request.op = op;
  request.is_reply = false;
  request.payload = std::move(payload);
  request.version = wire_version_;

  const int max_attempts = max_attempts_override > 0
                               ? max_attempts_override
                               : std::max(1, options_.max_attempts);

  // Decorrelated-jitter backoff: each retry sleeps uniform(initial,
  // 3 * previous sleep), capped at backoff_max and at whatever is left
  // of the deadline budget — concurrent clients spread out instead of
  // retrying in lockstep, and the final sleep can never overshoot the
  // op deadline.  The RNG is seeded from options (plus the call
  // sequence number so calls decorrelate from each other), which is
  // what makes test schedules replayable.
  Xoshiro256 rng(options_.backoff_seed ^
                 (0x9e3779b97f4a7c15ull *
                  seq_.fetch_add(1, std::memory_order_relaxed)));
  std::uint64_t prev_sleep_ms =
      static_cast<std::uint64_t>(std::max(0, options_.backoff_initial_ms));
  std::int64_t budget_ms =
      static_cast<std::int64_t>(std::max(0, options_.deadline_ms));

  Status last;
  int attempts = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && options_.backoff_initial_ms > 0) {
      const auto base =
          static_cast<std::uint64_t>(options_.backoff_initial_ms);
      const std::uint64_t hi = std::max(base + 1, prev_sleep_ms * 3);
      std::uint64_t sleep_ms = base + rng.NextBounded(hi - base);
      sleep_ms = std::min<std::uint64_t>(
          sleep_ms,
          static_cast<std::uint64_t>(std::max(0, options_.backoff_max_ms)));
      sleep_ms = std::min<std::uint64_t>(
          sleep_ms,
          static_cast<std::uint64_t>(std::max<std::int64_t>(0, budget_ms)));
      if (sleep_ms > 0) {
        if (options_.sleep_fn) {
          options_.sleep_fn(sleep_ms);
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
        budget_ms -= static_cast<std::int64_t>(sleep_ms);
      }
      prev_sleep_ms = std::max<std::uint64_t>(sleep_ms, 1);
    }
    ++attempts;

    // A fresh correlation id per attempt: a late reply to an abandoned
    // attempt is dropped as stale instead of completing this one.
    if (wire_version_ == kWireVersionMux) {
      request.correlation_id = seq_.fetch_add(1, std::memory_order_relaxed);
    }
    auto request_bytes = EncodeFrameBounded(request, negotiated_max_payload_);
    if (!request_bytes.ok()) {
      // Oversized payload is a caller-level error, not a transport
      // failure: surface it without retrying or going terminal.
      return request_bytes.status();
    }

    Status failure;
    auto raw = transport_->RoundTrip(*request_bytes);
    if (!raw.ok()) {
      failure = raw.status();
    } else {
      auto reply = DecodeFrame(*raw, kWireMaxPayload);
      if (!reply.ok()) {
        failure = Status::DataLoss("reply rejected: " +
                                   reply.status().message());
      } else if (!reply->is_reply ||
                 (reply->op != op && reply->op != WireOp::kError)) {
        failure = Status::DataLoss(
            std::string("protocol desync: expected a ") + WireOpName(op) +
            " reply, got " + WireOpName(reply->op));
      } else if (reply->op != WireOp::kError &&
                 wire_version_ == kWireVersionMux &&
                 (reply->version != kWireVersionMux ||
                  reply->correlation_id != request.correlation_id)) {
        // kError replies are exempt: a v1 peer rejecting our dialect can
        // only answer with an uncorrelated v1 frame.
        failure = Status::DataLoss(
            "correlation id mismatch: request " +
            std::to_string(request.correlation_id) + ", reply " +
            std::to_string(reply->correlation_id));
      } else {
        PayloadReader reader(reply->payload);
        Status remote_status;
        const Status parse = reader.ReadStatusInto(&remote_status);
        if (!parse.ok()) {
          failure = Status::DataLoss("malformed reply payload: " +
                                     parse.message());
        } else if (!remote_status.ok()) {
          // The server executed the operation and said no.  That is an
          // application error, not a transport failure: surface it
          // as-is, never retry, never go terminal.
          return remote_status;
        } else {
          return std::string(reply->payload.substr(
              reply->payload.size() - reader.remaining()));
        }
      }
    }

    last = failure;
    const bool retryable =
        failure.code() == StatusCode::kUnavailable ||
        (idempotent && (failure.code() == StatusCode::kDeadlineExceeded ||
                        failure.code() == StatusCode::kDataLoss));
    if (!retryable) break;
  }

  // Out of budget (or a mutation hit an indeterminate failure): go
  // terminal so this shard now looks like a local dead child.
  std::lock_guard<std::mutex> lock(mutex_);
  if (terminal_.empty()) {
    terminal_ = "remote shard unavailable after " + std::to_string(attempts) +
                " attempt(s): " + last.ToString();
  }
  if (!idempotent && (last.code() == StatusCode::kDeadlineExceeded ||
                      last.code() == StatusCode::kDataLoss)) {
    // Indeterminate mutation outcome: the server may or may not have
    // applied it.  Surface the real code instead of masking it as
    // Unavailable (= "never delivered, safe to resend") so callers know
    // a blind re-send risks a duplicate side effect.
    return last;
  }
  return Status::Unavailable(terminal_);
}

std::uint64_t RemoteBackend::num_records() const {
  auto body = Call(WireOp::kNumRecords, "", /*idempotent=*/true);
  if (!body.ok()) return 0;
  PayloadReader reader(*body);
  auto count = reader.U64();
  if (!count.ok() || !reader.AtEnd()) return 0;
  return *count;
}

Status RemoteBackend::Insert(Record record) {
  {
    // Any mutation attempt (even one that fails indeterminately) may
    // have changed the remote's buckets — drop the pinned scans first.
    std::lock_guard<std::mutex> lock(mutex_);
    scan_pins_.clear();
  }
  PayloadWriter writer;
  writer.WriteRecord(record);
  auto body = Call(WireOp::kInsert, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());

  PayloadReader reader(*body);
  FXDIST_RETURN_NOT_OK(CheckShapeEcho(reader));
  FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  // The local count still bumps (old servers echo no epoch); the echo
  // observed above is what makes other writers' mutations visible.
  BumpMutationEpoch();
  return Status::OK();
}

Status RemoteBackend::ObserveServerEpoch(PayloadReader& reader) const {
  if (reader.AtEnd()) return Status::OK();  // pre-epoch server
  auto epoch = reader.U64();
  FXDIST_RETURN_NOT_OK(epoch.status());
  // Max-observed: replies may complete out of order on the mux, and the
  // counter must never run backwards.
  std::uint64_t seen = server_epoch_.load(std::memory_order_relaxed);
  while (seen < *epoch && !server_epoch_.compare_exchange_weak(
                              seen, *epoch, std::memory_order_acq_rel)) {
  }
  return Status::OK();
}

Status RemoteBackend::CheckShapeEcho(PayloadReader& reader) {
  // Every mutation reply echoes the remote's current bucket-space shape;
  // a remote dynamic child that grew past the blueprint the twin was
  // built from breaks the frozen placement plane — poison, exactly as
  // ShardedBackend does for a local child.
  auto arity = reader.U32();
  FXDIST_RETURN_NOT_OK(arity.status());
  std::vector<std::uint64_t> sizes;
  sizes.reserve(*arity);
  for (std::uint32_t i = 0; i < *arity; ++i) {
    auto size = reader.U64();
    FXDIST_RETURN_NOT_OK(size.status());
    sizes.push_back(*size);
  }
  if (sizes != twin_->spec().field_sizes()) {
    std::lock_guard<std::mutex> lock(mutex_);
    poisoned_ =
        "remote shard outgrew the frozen placement plane: its bucket "
        "space no longer matches the handshake blueprint";
    return Status::FailedPrecondition(poisoned_);
  }
  return Status::OK();
}

Status RemoteBackend::InsertBatch(std::vector<Record> records) {
  return InsertBatchImpl(std::move(records), nullptr);
}

Status RemoteBackend::InsertBatchTagged(std::vector<Record> records,
                                        std::uint64_t token) {
  if (wire_version_ != kWireVersionMux || !insert_batch_enabled()) {
    return Status::Unimplemented(
        "remote peer has no InsertBatch feature; tagged exactly-once "
        "ingest needs the server-side dedup registry");
  }
  return InsertBatchImpl(std::move(records), &token);
}

Status RemoteBackend::InsertBatchImpl(std::vector<Record> records,
                                      const std::uint64_t* token) {
  if (wire_version_ != kWireVersionMux || !insert_batch_enabled()) {
    // Pre-InsertBatch peer: the default per-record loop (one kInsert
    // round trip each).
    return StorageBackend::InsertBatch(std::move(records));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scan_pins_.clear();
  }
  const std::size_t chunk =
      std::max<std::size_t>(1, options_.insert_batch_chunk);
  for (std::size_t start = 0; start < records.size(); start += chunk) {
    const std::size_t n = std::min(chunk, records.size() - start);
    PayloadWriter writer;
    writer.U32(static_cast<std::uint32_t>(n));
    for (std::size_t j = 0; j < n; ++j) {
      writer.WriteRecord(records[start + j]);
    }
    if (token != nullptr) {
      // Deterministic per-chunk token: same batch + same base token
      // always re-sends identical tagged chunks, so a coordinator
      // re-running a task cannot double-apply on the same server.
      writer.U64(*token ^ (0x9e3779b97f4a7c15ull * (start / chunk + 1)));
    }
    // A tagged chunk is effectively idempotent — the server's dedup
    // registry turns a re-send into an ack — so indeterminate failures
    // may be retried; an untagged chunk must not be.
    auto body = Call(WireOp::kInsertBatch, writer.Take(),
                     /*idempotent=*/token != nullptr);
    if (!body.ok()) {
      if (token == nullptr &&
          body.status().code() == StatusCode::kInvalidArgument) {
        // The chunk's request outgrew the negotiated frame limit (or a
        // record is genuinely bad — the per-record path reproduces that
        // error faithfully): insert this chunk record-by-record.  (The
        // tagged path never falls back: per-record kInsert has no dedup
        // marker, which would break exactly-once.)
        for (std::size_t j = 0; j < n; ++j) {
          FXDIST_RETURN_NOT_OK(Insert(std::move(records[start + j])));
        }
        continue;
      }
      return body.status();
    }
    PayloadReader reader(*body);
    auto count = reader.U64();
    FXDIST_RETURN_NOT_OK(count.status());
    if (*count != n) {
      return Status::DataLoss("InsertBatch reply acknowledges " +
                              std::to_string(*count) + " of " +
                              std::to_string(n) + " records");
    }
    FXDIST_RETURN_NOT_OK(CheckShapeEcho(reader));
    FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
    if (token != nullptr && !reader.AtEnd()) {
      // Trailing dup flag (present iff the request carried a token):
      // diagnostic only — a set flag means an earlier send of this
      // chunk already landed and the server acked without re-applying.
      FXDIST_RETURN_NOT_OK(reader.U8().status());
    }
    FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
    BumpMutationEpoch();
  }
  return Status::OK();
}

Result<RemoteBackend::TopologySnapshot> RemoteBackend::RemoteTopology()
    const {
  auto body = Call(WireOp::kTopology, "", /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  TopologySnapshot snapshot;
  auto version = reader.U64();
  FXDIST_RETURN_NOT_OK(version.status());
  snapshot.version = *version;
  auto migrating = reader.U64();
  FXDIST_RETURN_NOT_OK(migrating.status());
  snapshot.migrating_buckets = *migrating;
  auto blueprint = reader.Str();
  FXDIST_RETURN_NOT_OK(blueprint.status());
  snapshot.blueprint = *std::move(blueprint);
  // Trailing authoritative epoch (absent from old servers): the probe a
  // cache-holding client refreshes multi-writer staleness with.
  FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return snapshot;
}

Result<std::uint64_t> RemoteBackend::Delete(const ValueQuery& query) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    scan_pins_.clear();
  }
  PayloadWriter writer;
  writer.WriteQuery(query);
  auto body = Call(WireOp::kDelete, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto removed = reader.U64();
  FXDIST_RETURN_NOT_OK(removed.status());
  FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  if (*removed > 0) BumpMutationEpoch();
  return *removed;
}

bool RemoteBackend::IsBucketLive(std::uint64_t device,
                                 std::uint64_t linear_bucket) const {
  PayloadWriter writer;
  writer.U64(device);
  writer.U64(linear_bucket);
  auto body = Call(WireOp::kIsBucketLive, writer.Take(), /*idempotent=*/true);
  if (!body.ok()) return false;
  PayloadReader reader(*body);
  auto live = reader.U8();
  return live.ok() && reader.AtEnd() && *live != 0;
}

void RemoteBackend::ScanBucketRemote(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  PayloadWriter writer;
  writer.U64(device);
  writer.U64(linear_bucket);
  auto body = Call(WireOp::kScanBucket, writer.Take(), /*idempotent=*/true);
  if (!body.ok()) return;  // visits nothing; Health() reports the cause
  PayloadReader reader(*body);
  auto records = reader.ReadRecords();
  if (!records.ok() || !reader.AtEnd()) return;
  // Pin the decoded records so references handed to `fn` stay valid
  // until the next mutation, like a local backend's storage would.
  // Re-scans of the same bucket (the engine streams each covering query
  // past the bucket separately) must not move the pin while earlier
  // callers still hold pointers into it, so an unchanged bucket reuses
  // the existing pin.
  const std::vector<Record>* pinned = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<Record>& pin = scan_pins_[{device, linear_bucket}];
    if (pin != *records) pin = *std::move(records);
    pinned = &pin;
  }
  for (const Record& record : *pinned) {
    if (!fn(record)) return;
  }
}

void RemoteBackend::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  ScanBucketRemote(device, linear_bucket, fn);
}

void RemoteBackend::ScanMany(
    const std::vector<BucketRef>& refs,
    const std::function<bool(std::size_t, const Record&)>& fn) const {
  if (wire_version_ != kWireVersionMux || !scan_many_enabled()) {
    // Pre-ScanMany peer: the default per-bucket gather (one kScanBucket
    // round trip per ref).
    StorageBackend::ScanMany(refs, fn);
    return;
  }
  const std::size_t chunk =
      std::max<std::size_t>(1, options_.scan_many_chunk);
  for (std::size_t start = 0; start < refs.size(); start += chunk) {
    const std::size_t n = std::min(chunk, refs.size() - start);
    PayloadWriter writer;
    writer.U64(n);
    for (std::size_t j = 0; j < n; ++j) {
      writer.U64(refs[start + j].device);
      writer.U64(refs[start + j].linear_bucket);
    }
    auto body = Call(WireOp::kScanMany, writer.Take(), /*idempotent=*/true);
    if (!body.ok()) {
      if (body.status().code() == StatusCode::kInvalidArgument) {
        // The chunk's reply (or request) outgrew the negotiated frame
        // limit: gather this chunk bucket-by-bucket instead.  fn
        // returning false cancels the rest of the scatter.
        bool cancelled = false;
        for (std::size_t j = 0; j < n && !cancelled; ++j) {
          const std::size_t i = start + j;
          ScanBucketRemote(refs[i].device, refs[i].linear_bucket,
                           [&fn, &cancelled, i](const Record& r) {
                             if (!fn(i, r)) {
                               cancelled = true;
                               return false;
                             }
                             return true;
                           });
        }
        if (cancelled) return;
        continue;
      }
      return;  // terminal / transport failure: Health() reports the cause
    }
    PayloadReader reader(*body);
    auto count = reader.U64();
    if (!count.ok() || *count != n) return;
    std::vector<std::vector<Record>> lists;
    lists.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
      auto records = reader.ReadRecords();
      if (!records.ok()) return;
      lists.push_back(*std::move(records));
    }
    if (!reader.AtEnd()) return;
    // Pin every bucket's records (reuse-if-equal keeps earlier callers'
    // references valid), then deliver in ref order.
    std::vector<const std::vector<Record>*> pinned(n);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t j = 0; j < n; ++j) {
        std::vector<Record>& pin =
            scan_pins_[{refs[start + j].device, refs[start + j].linear_bucket}];
        if (pin != lists[j]) pin = std::move(lists[j]);
        pinned[j] = &pin;
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (const Record& record : *pinned[j]) {
        // fn returning false cancels the whole scatter: abandon this
        // bucket, the rest of the chunk, and every later chunk.
        if (!fn(start + j, record)) return;
      }
    }
  }
}

Result<QueryResult> RemoteBackend::Execute(const ValueQuery& query) const {
  PayloadWriter writer;
  writer.WriteQuery(query);
  auto body = Call(WireOp::kExecute, writer.Take(), /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto result = reader.ReadResult();
  FXDIST_RETURN_NOT_OK(result.status());
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return *std::move(result);
}

std::vector<std::uint64_t> RemoteBackend::RecordCountsPerDevice() const {
  const std::vector<std::uint64_t> zeros(num_devices(), 0);
  auto body = Call(WireOp::kRecordCounts, "", /*idempotent=*/true);
  if (!body.ok()) return zeros;
  PayloadReader reader(*body);
  auto arity = reader.U32();
  if (!arity.ok()) return zeros;
  std::vector<std::uint64_t> counts;
  counts.reserve(*arity);
  for (std::uint32_t i = 0; i < *arity; ++i) {
    auto count = reader.U64();
    if (!count.ok()) return zeros;
    counts.push_back(*count);
  }
  if (!reader.AtEnd()) return zeros;
  return counts;
}

void RemoteBackend::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  auto body = Call(WireOp::kListRecords, "", /*idempotent=*/true);
  if (!body.ok()) return;
  PayloadReader reader(*body);
  auto records = reader.ReadRecords();
  if (!records.ok() || !reader.AtEnd()) return;
  for (const Record& record : *records) fn(record);
}

Status RemoteBackend::MarkDown(std::uint64_t device) {
  PayloadWriter writer;
  writer.U64(device);
  auto body = Call(WireOp::kMarkDown, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  {
    PayloadReader reader(*body);
    FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
    FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  }
  if (twin_replicated_ == nullptr) {
    return Status::Internal("remote accepted MarkDown but the twin has no "
                            "replica plane");
  }
  // A device-state flip changes degraded routing and accounting, so it
  // invalidates cached results like any other mutation.
  BumpMutationEpoch();
  // Mirror onto the twin so ServingDevice routes like the server.
  return twin_replicated_->MarkDown(device);
}

Status RemoteBackend::MarkUp(std::uint64_t device) {
  PayloadWriter writer;
  writer.U64(device);
  auto body = Call(WireOp::kMarkUp, writer.Take(), /*idempotent=*/false);
  FXDIST_RETURN_NOT_OK(body.status());
  {
    PayloadReader reader(*body);
    FXDIST_RETURN_NOT_OK(ObserveServerEpoch(reader));
    FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  }
  if (twin_replicated_ == nullptr) {
    return Status::Internal("remote accepted MarkUp but the twin has no "
                            "replica plane");
  }
  BumpMutationEpoch();
  return twin_replicated_->MarkUp(device);
}

Result<RangePartial> RemoteBackend::AnalyzeRange(
    std::uint64_t unspecified_mask, std::uint64_t start,
    std::uint64_t end) const {
  if (wire_version_ != kWireVersionMux || !analyze_range_enabled()) {
    return Status::Unimplemented(
        "remote peer has no AnalyzeRange feature; run AnalyzeBucketRange "
        "on device_map() instead");
  }
  PayloadWriter writer;
  writer.U64(unspecified_mask);
  writer.U64(start);
  writer.U64(end);
  auto body = Call(WireOp::kAnalyzeRange, writer.Take(), /*idempotent=*/true);
  FXDIST_RETURN_NOT_OK(body.status());
  PayloadReader reader(*body);
  auto devices = reader.U32();
  FXDIST_RETURN_NOT_OK(devices.status());
  if (*devices > reader.remaining() / 8) {
    return Status::DataLoss("wire payload truncated reading range counts");
  }
  RangePartial partial;
  partial.per_device.reserve(*devices);
  for (std::uint32_t i = 0; i < *devices; ++i) {
    auto count = reader.U64();
    FXDIST_RETURN_NOT_OK(count.status());
    partial.per_device.push_back(*count);
  }
  auto qualified = reader.U64();
  FXDIST_RETURN_NOT_OK(qualified.status());
  partial.qualified = *qualified;
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return partial;
}

Status RemoteBackend::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  if (!terminal_.empty()) return Status::Unavailable(terminal_);
  return Status::OK();
}

}  // namespace fxdist
