// Server side of the shard transport: a StorageBackend behind a socket.
//
// ShardService is the transport-independent core — it turns one request
// frame into one reply frame, with the locking the StorageBackend
// contract requires (the backend is externally synchronized, so the
// service holds a shared lock for reads and an exclusive lock for
// Insert/Delete/MarkDown/MarkUp).  LoopbackTransport can call it
// directly for deterministic in-process tests.
//
// ShardServer puts a ShardService behind a listening TCP socket: an
// accept loop hands each connection to a small thread pool, and every
// connection serves frames until its peer disconnects.  Reply payloads
// always start with an encoded Status; an undecodable request gets a
// WireOp::kError reply (the stream itself stays framed, so one bad
// request does not desync the connection).

#ifndef FXDIST_NET_SHARD_SERVER_H_
#define FXDIST_NET_SHARD_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "sim/composite_backend.h"
#include "sim/storage_backend.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fxdist {

/// Encodes one reply frame: Status first in the payload, then `body`
/// (empty on errors).  Shared by the blocking and event-driven servers
/// so both produce byte-identical replies.
std::string EncodeShardReply(WireOp op, const Status& status,
                             const std::string& body,
                             std::uint16_t version = kWireVersion,
                             std::uint64_t correlation_id = 0);

/// Error reply for a request that never decoded: best-effort echo of the
/// request's version and correlation id (a mux client needs the id to
/// complete the right waiter), falling back to a v1 frame when the
/// prefix is unreadable.  Also the shed frame the event server sends a
/// connection over the cap (kResourceExhausted, empty request prefix).
std::string EncodeShardErrorReplyFor(std::string_view request,
                                     const Status& status);

class ShardService {
 public:
  /// The backend must outlive the service.  MarkDown/MarkUp are served
  /// only when the backend is a ReplicatedBackend (Unimplemented
  /// otherwise).
  explicit ShardService(StorageBackend& backend);

  /// One complete request frame in, one complete reply frame out.
  /// Thread-safe; never throws, never returns an unframed error.
  std::string HandleFrame(const std::string& request);

  /// Distinct tenant ids announced by v2 handshakes so far, in first-
  /// seen order.  Anonymous clients (no trailing id) are not listed.
  std::vector<std::string> AnnouncedClients() const;

  /// Most recent distinct kInsertBatch dedup tokens remembered (FIFO
  /// eviction past this).  Sized so a coordinator's whole task graph
  /// fits with room to spare; a retry arriving after eviction is
  /// indistinguishable from a first send, which the client's bounded
  /// retry budget makes vanishingly unlikely.
  static constexpr std::size_t kMaxRememberedTokens = 65536;

 private:
  Result<std::string> Dispatch(const WireFrame& frame, PayloadReader& reader);

  StorageBackend& backend_;
  ReplicatedBackend* replicated_;  ///< backend_ downcast, or nullptr
  std::shared_mutex backend_mutex_;
  mutable std::mutex clients_mutex_;
  std::vector<std::string> announced_clients_;
  // Dedup registry for tagged kInsertBatch chunks: token -> applied
  // record count.  Guarded by the exclusive backend_mutex_ every
  // mutation already holds, so check-then-apply-then-remember is atomic
  // against concurrent writers.
  std::unordered_map<std::uint64_t, std::uint64_t> applied_tokens_;
  std::deque<std::uint64_t> token_order_;
};

struct ShardServerOptions {
  std::uint16_t port = 0;        ///< 0 picks an ephemeral port
  unsigned max_connections = 8;  ///< connection-handler pool size
  int listen_backlog = 128;      ///< pending-connection queue depth
};

/// A ShardService listening on a TCP port.
class ShardServer {
 public:
  using Options = ShardServerOptions;

  /// Binds, listens and starts the accept loop.  The backend must
  /// outlive the server.
  static Result<std::unique_ptr<ShardServer>> Start(StorageBackend& backend,
                                                    Options options = {});

  /// Stops the server (idempotent): wakes the accept loop, shuts every
  /// open connection and joins all threads.
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// The bound port (useful with Options::port == 0).
  std::uint16_t port() const { return port_; }

  /// Tenant ids announced by connected clients (see
  /// ShardService::AnnouncedClients).
  std::vector<std::string> AnnouncedClients() const {
    return service_.AnnouncedClients();
  }

  void Stop();
  /// Blocks until Stop() is called from another thread (or the process
  /// is killed) — the `fxdistctl shard-serve` main loop.
  void Wait();

 private:
  explicit ShardServer(StorageBackend& backend, Options options)
      : service_(backend), options_(options) {}

  void AcceptLoop();
  void ServeConnection(int fd);

  ShardService service_;
  const Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  std::mutex mutex_;
  std::condition_variable stopped_;
  bool stopping_ = false;
  std::vector<int> connections_;
};

}  // namespace fxdist

#endif  // FXDIST_NET_SHARD_SERVER_H_
