// RemoteBackend: a StorageBackend whose storage lives behind a Transport.
//
// The handshake ships the server backend's construction blueprint
// (sim/persistence.h BackendBlueprintText); the client builds an *empty*
// placement-identical local twin from it.  Because all hashing and
// placement is deterministic in the blueprint, everything about *where*
// records go — spec(), method(), device_map(), HashQuery, HashRecord,
// ServingDevice — is answered by the twin with zero round trips, while
// everything about *what is stored* (Insert/Delete/Execute/ScanBucket/
// counts) goes over the wire.  This is what lets a ShardedBackend treat
// a remote shard exactly like a local child.
//
// Wire dialect: the client first offers a v2 handshake (correlation ids
// in every frame, frame-limit + feature negotiation in the payload).  A
// v1 server rejects the v2 frame at the header; the client falls back to
// the classic v1 dialect — serial frames, no ScanMany — so old peers
// keep working unchanged.  Against a v2 server every request carries a
// fresh correlation id (new id per retry attempt, so a late reply to an
// abandoned attempt can never complete a newer one) and the reply must
// echo it; a mismatch is DataLoss.  Payloads are bounded by the
// negotiated frame limit on both sides.  When the server granted the
// ScanMany feature, the batched scatter-gather op crosses the wire as
// one kScanMany frame per chunk of bucket refs instead of one
// kScanBucket frame per bucket.
//
// Failure semantics (the transport taxonomy, net/transport.h):
//   * Unavailable replies are retried for every operation (the request
//     was never delivered), with decorrelated-jitter backoff (seeded RNG
//     so tests are deterministic; total sleep is clamped to the
//     remaining deadline budget, so retries can never overshoot the op
//     deadline).
//   * DeadlineExceeded / DataLoss are indeterminate — the request may
//     have executed — so only idempotent operations (reads) retry;
//     a mutation that hits one fails immediately rather than risking a
//     duplicate side effect.
//   * Once the retry budget is exhausted (or a mutation hit an
//     indeterminate failure), the backend enters a sticky *terminal*
//     state: every operation returns Unavailable, ScanBucket visits
//     nothing, and Health() reports the cause — the same shape as a
//     local dead child, so ShardedBackend/ReplicatedBackend degraded
//     routing and the executors' Health escalation react identically.
//   * A remote whose bucket space grew past the frozen plane (dynamic
//     directory growth, detected via the shape echoed by every Insert
//     reply) poisons the client with a sticky FailedPrecondition,
//     mirroring ShardedBackend's own frozen-plane contract.

#ifndef FXDIST_NET_REMOTE_BACKEND_H_
#define FXDIST_NET_REMOTE_BACKEND_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/range_sweep.h"
#include "net/transport.h"
#include "net/wire.h"
#include "sim/composite_backend.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct RemoteBackendOptions {
  /// Socket-level per-operation deadline (ConnectTcp only; in-process
  /// transports have no deadline to miss).  Also the budget retry
  /// backoff sleeping is clamped to.
  int deadline_ms = 5000;
  /// Total tries per operation, including the first.
  int max_attempts = 4;
  /// Backoff between tries: decorrelated jitter drawn from
  /// [initial, 3 * previous), capped at max and at the remaining
  /// deadline budget.  0 disables sleeping (deterministic tests).
  int backoff_initial_ms = 1;
  int backoff_max_ms = 100;
  /// Seed of the jitter RNG — injected so tests replay exact schedules.
  std::uint64_t backoff_seed = 0x5eedafedf00dull;
  /// Test hook: replaces this_thread::sleep_for when set.  Receives the
  /// chosen sleep in milliseconds.
  std::function<void(std::uint64_t)> sleep_fn;
  /// Forces the classic v1 dialect (no correlation ids, no ScanMany) —
  /// the PR 4 serial baseline for benches and compatibility tests.
  bool force_wire_v1 = false;
  /// Bucket refs per kScanMany frame; a chunk whose reply outgrows the
  /// frame limit falls back to per-bucket scans.
  std::size_t scan_many_chunk = 512;
  /// Records per kInsertBatch frame; a chunk whose request outgrows the
  /// frame limit falls back to per-record inserts.
  std::size_t insert_batch_chunk = 512;
  /// In-flight window when ConnectTcp builds a multiplexed connection;
  /// 1 keeps the plain blocking SocketTransport.
  std::size_t pipeline_window = 32;
  /// Tenant identity announced in the v2 handshake (trailing optional
  /// field — old servers that stop reading at the feature word still
  /// interoperate).  Empty means anonymous; servers use it for per-
  /// client admission/QoS accounting, never for placement.
  std::string client_id;
};

class RemoteBackend final : public StorageBackend {
 public:
  using Options = RemoteBackendOptions;

  /// Performs the handshake over `transport` (v2 first, v1 fallback) and
  /// builds the local twin.
  static Result<std::unique_ptr<RemoteBackend>> Connect(
      std::unique_ptr<Transport> transport, Options options = {});

  /// Dials "host:port", then Connect().  With pipeline_window > 1 the
  /// connection is a MuxTransport over a SocketFrameChannel (requests
  /// overlap on the wire); window 1 keeps the blocking SocketTransport.
  static Result<std::unique_ptr<RemoteBackend>> ConnectTcp(
      const std::string& host_port, Options options = {});

  // -- Placement plane: answered locally by the twin -------------------
  std::string backend_name() const override { return twin_->backend_name(); }
  const FieldSpec& spec() const override { return twin_->spec(); }
  const DistributionMethod& method() const override {
    return twin_->method();
  }
  const DeviceMap& device_map() const override { return twin_->device_map(); }
  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return twin_->HashQuery(query);
  }
  Result<BucketId> HashRecord(const Record& record) const override {
    return twin_->HashRecord(record);
  }
  std::uint64_t ServingDevice(std::uint64_t device,
                              std::uint64_t linear_bucket) const override {
    return twin_->ServingDevice(device, linear_bucket);
  }
  bool HasDegradedRouting() const override {
    return twin_->HasDegradedRouting();
  }
  std::vector<ValueType> FieldTypes() const override {
    return twin_->FieldTypes();
  }
  void SaveParams(std::ostream& out) const override {
    twin_->SaveParams(out);
  }

  // -- Storage plane: one round trip each ------------------------------
  std::uint64_t num_records() const override;
  Status Insert(Record record) override;
  /// One kInsertBatch frame per chunk when the server granted the
  /// feature (a migration copy crosses the wire as a handful of frames
  /// instead of one per record); per-record kInsert round trips
  /// otherwise.
  Status InsertBatch(std::vector<Record> records) override;
  /// InsertBatch with a caller-chosen dedup token: the server remembers
  /// the token with the applied count, so a chunk whose ack was lost can
  /// be *re-sent safely* — a duplicate token acks without re-applying.
  /// That makes tagged chunks effectively idempotent, so indeterminate
  /// failures retry here instead of failing the batch.  Chunks derive
  /// per-chunk tokens from `token` deterministically; the same (records,
  /// token, chunk size) always re-sends identical tagged chunks.  No
  /// per-record fallback: a chunk the frame limit cannot carry is an
  /// error (pick a smaller insert_batch_chunk).  Requires the server's
  /// InsertBatch feature; Unimplemented otherwise.
  Status InsertBatchTagged(std::vector<Record> records, std::uint64_t token);
  Result<std::uint64_t> Delete(const ValueQuery& query) override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;
  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;
  /// One kScanMany frame per chunk when the server granted the feature;
  /// per-bucket kScanBucket round trips otherwise.
  void ScanMany(
      const std::vector<BucketRef>& refs,
      const std::function<bool(std::size_t, const Record&)>& fn)
      const override;
  /// Every gather is a round trip: a composite parent should overlap
  /// this shard's scans with its siblings'.
  bool ScanPrefersFanout() const override { return true; }
  Result<QueryResult> Execute(const ValueQuery& query) const override;
  std::vector<std::uint64_t> RecordCountsPerDevice() const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  /// Forwarded to the remote replica plane (Unimplemented when the
  /// remote backend is not replicated); on success the twin's device
  /// state is updated too, so degraded routing matches the server.
  Status MarkDown(std::uint64_t device);
  Status MarkUp(std::uint64_t device);

  /// Terminal (Unavailable) or poisoned (FailedPrecondition) state.
  Status Health() const override;

  /// Mutations observed, merging two monotone counters: the local count
  /// the base class keeps (mutations issued through this handle) and the
  /// server's authoritative count echoed on every mutating reply and on
  /// the kTopology probe.  The max of the two is what cache invalidation
  /// needs: it bumps when *any* writer's mutation has been observed, so
  /// a shared remote shard no longer serves stale hits forever (old
  /// servers echo nothing and behave exactly as before).
  std::uint64_t MutationEpoch() const override {
    return std::max(StorageBackend::MutationEpoch(),
                    server_epoch_.load(std::memory_order_acquire));
  }

  /// Server-side bucket-range sweep (kAnalyzeRange): per-device
  /// qualified counts of `unspecified_mask`'s representative query over
  /// linear buckets [start, end).  Unimplemented when the server did not
  /// grant the feature — callers fall back to AnalyzeBucketRange on
  /// device_map(), which computes the identical integers locally.
  Result<RangePartial> AnalyzeRange(std::uint64_t unspecified_mask,
                                    std::uint64_t start,
                                    std::uint64_t end) const;

  /// Negotiated dialect — diagnostics and tests.
  std::uint16_t wire_version() const { return wire_version_; }
  bool scan_many_enabled() const {
    return (features_ & kWireFeatureScanMany) != 0;
  }
  bool insert_batch_enabled() const {
    return (features_ & kWireFeatureInsertBatch) != 0;
  }
  bool analyze_range_enabled() const {
    return (features_ & kWireFeatureAnalyzeRange) != 0;
  }
  std::uint32_t negotiated_max_payload() const {
    return negotiated_max_payload_;
  }

  /// What the server's topology plane reports right now (kTopology).
  /// An old server answers the unknown opcode with InvalidArgument.
  struct TopologySnapshot {
    std::uint64_t version = 1;
    std::uint64_t migrating_buckets = 0;
    std::string blueprint;  ///< serving plane's construction text
  };
  Result<TopologySnapshot> RemoteTopology() const;

 private:
  RemoteBackend(std::unique_ptr<Transport> transport, Options options)
      : transport_(std::move(transport)), options_(std::move(options)) {}

  /// One operation: encode, round-trip with retries, decode the reply
  /// status, return the body.  `idempotent` selects the retry policy;
  /// `max_attempts_override` (> 0) caps tries below options_ (the
  /// handshake probe uses 1 so an old server is detected, not retried).
  Result<std::string> Call(WireOp op, std::string payload, bool idempotent,
                           int max_attempts_override = 0) const;
  /// Parses a handshake reply body and builds the twin; records the
  /// negotiated limit and features (v2 replies carry them).
  Status FinishHandshake(const std::string& body, bool v2);
  /// The per-bucket gather used by ScanBucket and the ScanMany fallback.
  void ScanBucketRemote(std::uint64_t device, std::uint64_t linear_bucket,
                        const std::function<bool(const Record&)>& fn) const;
  /// Parses the bucket-space shape every mutation reply echoes and
  /// poisons the client when the remote outgrew the frozen plane.
  Status CheckShapeEcho(PayloadReader& reader);
  /// Consumes an optional trailing authoritative-epoch field (absent
  /// from old servers) and folds it into server_epoch_ (max-observed).
  Status ObserveServerEpoch(PayloadReader& reader) const;
  /// Shared body of InsertBatch / InsertBatchTagged (tagged == token
  /// != nullptr).
  Status InsertBatchImpl(std::vector<Record> records,
                         const std::uint64_t* token);

  std::unique_ptr<Transport> transport_;
  const Options options_;
  std::unique_ptr<StorageBackend> twin_;
  ReplicatedBackend* twin_replicated_ = nullptr;

  /// Set during Connect, immutable afterwards.
  std::uint16_t wire_version_ = kWireVersionMux;
  std::uint32_t features_ = 0;
  std::uint32_t negotiated_max_payload_ = kWireMaxPayload;

  /// Correlation ids and jitter streams (monotonic per connection — the
  /// mux's stale-reply tracking relies on it).
  mutable std::atomic<std::uint64_t> seq_{1};

  /// Highest authoritative epoch any reply has echoed (0 until a v2
  /// epoch-echoing server answers a mutation or topology probe).
  mutable std::atomic<std::uint64_t> server_epoch_{0};

  /// Guards the sticky failure state and the scan pins.  NOT held over
  /// round trips: the transport is internally synchronized, so many
  /// calls may be on the wire at once (that is the point of the mux).
  mutable std::mutex mutex_;
  mutable std::string terminal_;  ///< non-empty: every op is Unavailable
  mutable std::string poisoned_;  ///< non-empty: every op FailedPrecondition

  /// ScanBucket callers (the QueryEngine's shared sweep) hold the
  /// `const Record&`s a scan visited until the batch is assembled, which
  /// local backends satisfy by handing out references into their own
  /// storage.  A remote scan decodes records off the wire, so the
  /// decoded vector is pinned here — one entry per (device, bucket),
  /// node-stable under concurrent scans of *other* buckets and
  /// invalidated by the next mutation (the same event that invalidates
  /// a local backend's references).
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>,
                   std::vector<Record>>
      scan_pins_;
};

}  // namespace fxdist

#endif  // FXDIST_NET_REMOTE_BACKEND_H_
