// RemoteBackend: a StorageBackend whose storage lives behind a Transport.
//
// The handshake ships the server backend's construction blueprint
// (sim/persistence.h BackendBlueprintText); the client builds an *empty*
// placement-identical local twin from it.  Because all hashing and
// placement is deterministic in the blueprint, everything about *where*
// records go — spec(), method(), device_map(), HashQuery, HashRecord,
// ServingDevice — is answered by the twin with zero round trips, while
// everything about *what is stored* (Insert/Delete/Execute/ScanBucket/
// counts) goes over the wire.  This is what lets a ShardedBackend treat
// a remote shard exactly like a local child.
//
// Failure semantics (the transport taxonomy, net/transport.h):
//   * Unavailable replies are retried for every operation (the request
//     was never delivered), with bounded exponential backoff.
//   * DeadlineExceeded / DataLoss are indeterminate — the request may
//     have executed — so only idempotent operations (reads) retry;
//     a mutation that hits one fails immediately rather than risking a
//     duplicate side effect.
//   * Once the retry budget is exhausted (or a mutation hit an
//     indeterminate failure), the backend enters a sticky *terminal*
//     state: every operation returns Unavailable, ScanBucket visits
//     nothing, and Health() reports the cause — the same shape as a
//     local dead child, so ShardedBackend/ReplicatedBackend degraded
//     routing and the executors' Health escalation react identically.
//   * A remote whose bucket space grew past the frozen plane (dynamic
//     directory growth, detected via the shape echoed by every Insert
//     reply) poisons the client with a sticky FailedPrecondition,
//     mirroring ShardedBackend's own frozen-plane contract.

#ifndef FXDIST_NET_REMOTE_BACKEND_H_
#define FXDIST_NET_REMOTE_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.h"
#include "net/wire.h"
#include "sim/composite_backend.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct RemoteBackendOptions {
  /// Socket-level per-operation deadline (ConnectTcp only; in-process
  /// transports have no deadline to miss).
  int deadline_ms = 5000;
  /// Total tries per operation, including the first.
  int max_attempts = 4;
  /// Exponential backoff between tries: initial doubles up to max.
  /// 0 disables sleeping (deterministic tests).
  int backoff_initial_ms = 1;
  int backoff_max_ms = 100;
};

class RemoteBackend final : public StorageBackend {
 public:
  using Options = RemoteBackendOptions;

  /// Performs the handshake over `transport` and builds the local twin.
  static Result<std::unique_ptr<RemoteBackend>> Connect(
      std::unique_ptr<Transport> transport, Options options = {});

  /// Dials "host:port" with a SocketTransport, then Connect().
  static Result<std::unique_ptr<RemoteBackend>> ConnectTcp(
      const std::string& host_port, Options options = {});

  // -- Placement plane: answered locally by the twin -------------------
  std::string backend_name() const override { return twin_->backend_name(); }
  const FieldSpec& spec() const override { return twin_->spec(); }
  const DistributionMethod& method() const override {
    return twin_->method();
  }
  const DeviceMap& device_map() const override { return twin_->device_map(); }
  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return twin_->HashQuery(query);
  }
  Result<BucketId> HashRecord(const Record& record) const override {
    return twin_->HashRecord(record);
  }
  std::uint64_t ServingDevice(std::uint64_t device,
                              std::uint64_t linear_bucket) const override {
    return twin_->ServingDevice(device, linear_bucket);
  }
  bool HasDegradedRouting() const override {
    return twin_->HasDegradedRouting();
  }
  void SaveParams(std::ostream& out) const override {
    twin_->SaveParams(out);
  }

  // -- Storage plane: one round trip each ------------------------------
  std::uint64_t num_records() const override;
  Status Insert(Record record) override;
  Result<std::uint64_t> Delete(const ValueQuery& query) override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;
  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;
  Result<QueryResult> Execute(const ValueQuery& query) const override;
  std::vector<std::uint64_t> RecordCountsPerDevice() const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  /// Forwarded to the remote replica plane (Unimplemented when the
  /// remote backend is not replicated); on success the twin's device
  /// state is updated too, so degraded routing matches the server.
  Status MarkDown(std::uint64_t device);
  Status MarkUp(std::uint64_t device);

  /// Terminal (Unavailable) or poisoned (FailedPrecondition) state.
  Status Health() const override;

 private:
  RemoteBackend(std::unique_ptr<Transport> transport, Options options)
      : transport_(std::move(transport)), options_(options) {}

  /// One operation: encode, round-trip with retries, decode the reply
  /// status, return the body.  `idempotent` selects the retry policy.
  Result<std::string> Call(WireOp op, std::string payload,
                           bool idempotent) const;

  std::unique_ptr<Transport> transport_;
  const Options options_;
  std::unique_ptr<StorageBackend> twin_;
  ReplicatedBackend* twin_replicated_ = nullptr;

  /// Serializes transport use and guards the sticky failure state.
  mutable std::mutex mutex_;
  mutable std::string terminal_;  ///< non-empty: every op is Unavailable
  mutable std::string poisoned_;  ///< non-empty: every op FailedPrecondition

  /// ScanBucket callers (the QueryEngine's shared sweep) hold the
  /// `const Record&`s a scan visited until the batch is assembled, which
  /// local backends satisfy by handing out references into their own
  /// storage.  A remote scan decodes records off the wire, so the
  /// decoded vector is pinned here — one entry per (device, bucket),
  /// node-stable under concurrent scans of *other* buckets and
  /// invalidated by the next mutation (the same event that invalidates
  /// a local backend's references).
  mutable std::map<std::pair<std::uint64_t, std::uint64_t>,
                   std::vector<Record>>
      scan_pins_;
};

}  // namespace fxdist

#endif  // FXDIST_NET_REMOTE_BACKEND_H_
