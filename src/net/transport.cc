#include "net/transport.h"

namespace fxdist {

void FaultInjectingTransport::InjectFault(FaultKind kind, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  kind_ = kind;
  fault_budget_ = count;
}

std::uint64_t FaultInjectingTransport::calls() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return calls_;
}

std::uint64_t FaultInjectingTransport::faulted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faulted_;
}

std::uint64_t FaultInjectingTransport::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

Result<std::string> FaultInjectingTransport::RoundTrip(
    const std::string& request) {
  FaultKind kind = FaultKind::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++calls_;
    if (kind_ != FaultKind::kNone && fault_budget_ != 0) {
      kind = kind_;
      ++faulted_;
      if (fault_budget_ > 0) --fault_budget_;
    }
  }

  // kDrop is the only fault where the server never sees the request.
  if (kind == FaultKind::kDrop) {
    return Status::Unavailable("fault injection: request dropped");
  }

  auto reply = inner_->RoundTrip(request);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++delivered_;
  }
  switch (kind) {
    case FaultKind::kNone:
      return reply;
    case FaultKind::kDelayPastDeadline:
      // The server answered; the reply just arrives too late to matter.
      return Status::DeadlineExceeded("fault injection: reply past deadline");
    case FaultKind::kDisconnectMidReply:
      return Status::DataLoss("fault injection: connection died mid-reply");
    case FaultKind::kCorruptReply: {
      if (!reply.ok()) return reply;
      std::string corrupted = *std::move(reply);
      if (!corrupted.empty()) {
        // Deterministic single-byte flip; the checksum must reject it.
        corrupted[corrupted.size() / 2] =
            static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x5a);
      }
      return corrupted;
    }
    case FaultKind::kDrop:
      break;  // handled above
  }
  return reply;
}

}  // namespace fxdist
