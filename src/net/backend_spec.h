// Child-backend spec strings: how tools and benches say what each shard
// of a ShardedBackend is, including shards living in other processes.
//
//   "flat"                 in-process ParallelFile
//   "paged" | "paged:P"    in-process PagedParallelFile, P records/page
//   "dynamic" | "dynamic:C" in-process DynamicParallelFile, page capacity
//                          C, directories provisioned to the schema's
//                          sizes (the frozen plane must not grow)
//   "packed:path"          read-only PackedBackend mapped from a packed
//                          file (see `fxdistctl pack`); arrives full, so
//                          the composite accepts it pre-loaded
//   "remote:host:port"     RemoteBackend dialing a `fxdistctl
//                          shard-serve` process
//
// This lives in net (not sim) because the remote kind pulls in the
// transport; sim never depends on net.

#ifndef FXDIST_NET_BACKEND_SPEC_H_
#define FXDIST_NET_BACKEND_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hashing/multikey_hash.h"
#include "net/remote_backend.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct ChildBackendOptions {
  std::uint64_t page_size = 8;      ///< "paged" records per page
  std::uint64_t page_capacity = 64; ///< "dynamic" keys per page
  RemoteBackend::Options remote;    ///< "remote:..." retry/deadline policy
};

/// Builds one child backend from `child_spec`.  Local kinds are
/// constructed from the schema/method/seed; the remote kind dials the
/// address and verifies its blueprint agrees on device count and field
/// arity (the handshake blueprint is otherwise authoritative).
Result<std::unique_ptr<StorageBackend>> MakeChildBackend(
    const std::string& child_spec, const Schema& schema,
    std::uint64_t num_devices, const std::string& method_spec,
    std::uint64_t seed, const ChildBackendOptions& options = {});

/// A ShardedBackend from per-device child specs: either one spec per
/// device or a single spec replicated M times.
Result<std::unique_ptr<StorageBackend>> MakeShardedBackend(
    const std::vector<std::string>& child_specs, const Schema& schema,
    std::uint64_t num_devices, const std::string& method_spec,
    std::uint64_t seed, const ChildBackendOptions& options = {});

}  // namespace fxdist

#endif  // FXDIST_NET_BACKEND_SPEC_H_
