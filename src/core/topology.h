// The versioned topology plane.
//
// Until now the serving stack froze its placement at construction: the
// ShardedBackend cached one DeviceMap forever and poisoned itself if the
// shape drifted.  Live resharding needs placement to *change* under
// traffic, so this file introduces the three vocabulary types the
// migration machinery is built from:
//
//   * TopologyVersion — a monotonically increasing version number plus
//     the placement it describes (M and the distribution spec string).
//     Version 1 is the backend's construction-time placement.
//   * ReshardPlan — the diff between two placements over the *same*
//     bucket space: which linear buckets move, from where, to where.
//     Linear bucket ids are M-independent (row-major over the field
//     sizes), which is exactly what makes resharding a re-placement of
//     existing buckets rather than a rehash of records.
//   * VersionedTopologyHandle — the publication point.  Readers get the
//     current version with one atomic load (cheap enough for the
//     engine's seqlock-style check around every batch) and the full
//     TopologyVersion under a short critical section; writers publish a
//     new topology atomically with a version bump.

#ifndef FXDIST_CORE_TOPOLOGY_H_
#define FXDIST_CORE_TOPOLOGY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/device_map.h"
#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// One generation of the placement plane.
struct TopologyVersionInfo {
  /// Monotonically increasing; 1 = construction-time placement.
  std::uint64_t version = 1;
  /// Device count of this generation.
  std::uint64_t num_devices = 0;
  /// Registry spec string of the distribution ("fx-iu2", "table:...").
  std::string scheme;

  bool operator==(const TopologyVersionInfo& other) const = default;
};

/// One bucket changing owner between two placements.
struct BucketMove {
  std::uint64_t linear_bucket = 0;
  std::uint64_t from_device = 0;
  std::uint64_t to_device = 0;

  bool operator==(const BucketMove& other) const = default;
};

/// The diff between an old and a new placement of the same bucket
/// space: every bucket whose owner changes, in ascending linear order.
struct ReshardPlan {
  TopologyVersionInfo from;
  TopologyVersionInfo to;
  std::vector<BucketMove> moves;

  /// Buckets that keep their owner across the move.
  std::uint64_t unmoved = 0;
};

/// Diffs two placements bucket-by-bucket.  The maps must share field
/// sizes (same linear bucket space); device counts may differ — that is
/// the point.  `from_version` seeds the plan's version numbers
/// (to.version = from_version + 1).
Result<ReshardPlan> BuildReshardPlan(const DeviceMap& from,
                                     const DeviceMap& to,
                                     std::uint64_t from_version = 1);

/// Publication point for the active topology.  version() is one relaxed
/// atomic load — cheap enough to bracket every engine batch; Get() and
/// Publish() take a short mutex so the non-trivial payload (the scheme
/// string) stays race-free under TSan.  The version counter is bumped
/// *after* the payload swap, so a reader that observes the new version
/// also observes the new payload.
class VersionedTopologyHandle {
 public:
  explicit VersionedTopologyHandle(TopologyVersionInfo initial)
      : info_(std::move(initial)), version_(info_.version) {}

  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  TopologyVersionInfo Get() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return info_;
  }

  /// Publishes `next`; its version must be strictly greater than the
  /// current one (enforced — topology only moves forward).
  Status Publish(TopologyVersionInfo next);

 private:
  mutable std::mutex mutex_;
  TopologyVersionInfo info_;
  std::atomic<std::uint64_t> version_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_TOPOLOGY_H_
