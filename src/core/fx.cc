#include "core/fx.h"

#include <utility>

#include "util/bitops.h"

namespace fxdist {

FXDistribution::FXDistribution(TransformPlan plan)
    : DistributionMethod(plan.spec()), plan_(std::move(plan)) {
  const std::uint64_t m = spec_.num_devices();
  residue_values_.resize(spec_.num_fields());
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    residue_values_[i].assign(m, {});
    for (std::uint64_t l = 0; l < spec_.field_size(i); ++l) {
      const std::uint64_t z = TruncateMod(plan_.transform(i).Apply(l), m);
      residue_values_[i][z].push_back(l);
    }
  }
}

std::unique_ptr<FXDistribution> FXDistribution::Basic(const FieldSpec& spec) {
  return std::unique_ptr<FXDistribution>(
      new FXDistribution(TransformPlan::Basic(spec)));
}

std::unique_ptr<FXDistribution> FXDistribution::Planned(const FieldSpec& spec,
                                                        PlanFamily family) {
  return std::unique_ptr<FXDistribution>(
      new FXDistribution(TransformPlan::Plan(spec, family)));
}

std::unique_ptr<FXDistribution> FXDistribution::WithPlan(TransformPlan plan) {
  return std::unique_ptr<FXDistribution>(new FXDistribution(std::move(plan)));
}

std::uint64_t FXDistribution::DeviceOf(const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  std::uint64_t fold = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    fold ^= plan_.transform(i).Apply(bucket[i]);
  }
  return TruncateMod(fold, spec_.num_devices());
}

std::string FXDistribution::name() const {
  bool all_identity = true;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (plan_.kind(i) != TransformKind::kIdentity) {
      all_identity = false;
      break;
    }
  }
  return all_identity ? "FX-basic" : "FX" + plan_.ToString();
}

std::uint64_t FXDistribution::SpecifiedFold(
    const PartialMatchQuery& query) const {
  std::uint64_t fold = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (query.is_specified(i)) {
      fold ^= plan_.transform(i).Apply(query.value(i));
    }
  }
  return TruncateMod(fold, spec_.num_devices());
}

std::vector<std::uint64_t> FXDistribution::ResidueHistogram(
    unsigned field) const {
  std::vector<std::uint64_t> hist(spec_.num_devices(), 0);
  for (std::uint64_t z = 0; z < spec_.num_devices(); ++z) {
    hist[z] = residue_values_[field][z].size();
  }
  return hist;
}

void FXDistribution::ForEachQualifiedBucketOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(const BucketId&)>& fn) const {
  const std::vector<unsigned> free_fields = query.UnspecifiedFields();
  const std::uint64_t m = spec_.num_devices();
  const std::uint64_t h = SpecifiedFold(query);

  BucketId bucket(spec_.num_fields(), 0);
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (query.is_specified(i)) bucket[i] = query.value(i);
  }

  if (free_fields.empty()) {
    // Exact match: one bucket; on `device` or not.
    if (TruncateMod(h, m) == device) fn(bucket);
    return;
  }

  // Iterate the cartesian product of all free fields except the last; for
  // each prefix, the last field's transformed value must land on residue
  //   z = h ^ prefix_fold ^ device  (mod M),
  // and residue_values_ lists exactly the field values achieving it.
  const unsigned last = free_fields.back();
  const std::vector<unsigned> prefix(free_fields.begin(),
                                     free_fields.end() - 1);
  for (unsigned f : prefix) bucket[f] = 0;
  while (true) {
    std::uint64_t fold = h;
    for (unsigned f : prefix) fold ^= plan_.transform(f).Apply(bucket[f]);
    const std::uint64_t z = TruncateMod(fold ^ device, m);
    for (std::uint64_t l : residue_values_[last][z]) {
      bucket[last] = l;
      if (!fn(bucket)) return;
    }
    // Odometer increment over the prefix fields, last fastest.
    std::size_t i = prefix.size();
    bool advanced = false;
    while (i > 0) {
      --i;
      const unsigned f = prefix[i];
      if (++bucket[f] < spec_.field_size(f)) {
        advanced = true;
        break;
      }
      bucket[f] = 0;
    }
    if (!advanced) return;
  }
}

}  // namespace fxdist
