// String-keyed factory for distribution methods.
//
// Benchmarks, examples and tests construct methods from compact specs:
//   "fx-basic"            Basic FX (no transformation)
//   "fx-iu1" / "fx-iu2"   Extended FX with the automatic planner
//   "fx:[I,U,IU1]"        Extended FX with an explicit per-field plan
//   "modulo"              Disk Modulo
//   "gdm:2,3,5,7,11,13"   GDM with explicit multipliers
//   "gdm1" "gdm2" "gdm3"  GDM with the paper's multiplier sets (6 fields,
//                         repeated cyclically for other arities)
//   "rot<k>:<inner>"      Inner method with every device shifted by k mod M
//                         (complementary replica placement, e.g. "rot4:fx-iu2")

#ifndef FXDIST_CORE_REGISTRY_H_
#define FXDIST_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

/// Parses `spec_string` and instantiates the method for `spec`.
Result<std::unique_ptr<DistributionMethod>> MakeDistribution(
    const FieldSpec& spec, const std::string& spec_string);

/// All spec strings understood by MakeDistribution that need no argument
/// (for --help output and sweep benches).
std::vector<std::string> KnownDistributionNames();

/// Splits a "prefix:rest" spec at the first colon ("rot4:fx-iu2" ->
/// {"rot4", "fx-iu2"}, "remote:host:9000" -> {"remote", "host:9000"}).
/// Returns false (outputs untouched) when there is no colon.  Shared by
/// the distribution registry and the storage-backend child specs.
bool SplitSpecPrefix(const std::string& spec_string, std::string* prefix,
                     std::string* rest);

}  // namespace fxdist

#endif  // FXDIST_CORE_REGISTRY_H_
