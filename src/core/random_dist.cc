#include "core/random_dist.h"

#include "util/bitops.h"

namespace fxdist {

std::uint64_t RandomDistribution::DeviceOf(const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  // SplitMix64 finalizer over the linear index: stateless, uniform, and
  // stable for a given seed.
  std::uint64_t z = LinearIndex(spec_, bucket) ^ (seed_ * 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return TruncateMod(z, spec_.num_devices());
}

std::string RandomDistribution::name() const {
  return "Random(seed=" + std::to_string(seed_) + ")";
}

}  // namespace fxdist
