#include "core/modulo.h"

namespace fxdist {

std::uint64_t ModuloDistribution::DeviceOf(const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  std::uint64_t sum = 0;
  for (std::uint64_t v : bucket) sum += v;
  return sum % spec_.num_devices();
}

void ModuloDistribution::ForEachQualifiedBucketOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(const BucketId&)>& fn) const {
  const std::vector<unsigned> free_fields = query.UnspecifiedFields();
  const std::uint64_t m = spec_.num_devices();

  BucketId bucket(spec_.num_fields(), 0);
  std::uint64_t specified_sum = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (query.is_specified(i)) {
      bucket[i] = query.value(i);
      specified_sum += query.value(i);
    }
  }

  if (free_fields.empty()) {
    if (specified_sum % m == device) fn(bucket);
    return;
  }

  const unsigned last = free_fields.back();
  const std::uint64_t last_size = spec_.field_size(last);
  const std::vector<unsigned> prefix(free_fields.begin(),
                                     free_fields.end() - 1);
  for (unsigned f : prefix) bucket[f] = 0;
  while (true) {
    std::uint64_t sum = specified_sum;
    for (unsigned f : prefix) sum += bucket[f];
    const std::uint64_t z = (device + m - sum % m) % m;
    for (std::uint64_t l = z; l < last_size; l += m) {
      bucket[last] = l;
      if (!fn(bucket)) return;
    }
    std::size_t i = prefix.size();
    bool advanced = false;
    while (i > 0) {
      --i;
      const unsigned f = prefix[i];
      if (++bucket[f] < spec_.field_size(f)) {
        advanced = true;
        break;
      }
      bucket[f] = 0;
    }
    if (!advanced) return;
  }
}

}  // namespace fxdist
