// SpanningPathDistribution: the de-clustering heuristic family of Fang,
// Lee & Chang (VLDB 1986), the "minimal spanning trees and short spanning
// paths" baseline the paper cites ([FaRC86]).
//
// Idea: buckets that are *similar* (share many field values) tend to
// qualify for the same partial match queries, so they should sit on
// different devices.  Build a short spanning path that keeps similar
// buckets adjacent, then deal the path out round-robin: neighbours — the
// most similar pairs — always land on distinct devices.
//
// The path is grown greedily (nearest-neighbour by similarity, ties broken
// by linear order), which is the "short spanning path" variant; exact
// shortest Hamiltonian paths are of course intractable.  The whole bucket
// space is materialized, so this method is only practical for small spaces
// (the construction is O(N^2) in the bucket count N) — which is precisely
// the scalability criticism the paper levels at table-based allocation,
// and why FX's closed-form address computation wins for main-memory use.

#ifndef FXDIST_CORE_SPANNING_H_
#define FXDIST_CORE_SPANNING_H_

#include <memory>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

class SpanningPathDistribution final : public DistributionMethod {
 public:
  /// Which FaRC86 variant orders the buckets.
  enum class Variant {
    kShortPath,  ///< greedy nearest-neighbour path
    kMst,        ///< maximum-similarity spanning tree, DFS preorder
  };

  /// Materializes the allocation table.  Fails for bucket spaces larger
  /// than kMaxBuckets (the construction is quadratic).
  static Result<std::unique_ptr<SpanningPathDistribution>> Make(
      const FieldSpec& spec, Variant variant = Variant::kShortPath);

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override {
    return variant_ == Variant::kShortPath ? "SpanningPath"
                                           : "SpanningMST";
  }
  /// Table-based: no algebraic shift structure.
  bool IsShiftInvariant() const override { return false; }

  /// The path order (linear bucket indices), exposed for tests.
  const std::vector<std::uint64_t>& path() const { return path_; }

  static constexpr std::uint64_t kMaxBuckets = 1u << 14;

 private:
  SpanningPathDistribution(FieldSpec spec, Variant variant,
                           std::vector<std::uint64_t> table,
                           std::vector<std::uint64_t> path)
      : DistributionMethod(std::move(spec)), variant_(variant),
        table_(std::move(table)), path_(std::move(path)) {}

  Variant variant_;
  std::vector<std::uint64_t> table_;  // linear bucket index -> device
  std::vector<std::uint64_t> path_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_SPANNING_H_
