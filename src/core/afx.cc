#include "core/afx.h"

#include <utility>

namespace fxdist {

AdditiveFoldDistribution::AdditiveFoldDistribution(TransformPlan plan)
    : DistributionMethod(plan.spec()), plan_(std::move(plan)) {}

std::unique_ptr<AdditiveFoldDistribution> AdditiveFoldDistribution::Basic(
    const FieldSpec& spec) {
  return std::unique_ptr<AdditiveFoldDistribution>(
      new AdditiveFoldDistribution(TransformPlan::Basic(spec)));
}

std::unique_ptr<AdditiveFoldDistribution> AdditiveFoldDistribution::Planned(
    const FieldSpec& spec, PlanFamily family) {
  return std::unique_ptr<AdditiveFoldDistribution>(
      new AdditiveFoldDistribution(TransformPlan::Plan(spec, family)));
}

std::unique_ptr<AdditiveFoldDistribution>
AdditiveFoldDistribution::WithPlan(TransformPlan plan) {
  return std::unique_ptr<AdditiveFoldDistribution>(
      new AdditiveFoldDistribution(std::move(plan)));
}

std::uint64_t AdditiveFoldDistribution::DeviceOf(
    const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    sum += plan_.transform(i).Apply(bucket[i]);
  }
  return sum % spec_.num_devices();
}

std::string AdditiveFoldDistribution::name() const {
  return "AFX" + plan_.ToString();
}

std::vector<std::uint64_t> AdditiveFoldDistribution::ResidueHistogram(
    unsigned field) const {
  std::vector<std::uint64_t> hist(spec_.num_devices(), 0);
  for (std::uint64_t l = 0; l < spec_.field_size(field); ++l) {
    ++hist[plan_.transform(field).Apply(l) % spec_.num_devices()];
  }
  return hist;
}

}  // namespace fxdist
