// DeviceMap: the cached placement plane.
//
// A DistributionMethod answers "which device owns this bucket" with a
// virtual call per bucket.  The analysis sweeps and the simulator's hot
// loops ask that question millions of times against an *immutable*
// mapping, so DeviceMap materializes the answer once: a flat
// bucket→device table indexed by linear bucket id, plus a per-device
// sorted index of owned buckets.  On top of those it offers batch lookup
// (DeviceOfMany) and a cost-based inverse mapping that picks, per query,
// the cheapest of three equivalent enumeration strategies:
//
//   * the method's own fast inverse (FX/Modulo/GDM residue solvers,
//     ~|R(q)|/M visits — see HasFastInverseMapping),
//   * a scan of the device's sorted bucket index filtered by the query
//     (|buckets on device| visits, wins for large |R(q)|), or
//   * enumeration of R(q) filtered through the flat table (|R(q)| O(1)
//     lookups, replacing the virtual-DeviceOf-per-bucket default).
//
// All three visit the same buckets in ascending linear order (qualified
// enumeration is odometer order = ascending linear index; the residue
// solvers walk ascending residue lists), so callers get bit-identical
// results whichever strategy is picked.
//
// Memory cost is M^n-ish: 4 bytes/bucket for the table plus 8 per bucket
// for the index.  Above `max_entries` buckets the map is *not*
// precomputed and every operation transparently falls back to the
// method's virtual path, so callers never need to special-case large
// spaces (see DESIGN.md §8).

#ifndef FXDIST_CORE_DEVICE_MAP_H_
#define FXDIST_CORE_DEVICE_MAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/bucket.h"
#include "core/distribution.h"
#include "core/field_spec.h"
#include "core/query.h"

namespace fxdist {

/// Invokes `fn(linear_index)` for every bucket of R(q) in ascending
/// linear order — the linear-id counterpart of ForEachQualifiedBucket,
/// maintaining the index incrementally (no BucketId materialization, no
/// per-bucket multiply).  `fn` returning false stops early.
template <typename Fn>
void ForEachQualifiedLinear(const FieldSpec& spec,
                            const PartialMatchQuery& query, Fn&& fn) {
  const unsigned n = spec.num_fields();
  std::vector<std::uint64_t> stride(n);
  std::uint64_t s = 1;
  for (unsigned i = n; i > 0;) {
    --i;
    stride[i] = s;
    s *= spec.field_size(i);
  }
  std::uint64_t linear = 0;
  std::vector<unsigned> free_fields;
  for (unsigned i = 0; i < n; ++i) {
    if (query.is_specified(i)) {
      linear += query.value(i) * stride[i];
    } else {
      free_fields.push_back(i);
    }
  }
  std::vector<std::uint64_t> pos(free_fields.size(), 0);
  while (true) {
    if (!fn(static_cast<std::uint64_t>(linear))) return;
    std::size_t i = free_fields.size();
    bool advanced = false;
    while (i > 0) {
      --i;
      const unsigned f = free_fields[i];
      if (++pos[i] < spec.field_size(f)) {
        linear += stride[f];
        advanced = true;
        break;
      }
      linear -= stride[f] * (spec.field_size(f) - 1);
      pos[i] = 0;
    }
    if (!advanced) return;
  }
}

/// Precomputed bucket→device mapping for one DistributionMethod.  The
/// method must outlive the map (backends own both; the map holds a
/// pointer, so moving the owner is safe while the method stays heap-
/// allocated).  Immutable and thread-safe after construction.
class DeviceMap {
 public:
  /// Precompute at most this many table entries by default (4 MiB of
  /// device ids plus the 8-byte-per-bucket index).
  static constexpr std::uint64_t kDefaultMaxEntries = std::uint64_t{1}
                                                      << 20;

  /// Builds the flat table and per-device index by one sweep of the
  /// bucket space, unless it exceeds `max_entries` — then the map stays
  /// in fallback mode and delegates every call to `method`.
  explicit DeviceMap(const DistributionMethod& method,
                     std::uint64_t max_entries = kDefaultMaxEntries);

  /// False when the bucket space was too large to materialize.
  bool precomputed() const { return !table_.empty(); }

  const FieldSpec& spec() const { return spec_; }
  const DistributionMethod& method() const { return *method_; }

  std::uint64_t DeviceOf(const BucketId& bucket) const {
    return precomputed() ? table_[LinearIndex(spec_, bucket)]
                         : method_->DeviceOf(bucket);
  }
  std::uint64_t DeviceOfLinear(std::uint64_t linear) const {
    return precomputed() ? table_[linear]
                         : method_->DeviceOf(BucketFromLinear(spec_, linear));
  }

  /// Batch lookup: out[i] = device of linear id `linear_ids[i]`.  The
  /// whole point of the flat table — one cache-friendly gather, no
  /// virtual dispatch per bucket.
  void DeviceOfMany(const std::uint64_t* linear_ids, std::size_t count,
                    std::uint32_t* out) const;

  /// The flat table (empty in fallback mode); table()[linear] = device.
  const std::vector<std::uint32_t>& table() const { return table_; }

  /// Ascending linear ids of the buckets `device` owns (empty in
  /// fallback mode).
  const std::vector<std::uint64_t>& BucketsOnDevice(
      std::uint64_t device) const {
    return buckets_on_device_[device];
  }

  /// Per-device qualified-bucket counts of `query` — the placement-plane
  /// form of analysis' ComputeResponseVector, via table lookups.
  std::vector<std::uint64_t> ResponseCounts(
      const PartialMatchQuery& query) const;

  /// Enumerates the qualified buckets of `query` on `device` in
  /// ascending linear order, picking the cheapest strategy (see file
  /// comment).  `fn` returning false stops early.
  void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const;

  /// Same enumeration, handing out linear ids — the form the storage
  /// and batch-planning hot loops want.
  void ForEachQualifiedLinearOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(std::uint64_t)>& fn) const;

 private:
  /// True iff the specified fields of `query` match `linear`'s
  /// coordinates (shift/mask per field — sizes are powers of two).
  bool LinearMatches(const PartialMatchQuery& query,
                     std::uint64_t linear) const;

  const DistributionMethod* method_;
  FieldSpec spec_;
  std::vector<std::uint32_t> table_;
  std::vector<std::vector<std::uint64_t>> buckets_on_device_;
  // Per-field decode of a linear id: (linear >> shift_[i]) & mask_[i].
  std::vector<unsigned> shift_;
  std::vector<std::uint64_t> mask_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_DEVICE_MAP_H_
