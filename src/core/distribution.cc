#include "core/distribution.h"

namespace fxdist {

void DistributionMethod::ForEachQualifiedBucketOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(const BucketId&)>& fn) const {
  ForEachQualifiedBucket(spec_, query, [&](const BucketId& bucket) {
    if (DeviceOf(bucket) == device) {
      return fn(bucket);
    }
    return true;
  });
}

}  // namespace fxdist
