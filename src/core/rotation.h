// RotatedDistribution: a placement combinator that shifts every device
// assignment of an inner method by a fixed offset mod M.
//
// This is the paper-style "complementary" replica placement as a
// first-class DistributionMethod: a replica file constructed with
// "rot<k>:<inner>" places bucket b on (inner(b) + k) mod M, so the copy
// of every bucket lives k devices away from its primary.  Mirrored
// declustering is k = M/2, chained declustering (Hsiao & DeWitt) is
// k = 1; sim/composite_backend.h's ReplicatedBackend routes degraded
// reads through it.
//
// The rotation preserves everything the analysis and the DeviceMap care
// about: shift invariance, the fast inverse (qualified buckets on device
// d are the inner method's qualified buckets on d - k), and ascending
// enumeration order.

#ifndef FXDIST_CORE_ROTATION_H_
#define FXDIST_CORE_ROTATION_H_

#include <memory>
#include <string>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

class RotatedDistribution : public DistributionMethod {
 public:
  /// Wraps `inner`, shifting assignments by `offset` mod M.  The offset
  /// is normalized into [0, M).
  static Result<std::unique_ptr<RotatedDistribution>> Make(
      std::unique_ptr<DistributionMethod> inner, std::uint64_t offset);

  std::uint64_t DeviceOf(const BucketId& bucket) const override {
    return (inner_->DeviceOf(bucket) + offset_) % spec_.num_devices();
  }

  std::string name() const override;

  bool IsShiftInvariant() const override {
    return inner_->IsShiftInvariant();
  }
  bool HasFastInverseMapping() const override {
    return inner_->HasFastInverseMapping();
  }

  void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const override {
    const std::uint64_t m = spec_.num_devices();
    inner_->ForEachQualifiedBucketOnDevice(query, (device + m - offset_) % m,
                                           fn);
  }

  std::uint64_t offset() const { return offset_; }
  const DistributionMethod& inner() const { return *inner_; }

 private:
  RotatedDistribution(std::unique_ptr<DistributionMethod> inner,
                      std::uint64_t offset)
      : DistributionMethod(inner->spec()), inner_(std::move(inner)),
        offset_(offset) {}

  std::unique_ptr<DistributionMethod> inner_;
  std::uint64_t offset_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_ROTATION_H_
