// ModuloDistribution: the Disk Modulo allocation of Du & Sobolewski
// (DuSo82), the paper's primary baseline.
//
// Bucket <J_1..J_n> goes to device (J_1 + ... + J_n) mod M.  Simple, and
// strict optimal when some unspecified field size is a multiple of M, but
// it degrades badly once many field sizes are below the device count —
// exactly the regime the paper's FX transformations target.

#ifndef FXDIST_CORE_MODULO_H_
#define FXDIST_CORE_MODULO_H_

#include <memory>

#include "core/distribution.h"

namespace fxdist {

class ModuloDistribution final : public DistributionMethod {
 public:
  explicit ModuloDistribution(FieldSpec spec)
      : DistributionMethod(std::move(spec)) {}

  static std::unique_ptr<ModuloDistribution> Make(const FieldSpec& spec) {
    return std::make_unique<ModuloDistribution>(spec);
  }

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override { return "Modulo"; }
  bool IsShiftInvariant() const override { return true; }

  /// Fast inverse mapping: the last unspecified field's values on a
  /// device form the arithmetic progression {z, z+M, z+2M, ...} — no
  /// table needed.
  void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const override;
  bool HasFastInverseMapping() const override { return true; }
};

}  // namespace fxdist

#endif  // FXDIST_CORE_MODULO_H_
