#include "core/gdm.h"

#include <sstream>

namespace fxdist {

GDMDistribution::GDMDistribution(FieldSpec spec,
                                 std::vector<std::uint64_t> multipliers)
    : DistributionMethod(std::move(spec)),
      multipliers_(std::move(multipliers)) {
  const std::uint64_t m = spec_.num_devices();
  residue_values_.resize(spec_.num_fields());
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    residue_values_[i].assign(m, {});
    for (std::uint64_t l = 0; l < spec_.field_size(i); ++l) {
      residue_values_[i][(multipliers_[i] * l) % m].push_back(l);
    }
  }
}

Result<std::unique_ptr<GDMDistribution>> GDMDistribution::Make(
    const FieldSpec& spec, std::vector<std::uint64_t> multipliers) {
  if (multipliers.size() != spec.num_fields()) {
    return Status::InvalidArgument("one multiplier per field required");
  }
  return std::unique_ptr<GDMDistribution>(
      new GDMDistribution(spec, std::move(multipliers)));
}

void GDMDistribution::ForEachQualifiedBucketOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(const BucketId&)>& fn) const {
  const std::vector<unsigned> free_fields = query.UnspecifiedFields();
  const std::uint64_t m = spec_.num_devices();

  BucketId bucket(spec_.num_fields(), 0);
  std::uint64_t specified_sum = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (query.is_specified(i)) {
      bucket[i] = query.value(i);
      specified_sum += multipliers_[i] * query.value(i);
    }
  }

  if (free_fields.empty()) {
    if (specified_sum % m == device) fn(bucket);
    return;
  }

  // For each prefix assignment, the last free field's contribution must
  // make the total congruent to `device` mod M.
  const unsigned last = free_fields.back();
  const std::vector<unsigned> prefix(free_fields.begin(),
                                     free_fields.end() - 1);
  for (unsigned f : prefix) bucket[f] = 0;
  while (true) {
    std::uint64_t sum = specified_sum;
    for (unsigned f : prefix) sum += multipliers_[f] * bucket[f];
    const std::uint64_t z = (device + m - sum % m) % m;
    for (std::uint64_t l : residue_values_[last][z]) {
      bucket[last] = l;
      if (!fn(bucket)) return;
    }
    std::size_t i = prefix.size();
    bool advanced = false;
    while (i > 0) {
      --i;
      const unsigned f = prefix[i];
      if (++bucket[f] < spec_.field_size(f)) {
        advanced = true;
        break;
      }
      bucket[f] = 0;
    }
    if (!advanced) return;
  }
}

std::uint64_t GDMDistribution::DeviceOf(const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    sum += multipliers_[i] * bucket[i];
  }
  return sum % spec_.num_devices();
}

std::string GDMDistribution::name() const {
  std::ostringstream oss;
  oss << "GDM{";
  for (std::size_t i = 0; i < multipliers_.size(); ++i) {
    if (i != 0) oss << ',';
    oss << multipliers_[i];
  }
  oss << '}';
  return oss.str();
}

}  // namespace fxdist
