// FXDistribution: the paper's contribution.
//
// Extended FX allocates bucket <J_1..J_n> to device
//     T_M( X_1(J_1) ^ X_2(J_2) ^ ... ^ X_n(J_n) )
// where X_i is the field's transformation (identity when F_i >= M) and T_M
// keeps the low log2(M) bits.  With the all-identity plan this is Basic FX.

#ifndef FXDIST_CORE_FX_H_
#define FXDIST_CORE_FX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "core/transform.h"

namespace fxdist {

class FXDistribution final : public DistributionMethod {
 public:
  /// Basic FX: no transformation.
  static std::unique_ptr<FXDistribution> Basic(const FieldSpec& spec);

  /// Extended FX with the automatic planner (see TransformPlan::Plan).
  static std::unique_ptr<FXDistribution> Planned(
      const FieldSpec& spec, PlanFamily family = PlanFamily::kIU2);

  /// Extended FX with an explicit plan.
  static std::unique_ptr<FXDistribution> WithPlan(TransformPlan plan);

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override;
  bool IsShiftInvariant() const override { return true; }

  /// Fast inverse mapping: instead of filtering all |R(q)| qualified
  /// buckets, fixes every unspecified field but the last and solves the
  /// XOR equation for the final field via a precomputed residue table,
  /// visiting only the ~|R(q)|/M buckets actually on `device`.
  void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const override;
  bool HasFastInverseMapping() const override { return true; }

  const TransformPlan& plan() const { return plan_; }

  /// XOR-fold of the *specified* fields of `query` after transformation and
  /// truncation — the paper's `h`.
  std::uint64_t SpecifiedFold(const PartialMatchQuery& query) const;

  /// Histogram of field i's transformed-and-truncated values:
  /// result[z] = #{ l in f_i : T_M(X_i(l)) == z }.  The response vector of
  /// any query is the XOR-convolution of the unspecified fields'
  /// histograms (shifted by SpecifiedFold) — see analysis/fast_response.h.
  std::vector<std::uint64_t> ResidueHistogram(unsigned field) const;

 private:
  explicit FXDistribution(TransformPlan plan);

  TransformPlan plan_;
  // residue_values_[i][z] = values l of field i with T_M(X_i(l)) == z.
  std::vector<std::vector<std::vector<std::uint64_t>>> residue_values_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_FX_H_
