#include "core/transform.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/bitops.h"

namespace fxdist {

const char* TransformKindToString(TransformKind kind) {
  switch (kind) {
    case TransformKind::kIdentity:
      return "I";
    case TransformKind::kU:
      return "U";
    case TransformKind::kIU1:
      return "IU1";
    case TransformKind::kIU2:
      return "IU2";
  }
  return "?";
}

bool AreDifferentMethods(TransformKind a, TransformKind b) {
  if (a == b) return false;
  // The paper: "in (3), (4)-a and (5)-a IU1 and IU2 combination do not
  // apply" — they are too similar to guarantee optimality together.
  const bool a_iu = a == TransformKind::kIU1 || a == TransformKind::kIU2;
  const bool b_iu = b == TransformKind::kIU1 || b == TransformKind::kIU2;
  return !(a_iu && b_iu);
}

FieldTransform::FieldTransform(TransformKind kind, std::uint64_t field_size,
                               std::uint64_t num_devices)
    : kind_(kind), field_size_(field_size), num_devices_(num_devices) {
  if (kind == TransformKind::kIdentity) return;
  d1_ = num_devices / field_size;
  shift1_ = Log2Exact(d1_);
  if (kind == TransformKind::kIU2) {
    // d2 = d1 / F when F^2 < M; otherwise IU2 degenerates to IU1 (d2 = 0).
    if (field_size * field_size < num_devices) {
      d2_ = d1_ / field_size;
      shift2_ = Log2Exact(d2_);
    }
  }
}

Result<FieldTransform> FieldTransform::Create(TransformKind kind,
                                              std::uint64_t field_size,
                                              std::uint64_t num_devices) {
  if (!IsPowerOfTwo(field_size) || !IsPowerOfTwo(num_devices)) {
    return Status::InvalidArgument(
        "field size and device count must be powers of two");
  }
  if (kind != TransformKind::kIdentity && field_size >= num_devices) {
    return Status::InvalidArgument(
        std::string(TransformKindToString(kind)) +
        " transformation requires F < M (got F=" +
        std::to_string(field_size) + ", M=" + std::to_string(num_devices) +
        ")");
  }
  return FieldTransform(kind, field_size, num_devices);
}

FieldTransform FieldTransform::Identity(std::uint64_t field_size,
                                        std::uint64_t num_devices) {
  return FieldTransform(TransformKind::kIdentity, field_size, num_devices);
}

std::vector<std::uint64_t> FieldTransform::Image() const {
  std::vector<std::uint64_t> image(field_size_);
  for (std::uint64_t l = 0; l < field_size_; ++l) image[l] = Apply(l);
  return image;
}

std::string FieldTransform::ToString() const {
  std::ostringstream oss;
  oss << TransformKindToString(kind_) << "^{" << num_devices_ << ','
      << field_size_ << '}';
  return oss.str();
}

TransformPlan TransformPlan::Basic(const FieldSpec& spec) {
  std::vector<FieldTransform> transforms;
  transforms.reserve(spec.num_fields());
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    transforms.push_back(
        FieldTransform::Identity(spec.field_size(i), spec.num_devices()));
  }
  return TransformPlan(spec, std::move(transforms));
}

Result<TransformPlan> TransformPlan::Create(const FieldSpec& spec,
                                            std::vector<TransformKind> kinds) {
  if (kinds.size() != spec.num_fields()) {
    return Status::InvalidArgument("one transformation kind per field");
  }
  std::vector<FieldTransform> transforms;
  transforms.reserve(kinds.size());
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (!spec.is_small_field(i) && kinds[i] != TransformKind::kIdentity) {
      return Status::InvalidArgument(
          "field " + std::to_string(i) +
          " has F >= M; Extended FX requires the identity there");
    }
    auto t = FieldTransform::Create(kinds[i], spec.field_size(i),
                                    spec.num_devices());
    FXDIST_RETURN_NOT_OK(t.status());
    transforms.push_back(*std::move(t));
  }
  return TransformPlan(spec, std::move(transforms));
}

TransformPlan TransformPlan::Plan(const FieldSpec& spec, PlanFamily family) {
  const std::vector<unsigned> small = spec.SmallFields();
  std::vector<TransformKind> kinds(spec.num_fields(),
                                   TransformKind::kIdentity);
  const TransformKind iu_slot = family == PlanFamily::kIU1
                                    ? TransformKind::kIU1
                                    : TransformKind::kIU2;
  if (small.size() <= 3) {
    // Theorem 9: sort small fields by size descending and assign
    // I (largest), IU2 (middle), U (smallest).
    std::vector<unsigned> order = small;
    std::stable_sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
      return spec.field_size(a) > spec.field_size(b);
    });
    if (order.size() == 1) {
      kinds[order[0]] = TransformKind::kIdentity;
    } else if (order.size() == 2) {
      kinds[order[0]] = TransformKind::kIdentity;
      kinds[order[1]] = TransformKind::kU;
    } else if (order.size() == 3) {
      kinds[order[0]] = TransformKind::kIdentity;
      kinds[order[1]] = TransformKind::kIU2;
      kinds[order[2]] = TransformKind::kU;
    }
  } else {
    // Round-robin I, U, IU1/IU2 in field order (paper §5 setup).
    static constexpr TransformKind kBase[2] = {TransformKind::kIdentity,
                                               TransformKind::kU};
    for (std::size_t pos = 0; pos < small.size(); ++pos) {
      const unsigned slot = static_cast<unsigned>(pos % 3);
      kinds[small[pos]] = slot < 2 ? kBase[slot] : iu_slot;
    }
  }
  auto plan = Create(spec, std::move(kinds));
  FXDIST_DCHECK(plan.ok());
  return *std::move(plan);
}

std::vector<TransformKind> TransformPlan::kinds() const {
  std::vector<TransformKind> out;
  out.reserve(transforms_.size());
  for (const auto& t : transforms_) out.push_back(t.kind());
  return out;
}

std::string TransformPlan::ToString() const {
  std::ostringstream oss;
  oss << '[';
  for (std::size_t i = 0; i < transforms_.size(); ++i) {
    if (i != 0) oss << ',';
    oss << TransformKindToString(transforms_[i].kind());
  }
  oss << ']';
  return oss.str();
}

}  // namespace fxdist
