#include "core/spanning.h"

#include <algorithm>
#include <vector>

namespace fxdist {

namespace {

/// Similarity of two buckets: number of agreeing field coordinates.  A
/// pair agreeing on k of n fields co-qualifies for every query that
/// specifies a subset of those k fields and wildcards the rest.
unsigned Similarity(const BucketId& a, const BucketId& b) {
  unsigned score = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++score;
  }
  return score;
}

}  // namespace

namespace {

/// Greedy nearest-neighbour path from bucket 0 (the "short spanning
/// path" heuristic).
std::vector<std::uint64_t> ShortPathOrder(
    const std::vector<BucketId>& buckets) {
  const std::uint64_t total = buckets.size();
  std::vector<bool> used(total, false);
  std::vector<std::uint64_t> path;
  path.reserve(total);
  std::uint64_t current = 0;
  used[0] = true;
  path.push_back(0);
  for (std::uint64_t step = 1; step < total; ++step) {
    unsigned best_sim = 0;
    std::uint64_t best = total;  // sentinel
    for (std::uint64_t cand = 0; cand < total; ++cand) {
      if (used[cand]) continue;
      const unsigned sim = Similarity(buckets[current], buckets[cand]);
      if (best == total || sim > best_sim) {
        best = cand;
        best_sim = sim;
      }
    }
    used[best] = true;
    path.push_back(best);
    current = best;
  }
  return path;
}

/// Maximum-similarity spanning tree (Prim), ordered by DFS preorder —
/// the MST flavour of FaRC86: tree neighbours are similar, and DFS keeps
/// subtrees (similar clusters) contiguous for the round-robin deal.
std::vector<std::uint64_t> MstOrder(const std::vector<BucketId>& buckets) {
  const std::uint64_t total = buckets.size();
  std::vector<bool> in_tree(total, false);
  std::vector<unsigned> best_sim(total, 0);
  std::vector<std::uint64_t> parent(total, 0);
  std::vector<std::vector<std::uint64_t>> children(total);
  in_tree[0] = true;
  for (std::uint64_t v = 1; v < total; ++v) {
    best_sim[v] = Similarity(buckets[0], buckets[v]);
  }
  for (std::uint64_t step = 1; step < total; ++step) {
    std::uint64_t best = total;
    for (std::uint64_t v = 0; v < total; ++v) {
      if (in_tree[v]) continue;
      if (best == total || best_sim[v] > best_sim[best]) best = v;
    }
    in_tree[best] = true;
    children[parent[best]].push_back(best);
    for (std::uint64_t v = 0; v < total; ++v) {
      if (in_tree[v]) continue;
      const unsigned sim = Similarity(buckets[best], buckets[v]);
      if (sim > best_sim[v]) {
        best_sim[v] = sim;
        parent[v] = best;
      }
    }
  }
  // Iterative DFS preorder from the root.
  std::vector<std::uint64_t> order;
  order.reserve(total);
  std::vector<std::uint64_t> stack = {0};
  while (!stack.empty()) {
    const std::uint64_t v = stack.back();
    stack.pop_back();
    order.push_back(v);
    // Push in reverse so the first child is visited first.
    for (auto it = children[v].rbegin(); it != children[v].rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

}  // namespace

Result<std::unique_ptr<SpanningPathDistribution>>
SpanningPathDistribution::Make(const FieldSpec& spec, Variant variant) {
  const std::uint64_t total = spec.TotalBuckets();
  if (total > kMaxBuckets) {
    return Status::InvalidArgument(
        "spanning construction is quadratic; bucket space " +
        std::to_string(total) + " exceeds the cap of " +
        std::to_string(kMaxBuckets));
  }

  std::vector<BucketId> buckets;
  buckets.reserve(total);
  ForEachBucket(spec, [&](const BucketId& b) {
    buckets.push_back(b);
    return true;
  });

  std::vector<std::uint64_t> path = variant == Variant::kShortPath
                                        ? ShortPathOrder(buckets)
                                        : MstOrder(buckets);

  // Deal the order out round-robin.
  std::vector<std::uint64_t> table(total);
  for (std::uint64_t pos = 0; pos < total; ++pos) {
    table[path[pos]] = pos % spec.num_devices();
  }
  return std::unique_ptr<SpanningPathDistribution>(
      new SpanningPathDistribution(spec, variant, std::move(table),
                                   std::move(path)));
}

std::uint64_t SpanningPathDistribution::DeviceOf(
    const BucketId& bucket) const {
  FXDIST_DCHECK(IsValidBucket(spec_, bucket));
  return table_[LinearIndex(spec_, bucket)];
}

}  // namespace fxdist
