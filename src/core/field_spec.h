// FieldSpec: the static description of a multi-key-hashed file.
//
// A file has n fields; field i's hash values range over
// f_i = {0, ..., F_i - 1}.  A *bucket* is one combination
// <J_1, ..., J_n> of hashed field values, and the bucket space is the
// cartesian product f_1 x ... x f_n.  The file is to be spread over M
// parallel devices.  Following the paper (and the dynamic/partitioned
// hashing schemes it builds on), every F_i and M are powers of two.

#ifndef FXDIST_CORE_FIELD_SPEC_H_
#define FXDIST_CORE_FIELD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fxdist {

/// Field sizes plus device count for one file system.  Immutable after
/// construction; cheap to copy.
class FieldSpec {
 public:
  /// Validates that every size and `num_devices` is a power of two >= 1 and
  /// that there is at least one field.
  static Result<FieldSpec> Create(std::vector<std::uint64_t> field_sizes,
                                  std::uint64_t num_devices);

  /// Convenience for tests/benches: n fields of equal size.
  static Result<FieldSpec> Uniform(unsigned num_fields,
                                   std::uint64_t field_size,
                                   std::uint64_t num_devices);

  unsigned num_fields() const {
    return static_cast<unsigned>(field_sizes_.size());
  }
  std::uint64_t field_size(unsigned i) const { return field_sizes_[i]; }
  const std::vector<std::uint64_t>& field_sizes() const {
    return field_sizes_;
  }
  std::uint64_t num_devices() const { return num_devices_; }

  /// Bits needed to represent field i's values: log2(F_i).
  unsigned field_bits(unsigned i) const;
  /// log2(M).
  unsigned device_bits() const;

  /// True iff F_i < M ("small" fields are the ones needing transformation).
  bool is_small_field(unsigned i) const {
    return field_sizes_[i] < num_devices_;
  }
  /// Indices of all small fields, ascending.
  std::vector<unsigned> SmallFields() const;
  /// |{i : F_i < M}| — the paper's "L".
  unsigned NumSmallFields() const;

  /// Total bucket count, prod F_i (saturating).
  std::uint64_t TotalBuckets() const;

  /// e.g. "F={8,8,16} M=32".
  std::string ToString() const;

  bool operator==(const FieldSpec& other) const = default;

 private:
  FieldSpec(std::vector<std::uint64_t> field_sizes, std::uint64_t num_devices)
      : field_sizes_(std::move(field_sizes)), num_devices_(num_devices) {}

  std::vector<std::uint64_t> field_sizes_;
  std::uint64_t num_devices_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_FIELD_SPEC_H_
