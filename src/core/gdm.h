// GDMDistribution: Generalized Disk Modulo (DuSo82).
//
// Bucket <J_1..J_n> goes to device (a_1*J_1 + ... + a_n*J_n) mod M for a
// fixed multiplier vector a.  GDM subsumes Modulo (a_i = 1).  The paper
// stresses that good multipliers must be found by trial and error; its
// experiments use three published sets (see kGdm1/2/3 below).

#ifndef FXDIST_CORE_GDM_H_
#define FXDIST_CORE_GDM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

/// The paper's three multiplier sets (§5.2.1).
inline constexpr std::uint64_t kGdm1[6] = {2, 3, 5, 7, 11, 13};
inline constexpr std::uint64_t kGdm2[6] = {2, 5, 11, 43, 51, 57};
inline constexpr std::uint64_t kGdm3[6] = {41, 43, 47, 51, 53, 57};

class GDMDistribution final : public DistributionMethod {
 public:
  /// One multiplier per field.
  static Result<std::unique_ptr<GDMDistribution>> Make(
      const FieldSpec& spec, std::vector<std::uint64_t> multipliers);

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override;
  bool IsShiftInvariant() const override { return true; }

  /// Fast inverse mapping: fixes all unspecified fields but the last and
  /// solves the additive congruence for the final field via a
  /// precomputed residue table — ~|R(q)|/M visits instead of |R(q)|,
  /// the additive counterpart of FXDistribution's XOR solver.
  void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const override;
  bool HasFastInverseMapping() const override { return true; }

  const std::vector<std::uint64_t>& multipliers() const {
    return multipliers_;
  }

 private:
  GDMDistribution(FieldSpec spec, std::vector<std::uint64_t> multipliers);

  std::vector<std::uint64_t> multipliers_;
  // residue_values_[i][z] = values l of field i with (a_i * l) mod M == z.
  std::vector<std::vector<std::vector<std::uint64_t>>> residue_values_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_GDM_H_
