#include "core/query_key.h"

#include <algorithm>

namespace fxdist {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void FnvMix(std::uint64_t* h, const void* bytes, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(bytes);
  for (std::size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void FnvMixU64(std::uint64_t* h, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  FnvMix(h, bytes, sizeof(bytes));
}

}  // namespace

Result<QueryKey> QueryKey::Create(unsigned arity,
                                  std::vector<Specified> specified) {
  std::sort(specified.begin(), specified.end());
  QueryKey key(arity);
  for (auto& [field, token] : specified) {
    if (field >= arity) {
      return Status::InvalidArgument(
          "specified field " + std::to_string(field) +
          " out of range for arity " + std::to_string(arity));
    }
    if (!key.specified_.empty() && key.specified_.back().first == field) {
      if (key.specified_.back().second != token) {
        return Status::InvalidArgument(
            "conflicting values for field " + std::to_string(field));
      }
      continue;  // duplicate mention with the same value collapses
    }
    key.specified_.emplace_back(field, std::move(token));
  }
  key.Rehash();
  return key;
}

void QueryKey::Rehash() {
  std::uint64_t h = kFnvOffset;
  FnvMixU64(&h, arity_);
  for (const auto& [field, token] : specified_) {
    FnvMixU64(&h, field);
    // The token length participates so "ab"+"c" and "a"+"bc" in
    // adjacent fields cannot collide byte-wise.
    FnvMixU64(&h, token.size());
    FnvMix(&h, token.data(), token.size());
  }
  hash_ = h;
}

std::uint64_t QueryKey::ApproxBytes() const {
  std::uint64_t bytes = sizeof(QueryKey);
  for (const auto& [field, token] : specified_) {
    (void)field;
    bytes += sizeof(Specified) + token.capacity();
  }
  return bytes;
}

std::string QueryKey::ToString() const {
  std::string out = std::to_string(arity_);
  for (const auto& [field, token] : specified_) {
    out += '|';
    out += std::to_string(field);
    out += '=';
    out += token;
  }
  return out;
}

}  // namespace fxdist
