#include "core/field_spec.h"

#include <sstream>

#include "util/bitops.h"
#include "util/math.h"

namespace fxdist {

Result<FieldSpec> FieldSpec::Create(std::vector<std::uint64_t> field_sizes,
                                    std::uint64_t num_devices) {
  if (field_sizes.empty()) {
    return Status::InvalidArgument("a file needs at least one field");
  }
  for (std::size_t i = 0; i < field_sizes.size(); ++i) {
    if (!IsPowerOfTwo(field_sizes[i])) {
      return Status::InvalidArgument(
          "field " + std::to_string(i) + " size " +
          std::to_string(field_sizes[i]) + " is not a power of two");
    }
  }
  if (!IsPowerOfTwo(num_devices)) {
    return Status::InvalidArgument(
        "device count " + std::to_string(num_devices) +
        " is not a power of two");
  }
  return FieldSpec(std::move(field_sizes), num_devices);
}

Result<FieldSpec> FieldSpec::Uniform(unsigned num_fields,
                                     std::uint64_t field_size,
                                     std::uint64_t num_devices) {
  return Create(std::vector<std::uint64_t>(num_fields, field_size),
                num_devices);
}

unsigned FieldSpec::field_bits(unsigned i) const {
  return Log2Exact(field_sizes_[i]);
}

unsigned FieldSpec::device_bits() const { return Log2Exact(num_devices_); }

std::vector<unsigned> FieldSpec::SmallFields() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (is_small_field(i)) out.push_back(i);
  }
  return out;
}

unsigned FieldSpec::NumSmallFields() const {
  return static_cast<unsigned>(SmallFields().size());
}

std::uint64_t FieldSpec::TotalBuckets() const {
  return SaturatingProduct(field_sizes_);
}

std::string FieldSpec::ToString() const {
  std::ostringstream oss;
  oss << "F={";
  for (std::size_t i = 0; i < field_sizes_.size(); ++i) {
    if (i != 0) oss << ',';
    oss << field_sizes_[i];
  }
  oss << "} M=" << num_devices_;
  return oss.str();
}

}  // namespace fxdist
