// RandomDistribution: seeded pseudo-random bucket-to-device assignment.
//
// The natural control baseline: balanced in expectation (0-optimal-ish for
// the whole file) but with no structure for partial match queries.  Also
// deliberately *not* shift-invariant, which makes it valuable in tests:
// it exercises the exhaustive (all specified values) paths of the
// optimality checker that FX/Modulo/GDM never need.

#ifndef FXDIST_CORE_RANDOM_DIST_H_
#define FXDIST_CORE_RANDOM_DIST_H_

#include <memory>

#include "core/distribution.h"

namespace fxdist {

class RandomDistribution final : public DistributionMethod {
 public:
  RandomDistribution(FieldSpec spec, std::uint64_t seed)
      : DistributionMethod(std::move(spec)), seed_(seed) {}

  static std::unique_ptr<RandomDistribution> Make(const FieldSpec& spec,
                                                  std::uint64_t seed = 0) {
    return std::make_unique<RandomDistribution>(spec, seed);
  }

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override;
  bool IsShiftInvariant() const override { return false; }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_RANDOM_DIST_H_
