#include "core/topology.h"

namespace fxdist {

Result<ReshardPlan> BuildReshardPlan(const DeviceMap& from,
                                     const DeviceMap& to,
                                     std::uint64_t from_version) {
  const FieldSpec& from_spec = from.spec();
  const FieldSpec& to_spec = to.spec();
  if (from_spec.num_fields() != to_spec.num_fields()) {
    return Status::InvalidArgument("reshard plan: field arity mismatch");
  }
  for (unsigned i = 0; i < from_spec.num_fields(); ++i) {
    if (from_spec.field_size(i) != to_spec.field_size(i)) {
      return Status::InvalidArgument(
          "reshard plan: field " + std::to_string(i) +
          " size mismatch (bucket spaces must be identical)");
    }
  }
  ReshardPlan plan;
  plan.from.version = from_version;
  plan.from.num_devices = from_spec.num_devices();
  plan.from.scheme = from.method().name();
  plan.to.version = from_version + 1;
  plan.to.num_devices = to_spec.num_devices();
  plan.to.scheme = to.method().name();

  const std::uint64_t total = from_spec.TotalBuckets();
  for (std::uint64_t linear = 0; linear < total; ++linear) {
    const std::uint64_t old_device = from.DeviceOfLinear(linear);
    const std::uint64_t new_device = to.DeviceOfLinear(linear);
    if (old_device == new_device) {
      ++plan.unmoved;
    } else {
      plan.moves.push_back(BucketMove{linear, old_device, new_device});
    }
  }
  return plan;
}

Status VersionedTopologyHandle::Publish(TopologyVersionInfo next) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (next.version <= info_.version) {
    return Status::InvalidArgument(
        "topology version must advance: " + std::to_string(next.version) +
        " <= " + std::to_string(info_.version));
  }
  info_ = std::move(next);
  version_.store(info_.version, std::memory_order_release);
  return Status::OK();
}

}  // namespace fxdist
