#include "core/device_map.h"

namespace fxdist {

DeviceMap::DeviceMap(const DistributionMethod& method,
                     std::uint64_t max_entries)
    : method_(&method), spec_(method.spec()) {
  const unsigned n = spec_.num_fields();
  shift_.resize(n);
  mask_.resize(n);
  unsigned shift = 0;
  for (unsigned i = n; i > 0;) {
    --i;
    shift_[i] = shift;
    mask_[i] = spec_.field_size(i) - 1;
    shift += spec_.field_bits(i);
  }

  const std::uint64_t total = spec_.TotalBuckets();
  if (total > max_entries) return;  // fallback mode
  table_.resize(total);
  buckets_on_device_.resize(spec_.num_devices());
  std::uint64_t linear = 0;
  ForEachBucket(spec_, [&](const BucketId& bucket) {
    const auto device = static_cast<std::uint32_t>(method.DeviceOf(bucket));
    table_[linear] = device;
    buckets_on_device_[device].push_back(linear);
    ++linear;
    return true;
  });
}

void DeviceMap::DeviceOfMany(const std::uint64_t* linear_ids,
                             std::size_t count, std::uint32_t* out) const {
  if (precomputed()) {
    for (std::size_t i = 0; i < count; ++i) out[i] = table_[linear_ids[i]];
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint32_t>(
        method_->DeviceOf(BucketFromLinear(spec_, linear_ids[i])));
  }
}

std::vector<std::uint64_t> DeviceMap::ResponseCounts(
    const PartialMatchQuery& query) const {
  std::vector<std::uint64_t> counts(spec_.num_devices(), 0);
  if (precomputed()) {
    ForEachQualifiedLinear(spec_, query, [&](std::uint64_t linear) {
      ++counts[table_[linear]];
      return true;
    });
  } else {
    ForEachQualifiedBucket(spec_, query, [&](const BucketId& bucket) {
      ++counts[method_->DeviceOf(bucket)];
      return true;
    });
  }
  return counts;
}

bool DeviceMap::LinearMatches(const PartialMatchQuery& query,
                              std::uint64_t linear) const {
  for (unsigned i = 0; i < spec_.num_fields(); ++i) {
    if (query.is_specified(i) &&
        ((linear >> shift_[i]) & mask_[i]) != query.value(i)) {
      return false;
    }
  }
  return true;
}

void DeviceMap::ForEachQualifiedLinearOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(std::uint64_t)>& fn) const {
  if (!precomputed()) {
    method_->ForEachQualifiedBucketOnDevice(
        query, device, [&](const BucketId& bucket) {
          return fn(LinearIndex(spec_, bucket));
        });
    return;
  }
  // All strategies visit in ascending linear order, so picking the
  // cheapest by visit count is result-preserving.
  const std::uint64_t qualified = query.NumQualifiedBuckets(spec_);
  const std::uint64_t on_device = buckets_on_device_[device].size();
  if (method_->HasFastInverseMapping() &&
      qualified / spec_.num_devices() + 1 <= on_device) {
    method_->ForEachQualifiedBucketOnDevice(
        query, device, [&](const BucketId& bucket) {
          return fn(LinearIndex(spec_, bucket));
        });
    return;
  }
  if (on_device <= qualified) {
    for (std::uint64_t linear : buckets_on_device_[device]) {
      if (LinearMatches(query, linear) && !fn(linear)) return;
    }
    return;
  }
  ForEachQualifiedLinear(spec_, query, [&](std::uint64_t linear) {
    if (table_[linear] == device) return fn(linear);
    return true;
  });
}

void DeviceMap::ForEachQualifiedBucketOnDevice(
    const PartialMatchQuery& query, std::uint64_t device,
    const std::function<bool(const BucketId&)>& fn) const {
  if (!precomputed()) {
    method_->ForEachQualifiedBucketOnDevice(query, device, fn);
    return;
  }
  // Decode linear ids into one scratch bucket (hits are ~1/M of visits).
  BucketId scratch(spec_.num_fields());
  ForEachQualifiedLinearOnDevice(query, device, [&](std::uint64_t linear) {
    for (unsigned i = 0; i < spec_.num_fields(); ++i) {
      scratch[i] = (linear >> shift_[i]) & mask_[i];
    }
    return fn(scratch);
  });
}

}  // namespace fxdist
