// Field transformation functions (paper §4.1) and transformation planning.
//
// Basic FX distribution XORs the raw field values.  That is strict optimal
// whenever some unspecified field has F >= M (Theorems 1-2), but fails for
// queries whose unspecified fields are all "small" (F < M): the raw values
// only occupy the low bits and cannot reach all M devices.  The paper's fix
// is to pass each small field through an injective map f_i -> Z_M before
// XOR-folding.  Four function families are defined:
//
//   I(l)   = l                                    (identity)
//   U(l)   = l * d,              d  = M / F       (stretch: equally spaced)
//   IU1(l) = l ^ (l * d)                          (identity + stretch)
//   IU2(l) = l ^ (l * d1) ^ (l * d2),
//            d1 = M / F, d2 = d1 / F  if F^2 < M, else d2 = 0
//
// With F and M powers of two, every multiplication is a left shift.  When
// F^2 >= M, IU2 degenerates to IU1 by construction.
//
// A TransformPlan assigns one function per field (identity for fields with
// F >= M, per the paper's Extended FX definition) and is what
// FXDistribution executes.

#ifndef FXDIST_CORE_TRANSFORM_H_
#define FXDIST_CORE_TRANSFORM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// The four transformation families of §4.1.
enum class TransformKind { kIdentity, kU, kIU1, kIU2 };

const char* TransformKindToString(TransformKind kind);

/// Whether two *methods* (families) count as "different" for the optimality
/// conditions of §4.2.  IU1 and IU2 are distinct families, but the paper
/// notes the IU1+IU2 combination does not qualify as "different methods"
/// in conditions (3), (4)-a and (5)-a.
bool AreDifferentMethods(TransformKind a, TransformKind b);

/// One concrete transformation: a family instantiated for a (F, M) pair.
///
/// Apply() is branch-free (shift/XOR only), which is what §5.2.2's CPU cost
/// argument relies on.
class FieldTransform {
 public:
  /// Validates: F, M powers of two; for non-identity kinds, F < M (the
  /// paper only defines U/IU1/IU2 for proper subsets of Z_M).
  static Result<FieldTransform> Create(TransformKind kind,
                                       std::uint64_t field_size,
                                       std::uint64_t num_devices);

  /// Identity transform usable for any field.
  static FieldTransform Identity(std::uint64_t field_size,
                                 std::uint64_t num_devices);

  TransformKind kind() const { return kind_; }
  std::uint64_t field_size() const { return field_size_; }
  std::uint64_t num_devices() const { return num_devices_; }

  /// The multiplier d (d1 for IU2); 0 for identity.
  std::uint64_t d1() const { return d1_; }
  /// IU2's second multiplier (0 unless kind==kIU2 and F^2 < M).
  std::uint64_t d2() const { return d2_; }

  /// X(l).  `l` must be in [0, F).
  std::uint64_t Apply(std::uint64_t l) const {
    switch (kind_) {
      case TransformKind::kIdentity:
        return l;
      case TransformKind::kU:
        return l << shift1_;
      case TransformKind::kIU1:
        return l ^ (l << shift1_);
      case TransformKind::kIU2:
        return l ^ (l << shift1_) ^ (d2_ == 0 ? 0 : (l << shift2_));
    }
    return l;
  }

  /// The image X(f) = {X(0), ..., X(F-1)}.
  std::vector<std::uint64_t> Image() const;

  /// e.g. "IU1^{16,8}".
  std::string ToString() const;

 private:
  FieldTransform(TransformKind kind, std::uint64_t field_size,
                 std::uint64_t num_devices);

  TransformKind kind_;
  std::uint64_t field_size_;
  std::uint64_t num_devices_;
  std::uint64_t d1_ = 0;
  std::uint64_t d2_ = 0;
  unsigned shift1_ = 0;
  unsigned shift2_ = 0;
};

/// Which family to use for the third slot when planning: the paper's
/// Figures 1-2 / Tables 7-8 use IU1, Figures 3-4 / Table 9 use IU2.
enum class PlanFamily { kIU1, kIU2 };

/// A per-field transformation assignment for a FieldSpec.
class TransformPlan {
 public:
  /// All-identity plan: Extended FX degenerates to Basic FX.
  static TransformPlan Basic(const FieldSpec& spec);

  /// Explicit per-field kinds.  Fields with F >= M must be kIdentity (the
  /// Extended FX definition forces the identity there).
  static Result<TransformPlan> Create(const FieldSpec& spec,
                                      std::vector<TransformKind> kinds);

  /// The automatic planner.
  ///
  /// Small fields receive methods round-robin from [I, U, IU1-or-IU2] in
  /// field order — matching the paper's experimental setup (fields 1 & 4 ->
  /// I, 2 & 5 -> U, 3 & 6 -> IU1/IU2).  When at most three fields are small
  /// the assignment instead follows Theorem 9's recipe for guaranteed
  /// perfect optimality: order the small fields by size F_i >= F_k >= F_j
  /// and apply I(f_i), IU2(f_k), U(f_j).  The IU slot is always IU2 on
  /// that path regardless of `family` — Theorem 9's guarantee needs IU2
  /// (IU2 collapses to IU1 by itself whenever F^2 >= M).
  static TransformPlan Plan(const FieldSpec& spec,
                            PlanFamily family = PlanFamily::kIU2);

  const FieldSpec& spec() const { return spec_; }
  const FieldTransform& transform(unsigned field) const {
    return transforms_[field];
  }
  TransformKind kind(unsigned field) const {
    return transforms_[field].kind();
  }
  std::vector<TransformKind> kinds() const;

  /// e.g. "[I,U,IU1]".
  std::string ToString() const;

 private:
  TransformPlan(FieldSpec spec, std::vector<FieldTransform> transforms)
      : spec_(std::move(spec)), transforms_(std::move(transforms)) {}

  FieldSpec spec_;
  std::vector<FieldTransform> transforms_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_TRANSFORM_H_
