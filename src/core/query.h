// PartialMatchQuery: a query that fixes some hashed field values and
// wildcards the rest.  The qualified buckets R(q) are the cartesian product
// of the unspecified field domains with the specified values pinned.

#ifndef FXDIST_CORE_QUERY_H_
#define FXDIST_CORE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/bucket.h"
#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// A partial match query over hashed field values.
///
/// Construction is via the factories, which validate specified values
/// against the FieldSpec.  The query does not own the spec; callers pass it
/// to the accessors that need domain information.
class PartialMatchQuery {
 public:
  /// All fields unspecified ("retrieve whole file").
  explicit PartialMatchQuery(unsigned num_fields)
      : values_(num_fields, std::nullopt) {}

  /// Builds a query from per-field optional values.
  static Result<PartialMatchQuery> Create(
      const FieldSpec& spec,
      std::vector<std::optional<std::uint64_t>> values);

  /// Builds the query whose *unspecified* fields are exactly the set bits of
  /// `unspecified_mask` (bit i = field i); specified fields take the value
  /// from `specified`, which must be a full bucket (unspecified positions
  /// are ignored).
  static Result<PartialMatchQuery> FromUnspecifiedMask(
      const FieldSpec& spec, std::uint64_t unspecified_mask,
      const BucketId& specified);

  /// As above with all specified values 0 — the canonical representative of
  /// a query class under shift invariance.
  static Result<PartialMatchQuery> FromUnspecifiedMaskZero(
      const FieldSpec& spec, std::uint64_t unspecified_mask);

  unsigned num_fields() const {
    return static_cast<unsigned>(values_.size());
  }
  bool is_specified(unsigned i) const { return values_[i].has_value(); }
  /// Specified value of field i; callers must check is_specified first.
  std::uint64_t value(unsigned i) const { return *values_[i]; }

  /// Marks field i specified with `v` (validated by Create paths only).
  void Specify(unsigned i, std::uint64_t v) { values_[i] = v; }
  void Unspecify(unsigned i) { values_[i] = std::nullopt; }

  unsigned NumUnspecified() const;
  std::vector<unsigned> UnspecifiedFields() const;
  std::vector<unsigned> SpecifiedFields() const;
  /// Bitmask of unspecified fields (bit i = field i unspecified).
  std::uint64_t UnspecifiedMask() const;

  /// |R(q)| = product of unspecified field sizes.
  std::uint64_t NumQualifiedBuckets(const FieldSpec& spec) const;

  /// True iff `bucket` satisfies the query.
  bool Matches(const BucketId& bucket) const;

  /// e.g. "<*, 3, *, 0>".
  std::string ToString() const;

  bool operator==(const PartialMatchQuery& other) const = default;

 private:
  std::vector<std::optional<std::uint64_t>> values_;
};

/// Invokes `fn(const BucketId&)` for every bucket of R(q), odometer order
/// over the unspecified fields (last unspecified field fastest).  `fn`
/// returning false stops early.
template <typename Fn>
void ForEachQualifiedBucket(const FieldSpec& spec,
                            const PartialMatchQuery& query, Fn&& fn) {
  const unsigned n = spec.num_fields();
  BucketId bucket(n, 0);
  std::vector<unsigned> free_fields;
  for (unsigned i = 0; i < n; ++i) {
    if (query.is_specified(i)) {
      bucket[i] = query.value(i);
    } else {
      free_fields.push_back(i);
    }
  }
  while (true) {
    if (!fn(static_cast<const BucketId&>(bucket))) return;
    std::size_t i = free_fields.size();
    while (i > 0) {
      --i;
      const unsigned f = free_fields[i];
      if (++bucket[f] < spec.field_size(f)) break;
      bucket[f] = 0;
      if (i == 0) return;
    }
    if (free_fields.empty()) return;
  }
}

}  // namespace fxdist

#endif  // FXDIST_CORE_QUERY_H_
