// TableDistribution: an explicit bucket→device table as a first-class
// DistributionMethod.
//
// The analysis-side scheme search (analysis/scheme_search) produces
// allocations that no closed-form method generates; to serve them, ship
// the table itself.  The name() round-trips through the registry
// ("table:<csv>" with one device id per linear bucket), so searched
// allocations flow through blueprints, persistence, and the wire
// handshake exactly like FX/Modulo/GDM.  Intended for small bucket
// spaces (the search is exhaustive anyway); the name grows linearly
// with the bucket count.

#ifndef FXDIST_CORE_TABLE_DIST_H_
#define FXDIST_CORE_TABLE_DIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

class TableDistribution : public DistributionMethod {
 public:
  /// Validates `table` (one entry per linear bucket, each < M).
  static Result<std::unique_ptr<TableDistribution>> Make(
      const FieldSpec& spec, std::vector<std::uint32_t> table);

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override;

  const std::vector<std::uint32_t>& table() const { return table_; }

 private:
  TableDistribution(FieldSpec spec, std::vector<std::uint32_t> table)
      : DistributionMethod(std::move(spec)), table_(std::move(table)) {}

  std::vector<std::uint32_t> table_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_TABLE_DIST_H_
