// BucketId and bucket-space iteration.
//
// A bucket is one point of the cartesian bucket space f_1 x ... x f_n.
// Buckets also have a canonical *linear index* (row-major, field 0 most
// significant) used by the simulator's storage maps.

#ifndef FXDIST_CORE_BUCKET_H_
#define FXDIST_CORE_BUCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/field_spec.h"
#include "util/status.h"

namespace fxdist {

/// One hashed field value per field.
using BucketId = std::vector<std::uint64_t>;

/// True iff `bucket` has one value per field, each within its field domain.
bool IsValidBucket(const FieldSpec& spec, const BucketId& bucket);

/// Row-major linear index of `bucket` (field 0 most significant).
std::uint64_t LinearIndex(const FieldSpec& spec, const BucketId& bucket);

/// Inverse of LinearIndex.
BucketId BucketFromLinear(const FieldSpec& spec, std::uint64_t index);

/// "<001,110>"-style rendering using the paper's binary field notation.
std::string BucketToString(const FieldSpec& spec, const BucketId& bucket);

/// Invokes `fn(const BucketId&)` for every bucket in the space, in linear
/// index order.  `fn` returning false stops early.
template <typename Fn>
void ForEachBucket(const FieldSpec& spec, Fn&& fn) {
  const unsigned n = spec.num_fields();
  BucketId bucket(n, 0);
  while (true) {
    if (!fn(static_cast<const BucketId&>(bucket))) return;
    // Odometer increment, last field fastest.
    unsigned i = n;
    while (i > 0) {
      --i;
      if (++bucket[i] < spec.field_size(i)) break;
      bucket[i] = 0;
      if (i == 0) return;
    }
  }
}

}  // namespace fxdist

#endif  // FXDIST_CORE_BUCKET_H_
