// QueryKey: the canonical, hashable identity of a partial-match query.
//
// Several layers need to answer "are these two queries the same query?"
// cheaply and consistently: the engine's duplicate collapse executes
// value-identical batch neighbours once, and the frontend's result cache
// keys entries by query.  Before this header each did its own ad-hoc
// comparison; a cache keyed differently from the dedup would be unsound
// (a "hit" could return another query's rows).  QueryKey is the single
// canonical form both share:
//
//  * positional arity plus the *set* of specified fields, each reduced
//    to an exact, type-tagged value token (the value_codec encoding:
//    "i:42", "d:<hex bits>", "s:<len>:<bytes>") — tokens are injective,
//    so key equality implies the queries filter records identically;
//  * field order independent: specified fields are kept sorted by field
//    index, so any enumeration order of the same (field, value) set
//    canonicalizes to the same key, and duplicate mentions of a field
//    with the same value collapse (conflicting mentions are rejected —
//    such a "query" matches nothing and has no canonical form here);
//  * a precomputed FNV-1a-64 hash, so hash-map dedup and sharded caches
//    index keys without re-walking the tokens.
//
// The token form deliberately lives below the value layer: core does not
// know FieldValue (hashing depends on core, not vice versa), so this
// class works on opaque tokens and hashing/query_key.h provides the
// ValueQuery -> QueryKey canonicalization.

#ifndef FXDIST_CORE_QUERY_KEY_H_
#define FXDIST_CORE_QUERY_KEY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fxdist {

class QueryKey {
 public:
  /// One specified field: (field index, exact value token).
  using Specified = std::pair<unsigned, std::string>;

  /// All-wildcard key of the given arity.
  explicit QueryKey(unsigned arity = 0) : arity_(arity) { Rehash(); }

  /// Canonicalizes `specified` (any order, duplicates allowed when they
  /// agree).  Rejects a field index >= arity and conflicting duplicate
  /// mentions of one field — a self-contradictory query matches nothing
  /// and must not silently alias another key.
  static Result<QueryKey> Create(unsigned arity,
                                 std::vector<Specified> specified);

  unsigned arity() const { return arity_; }
  /// Specified fields in ascending field order, duplicates collapsed.
  const std::vector<Specified>& specified() const { return specified_; }
  bool all_wildcard() const { return specified_.empty(); }
  std::uint64_t hash() const { return hash_; }

  /// Heap bytes this key costs a cache (tokens + vector slots).
  std::uint64_t ApproxBytes() const;

  /// e.g. "3|1=i:7|2=s:1:x" — diagnostics only, not a wire format.
  std::string ToString() const;

  friend bool operator==(const QueryKey& a, const QueryKey& b) {
    return a.arity_ == b.arity_ && a.specified_ == b.specified_;
  }

 private:
  void Rehash();

  unsigned arity_ = 0;
  std::vector<Specified> specified_;
  std::uint64_t hash_ = 0;
};

/// Hasher for unordered containers (the precomputed FNV value).
struct QueryKeyHash {
  std::size_t operator()(const QueryKey& key) const {
    return static_cast<std::size_t>(key.hash());
  }
};

}  // namespace fxdist

#endif  // FXDIST_CORE_QUERY_KEY_H_
