#include "core/bucket.h"

#include <algorithm>
#include <sstream>

#include "util/bitops.h"

namespace fxdist {

bool IsValidBucket(const FieldSpec& spec, const BucketId& bucket) {
  if (bucket.size() != spec.num_fields()) return false;
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (bucket[i] >= spec.field_size(i)) return false;
  }
  return true;
}

std::uint64_t LinearIndex(const FieldSpec& spec, const BucketId& bucket) {
  FXDIST_DCHECK(IsValidBucket(spec, bucket));
  std::uint64_t index = 0;
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    index = index * spec.field_size(i) + bucket[i];
  }
  return index;
}

BucketId BucketFromLinear(const FieldSpec& spec, std::uint64_t index) {
  const unsigned n = spec.num_fields();
  BucketId bucket(n);
  for (unsigned i = n; i > 0; --i) {
    const std::uint64_t size = spec.field_size(i - 1);
    bucket[i - 1] = index % size;
    index /= size;
  }
  FXDIST_DCHECK(index == 0);
  return bucket;
}

std::string BucketToString(const FieldSpec& spec, const BucketId& bucket) {
  std::ostringstream oss;
  oss << '<';
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (i != 0) oss << ',';
    oss << BitString(bucket[i], std::max(1u, spec.field_bits(i)));
  }
  oss << '>';
  return oss.str();
}

}  // namespace fxdist
