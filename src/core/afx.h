// AdditiveFoldDistribution: the "FX without the X" ablation.
//
// Identical to Extended FX — same field transformations, same planner —
// except the transformed values are *summed* (mod M) instead of
// XOR-folded:
//
//     device(<J1..Jn>) = ( X1(J1) + ... + Xn(Jn) ) mod M
//
// This is not from the paper; it exists to isolate the paper's central
// algebraic insight.  Theorems 1-9 all stand on Lemma 1.1
// (`Z_M [+] k = Z_M` — XOR by any constant permutes the device set) *and*
// Lemma 4.1 (XOR of an aligned interval stays an aligned interval).
// Addition shares the first property (rotation) but not the second:
// interval images wrap and overlap, so several of the transformation
// optimality arguments break.  bench/ablation_fold_operator measures how
// much that costs.

#ifndef FXDIST_CORE_AFX_H_
#define FXDIST_CORE_AFX_H_

#include <memory>
#include <string>

#include "core/distribution.h"
#include "core/transform.h"

namespace fxdist {

class AdditiveFoldDistribution final : public DistributionMethod {
 public:
  static std::unique_ptr<AdditiveFoldDistribution> Basic(
      const FieldSpec& spec);
  static std::unique_ptr<AdditiveFoldDistribution> Planned(
      const FieldSpec& spec, PlanFamily family = PlanFamily::kIU2);
  static std::unique_ptr<AdditiveFoldDistribution> WithPlan(
      TransformPlan plan);

  std::uint64_t DeviceOf(const BucketId& bucket) const override;
  std::string name() const override;
  /// Additive constant from specified fields is a rotation mod M.
  bool IsShiftInvariant() const override { return true; }

  const TransformPlan& plan() const { return plan_; }

  /// Histogram of field i's transformed values mod M (for the cyclic
  /// convolution closed form).
  std::vector<std::uint64_t> ResidueHistogram(unsigned field) const;

 private:
  explicit AdditiveFoldDistribution(TransformPlan plan);

  TransformPlan plan_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_AFX_H_
