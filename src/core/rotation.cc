#include "core/rotation.h"

namespace fxdist {

Result<std::unique_ptr<RotatedDistribution>> RotatedDistribution::Make(
    std::unique_ptr<DistributionMethod> inner, std::uint64_t offset) {
  if (inner == nullptr) {
    return Status::InvalidArgument("rotation needs an inner method");
  }
  const std::uint64_t m = inner->spec().num_devices();
  return std::unique_ptr<RotatedDistribution>(
      new RotatedDistribution(std::move(inner), offset % m));
}

std::string RotatedDistribution::name() const {
  return "Rot+" + std::to_string(offset_) + "(" + inner_->name() + ")";
}

}  // namespace fxdist
