#include "core/table_dist.h"

#include <sstream>

#include "core/bucket.h"

namespace fxdist {

Result<std::unique_ptr<TableDistribution>> TableDistribution::Make(
    const FieldSpec& spec, std::vector<std::uint32_t> table) {
  if (table.size() != spec.TotalBuckets()) {
    return Status::InvalidArgument(
        "table size " + std::to_string(table.size()) + " != bucket count " +
        std::to_string(spec.TotalBuckets()));
  }
  for (std::uint32_t device : table) {
    if (device >= spec.num_devices()) {
      return Status::InvalidArgument("table entry " + std::to_string(device) +
                                     " out of range for M=" +
                                     std::to_string(spec.num_devices()));
    }
  }
  return std::unique_ptr<TableDistribution>(
      new TableDistribution(spec, std::move(table)));
}

std::uint64_t TableDistribution::DeviceOf(const BucketId& bucket) const {
  return table_[LinearIndex(spec_, bucket)];
}

std::string TableDistribution::name() const {
  std::ostringstream out;
  out << "table:";
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (i != 0) out << ',';
    out << table_[i];
  }
  return out.str();
}

}  // namespace fxdist
