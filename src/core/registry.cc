#include "core/registry.h"

#include <cstdlib>
#include <sstream>

#include "core/afx.h"
#include "core/fx.h"
#include "core/gdm.h"
#include "core/modulo.h"
#include "core/random_dist.h"
#include "core/rotation.h"
#include "core/spanning.h"
#include "core/table_dist.h"

namespace fxdist {

namespace {

Result<std::vector<std::uint64_t>> ParseMultiplierList(
    const std::string& list) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) {
      return Status::InvalidArgument("empty multiplier in list: " + list);
    }
    char* end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad multiplier: " + token);
    }
    out.push_back(v);
  }
  if (out.empty()) {
    return Status::InvalidArgument("no multipliers in: " + list);
  }
  return out;
}

Result<std::vector<TransformKind>> ParsePlanList(const std::string& list,
                                                 unsigned num_fields) {
  // Accepts "[I,U,IU1]" or "I,U,IU1".
  std::string body = list;
  if (!body.empty() && body.front() == '[') body.erase(body.begin());
  if (!body.empty() && body.back() == ']') body.pop_back();
  std::vector<TransformKind> kinds;
  std::stringstream ss(body);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "I") {
      kinds.push_back(TransformKind::kIdentity);
    } else if (token == "U") {
      kinds.push_back(TransformKind::kU);
    } else if (token == "IU1") {
      kinds.push_back(TransformKind::kIU1);
    } else if (token == "IU2") {
      kinds.push_back(TransformKind::kIU2);
    } else {
      return Status::InvalidArgument("unknown transform kind: " + token);
    }
  }
  if (kinds.size() != num_fields) {
    return Status::InvalidArgument("plan arity mismatch: " + list);
  }
  return kinds;
}

Result<std::unique_ptr<DistributionMethod>> MakePaperGdm(
    const FieldSpec& spec, const std::uint64_t (&set)[6]) {
  std::vector<std::uint64_t> mult(spec.num_fields());
  for (unsigned i = 0; i < spec.num_fields(); ++i) mult[i] = set[i % 6];
  auto gdm = GDMDistribution::Make(spec, std::move(mult));
  FXDIST_RETURN_NOT_OK(gdm.status());
  return std::unique_ptr<DistributionMethod>(std::move(*gdm));
}

}  // namespace

Result<std::unique_ptr<DistributionMethod>> MakeDistribution(
    const FieldSpec& spec, const std::string& spec_string) {
  if (spec_string == "fx-basic") {
    return std::unique_ptr<DistributionMethod>(FXDistribution::Basic(spec));
  }
  if (spec_string == "fx-iu1") {
    return std::unique_ptr<DistributionMethod>(
        FXDistribution::Planned(spec, PlanFamily::kIU1));
  }
  if (spec_string == "fx-iu2" || spec_string == "fx") {
    return std::unique_ptr<DistributionMethod>(
        FXDistribution::Planned(spec, PlanFamily::kIU2));
  }
  if (spec_string.rfind("fx:", 0) == 0) {
    auto kinds = ParsePlanList(spec_string.substr(3), spec.num_fields());
    FXDIST_RETURN_NOT_OK(kinds.status());
    auto plan = TransformPlan::Create(spec, *std::move(kinds));
    FXDIST_RETURN_NOT_OK(plan.status());
    return std::unique_ptr<DistributionMethod>(
        FXDistribution::WithPlan(*std::move(plan)));
  }
  if (spec_string == "afx-basic") {
    return std::unique_ptr<DistributionMethod>(
        AdditiveFoldDistribution::Basic(spec));
  }
  if (spec_string == "afx-iu1") {
    return std::unique_ptr<DistributionMethod>(
        AdditiveFoldDistribution::Planned(spec, PlanFamily::kIU1));
  }
  if (spec_string == "afx-iu2" || spec_string == "afx") {
    return std::unique_ptr<DistributionMethod>(
        AdditiveFoldDistribution::Planned(spec, PlanFamily::kIU2));
  }
  if (spec_string == "modulo") {
    return std::unique_ptr<DistributionMethod>(
        ModuloDistribution::Make(spec));
  }
  if (spec_string == "random") {
    return std::unique_ptr<DistributionMethod>(
        RandomDistribution::Make(spec));
  }
  if (spec_string.rfind("random:", 0) == 0) {
    char* end = nullptr;
    const unsigned long long seed =
        std::strtoull(spec_string.c_str() + 7, &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad random seed: " + spec_string);
    }
    return std::unique_ptr<DistributionMethod>(
        RandomDistribution::Make(spec, seed));
  }
  if (spec_string == "spanning") {
    auto sp = SpanningPathDistribution::Make(spec);
    FXDIST_RETURN_NOT_OK(sp.status());
    return std::unique_ptr<DistributionMethod>(std::move(*sp));
  }
  if (spec_string == "spanning-mst") {
    auto sp = SpanningPathDistribution::Make(
        spec, SpanningPathDistribution::Variant::kMst);
    FXDIST_RETURN_NOT_OK(sp.status());
    return std::unique_ptr<DistributionMethod>(std::move(*sp));
  }
  if (spec_string.rfind("rot", 0) == 0) {
    char* end = nullptr;
    const unsigned long long offset =
        std::strtoull(spec_string.c_str() + 3, &end, 10);
    if (end == nullptr || end == spec_string.c_str() + 3 || *end != ':') {
      return Status::InvalidArgument("bad rotation spec (want rot<k>:<inner>): " +
                                     spec_string);
    }
    auto inner = MakeDistribution(spec, std::string(end + 1));
    FXDIST_RETURN_NOT_OK(inner.status());
    auto rot = RotatedDistribution::Make(*std::move(inner), offset);
    FXDIST_RETURN_NOT_OK(rot.status());
    return std::unique_ptr<DistributionMethod>(std::move(*rot));
  }
  if (spec_string.rfind("table:", 0) == 0) {
    // Explicit bucket→device table, one device id per linear bucket —
    // how searched allocations (analysis/scheme_search) round-trip
    // through blueprints and persistence.
    auto entries = ParseMultiplierList(spec_string.substr(6));
    FXDIST_RETURN_NOT_OK(entries.status());
    std::vector<std::uint32_t> table;
    table.reserve(entries->size());
    for (std::uint64_t v : *entries) {
      if (v >= spec.num_devices()) {
        return Status::InvalidArgument("table entry " + std::to_string(v) +
                                       " out of range for M=" +
                                       std::to_string(spec.num_devices()));
      }
      table.push_back(static_cast<std::uint32_t>(v));
    }
    auto dist = TableDistribution::Make(spec, std::move(table));
    FXDIST_RETURN_NOT_OK(dist.status());
    return std::unique_ptr<DistributionMethod>(std::move(*dist));
  }
  if (spec_string == "gdm1") return MakePaperGdm(spec, kGdm1);
  if (spec_string == "gdm2") return MakePaperGdm(spec, kGdm2);
  if (spec_string == "gdm3") return MakePaperGdm(spec, kGdm3);
  if (spec_string.rfind("gdm:", 0) == 0) {
    auto mult = ParseMultiplierList(spec_string.substr(4));
    FXDIST_RETURN_NOT_OK(mult.status());
    if (mult->size() != spec.num_fields()) {
      return Status::InvalidArgument("gdm multiplier arity mismatch");
    }
    auto gdm = GDMDistribution::Make(spec, *std::move(mult));
    FXDIST_RETURN_NOT_OK(gdm.status());
    return std::unique_ptr<DistributionMethod>(std::move(*gdm));
  }
  return Status::InvalidArgument("unknown distribution: " + spec_string);
}

std::vector<std::string> KnownDistributionNames() {
  return {"fx-basic", "fx-iu1",  "fx-iu2", "afx-basic", "afx-iu1",
          "afx-iu2",  "modulo",  "gdm1",   "gdm2",      "gdm3",
          "random"};
}

bool SplitSpecPrefix(const std::string& spec_string, std::string* prefix,
                     std::string* rest) {
  const std::size_t colon = spec_string.find(':');
  if (colon == std::string::npos) return false;
  *prefix = spec_string.substr(0, colon);
  *rest = spec_string.substr(colon + 1);
  return true;
}

}  // namespace fxdist
