#include "core/query.h"

#include <sstream>

namespace fxdist {

Result<PartialMatchQuery> PartialMatchQuery::Create(
    const FieldSpec& spec, std::vector<std::optional<std::uint64_t>> values) {
  if (values.size() != spec.num_fields()) {
    return Status::InvalidArgument(
        "query has " + std::to_string(values.size()) + " fields, spec has " +
        std::to_string(spec.num_fields()));
  }
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (values[i].has_value() && *values[i] >= spec.field_size(i)) {
      return Status::OutOfRange(
          "field " + std::to_string(i) + " value " +
          std::to_string(*values[i]) + " >= field size " +
          std::to_string(spec.field_size(i)));
    }
  }
  PartialMatchQuery q(spec.num_fields());
  q.values_ = std::move(values);
  return q;
}

Result<PartialMatchQuery> PartialMatchQuery::FromUnspecifiedMask(
    const FieldSpec& spec, std::uint64_t unspecified_mask,
    const BucketId& specified) {
  const unsigned n = spec.num_fields();
  if (n < 64 && (unspecified_mask >> n) != 0) {
    return Status::InvalidArgument("unspecified mask has bits beyond field " +
                                   std::to_string(n - 1));
  }
  if (specified.size() != n) {
    return Status::InvalidArgument("specified bucket arity mismatch");
  }
  std::vector<std::optional<std::uint64_t>> values(n);
  for (unsigned i = 0; i < n; ++i) {
    if (((unspecified_mask >> i) & 1u) == 0) {
      values[i] = specified[i];
    }
  }
  return Create(spec, std::move(values));
}

Result<PartialMatchQuery> PartialMatchQuery::FromUnspecifiedMaskZero(
    const FieldSpec& spec, std::uint64_t unspecified_mask) {
  return FromUnspecifiedMask(spec, unspecified_mask,
                             BucketId(spec.num_fields(), 0));
}

unsigned PartialMatchQuery::NumUnspecified() const {
  unsigned count = 0;
  for (const auto& v : values_) {
    if (!v.has_value()) ++count;
  }
  return count;
}

std::vector<unsigned> PartialMatchQuery::UnspecifiedFields() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (!values_[i].has_value()) out.push_back(i);
  }
  return out;
}

std::vector<unsigned> PartialMatchQuery::SpecifiedFields() const {
  std::vector<unsigned> out;
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (values_[i].has_value()) out.push_back(i);
  }
  return out;
}

std::uint64_t PartialMatchQuery::UnspecifiedMask() const {
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (!values_[i].has_value()) mask |= (std::uint64_t{1} << i);
  }
  return mask;
}

std::uint64_t PartialMatchQuery::NumQualifiedBuckets(
    const FieldSpec& spec) const {
  std::uint64_t count = 1;
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (!values_[i].has_value()) count *= spec.field_size(i);
  }
  return count;
}

bool PartialMatchQuery::Matches(const BucketId& bucket) const {
  FXDIST_DCHECK(bucket.size() == values_.size());
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (values_[i].has_value() && bucket[i] != *values_[i]) return false;
  }
  return true;
}

std::string PartialMatchQuery::ToString() const {
  std::ostringstream oss;
  oss << '<';
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (i != 0) oss << ", ";
    if (values_[i].has_value()) {
      oss << *values_[i];
    } else {
      oss << '*';
    }
  }
  oss << '>';
  return oss.str();
}

}  // namespace fxdist
