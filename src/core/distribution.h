// DistributionMethod: the common interface of all bucket-to-device
// allocation strategies (FX, Modulo, GDM, ...).

#ifndef FXDIST_CORE_DISTRIBUTION_H_
#define FXDIST_CORE_DISTRIBUTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/bucket.h"
#include "core/field_spec.h"
#include "core/query.h"

namespace fxdist {

/// Maps every bucket of a FieldSpec's bucket space to a device in
/// [0, M).  Implementations are immutable and thread-safe after
/// construction.
class DistributionMethod {
 public:
  explicit DistributionMethod(FieldSpec spec) : spec_(std::move(spec)) {}
  virtual ~DistributionMethod() = default;

  DistributionMethod(const DistributionMethod&) = delete;
  DistributionMethod& operator=(const DistributionMethod&) = delete;

  const FieldSpec& spec() const { return spec_; }

  /// Device number of `bucket` (must be valid for spec()).
  virtual std::uint64_t DeviceOf(const BucketId& bucket) const = 0;

  /// Short stable name, e.g. "FX[I,U,IU1]", "Modulo", "GDM{2,3,5,7,11,13}".
  virtual std::string name() const = 0;

  /// True when the per-device response *multiset* of a query is invariant
  /// under the choice of specified values — i.e. changing a specified value
  /// only permutes devices.  Holds for FX (XOR by a constant) and for
  /// Modulo/GDM (rotation by an additive constant mod M).  The analysis
  /// layer uses this to evaluate one representative per unspecified-field
  /// set instead of every query.
  virtual bool IsShiftInvariant() const { return false; }

  /// True when ForEachQualifiedBucketOnDevice is overridden with a
  /// residue-solver that visits only ~|R(q)|/M buckets instead of
  /// filtering all |R(q)| (FX / Modulo / GDM).  DeviceMap uses this to
  /// pick an enumeration strategy by cost.
  virtual bool HasFastInverseMapping() const { return false; }

  /// Enumerates the qualified buckets of `query` that this method placed on
  /// `device` ("inverse mapping", §4.2).  The default implementation
  /// filters the full qualified set; subclasses may override with a faster
  /// path.  `fn` returning false stops early.
  virtual void ForEachQualifiedBucketOnDevice(
      const PartialMatchQuery& query, std::uint64_t device,
      const std::function<bool(const BucketId&)>& fn) const;

 protected:
  FieldSpec spec_;
};

}  // namespace fxdist

#endif  // FXDIST_CORE_DISTRIBUTION_H_
