#include "sim/dynamic_parallel_file.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>

#include "analysis/optimality.h"
#include "hashing/value_codec.h"

namespace fxdist {

namespace {
// Full-width per-field hashes; directories take as many low bits as their
// global depth currently needs.
constexpr std::uint64_t kHashRange = std::uint64_t{1} << 32;
}  // namespace

namespace {
std::vector<std::uint64_t> InitialSizes(std::size_t num_fields,
                                        const std::vector<unsigned>& depths) {
  std::vector<std::uint64_t> sizes(num_fields, 1);
  for (std::size_t i = 0; i < depths.size(); ++i) {
    sizes[i] = std::uint64_t{1} << depths[i];
  }
  return sizes;
}
}  // namespace

DynamicParallelFile::DynamicParallelFile(
    std::vector<DynamicFieldDecl> fields, std::uint64_t num_devices,
    PlanFamily family, const std::vector<unsigned>& initial_depths)
    : fields_(std::move(fields)), num_devices_(num_devices), family_(family),
      spec_(FieldSpec::Create(InitialSizes(fields_.size(), initial_depths),
                              num_devices)
                .value()),
      method_(FXDistribution::Planned(spec_, family_)),
      device_map_(*method_) {
  devices_.reserve(num_devices_);
  for (std::uint64_t d = 0; d < num_devices_; ++d) devices_.emplace_back(d);
}

Result<DynamicParallelFile> DynamicParallelFile::Create(
    std::vector<DynamicFieldDecl> fields, std::uint64_t num_devices,
    std::size_t page_capacity, PlanFamily family, std::uint64_t seed,
    std::vector<unsigned> initial_depths) {
  if (fields.empty()) {
    return Status::InvalidArgument("need at least one field");
  }
  for (const auto& f : fields) {
    if (f.name.empty()) {
      return Status::InvalidArgument("field names must be non-empty");
    }
  }
  if ((num_devices & (num_devices - 1)) != 0 || num_devices == 0) {
    return Status::InvalidArgument("device count must be a power of two");
  }
  if (!initial_depths.empty() && initial_depths.size() != fields.size()) {
    return Status::InvalidArgument("initial depths arity mismatch");
  }
  if (initial_depths.empty()) initial_depths.assign(fields.size(), 0);
  DynamicParallelFile file(std::move(fields), num_devices, family,
                           initial_depths);
  file.page_capacity_ = page_capacity;
  file.hash_seed_ = seed;
  file.initial_depths_ = std::move(initial_depths);
  for (unsigned i = 0; i < file.fields_.size(); ++i) {
    auto hasher =
        MakeDefaultHasher(file.fields_[i].type, kHashRange, seed + i);
    FXDIST_RETURN_NOT_OK(hasher.status());
    file.hashers_.push_back(std::shared_ptr<FieldHasher>(std::move(*hasher)));
    auto dir = ExtendibleDirectory::Create(
        page_capacity, ExtendibleDirectory::kMaxDepth,
        file.initial_depths_[i]);
    FXDIST_RETURN_NOT_OK(dir.status());
    file.dirs_.push_back(*std::move(dir));
  }
  return file;
}

Status DynamicParallelFile::Insert(Record record) {
  if (record.size() != fields_.size()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  if (records_.size() >
      static_cast<std::size_t>(std::numeric_limits<RecordIndex>::max())) {
    return Status::OutOfRange("record arena full");
  }
  std::vector<std::uint64_t> hashes(fields_.size());
  for (unsigned i = 0; i < fields_.size(); ++i) {
    auto h = hashers_[i]->Hash(record[i]);
    FXDIST_RETURN_NOT_OK(h.status());
    hashes[i] = *h;
  }
  // Feed the directories first: growth must be visible before placement.
  for (unsigned i = 0; i < fields_.size(); ++i) {
    dirs_[i].Insert(hashes[i]);
  }
  const auto index = static_cast<RecordIndex>(records_.size());
  records_.push_back(std::move(record));
  record_hashes_.push_back(std::move(hashes));
  if (!RebuildIfGrown()) {
    PlaceRecord(index);
  }
  // Growth re-plans placement inside the same Insert, so one bump covers
  // both the new record and any directory rebuild.
  BumpMutationEpoch();
  return Status::OK();
}

Result<std::uint64_t> DynamicParallelFile::Delete(const ValueQuery& query) {
  (void)query;
  return Status::Unimplemented(
      "dynamic backend does not support deletion (directories only grow)");
}

bool DynamicParallelFile::RebuildIfGrown() {
  std::vector<std::uint64_t> sizes(fields_.size());
  bool grown = false;
  for (unsigned i = 0; i < fields_.size(); ++i) {
    sizes[i] = dirs_[i].directory_size();
    if (sizes[i] != spec_.field_size(i)) grown = true;
  }
  if (!grown) return false;

  spec_ = FieldSpec::Create(std::move(sizes), num_devices_).value();
  method_ = FXDistribution::Planned(spec_, family_);
  device_map_ = DeviceMap(*method_);
  devices_.clear();
  for (std::uint64_t d = 0; d < num_devices_; ++d) devices_.emplace_back(d);
  for (RecordIndex r = 0; r < records_.size(); ++r) {
    PlaceRecord(r);
  }
  ++rebuilds_;
  records_moved_ += records_.size();
  return true;
}

void DynamicParallelFile::PlaceRecord(RecordIndex index) {
  BucketId bucket(fields_.size());
  for (unsigned i = 0; i < fields_.size(); ++i) {
    bucket[i] = Coordinate(i, record_hashes_[index][i]);
  }
  devices_[device_map_.DeviceOf(bucket)].AddRecord(LinearIndex(spec_, bucket),
                                                   index);
}

Result<BucketId> DynamicParallelFile::HashRecord(const Record& record) const {
  if (record.size() != fields_.size()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  BucketId bucket(fields_.size());
  for (unsigned i = 0; i < fields_.size(); ++i) {
    auto h = hashers_[i]->Hash(record[i]);
    FXDIST_RETURN_NOT_OK(h.status());
    bucket[i] = Coordinate(i, *h);
  }
  return bucket;
}

bool DynamicParallelFile::IsBucketLive(std::uint64_t device,
                                       std::uint64_t linear_bucket) const {
  return devices_[device].Records(linear_bucket) != nullptr;
}

Result<PartialMatchQuery> DynamicParallelFile::HashQuery(
    const ValueQuery& query) const {
  if (query.size() != fields_.size()) {
    return Status::InvalidArgument("query arity mismatch");
  }
  std::vector<std::optional<std::uint64_t>> coords(fields_.size());
  for (unsigned i = 0; i < fields_.size(); ++i) {
    if (query[i].has_value()) {
      auto h = hashers_[i]->Hash(*query[i]);
      FXDIST_RETURN_NOT_OK(h.status());
      coords[i] = Coordinate(i, *h);
    }
  }
  return PartialMatchQuery::Create(spec_, std::move(coords));
}

Result<QueryResult> DynamicParallelFile::Execute(
    const ValueQuery& query) const {
  auto hashed = HashQuery(query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  QueryResult result;
  QueryStats& stats = result.stats;
  stats.qualified_per_device.assign(num_devices_, 0);
  stats.device_wall_ms.assign(num_devices_, 0.0);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t d = 0; d < num_devices_; ++d) {
    const auto device_start = std::chrono::steady_clock::now();
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          ++stats.qualified_per_device[d];
          const std::vector<RecordIndex>* bucket_records =
              devices_[d].Records(linear);
          if (bucket_records == nullptr) return true;
          for (RecordIndex idx : *bucket_records) {
            ++stats.records_examined;
            const Record& record = records_[idx];
            if (RecordMatchesValueQuery(query, record)) {
              ++stats.records_matched;
              result.records.push_back(record);
            }
          }
          return true;
        });
    stats.device_wall_ms[d] = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() -
                                  device_start)
                                  .count();
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  stats.total_qualified = 0;
  for (std::uint64_t c : stats.qualified_per_device) {
    stats.total_qualified += c;
    stats.largest_response = std::max(stats.largest_response, c);
  }
  stats.optimal_bound = StrictOptimalBound(spec_, *hashed);
  stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
  stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
  return result;
}

void DynamicParallelFile::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  const std::vector<RecordIndex>* bucket_records =
      devices_[device].Records(linear_bucket);
  if (bucket_records == nullptr) return;
  for (RecordIndex idx : *bucket_records) {
    if (!fn(records_[idx])) return;
  }
}

std::vector<std::uint64_t> DynamicParallelFile::RecordCountsPerDevice()
    const {
  std::vector<std::uint64_t> out;
  out.reserve(devices_.size());
  for (const Device& d : devices_) out.push_back(d.num_records());
  return out;
}

void DynamicParallelFile::SaveParams(std::ostream& out) const {
  out << "devices " << num_devices_ << '\n';
  out << "family " << (family_ == PlanFamily::kIU1 ? "iu1" : "iu2") << '\n';
  out << "pagecap " << page_capacity_ << '\n';
  out << "seed " << hash_seed_ << '\n';
  out << "fields " << fields_.size() << '\n';
  for (const DynamicFieldDecl& f : fields_) {
    out << "field ";
    EncodeLengthPrefixed(out, f.name);
    out << ' ' << ValueTypeTag(f.type) << '\n';
  }
  // Provisioned directory depths (v3+; v2 loaders never reach this line
  // because they stop at the field declarations).
  out << "depths";
  for (unsigned g : initial_depths_) out << ' ' << g;
  out << '\n';
}

void DynamicParallelFile::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  for (const Record& r : records_) fn(r);
}

}  // namespace fxdist
