// PageStore: one device's local bucket storage on fixed-capacity pages.
//
// The paper's two-stage model (its §1, after [PrKi88]) separates
// *distribution* (which device) from *construction* (how the device lays
// its share out).  The simulator's default Device uses an in-memory map;
// PageStore is the disk-shaped alternative: records of a bucket live in a
// chain of fixed-capacity pages, reads walk the chain, and the store
// accounts pages read / records scanned — the unit the disk timing model
// prices.  Deletions feed a free list so pages are recycled.

#ifndef FXDIST_SIM_PAGE_STORE_H_
#define FXDIST_SIM_PAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/device.h"
#include "util/status.h"

namespace fxdist {

class PageStore {
 public:
  static Result<PageStore> Create(std::size_t records_per_page);

  /// Appends a record to `bucket`'s chain (allocating/recycling pages).
  void Add(std::uint64_t bucket, RecordIndex record);

  /// Removes one occurrence; returns false if absent.  A page that
  /// empties is unlinked and recycled.
  bool Remove(std::uint64_t bucket, RecordIndex record);

  struct ReadStats {
    std::uint64_t pages_read = 0;
    std::uint64_t records_scanned = 0;
  };

  /// Visits every record in `bucket`, charging one page read per chain
  /// page.  `fn` returning false stops early (the current page is still
  /// charged).  `stats` may be null.
  void Scan(std::uint64_t bucket,
            const std::function<bool(RecordIndex)>& fn,
            ReadStats* stats = nullptr) const;

  std::uint64_t num_records() const { return num_records_; }
  /// Pages currently in use (allocated minus free-listed).
  std::uint64_t num_pages() const { return pages_.size() - free_.size(); }
  /// records / (live pages * capacity); 0 when empty.
  double Utilization() const;
  /// Chain length (pages) of one bucket.
  std::uint64_t ChainLength(std::uint64_t bucket) const;

 private:
  static constexpr std::uint32_t kNone =
      std::numeric_limits<std::uint32_t>::max();

  struct Page {
    std::vector<RecordIndex> records;
    std::uint32_t next = kNone;
  };

  explicit PageStore(std::size_t records_per_page)
      : records_per_page_(records_per_page) {}

  std::uint32_t AllocatePage();

  std::size_t records_per_page_;
  std::vector<Page> pages_;
  std::vector<std::uint32_t> free_;
  std::unordered_map<std::uint64_t, std::uint32_t> heads_;
  std::uint64_t num_records_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PAGE_STORE_H_
