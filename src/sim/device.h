// Device: one simulated parallel storage unit.
//
// A device holds the records of the buckets allocated to it, keyed by the
// bucket's linear index.  The local structure is a hash map — the paper's
// "data construction stage" is out of scope (its §1), and bucket-count
// response sizes are unaffected by the local layout.

#ifndef FXDIST_SIM_DEVICE_H_
#define FXDIST_SIM_DEVICE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fxdist {

/// Index into the owning ParallelFile's record arena.
using RecordIndex = std::uint32_t;

class Device {
 public:
  explicit Device(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const { return id_; }

  /// Appends a record to bucket `linear_bucket` (creating it if new).
  void AddRecord(std::uint64_t linear_bucket, RecordIndex record);

  /// Removes one record from its bucket (erasing the bucket when it
  /// empties).  Returns false if the record was not present.
  bool RemoveRecord(std::uint64_t linear_bucket, RecordIndex record);

  /// Records in one bucket; nullptr when the bucket is empty/absent.
  const std::vector<RecordIndex>* Records(std::uint64_t linear_bucket) const;

  /// Number of non-empty buckets resident on this device.
  std::uint64_t num_buckets() const { return buckets_.size(); }
  /// Total records on this device.
  std::uint64_t num_records() const { return num_records_; }

 private:
  std::uint64_t id_;
  std::unordered_map<std::uint64_t, std::vector<RecordIndex>> buckets_;
  std::uint64_t num_records_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_DEVICE_H_
