// Live topology migration: online elastic resharding with dual-write,
// incremental bucket copy, and atomic cutover.
//
// MigratingBackend wraps an *active* StorageBackend (the source) and
// drives a second, empty backend (the target — any device count, any
// distribution scheme over the same bucket space) through three phases:
//
//   1. dual-write — every mutation applies to the source and, for
//      buckets the copy cursor has already passed, to the target too.
//      Both writes bump the mutation epoch, so the front door's
//      ResultCache invalidates exactly as for any other mutation.
//   2. incremental copy — CopyChunk moves bucket ranges [cursor,
//      cursor+n) from source to target with ONE ScanMany scatter-gather
//      (a remote child sees one frame per chunk, not one per bucket)
//      and one routed InsertBatch.  Linear bucket ids are M-independent,
//      so a record's bucket means the same thing in both placements;
//      copying buckets in ascending order reproduces exactly the insert
//      order a fresh build of the target would see — post-cutover
//      results are bit-identical to that fresh build.
//   3. atomic cutover — once the cursor covers the bucket space, the
//      target becomes the active plane under the wrapper's write lock
//      and a new TopologyVersion is published.  The engine brackets
//      every batch with two version loads (seqlock-style) and retries
//      on change, so no batch ever mixes accounting from two
//      placements.  The retired source stays allocated until the
//      wrapper dies: references the engine captured just before a
//      cutover stay valid (stale, and discarded by the retry) instead
//      of dangling.
//
// Unlike every other backend, MigratingBackend is *internally*
// synchronized (readers shared, mutators and phase changes exclusive):
// the whole point is queries keep answering while a background thread
// copies buckets.  ScanRecordsAreStable() is false — record references
// only live for the duration of a scan's shared lock, so executors copy.
//
// Failure: if a dual-write or chunk copy fails (a remote target shard
// died), the migration is marked failed — the source is still complete
// and serving, Cutover() refuses, and Abort() discards the target so a
// fresh attempt can start.  MigrationController packages that retry
// loop.  An in-progress migration round-trips through persistence v4
// (sim/persistence.h) so a restart resumes from the saved cursor.

#ifndef FXDIST_SIM_MIGRATION_H_
#define FXDIST_SIM_MIGRATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/topology.h"
#include "sim/storage_backend.h"

namespace fxdist {

class MigratingBackend : public StorageBackend {
 public:
  /// Wraps `source` as the active plane at topology version 1.  (The
  /// wrapper is heap-only: it owns a shared_mutex.)
  static Result<std::unique_ptr<MigratingBackend>> Create(
      std::unique_ptr<StorageBackend> source);

  // -- Phase control (driven by MigrationController or a tool) ---------

  /// Starts a migration onto `target`: an empty, mutable backend over
  /// the same bucket space (field sizes must match; device count and
  /// scheme are free — that is the point).  Dual-write begins at once.
  Status BeginMigration(std::unique_ptr<StorageBackend> target);

  /// Copies up to `max_buckets` buckets at the cursor from source to
  /// target (one ScanMany scatter + one routed InsertBatch) and
  /// advances the cursor.  Returns the number of buckets copied (0 when
  /// the cursor already covers the space).  Exclusive with readers for
  /// the duration of the chunk — keep chunks small to keep queries
  /// answering between them.
  Result<std::uint64_t> CopyChunk(std::uint64_t max_buckets);

  /// Replays CopyChunk until the cursor reaches `cursor` — how a
  /// persistence-v4 load resumes an interrupted migration.
  Status CopyUntil(std::uint64_t cursor);

  /// Atomically swaps the target in as the active plane and publishes
  /// the next TopologyVersion.  Requires a complete, healthy copy
  /// (cursor at end, no failed dual-write).  The retired source stays
  /// allocated (see file comment).
  Status Cutover();

  /// Discards the target and returns to normal single-plane serving.
  /// Always safe before Cutover: the source holds every record (writes
  /// go source-first).  Refused when no migration is in progress.
  Status Abort();

  bool IsMigrating() const;
  /// True once every bucket has been copied (and a migration is live).
  bool CopyDone() const;
  std::uint64_t CopyCursor() const;
  /// OK, or the first dual-write / copy failure of the current attempt.
  Status MigrationHealth() const;
  /// The active topology generation (scheme + M + version).
  TopologyVersionInfo Topology() const { return handle_.Get(); }
  /// What the topology will become if the current migration cuts over.
  TopologyVersionInfo PendingTopology() const;

  // -- StorageBackend --------------------------------------------------
  std::string backend_name() const override { return "migrating"; }
  const FieldSpec& spec() const override;
  const DistributionMethod& method() const override;
  const DeviceMap& device_map() const override;
  std::uint64_t num_records() const override;

  Status Insert(Record record) override;
  Status InsertBatch(std::vector<Record> records) override;
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(const ValueQuery& query) const override;
  Result<BucketId> HashRecord(const Record& record) const override;

  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;
  void ScanMany(
      const std::vector<BucketRef>& refs,
      const std::function<bool(std::size_t, const Record&)>& fn)
      const override;
  bool ScanPrefersFanout() const override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;

  Result<QueryResult> Execute(const ValueQuery& query) const override;
  std::vector<std::uint64_t> RecordCountsPerDevice() const override;

  std::uint64_t MutationEpoch() const override;
  Status Health() const override;

  /// Scans may be served mid-migration with buckets still in flight;
  /// planners keep per-bucket accounting on while this holds.
  bool HasDegradedRouting() const override;
  /// References die with the scan's shared lock — executors must copy.
  bool ScanRecordsAreStable() const override { return false; }
  bool IsReadOnly() const override;
  std::vector<ValueType> FieldTypes() const override;
  std::uint64_t ApproxMemoryBytes() const override;

  std::uint64_t TopologyVersion() const override {
    return handle_.version();
  }
  std::uint64_t BucketsInMigration() const override;
  const StorageBackend& ServingPlane() const override;

  /// Persistence-v4 body: phase, cursor, target blueprint (while
  /// migrating), source blueprint.  SaveBackend writes this only for an
  /// in-progress migration; an idle wrapper saves as its active plane.
  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

 private:
  explicit MigratingBackend(std::unique_ptr<StorageBackend> source);

  /// Insert under the exclusive lock: source first, then (if the bucket
  /// is behind the cursor) the target.  A target failure marks the
  /// migration failed; the source write stands.
  Status InsertLocked(Record record);

  mutable std::shared_mutex mutex_;
  std::unique_ptr<StorageBackend> active_;
  std::unique_ptr<StorageBackend> target_;  // non-null while migrating
  /// Retired planes a cutover replaced — kept alive so references
  /// captured just before the swap stay valid (see file comment).
  std::vector<std::unique_ptr<StorageBackend>> retired_;
  bool migrating_ = false;
  /// Buckets with linear id < cursor_ are fully copied to the target.
  std::uint64_t cursor_ = 0;
  /// First dual-write/copy failure of the current attempt.
  Status failed_ = Status::OK();
  /// Epochs of aborted targets and retired sources, absorbed so the
  /// aggregate MutationEpoch stays monotone across phase changes.
  std::uint64_t epoch_base_ = 0;
  TopologyVersionInfo pending_;
  VersionedTopologyHandle handle_;
};

/// Drives a full migration with bounded retry: build a target, copy in
/// chunks, cut over; on failure abort, rebuild a fresh target, retry.
class MigrationController {
 public:
  struct Options {
    /// Buckets per CopyChunk — the reader-blocking granule.
    std::uint64_t chunk_buckets = 64;
    /// Attempts before giving up (each attempt gets a fresh target).
    int max_attempts = 3;
  };

  using TargetFactory =
      std::function<Result<std::unique_ptr<StorageBackend>>()>;

  explicit MigrationController(MigratingBackend& backend)
      : MigrationController(backend, Options()) {}
  MigrationController(MigratingBackend& backend, Options options);

  /// Runs to cutover or exhausts attempts (the backend is left serving
  /// the source, migration aborted, on failure).
  Status Run(const TargetFactory& make_target);

  int attempts() const { return attempts_; }

 private:
  MigratingBackend& backend_;
  Options options_;
  int attempts_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_MIGRATION_H_
