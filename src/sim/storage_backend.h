// StorageBackend: the storage plane of the two-stage model.
//
// The paper separates *distribution* (which device owns a bucket) from
// *construction* (how a device stores its share).  The placement plane is
// core/device_map.h; this interface is the storage plane: every file
// shape — flat in-memory buckets (ParallelFile), fixed-capacity pages
// with overflow chains (PagedParallelFile), growing extendible
// directories (DynamicParallelFile) — implements the same contract, so
// the batch QueryEngine, persistence, and the tools drive any of them
// interchangeably.  Composite stores (sim/composite_backend.h's
// ShardedBackend and ReplicatedBackend) are further implementations
// built from child backends, not forks of the contract.
//
// Contract notes:
//  * ScanBucket visits a bucket's records in the backend's own stable
//    scan order; Execute and the engine's shared scans both go through
//    it, which is what makes batched results bit-identical to serial.
//  * Backends are externally synchronized: readers (Execute/ScanBucket)
//    are const and may run concurrently, but no call may overlap a
//    mutation (Insert/Delete).
//  * SaveParams/ForEachLiveRecord are the persistence hooks: the header
//    tokens plus a deterministic insert replay reconstruct the backend
//    exactly (see sim/persistence.h SaveBackend/LoadBackend).

#ifndef FXDIST_SIM_STORAGE_BACKEND_H_
#define FXDIST_SIM_STORAGE_BACKEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/device_map.h"
#include "core/distribution.h"
#include "hashing/multikey_hash.h"
#include "hashing/value.h"
#include "sim/timing.h"
#include "util/status.h"

namespace fxdist {

/// Statistics of one executed query.
struct QueryStats {
  /// Qualified buckets allocated to each device (the paper's r_i(q)).
  std::vector<std::uint64_t> qualified_per_device;
  std::uint64_t total_qualified = 0;
  std::uint64_t largest_response = 0;  ///< max_i r_i(q)
  std::uint64_t optimal_bound = 0;     ///< ceil(total / M)
  bool strict_optimal = false;
  std::uint64_t records_examined = 0;
  std::uint64_t records_matched = 0;
  QueryTiming disk_timing;
  /// Measured wall-clock of the per-device phase (ms).
  double wall_ms = 0.0;
  /// Measured wall-clock of each device's own share (ms).  max() is the
  /// critical path — the time an M-core deployment would need; the sum is
  /// the serial cost.  Meaningful on any host core count.
  std::vector<double> device_wall_ms;
};

/// Matched records plus execution statistics.
struct QueryResult {
  std::vector<Record> records;
  QueryStats stats;
};

/// One bucket coordinate of a batched scatter-gather scan.
struct BucketRef {
  std::uint64_t device = 0;
  std::uint64_t linear_bucket = 0;

  friend bool operator==(const BucketRef& a, const BucketRef& b) {
    return a.device == b.device && a.linear_bucket == b.linear_bucket;
  }
};

/// True iff `record` satisfies every specified field of `query` by value
/// equality (the filter applied after bucket-level candidates are
/// fetched).  Shared by every backend and the batch QueryEngine so all
/// paths match bit-identically.
bool RecordMatchesValueQuery(const ValueQuery& query, const Record& record);

/// Heap cost of one record as the in-memory backends store it: the
/// Record vector, its FieldValue slots, and any string heap allocations
/// past the small-string buffer.  The unit ApproxMemoryBytes sums.
std::uint64_t ApproxRecordBytes(const Record& record);

class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Mutation epoch: 0 at construction, strictly increased by every
  /// successful state-changing Insert/Delete on this handle.  Result
  /// caches tag entries with the epoch they were computed at and treat
  /// any later epoch as invalidation — sound because an unchanged epoch
  /// means no mutation ran through this backend, so a cached result is
  /// still what Execute would return.  Composites report an aggregate of
  /// their children (monotone; only equality matters); read-only
  /// backends (packed) stay frozen at 0 forever; a RemoteBackend merges
  /// its local count with the authoritative epoch the server echoes on
  /// mutating replies and the topology probe, so a shared remote shard's
  /// other writers invalidate this client's caches too (max of two
  /// monotone counters — still monotone, still only equality matters).
  virtual std::uint64_t MutationEpoch() const {
    return mutation_epoch_.load(std::memory_order_acquire);
  }

  /// Stable kind tag: "flat", "paged", "dynamic", "sharded", or
  /// "replicated".  Doubles as the persistence format's kind token.
  virtual std::string backend_name() const = 0;

  /// Current bucket-space shape (the dynamic backend's changes as its
  /// directories grow).
  virtual const FieldSpec& spec() const = 0;
  virtual const DistributionMethod& method() const = 0;
  /// Cached placement plane over method() — rebuilt by backends whose
  /// mapping changes (dynamic growth).
  virtual const DeviceMap& device_map() const = 0;

  std::uint64_t num_devices() const { return spec().num_devices(); }
  /// Live (non-deleted) records.
  virtual std::uint64_t num_records() const = 0;

  /// Hashes and stores one record.
  virtual Status Insert(Record record) = 0;

  /// Stores a batch of records.  Semantically a loop of Insert (and that
  /// is the default), but overridable where batching buys real work:
  /// ShardedBackend groups by owning child so each child sees one call,
  /// and RemoteBackend ships one kInsertBatch frame per chunk instead of
  /// one round trip per record — the data-movement primitive bucket
  /// migration is built on.  Stops at the first failure; records before
  /// the failure stay inserted (callers needing atomicity replay).
  virtual Status InsertBatch(std::vector<Record> records);

  /// Deletes every record matching the partial match query (Execute's
  /// filter semantics); returns the number removed.  Backends without
  /// delete support return Unimplemented.
  virtual Result<std::uint64_t> Delete(const ValueQuery& query) = 0;

  /// Lifts a value-level query into the hashed domain (specified values
  /// hashed, wildcards kept) — the signatures batch executors plan
  /// shared scans over.
  virtual Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const = 0;

  /// Hashes a record to its bucket coordinates — the routing step
  /// composite backends use to pick the owning shard before storage.
  virtual Result<BucketId> HashRecord(const Record& record) const = 0;

  /// Device that actually serves scans of (device, linear_bucket).
  /// Monolithic backends serve every bucket in place; ReplicatedBackend
  /// re-routes to the replica's holder while devices are down.  Bucket
  /// scans and qualified-per-device accounting must both honor this so
  /// batched execution stays bit-identical to solo Execute.
  virtual std::uint64_t ServingDevice(std::uint64_t device,
                                      std::uint64_t linear_bucket) const {
    (void)linear_bucket;
    return device;
  }

  /// True while some scan may be served away from its placed device
  /// (degraded mode).  Planners keep per-bucket server accounting on —
  /// and live-bucket filtering off — whenever this holds.
  virtual bool HasDegradedRouting() const { return false; }

  /// OK unless the backend can no longer answer faithfully.  ScanBucket
  /// returns void, so a backend whose storage went away (a remote shard
  /// past its retry budget, a poisoned composite) visits nothing and
  /// reports the cause here; executors re-check Health after a sweep and
  /// escalate the error instead of returning silently partial results.
  virtual Status Health() const { return Status::OK(); }

  /// True iff the bucket holds at least one live record on `device`.
  /// A planning hint for sparse bucket spaces: skipping a dead bucket
  /// never changes results, only bookkeeping.  The default probes via
  /// ScanBucket; backends with O(1) bucket indexes override it.
  virtual bool IsBucketLive(std::uint64_t device,
                            std::uint64_t linear_bucket) const;

  /// Visits every record of bucket `linear_bucket` on `device` in the
  /// backend's scan order.  `fn` returning false stops early.
  virtual void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const = 0;

  /// Batched scatter-gather scan: visits the records of every ref in
  /// `refs`, calling `fn(index_into_refs, record)` with each record in
  /// that ref's ScanBucket order.  `fn` returning false cancels the whole
  /// scatter: the rest of that ref is abandoned and no ref that has not
  /// yet begun delivery is visited (refs a fanned-out backend is already
  /// delivering concurrently stop at their next record).  Distinct
  /// indices may be visited concurrently — and interleaved — but records
  /// of one ref are always delivered in order by a single thread at a
  /// time, so per-index accumulation needs no locking while cross-index
  /// state does.  The default loops ScanBucket serially; composite and
  /// remote backends override it to fan the whole batch out (one frame
  /// per shard instead of one per bucket).
  virtual void ScanMany(
      const std::vector<BucketRef>& refs,
      const std::function<bool(std::size_t, const Record&)>& fn) const;

  /// True when a ScanMany call on this backend is dominated by waiting
  /// (a network round trip) rather than CPU, so a composite parent
  /// should overlap this child's gather with its siblings' on separate
  /// threads.  Local in-memory backends return false — for them the
  /// thread fan-out costs far more than the scans it would overlap.
  virtual bool ScanPrefersFanout() const { return false; }

  /// True while references handed to scan callbacks stay valid until the
  /// backend's next mutation (in-memory backends hand out references
  /// into their own storage; a remote backend pins decoded buckets).
  /// Backends that materialize records out of a bounded decode cache
  /// (packed) return false: their references die with the callback, so
  /// executors must copy instead of keeping pointers across the sweep.
  virtual bool ScanRecordsAreStable() const { return true; }

  /// True for immutable backends whose Insert/Delete always fail with
  /// FailedPrecondition.  Composites accept read-only children
  /// pre-loaded with records (a packed shard arrives full by design).
  virtual bool IsReadOnly() const { return false; }

  // -- Topology plane ---------------------------------------------------
  /// Active topology version: 1 at construction, advanced by live
  /// resharding cutovers (sim/migration.h).  The engine brackets every
  /// batch with two loads of this and retries on change (seqlock-style),
  /// so a cutover mid-batch can never mix accounting from two
  /// placements.
  virtual std::uint64_t TopologyVersion() const { return 1; }

  /// Buckets whose contents have not yet reached the target placement of
  /// an in-progress migration (0 when no migration is running) — the
  /// honest degraded-stats signal StatsSnapshot surfaces.
  virtual std::uint64_t BucketsInMigration() const { return 0; }

  /// The backend whose blueprint describes this backend to the outside
  /// world — what the wire handshake ships and persistence embeds as a
  /// *placement twin*.  Monolithic and composite backends describe
  /// themselves; a MigratingBackend answers with its active plane
  /// (source before cutover, target after), so a "migrating" wrapper
  /// never leaks across the wire to clients that only need placement.
  virtual const StorageBackend& ServingPlane() const { return *this; }

  /// Value types of the schema's fields in declaration order — the
  /// decode shape converters (PackBackend) persist.  The default probes
  /// the first live record, so empty backends without an override
  /// return {}; concrete backends override with their schema's answer.
  virtual std::vector<ValueType> FieldTypes() const;

  /// Rough resident bytes this backend costs the process: record
  /// storage, bucket indexes, caches.  The default sums
  /// ApproxRecordBytes over the live records (every current in-memory
  /// backend keeps all records resident); backends with lazily-mapped
  /// storage override it with what is actually paged in.
  virtual std::uint64_t ApproxMemoryBytes() const;

  /// Executes one partial match query serially (wildcards are
  /// std::nullopt), with full QueryStats accounting.
  virtual Result<QueryResult> Execute(const ValueQuery& query) const = 0;

  /// Per-device record counts — storage balance diagnostics.
  virtual std::vector<std::uint64_t> RecordCountsPerDevice() const = 0;

  // -- Persistence hooks -----------------------------------------------
  /// Writes the construction parameters as header tokens (device count,
  /// method/seed, field declarations, kind-specific extras).
  virtual void SaveParams(std::ostream& out) const = 0;
  /// Visits every live record (replayed by LoadBackend in this order).
  virtual void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const = 0;

 protected:
  // The epoch is a base-class member so every backend shares one bump
  // discipline, but backends stay movable (ParallelFile et al. are
  // returned by value): copies/moves start from the source's current
  // count — a copied backend has the same visible state, so reusing the
  // epoch keeps any equal-epoch cache comparison conservative.
  StorageBackend() = default;
  StorageBackend(const StorageBackend& other)
      : mutation_epoch_(other.MutationEpoch()) {}
  StorageBackend& operator=(const StorageBackend& other) {
    mutation_epoch_.store(other.MutationEpoch(), std::memory_order_release);
    return *this;
  }

  /// Called by mutators after a successful state change.
  void BumpMutationEpoch() {
    mutation_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<std::uint64_t> mutation_epoch_{0};
};

}  // namespace fxdist

#endif  // FXDIST_SIM_STORAGE_BACKEND_H_
