#include "sim/device.h"

#include <algorithm>

namespace fxdist {

void Device::AddRecord(std::uint64_t linear_bucket, RecordIndex record) {
  buckets_[linear_bucket].push_back(record);
  ++num_records_;
}

bool Device::RemoveRecord(std::uint64_t linear_bucket, RecordIndex record) {
  auto it = buckets_.find(linear_bucket);
  if (it == buckets_.end()) return false;
  auto& records = it->second;
  auto pos = std::find(records.begin(), records.end(), record);
  if (pos == records.end()) return false;
  records.erase(pos);
  if (records.empty()) buckets_.erase(it);
  --num_records_;
  return true;
}

const std::vector<RecordIndex>* Device::Records(
    std::uint64_t linear_bucket) const {
  auto it = buckets_.find(linear_bucket);
  return it == buckets_.end() ? nullptr : &it->second;
}

}  // namespace fxdist
