#include "sim/parallel_file.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>

#include "analysis/optimality.h"
#include "core/registry.h"
#include "hashing/value_codec.h"

namespace fxdist {

ParallelFile::ParallelFile(FieldSpec spec, MultiKeyHash hash,
                           std::unique_ptr<DistributionMethod> method)
    : spec_(std::move(spec)), hash_(std::move(hash)),
      method_(std::move(method)), device_map_(*method_) {
  devices_.reserve(spec_.num_devices());
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    devices_.emplace_back(d);
  }
}

Result<ParallelFile> ParallelFile::Create(const Schema& schema,
                                          std::uint64_t num_devices,
                                          const std::string& distribution,
                                          std::uint64_t seed) {
  auto spec = schema.ToFieldSpec(num_devices);
  FXDIST_RETURN_NOT_OK(spec.status());
  auto hash = MultiKeyHash::Create(schema, seed);
  FXDIST_RETURN_NOT_OK(hash.status());
  auto method = MakeDistribution(*spec, distribution);
  FXDIST_RETURN_NOT_OK(method.status());
  ParallelFile file(*std::move(spec), *std::move(hash),
                    *std::move(method));
  file.distribution_spec_ = distribution;
  file.hash_seed_ = seed;
  return file;
}

Status ParallelFile::Insert(Record record) {
  auto bucket = hash_.HashRecord(record);
  FXDIST_RETURN_NOT_OK(bucket.status());
  if (records_.size() >
      static_cast<std::size_t>(std::numeric_limits<RecordIndex>::max())) {
    return Status::OutOfRange("record arena full");
  }
  const std::uint64_t device = device_map_.DeviceOf(*bucket);
  const auto index = static_cast<RecordIndex>(records_.size());
  records_.push_back(std::move(record));
  devices_[device].AddRecord(LinearIndex(spec_, *bucket), index);
  ++live_records_;
  BumpMutationEpoch();
  return Status::OK();
}

Result<std::uint64_t> ParallelFile::Delete(const ValueQuery& query) {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());
  // Collect (bucket, record) victims first; mutating a bucket while the
  // inverse mapping iterates it would invalidate the walk.
  std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t,
                                                 RecordIndex>>> victims;
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          const std::vector<RecordIndex>* bucket_records =
              devices_[d].Records(linear);
          if (bucket_records == nullptr) return true;
          for (RecordIndex idx : *bucket_records) {
            if (RecordMatchesValueQuery(query, records_[idx])) {
              victims.push_back({d, {linear, idx}});
            }
          }
          return true;
        });
  }
  for (const auto& [device, entry] : victims) {
    const bool removed =
        devices_[device].RemoveRecord(entry.first, entry.second);
    FXDIST_DCHECK(removed);
    (void)removed;
    records_[entry.second].clear();  // tombstone
    --live_records_;
  }
  if (!victims.empty()) BumpMutationEpoch();
  return static_cast<std::uint64_t>(victims.size());
}

Result<std::uint64_t> ParallelFile::Update(const ValueQuery& query,
                                           const Record& replacement) {
  auto removed = Delete(query);
  FXDIST_RETURN_NOT_OK(removed.status());
  for (std::uint64_t i = 0; i < *removed; ++i) {
    FXDIST_RETURN_NOT_OK(Insert(replacement));
  }
  return *removed;
}

Result<QueryResult> ParallelFile::Execute(const ValueQuery& query) const {
  return Execute(query, nullptr);
}

Result<QueryResult> ParallelFile::Execute(const ValueQuery& query,
                                          ThreadPool* pool) const {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  QueryResult result;
  QueryStats& stats = result.stats;
  stats.qualified_per_device.assign(spec_.num_devices(), 0);

  // Per-device partial results: devices share no state, so each task
  // writes only to its own slot.
  struct DeviceShare {
    std::vector<RecordIndex> matched;
    std::uint64_t examined = 0;
  };
  std::vector<DeviceShare> shares(spec_.num_devices());

  stats.device_wall_ms.assign(spec_.num_devices(), 0.0);
  auto run_device = [&](std::uint64_t d) {
    const auto device_start = std::chrono::steady_clock::now();
    DeviceShare& share = shares[d];
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          ++stats.qualified_per_device[d];
          const std::vector<RecordIndex>* bucket_records =
              devices_[d].Records(linear);
          if (bucket_records == nullptr) return true;
          for (RecordIndex idx : *bucket_records) {
            ++share.examined;
            if (RecordMatchesValueQuery(query, records_[idx])) {
              share.matched.push_back(idx);
            }
          }
          return true;
        });
    stats.device_wall_ms[d] = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() -
                                  device_start)
                                  .count();
  };

  const auto start = std::chrono::steady_clock::now();
  if (pool != nullptr) {
    pool->ParallelFor(spec_.num_devices(), run_device);
  } else {
    for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) run_device(d);
  }
  const auto end = std::chrono::steady_clock::now();
  stats.wall_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  for (const DeviceShare& share : shares) {
    stats.records_examined += share.examined;
    for (RecordIndex idx : share.matched) {
      ++stats.records_matched;
      result.records.push_back(records_[idx]);
    }
  }

  stats.total_qualified = 0;
  for (std::uint64_t c : stats.qualified_per_device) {
    stats.total_qualified += c;
    stats.largest_response = std::max(stats.largest_response, c);
  }
  stats.optimal_bound = StrictOptimalBound(spec_, *hashed);
  stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
  stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
  return result;
}

void ParallelFile::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  const std::vector<RecordIndex>* bucket_records =
      devices_[device].Records(linear_bucket);
  if (bucket_records == nullptr) return;
  for (RecordIndex idx : *bucket_records) {
    if (!fn(records_[idx])) return;
  }
}

bool ParallelFile::IsBucketLive(std::uint64_t device,
                                std::uint64_t linear_bucket) const {
  return devices_[device].Records(linear_bucket) != nullptr;
}

std::vector<std::uint64_t> ParallelFile::RecordCountsPerDevice() const {
  std::vector<std::uint64_t> out;
  out.reserve(devices_.size());
  for (const Device& d : devices_) out.push_back(d.num_records());
  return out;
}

void ParallelFile::SaveParams(std::ostream& out) const {
  out << "devices " << num_devices() << '\n';
  out << "distribution ";
  EncodeLengthPrefixed(out, distribution_spec_);
  out << '\n';
  out << "seed " << hash_seed_ << '\n';
  const Schema& file_schema = schema();
  out << "fields " << file_schema.num_fields() << '\n';
  for (unsigned i = 0; i < file_schema.num_fields(); ++i) {
    const FieldDecl& f = file_schema.field(i);
    out << "field ";
    EncodeLengthPrefixed(out, f.name);
    out << ' ' << ValueTypeTag(f.type) << ' ' << f.directory_size << '\n';
  }
}

void ParallelFile::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  ForEachRecord(fn);
}

}  // namespace fxdist
