#include "sim/storage_backend.h"

namespace fxdist {

bool StorageBackend::IsBucketLive(std::uint64_t device,
                                  std::uint64_t linear_bucket) const {
  bool live = false;
  ScanBucket(device, linear_bucket, [&live](const Record&) {
    live = true;
    return false;
  });
  return live;
}

void StorageBackend::ScanMany(
    const std::vector<BucketRef>& refs,
    const std::function<bool(std::size_t, const Record&)>& fn) const {
  for (std::size_t i = 0; i < refs.size(); ++i) {
    ScanBucket(refs[i].device, refs[i].linear_bucket,
               [&fn, i](const Record& record) { return fn(i, record); });
  }
}

bool RecordMatchesValueQuery(const ValueQuery& query, const Record& record) {
  for (std::size_t f = 0; f < query.size(); ++f) {
    if (query[f].has_value() && record[f] != *query[f]) return false;
  }
  return true;
}

}  // namespace fxdist
