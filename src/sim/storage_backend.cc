#include "sim/storage_backend.h"

#include <variant>

namespace fxdist {

Status StorageBackend::InsertBatch(std::vector<Record> records) {
  for (Record& record : records) {
    FXDIST_RETURN_NOT_OK(Insert(std::move(record)));
  }
  return Status::OK();
}

bool StorageBackend::IsBucketLive(std::uint64_t device,
                                  std::uint64_t linear_bucket) const {
  bool live = false;
  ScanBucket(device, linear_bucket, [&live](const Record&) {
    live = true;
    return false;
  });
  return live;
}

void StorageBackend::ScanMany(
    const std::vector<BucketRef>& refs,
    const std::function<bool(std::size_t, const Record&)>& fn) const {
  bool cancelled = false;
  for (std::size_t i = 0; i < refs.size() && !cancelled; ++i) {
    ScanBucket(refs[i].device, refs[i].linear_bucket,
               [&fn, &cancelled, i](const Record& record) {
                 if (!fn(i, record)) {
                   cancelled = true;
                   return false;
                 }
                 return true;
               });
  }
}

std::vector<ValueType> StorageBackend::FieldTypes() const {
  std::vector<ValueType> types;
  bool probed = false;
  ForEachLiveRecord([&types, &probed](const Record& record) {
    if (probed) return;
    probed = true;
    types.reserve(record.size());
    for (const FieldValue& value : record) types.push_back(TypeOf(value));
  });
  return types;
}

std::uint64_t StorageBackend::ApproxMemoryBytes() const {
  std::uint64_t bytes = 0;
  ForEachLiveRecord(
      [&bytes](const Record& record) { bytes += ApproxRecordBytes(record); });
  return bytes;
}

std::uint64_t ApproxRecordBytes(const Record& record) {
  std::uint64_t bytes =
      sizeof(Record) + record.capacity() * sizeof(FieldValue);
  for (const FieldValue& value : record) {
    if (const auto* s = std::get_if<std::string>(&value)) {
      // Count only heap allocations past the small-string buffer.
      if (s->capacity() > sizeof(std::string) - 1) bytes += s->capacity() + 1;
    }
  }
  return bytes;
}

bool RecordMatchesValueQuery(const ValueQuery& query, const Record& record) {
  for (std::size_t f = 0; f < query.size(); ++f) {
    if (query[f].has_value() && record[f] != *query[f]) return false;
  }
  return true;
}

}  // namespace fxdist
