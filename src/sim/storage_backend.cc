#include "sim/storage_backend.h"

namespace fxdist {

bool RecordMatchesValueQuery(const ValueQuery& query, const Record& record) {
  for (std::size_t f = 0; f < query.size(); ++f) {
    if (query[f].has_value() && record[f] != *query[f]) return false;
  }
  return true;
}

}  // namespace fxdist
