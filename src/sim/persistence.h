// Backend persistence: a simple versioned, self-describing text format.
//
// A saved file records the construction parameters (device count,
// distribution/plan, hash seed, kind-specific extras) and the schema,
// followed by every live record.  Loading replays the inserts; because
// all hashing and placement is deterministic in the seed, the reloaded
// backend is placed identically to the saved one (the dynamic backend's
// directory growth replays identically too).
//
// v1 (ParallelFile only; kept for compatibility):
//
//   fxdist-file v1
//   devices <M>
//   distribution <len>:<spec-string>
//   seed <seed>
//   fields <n>
//   field <len>:<name> <int64|double|string> <directory-size>   (x n)
//   records <count>
//   i:<value> | d:<hex-bits> | s:<len>:<bytes>                  (x n per record)
//
// v2 (any monolithic StorageBackend; still loadable):
//
//   fxdist-backend v2
//   kind <flat|paged|dynamic>
//   <kind-specific params written by StorageBackend::SaveParams>
//   records <count>
//   <values as in v1>
//
// Kind-specific params: "flat" matches the v1 body; "paged" adds a
// "pagesize <P>" line after the seed; "dynamic" writes
// family/pagecap/seed and field declarations without directory sizes
// (its directories grow from the replay).
//
// v3 (what SaveBackend writes) extends v2 with composite kinds and
// provisioned dynamic directories:
//
//   * "dynamic" params end with "depths <g_1> ... <g_n>" — the initial
//     per-field directory depths.
//   * kind "sharded" writes "child <kind>" plus ONE child's params (all
//     M children are identical); loading builds M empty children and
//     replays the records through the composite's routing Insert.
//   * kind "replicated" writes "placement <mirrored|chained>",
//     "down <count> <device>...", then "child <kind>" plus the primary's
//     params; loading rebuilds the rotated replica from the same
//     blueprint, replays into both copies, then re-applies the down set.
//   * kind "packed" writes "child <kind>" plus the *source* backend's
//     params (the blueprint embedded in the packed file); loading
//     "unpacks" — it builds an empty backend of the source kind and
//     replays the records into it.  The packed file itself is rebuilt
//     with PackBackend, not by replay.
//
// v4 extends v3 with one kind, written ONLY while a live migration is
// in flight (an idle MigratingBackend saves as its active plane, in
// v3):
//
//   * kind "migrating" writes "phase <copying|idle>", "cursor <b>",
//     (while copying) "target <kind>" plus the target's params, then
//     "source <kind>" plus the source's params.  The records section
//     holds the SOURCE's records — the target's contents are derivable
//     (they are exactly the copy of buckets [0, cursor)), so loading
//     replays the source, restarts the migration, and re-copies to the
//     saved cursor.  Dual-written records re-materialize identically:
//     a forwarded record sits at the end of its source bucket, which is
//     where the re-copy replays it.
//
//   Loading a v4 blob with a v3-era reader fails with InvalidArgument
//   ("unsupported backend format version"), never a crash; "migrating"
//   under v2/v3 headers is likewise rejected.

#ifndef FXDIST_SIM_PERSISTENCE_H_
#define FXDIST_SIM_PERSISTENCE_H_

#include <memory>
#include <string>

#include "sim/parallel_file.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

/// Writes `file` to `path` in the v1 format, overwriting.
Status SaveParallelFile(const ParallelFile& file, const std::string& path);

/// Reconstructs a ParallelFile saved by SaveParallelFile.
Result<ParallelFile> LoadParallelFile(const std::string& path);

/// Writes any backend to `path` in the v2 format, overwriting.
Status SaveBackend(const StorageBackend& backend, const std::string& path);

/// Reconstructs a backend saved by SaveBackend, dispatching on its kind
/// token.
Result<std::unique_ptr<StorageBackend>> LoadBackend(const std::string& path);

/// "kind <k>\n" plus the backend's SaveParams tokens — the v3 header body
/// without the records section.  This is the construction blueprint the
/// wire handshake ships so a RemoteBackend can build a placement-identical
/// local twin (all placement is deterministic in the blueprint).
std::string BackendBlueprintText(const StorageBackend& backend);

/// Builds an *empty* backend from BackendBlueprintText output.  Replicated
/// blueprints re-apply their down set immediately (there are no records to
/// replay first).
Result<std::unique_ptr<StorageBackend>> BuildBackendFromBlueprintText(
    const std::string& text);

/// Builds an empty *reshard target* from `source`'s blueprint: the same
/// kind and schema over the same bucket space, re-cut for `new_devices`
/// and (when non-empty) distribution spec `new_distribution`.  A sharded
/// source yields a sharded target with `new_devices` children.  Dynamic
/// and packed sources are rejected (their placement is not a free
/// parameter of the blueprint).
Result<std::unique_ptr<StorageBackend>> BuildRetargetedEmptyBackend(
    const StorageBackend& source, std::uint64_t new_devices,
    const std::string& new_distribution);

}  // namespace fxdist

#endif  // FXDIST_SIM_PERSISTENCE_H_
