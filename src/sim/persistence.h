// ParallelFile persistence: a simple versioned, self-describing text
// format.
//
// The file records the construction parameters (device count,
// distribution spec string, hash seed) and the schema, followed by every
// live record.  Loading replays the inserts; because all hashing and
// placement is deterministic in the seed, the reloaded file is placed
// identically to the saved one.
//
// Format (token stream; strings are length-prefixed so they may contain
// any byte):
//
//   fxdist-file v1
//   devices <M>
//   distribution <len>:<spec-string>
//   seed <seed>
//   fields <n>
//   field <len>:<name> <int64|double|string> <directory-size>   (x n)
//   records <count>
//   i:<value> | d:<hex-bits> | s:<len>:<bytes>                  (x n per record)

#ifndef FXDIST_SIM_PERSISTENCE_H_
#define FXDIST_SIM_PERSISTENCE_H_

#include <string>

#include "sim/parallel_file.h"
#include "util/status.h"

namespace fxdist {

/// Writes `file` to `path`, overwriting.
Status SaveParallelFile(const ParallelFile& file, const std::string& path);

/// Reconstructs a ParallelFile saved by SaveParallelFile.
Result<ParallelFile> LoadParallelFile(const std::string& path);

}  // namespace fxdist

#endif  // FXDIST_SIM_PERSISTENCE_H_
