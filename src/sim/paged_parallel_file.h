// PagedParallelFile: the two-stage model with a disk-shaped second stage.
//
// Same distribution stage as ParallelFile (multi-key hash + pluggable
// declustering), but each device stores its buckets in a PageStore —
// fixed-capacity pages with overflow chains — and ExecutePaged accounts
// *pages read* per device, the unit a disk actually pays.  This closes
// the loop on the paper's two-stage model: stage 1 decides the device,
// stage 2 decides how many I/Os the device performs for its share.
//
// As the "paged" StorageBackend it also answers the standard Execute
// contract (bucket-count QueryStats, no page accounting), so the batch
// QueryEngine and persistence drive it like any other backend.

#ifndef FXDIST_SIM_PAGED_PARALLEL_FILE_H_
#define FXDIST_SIM_PAGED_PARALLEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/device_map.h"
#include "core/distribution.h"
#include "hashing/multikey_hash.h"
#include "sim/page_store.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct PagedQueryStats {
  std::vector<std::uint64_t> pages_read_per_device;
  std::uint64_t total_pages_read = 0;
  std::uint64_t largest_pages_read = 0;  ///< gating device, in pages
  std::uint64_t records_examined = 0;
  std::uint64_t records_matched = 0;
};

struct PagedQueryResult {
  std::vector<Record> records;
  PagedQueryStats stats;
};

class PagedParallelFile : public StorageBackend {
 public:
  static Result<PagedParallelFile> Create(const Schema& schema,
                                          std::uint64_t num_devices,
                                          const std::string& distribution,
                                          std::size_t records_per_page,
                                          std::uint64_t seed = 0);

  Status Insert(Record record) override;

  /// Partial match with page-level accounting (what the disk pays).
  Result<PagedQueryResult> ExecutePaged(const ValueQuery& query) const;

  /// Standard backend execution: same records as ExecutePaged, with
  /// bucket-count QueryStats instead of page accounting.
  Result<QueryResult> Execute(const ValueQuery& query) const override;

  /// Deletes every record matching the query; pages that empty are
  /// recycled.  Returns the number removed.
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return hash_.HashQuery(spec_, query);
  }

  Result<BucketId> HashRecord(const Record& record) const override {
    return hash_.HashRecord(record);
  }

  std::string backend_name() const override { return "paged"; }
  const FieldSpec& spec() const override { return spec_; }
  const DistributionMethod& method() const override { return *method_; }
  const DeviceMap& device_map() const override { return device_map_; }
  const Schema& schema() const { return hash_.schema(); }
  std::uint64_t num_records() const override { return live_records_; }

  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;

  std::vector<ValueType> FieldTypes() const override {
    std::vector<ValueType> types;
    types.reserve(schema().num_fields());
    for (unsigned f = 0; f < schema().num_fields(); ++f) {
      types.push_back(schema().field(f).type);
    }
    return types;
  }

  std::vector<std::uint64_t> RecordCountsPerDevice() const override;

  /// Construction parameters, remembered for persistence.
  const std::string& distribution_spec() const { return distribution_spec_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  std::size_t records_per_page() const { return records_per_page_; }

  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  /// Pages in use on device d.
  std::uint64_t DevicePages(std::uint64_t device) const {
    return stores_[device].num_pages();
  }
  /// Mean page utilization across devices.
  double MeanUtilization() const;

 private:
  PagedParallelFile(FieldSpec spec, MultiKeyHash hash,
                    std::unique_ptr<DistributionMethod> method,
                    std::size_t records_per_page);

  FieldSpec spec_;
  std::string distribution_spec_;
  std::uint64_t hash_seed_ = 0;
  std::size_t records_per_page_ = 1;
  MultiKeyHash hash_;
  std::unique_ptr<DistributionMethod> method_;
  DeviceMap device_map_;
  std::vector<PageStore> stores_;
  std::vector<Record> records_;
  std::uint64_t live_records_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PAGED_PARALLEL_FILE_H_
