// PagedParallelFile: the two-stage model with a disk-shaped second stage.
//
// Same distribution stage as ParallelFile (multi-key hash + pluggable
// declustering), but each device stores its buckets in a PageStore —
// fixed-capacity pages with overflow chains — and query execution
// accounts *pages read* per device, the unit a disk actually pays.  This
// closes the loop on the paper's two-stage model: stage 1 decides the
// device, stage 2 decides how many I/Os the device performs for its
// share.

#ifndef FXDIST_SIM_PAGED_PARALLEL_FILE_H_
#define FXDIST_SIM_PAGED_PARALLEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "hashing/multikey_hash.h"
#include "sim/page_store.h"
#include "util/status.h"

namespace fxdist {

struct PagedQueryStats {
  std::vector<std::uint64_t> pages_read_per_device;
  std::uint64_t total_pages_read = 0;
  std::uint64_t largest_pages_read = 0;  ///< gating device, in pages
  std::uint64_t records_examined = 0;
  std::uint64_t records_matched = 0;
};

struct PagedQueryResult {
  std::vector<Record> records;
  PagedQueryStats stats;
};

class PagedParallelFile {
 public:
  static Result<PagedParallelFile> Create(const Schema& schema,
                                          std::uint64_t num_devices,
                                          const std::string& distribution,
                                          std::size_t records_per_page,
                                          std::uint64_t seed = 0);

  Status Insert(Record record);

  Result<PagedQueryResult> Execute(const ValueQuery& query) const;

  const FieldSpec& spec() const { return spec_; }
  const DistributionMethod& method() const { return *method_; }
  std::uint64_t num_records() const { return records_.size(); }

  /// Pages in use on device d.
  std::uint64_t DevicePages(std::uint64_t device) const {
    return stores_[device].num_pages();
  }
  /// Mean page utilization across devices.
  double MeanUtilization() const;

 private:
  PagedParallelFile(FieldSpec spec, MultiKeyHash hash,
                    std::unique_ptr<DistributionMethod> method,
                    std::size_t records_per_page);

  FieldSpec spec_;
  MultiKeyHash hash_;
  std::unique_ptr<DistributionMethod> method_;
  std::vector<PageStore> stores_;
  std::vector<Record> records_;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PAGED_PARALLEL_FILE_H_
