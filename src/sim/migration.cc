#include "sim/migration.h"

#include <algorithm>
#include <mutex>
#include <ostream>
#include <utility>

namespace fxdist {

namespace {

std::vector<std::uint64_t> SpecSizes(const FieldSpec& spec) {
  std::vector<std::uint64_t> sizes(spec.num_fields());
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    sizes[i] = spec.field_size(i);
  }
  return sizes;
}

TopologyVersionInfo DescribePlane(const StorageBackend& backend,
                                  std::uint64_t version) {
  TopologyVersionInfo info;
  info.version = version;
  info.num_devices = backend.num_devices();
  info.scheme = backend.method().name();
  return info;
}

}  // namespace

// ---------------------------------------------------------------------
// MigratingBackend

MigratingBackend::MigratingBackend(std::unique_ptr<StorageBackend> source)
    : active_(std::move(source)),
      pending_(DescribePlane(*active_, 1)),
      handle_(DescribePlane(*active_, 1)) {}

Result<std::unique_ptr<MigratingBackend>> MigratingBackend::Create(
    std::unique_ptr<StorageBackend> source) {
  if (source == nullptr) {
    return Status::InvalidArgument("migrating backend needs a source");
  }
  if (source->backend_name() == "migrating") {
    return Status::InvalidArgument("migrating backends do not nest");
  }
  return std::unique_ptr<MigratingBackend>(
      new MigratingBackend(std::move(source)));
}

Status MigratingBackend::BeginMigration(
    std::unique_ptr<StorageBackend> target) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (migrating_) {
    return Status::FailedPrecondition("a migration is already in progress");
  }
  if (target == nullptr) {
    return Status::InvalidArgument("migration target is null");
  }
  if (target->backend_name() == "migrating") {
    return Status::InvalidArgument("migrating backends do not nest");
  }
  if (target->IsReadOnly()) {
    return Status::InvalidArgument("migration target is read-only");
  }
  if (target->num_records() != 0) {
    return Status::InvalidArgument(
        "migration target must start empty (records arrive by copy)");
  }
  if (SpecSizes(target->spec()) != SpecSizes(active_->spec())) {
    return Status::InvalidArgument(
        "migration target must keep the bucket space (field sizes differ); "
        "only the device count and scheme may change");
  }
  target_ = std::move(target);
  migrating_ = true;
  cursor_ = 0;
  failed_ = Status::OK();
  pending_ = DescribePlane(*target_, handle_.version() + 1);
  // Dual-write begins now.  Results are unchanged (reads still serve
  // the source), but degraded-routing accounting flips on — bump so
  // epoch-tagged caches re-validate conservatively.
  BumpMutationEpoch();
  return Status::OK();
}

Result<std::uint64_t> MigratingBackend::CopyChunk(std::uint64_t max_buckets) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!migrating_) {
    return Status::FailedPrecondition("no migration in progress");
  }
  FXDIST_RETURN_NOT_OK(failed_);
  const std::uint64_t total = active_->spec().TotalBuckets();
  const std::uint64_t end = std::min(total, cursor_ + max_buckets);
  if (end == cursor_) return std::uint64_t{0};

  // One scatter over the chunk: a remote source shard sees one frame
  // per chunk instead of one round trip per bucket.  Distinct refs may
  // deliver concurrently, so each bucket stages into its own slot; the
  // flatten below restores ascending-bucket order, which is exactly the
  // insert order a fresh build of the target would replay.
  std::vector<BucketRef> refs;
  refs.reserve(static_cast<std::size_t>(end - cursor_));
  const DeviceMap& map = active_->device_map();
  for (std::uint64_t b = cursor_; b < end; ++b) {
    refs.push_back({map.DeviceOfLinear(b), b});
  }
  std::vector<std::vector<Record>> staged(refs.size());
  active_->ScanMany(refs, [&staged](std::size_t i, const Record& record) {
    staged[i].push_back(record);
    return true;
  });
  if (Status st = active_->Health(); !st.ok()) {
    failed_ = st;
    return st;
  }
  std::vector<Record> batch;
  for (std::vector<Record>& bucket : staged) {
    for (Record& record : bucket) batch.push_back(std::move(record));
  }
  if (!batch.empty()) {
    if (Status st = target_->InsertBatch(std::move(batch)); !st.ok()) {
      // The target may now hold a partial chunk; this attempt cannot be
      // completed (re-copying would duplicate) — only aborted.
      failed_ = st;
      return st;
    }
  }
  cursor_ = end;
  return static_cast<std::uint64_t>(refs.size());
}

Status MigratingBackend::CopyUntil(std::uint64_t cursor) {
  while (true) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      if (!migrating_) {
        return Status::FailedPrecondition("no migration in progress");
      }
      if (cursor_ >= cursor) return Status::OK();
    }
    auto copied = CopyChunk(cursor - CopyCursor());
    FXDIST_RETURN_NOT_OK(copied.status());
    if (*copied == 0) return Status::OK();
  }
}

Status MigratingBackend::Cutover() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!migrating_) {
    return Status::FailedPrecondition("no migration in progress");
  }
  FXDIST_RETURN_NOT_OK(failed_);
  const std::uint64_t total = active_->spec().TotalBuckets();
  if (cursor_ < total) {
    return Status::FailedPrecondition(
        "cutover with " + std::to_string(total - cursor_) +
        " buckets still in flight");
  }
  FXDIST_RETURN_NOT_OK(target_->Health());
  // Absorb the retiring plane's epoch so the aggregate stays monotone
  // through the swap, then retire it (never destroy — see header).
  epoch_base_ += active_->MutationEpoch();
  retired_.push_back(std::move(active_));
  active_ = std::move(target_);
  migrating_ = false;
  cursor_ = 0;
  FXDIST_RETURN_NOT_OK(handle_.Publish(pending_));
  // Placement changed: per-device accounting of every cached result is
  // stale even though the record sets match.
  BumpMutationEpoch();
  return Status::OK();
}

Status MigratingBackend::Abort() {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (!migrating_) {
    return Status::FailedPrecondition("no migration in progress");
  }
  // Safe unconditionally: writes go source-first, so the source holds
  // every record.  Absorb the dead target's epoch for monotonicity.
  epoch_base_ += target_->MutationEpoch();
  target_.reset();
  migrating_ = false;
  cursor_ = 0;
  failed_ = Status::OK();
  pending_ = handle_.Get();
  BumpMutationEpoch();
  return Status::OK();
}

bool MigratingBackend::IsMigrating() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return migrating_;
}

bool MigratingBackend::CopyDone() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return migrating_ && cursor_ >= active_->spec().TotalBuckets();
}

std::uint64_t MigratingBackend::CopyCursor() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return cursor_;
}

Status MigratingBackend::MigrationHealth() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return failed_;
}

TopologyVersionInfo MigratingBackend::PendingTopology() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return pending_;
}

const FieldSpec& MigratingBackend::spec() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // Safe to hand out: retired planes stay allocated for the wrapper's
  // lifetime, so a reference captured just before a cutover goes stale,
  // not dangling (the engine's version check discards its results).
  return active_->spec();
}

const DistributionMethod& MigratingBackend::method() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->method();
}

const DeviceMap& MigratingBackend::device_map() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->device_map();
}

std::uint64_t MigratingBackend::num_records() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->num_records();
}

Status MigratingBackend::InsertLocked(Record record) {
  const bool dual = migrating_ && failed_.ok();
  Record copy;
  std::uint64_t linear = 0;
  if (dual) {
    auto bucket = active_->HashRecord(record);
    FXDIST_RETURN_NOT_OK(bucket.status());
    linear = LinearIndex(active_->spec(), *bucket);
    if (linear < cursor_) copy = record;
  }
  FXDIST_RETURN_NOT_OK(active_->Insert(std::move(record)));
  if (dual && linear < cursor_) {
    // The copied prefix must stay a faithful mirror: records landing
    // behind the cursor are forwarded, ahead of it the copy will pick
    // them up.  A target failure fails the attempt, not the write — the
    // source is still complete.
    if (Status st = target_->Insert(std::move(copy)); !st.ok()) {
      failed_ = st;
      return st;
    }
  }
  return Status::OK();
}

Status MigratingBackend::Insert(Record record) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  return InsertLocked(std::move(record));
}

Status MigratingBackend::InsertBatch(std::vector<Record> records) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  for (Record& record : records) {
    FXDIST_RETURN_NOT_OK(InsertLocked(std::move(record)));
  }
  return Status::OK();
}

Result<std::uint64_t> MigratingBackend::Delete(const ValueQuery& query) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto removed = active_->Delete(query);
  FXDIST_RETURN_NOT_OK(removed.status());
  if (migrating_ && failed_.ok()) {
    // Matches ahead of the cursor do not exist in the target yet; the
    // query simply removes nothing there.
    auto target_removed = target_->Delete(query);
    if (!target_removed.ok()) {
      failed_ = target_removed.status();
      return failed_;
    }
  }
  return removed;
}

Result<PartialMatchQuery> MigratingBackend::HashQuery(
    const ValueQuery& query) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->HashQuery(query);
}

Result<BucketId> MigratingBackend::HashRecord(const Record& record) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->HashRecord(record);
}

void MigratingBackend::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // A plan built against the pre-cutover placement may name devices the
  // new plane does not have; serve nothing rather than crash — the
  // caller's version check discards the batch anyway.
  if (device >= active_->num_devices()) return;
  active_->ScanBucket(device, linear_bucket, fn);
}

void MigratingBackend::ScanMany(
    const std::vector<BucketRef>& refs,
    const std::function<bool(std::size_t, const Record&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  const std::uint64_t m = active_->num_devices();
  bool in_range = true;
  for (const BucketRef& ref : refs) {
    if (ref.device >= m) {
      in_range = false;
      break;
    }
  }
  if (in_range) {
    active_->ScanMany(refs, fn);
    return;
  }
  // Cross-version plan (see ScanBucket): drop the out-of-range refs but
  // keep index correspondence for the rest.
  std::vector<BucketRef> safe;
  std::vector<std::size_t> original;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].device < m) {
      safe.push_back(refs[i]);
      original.push_back(i);
    }
  }
  active_->ScanMany(safe,
                    [&fn, &original](std::size_t j, const Record& record) {
                      return fn(original[j], record);
                    });
}

bool MigratingBackend::ScanPrefersFanout() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->ScanPrefersFanout();
}

bool MigratingBackend::IsBucketLive(std::uint64_t device,
                                    std::uint64_t linear_bucket) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (device >= active_->num_devices()) return false;
  return active_->IsBucketLive(device, linear_bucket);
}

Result<QueryResult> MigratingBackend::Execute(const ValueQuery& query) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->Execute(query);
}

std::vector<std::uint64_t> MigratingBackend::RecordCountsPerDevice() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->RecordCountsPerDevice();
}

std::uint64_t MigratingBackend::MutationEpoch() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return StorageBackend::MutationEpoch() + epoch_base_ +
         active_->MutationEpoch() +
         (target_ != nullptr ? target_->MutationEpoch() : 0);
}

Status MigratingBackend::Health() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->Health();
}

bool MigratingBackend::HasDegradedRouting() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return migrating_ || active_->HasDegradedRouting();
}

bool MigratingBackend::IsReadOnly() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->IsReadOnly();
}

std::vector<ValueType> MigratingBackend::FieldTypes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->FieldTypes();
}

std::uint64_t MigratingBackend::ApproxMemoryBytes() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->ApproxMemoryBytes() +
         (target_ != nullptr ? target_->ApproxMemoryBytes() : 0);
}

std::uint64_t MigratingBackend::BucketsInMigration() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  if (!migrating_) return 0;
  const std::uint64_t total = active_->spec().TotalBuckets();
  return total > cursor_ ? total - cursor_ : 0;
}

const StorageBackend& MigratingBackend::ServingPlane() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return active_->ServingPlane();
}

void MigratingBackend::SaveParams(std::ostream& out) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  out << "phase " << (migrating_ ? "copying" : "idle") << '\n';
  out << "cursor " << cursor_ << '\n';
  if (migrating_) {
    out << "target " << target_->backend_name() << '\n';
    target_->SaveParams(out);
  }
  out << "source " << active_->backend_name() << '\n';
  active_->SaveParams(out);
}

void MigratingBackend::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  active_->ForEachLiveRecord(fn);
}

// ---------------------------------------------------------------------
// MigrationController

MigrationController::MigrationController(MigratingBackend& backend,
                                         Options options)
    : backend_(backend), options_(options) {}

Status MigrationController::Run(const TargetFactory& make_target) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    ++attempts_;
    auto target = make_target();
    FXDIST_RETURN_NOT_OK(target.status());
    FXDIST_RETURN_NOT_OK(backend_.BeginMigration(*std::move(target)));
    Status copy = Status::OK();
    while (!backend_.CopyDone()) {
      auto copied = backend_.CopyChunk(options_.chunk_buckets);
      if (!copied.ok()) {
        copy = copied.status();
        break;
      }
    }
    if (copy.ok()) copy = backend_.MigrationHealth();
    if (copy.ok()) return backend_.Cutover();
    last = copy;
    FXDIST_RETURN_NOT_OK(backend_.Abort());
  }
  return Status::Unavailable(
      "migration failed after " + std::to_string(attempts_) +
      " attempt(s): " + last.message());
}

}  // namespace fxdist
