// DynamicParallelFile: FX declustering over *growing* extendible-hash
// directories.
//
// The static ParallelFile fixes every field directory size up front.  Real
// dynamic-hashing files (the setting the paper assumes) grow: when a
// field's extendible directory doubles, the bucket space — and therefore
// the FieldSpec — changes, the transformation plan may change (a field can
// stop being "small"), and buckets move between devices.  This class owns
// that loop: per-field ExtendibleDirectory instances, automatic FX
// re-planning and full redistribution on every directory doubling.  The
// cached DeviceMap is rebuilt with the plan, so lookups stay O(1) between
// rebuilds.
//
// Redistribution is the honest cost of the scheme; num_rebuilds() and
// records_moved() expose it, and the growing_file example charts it.
//
// As the "dynamic" StorageBackend it answers the standard Execute/Scan
// contract; Delete is unimplemented (extendible directories only grow).

#ifndef FXDIST_SIM_DYNAMIC_PARALLEL_FILE_H_
#define FXDIST_SIM_DYNAMIC_PARALLEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/device_map.h"
#include "core/fx.h"
#include "hashing/extendible.h"
#include "hashing/hash_functions.h"
#include "sim/device.h"
#include "sim/storage_backend.h"

namespace fxdist {

/// A field declaration without a directory size — the directory grows.
struct DynamicFieldDecl {
  std::string name;
  ValueType type = ValueType::kInt64;
};

class DynamicParallelFile : public StorageBackend {
 public:
  /// `page_capacity`: keys per extendible-hash page before it splits.
  /// `initial_depths` (empty, or one entry per field) pre-grows each
  /// field's directory to 2^depth cells, so the bucket space starts at a
  /// provisioned shape instead of all-ones.  Sharded composites rely on
  /// this: their placement plane is frozen at construction, so dynamic
  /// children must be provisioned large enough not to grow.
  static Result<DynamicParallelFile> Create(
      std::vector<DynamicFieldDecl> fields, std::uint64_t num_devices,
      std::size_t page_capacity, PlanFamily family = PlanFamily::kIU2,
      std::uint64_t seed = 0, std::vector<unsigned> initial_depths = {});

  /// Hashes, stores, and (on directory growth) redistributes.
  Status Insert(Record record) override;

  /// Partial match over the *current* directory state.
  Result<QueryResult> Execute(const ValueQuery& query) const override;

  /// Extendible directories only grow; deletion is not supported.
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override;

  Result<BucketId> HashRecord(const Record& record) const override;

  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;

  std::string backend_name() const override { return "dynamic"; }

  /// Current bucket-space shape (changes as directories double).
  const FieldSpec& spec() const override { return spec_; }
  const FXDistribution& method() const override { return *method_; }
  const DeviceMap& device_map() const override { return device_map_; }

  std::uint64_t num_records() const override { return records_.size(); }
  /// How many times a directory doubling forced a redistribution.
  std::uint64_t num_rebuilds() const { return rebuilds_; }
  /// Total record placements performed by those rebuilds.
  std::uint64_t records_moved() const { return records_moved_; }

  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;

  std::vector<ValueType> FieldTypes() const override {
    std::vector<ValueType> types;
    types.reserve(fields_.size());
    for (const DynamicFieldDecl& field : fields_) types.push_back(field.type);
    return types;
  }

  std::vector<std::uint64_t> RecordCountsPerDevice() const override;

  /// Construction parameters, remembered for persistence.
  const std::vector<DynamicFieldDecl>& fields() const { return fields_; }
  PlanFamily family() const { return family_; }
  std::size_t page_capacity() const { return page_capacity_; }
  std::uint64_t hash_seed() const { return hash_seed_; }
  const std::vector<unsigned>& initial_depths() const {
    return initial_depths_;
  }

  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

 private:
  DynamicParallelFile(std::vector<DynamicFieldDecl> fields,
                      std::uint64_t num_devices, PlanFamily family,
                      const std::vector<unsigned>& initial_depths);

  /// Field-hash -> current bucket coordinate.
  std::uint64_t Coordinate(unsigned field, std::uint64_t hash) const {
    return hash & (spec_.field_size(field) - 1);
  }

  /// Recomputes spec_/method_/device_map_ from directory sizes and
  /// re-places all records.  Returns true if the spec actually changed.
  bool RebuildIfGrown();
  void PlaceRecord(RecordIndex index);

  std::vector<DynamicFieldDecl> fields_;
  std::uint64_t num_devices_;
  PlanFamily family_;
  std::size_t page_capacity_ = 0;
  std::uint64_t hash_seed_ = 0;
  std::vector<unsigned> initial_depths_;
  std::vector<std::shared_ptr<FieldHasher>> hashers_;  // 2^32-wide hashes
  std::vector<ExtendibleDirectory> dirs_;
  FieldSpec spec_;
  std::unique_ptr<FXDistribution> method_;
  DeviceMap device_map_;
  std::vector<Device> devices_;
  std::vector<Record> records_;
  std::vector<std::vector<std::uint64_t>> record_hashes_;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t records_moved_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_DYNAMIC_PARALLEL_FILE_H_
