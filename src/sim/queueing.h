// Open-system queueing simulation of a declustered parallel file.
//
// The paper evaluates single queries in isolation; a deployed system runs
// a *stream* of partial match queries against devices that queue.  This
// simulator makes the connection between declustering quality and system
// behaviour under load explicit:
//
//  * queries arrive in a Poisson stream;
//  * each query puts `r_d(q) * (positioning + transfer)` milliseconds of
//    work on every device d holding qualified buckets (the paper's
//    response sizes, priced by the disk model);
//  * devices serve FCFS; a query completes when its slowest device share
//    does.
//
// Because all of a query's device jobs arrive at the same instant and
// service is FCFS, processing queries in arrival order with one
// free-at timestamp per device is an exact event-order simulation — no
// event heap needed.
//
// Per-query device loads are exact and cheap for shift-invariant methods:
// the response vector of a query is the mask's base vector XOR-shifted
// (FX) or rotated (Modulo/GDM) by the specified values' fold, so one
// closed-form evaluation per *mask* serves every query.
//
// The headline output is the classic load/latency hockey stick: a skewed
// method saturates its hottest device at a fraction of the balanced
// method's sustainable throughput (bench/queueing_response_time).

#ifndef FXDIST_SIM_QUEUEING_H_
#define FXDIST_SIM_QUEUEING_H_

#include <cstdint>
#include <vector>

#include "core/distribution.h"
#include "util/status.h"

namespace fxdist {

struct QueueingConfig {
  /// Poisson arrival rate, queries per second.
  double arrival_rate_qps = 5.0;
  std::uint64_t num_queries = 2000;
  /// Per-field probability a query specifies the field.
  double specified_probability = 0.5;
  /// Per-bucket device service cost (disk model).
  double positioning_ms = 28.0;
  double transfer_ms_per_bucket = 2.0;
  std::uint64_t seed = 1;
  /// Non-shift-invariant methods fall back to per-query enumeration;
  /// refuse bucket spaces above this.
  std::uint64_t enumeration_budget = std::uint64_t{1} << 22;
  /// Per-device service-time multipliers (empty = all 1.0).  The paper's
  /// §5.2.1 assumes symmetric devices; non-uniform factors quantify how
  /// sensitive each declustering is to that assumption (FX spreads work
  /// uniformly, so one slow device hurts it in proportion).
  std::vector<double> device_speed_factors;
};

struct QueueingResult {
  double mean_response_ms = 0.0;
  double p50_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double max_response_ms = 0.0;
  /// Completed queries / simulated makespan.
  double throughput_qps = 0.0;
  /// Mean over devices of busy-time / makespan.
  double mean_device_utilization = 0.0;
  /// Busiest device's utilization — the saturation indicator.
  double max_device_utilization = 0.0;
  std::uint64_t queries = 0;
};

/// Simulates `config.num_queries` arrivals against `method`'s file system.
Result<QueueingResult> SimulateQueueing(const DistributionMethod& method,
                                        const QueueingConfig& config);

}  // namespace fxdist

#endif  // FXDIST_SIM_QUEUEING_H_
