#include "sim/page_store.h"

#include <algorithm>

namespace fxdist {

Result<PageStore> PageStore::Create(std::size_t records_per_page) {
  if (records_per_page == 0) {
    return Status::InvalidArgument("page capacity must be >= 1");
  }
  return PageStore(records_per_page);
}

std::uint32_t PageStore::AllocatePage() {
  if (!free_.empty()) {
    const std::uint32_t id = free_.back();
    free_.pop_back();
    pages_[id] = Page{};
    return id;
  }
  pages_.emplace_back();
  return static_cast<std::uint32_t>(pages_.size() - 1);
}

void PageStore::Add(std::uint64_t bucket, RecordIndex record) {
  auto it = heads_.find(bucket);
  if (it == heads_.end()) {
    const std::uint32_t page = AllocatePage();
    heads_.emplace(bucket, page);
    pages_[page].records.push_back(record);
    ++num_records_;
    return;
  }
  // Walk to the last page; append there or chain a new page.
  std::uint32_t page = it->second;
  while (pages_[page].next != kNone) page = pages_[page].next;
  if (pages_[page].records.size() >= records_per_page_) {
    const std::uint32_t fresh = AllocatePage();
    pages_[page].next = fresh;
    page = fresh;
  }
  pages_[page].records.push_back(record);
  ++num_records_;
}

bool PageStore::Remove(std::uint64_t bucket, RecordIndex record) {
  auto it = heads_.find(bucket);
  if (it == heads_.end()) return false;
  std::uint32_t prev = kNone;
  std::uint32_t page = it->second;
  while (page != kNone) {
    auto& records = pages_[page].records;
    auto pos = std::find(records.begin(), records.end(), record);
    if (pos != records.end()) {
      records.erase(pos);
      --num_records_;
      if (records.empty()) {
        // Unlink and recycle.
        if (prev == kNone) {
          if (pages_[page].next == kNone) {
            heads_.erase(it);
          } else {
            it->second = pages_[page].next;
          }
        } else {
          pages_[prev].next = pages_[page].next;
        }
        free_.push_back(page);
      }
      return true;
    }
    prev = page;
    page = pages_[page].next;
  }
  return false;
}

void PageStore::Scan(std::uint64_t bucket,
                     const std::function<bool(RecordIndex)>& fn,
                     ReadStats* stats) const {
  auto it = heads_.find(bucket);
  if (it == heads_.end()) return;
  std::uint32_t page = it->second;
  while (page != kNone) {
    if (stats != nullptr) ++stats->pages_read;
    for (RecordIndex r : pages_[page].records) {
      if (stats != nullptr) ++stats->records_scanned;
      if (!fn(r)) return;
    }
    page = pages_[page].next;
  }
}

double PageStore::Utilization() const {
  const std::uint64_t live = num_pages();
  if (live == 0) return 0.0;
  return static_cast<double>(num_records_) /
         (static_cast<double>(live) *
          static_cast<double>(records_per_page_));
}

std::uint64_t PageStore::ChainLength(std::uint64_t bucket) const {
  auto it = heads_.find(bucket);
  if (it == heads_.end()) return 0;
  std::uint64_t length = 0;
  for (std::uint32_t page = it->second; page != kNone;
       page = pages_[page].next) {
    ++length;
  }
  return length;
}

}  // namespace fxdist
