#include "sim/paged_parallel_file.h"

#include <algorithm>
#include <limits>

#include "core/registry.h"

namespace fxdist {

PagedParallelFile::PagedParallelFile(
    FieldSpec spec, MultiKeyHash hash,
    std::unique_ptr<DistributionMethod> method, std::size_t records_per_page)
    : spec_(std::move(spec)), hash_(std::move(hash)),
      method_(std::move(method)) {
  stores_.reserve(spec_.num_devices());
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    stores_.push_back(PageStore::Create(records_per_page).value());
  }
}

Result<PagedParallelFile> PagedParallelFile::Create(
    const Schema& schema, std::uint64_t num_devices,
    const std::string& distribution, std::size_t records_per_page,
    std::uint64_t seed) {
  if (records_per_page == 0) {
    return Status::InvalidArgument("records per page must be >= 1");
  }
  auto spec = schema.ToFieldSpec(num_devices);
  FXDIST_RETURN_NOT_OK(spec.status());
  auto hash = MultiKeyHash::Create(schema, seed);
  FXDIST_RETURN_NOT_OK(hash.status());
  auto method = MakeDistribution(*spec, distribution);
  FXDIST_RETURN_NOT_OK(method.status());
  return PagedParallelFile(*std::move(spec), *std::move(hash),
                           *std::move(method), records_per_page);
}

Status PagedParallelFile::Insert(Record record) {
  auto bucket = hash_.HashRecord(record);
  FXDIST_RETURN_NOT_OK(bucket.status());
  if (records_.size() >
      static_cast<std::size_t>(std::numeric_limits<RecordIndex>::max())) {
    return Status::OutOfRange("record arena full");
  }
  const std::uint64_t device = method_->DeviceOf(*bucket);
  const auto index = static_cast<RecordIndex>(records_.size());
  records_.push_back(std::move(record));
  stores_[device].Add(LinearIndex(spec_, *bucket), index);
  return Status::OK();
}

Result<PagedQueryResult> PagedParallelFile::Execute(
    const ValueQuery& query) const {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  PagedQueryResult result;
  PagedQueryStats& stats = result.stats;
  stats.pages_read_per_device.assign(spec_.num_devices(), 0);

  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    PageStore::ReadStats reads;
    method_->ForEachQualifiedBucketOnDevice(
        *hashed, d, [&](const BucketId& bucket) {
          stores_[d].Scan(
              LinearIndex(spec_, bucket),
              [&](RecordIndex idx) {
                ++stats.records_examined;
                const Record& record = records_[idx];
                bool match = true;
                for (unsigned f = 0; f < spec_.num_fields(); ++f) {
                  if (query[f].has_value() && record[f] != *query[f]) {
                    match = false;
                    break;
                  }
                }
                if (match) {
                  ++stats.records_matched;
                  result.records.push_back(record);
                }
                return true;
              },
              &reads);
          return true;
        });
    stats.pages_read_per_device[d] = reads.pages_read;
    stats.total_pages_read += reads.pages_read;
    stats.largest_pages_read =
        std::max(stats.largest_pages_read, reads.pages_read);
  }
  return result;
}

double PagedParallelFile::MeanUtilization() const {
  if (stores_.empty()) return 0.0;
  double sum = 0.0;
  for (const PageStore& s : stores_) sum += s.Utilization();
  return sum / static_cast<double>(stores_.size());
}

}  // namespace fxdist
