#include "sim/paged_parallel_file.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>

#include "analysis/optimality.h"
#include "core/registry.h"
#include "hashing/value_codec.h"
#include "sim/timing.h"

namespace fxdist {

PagedParallelFile::PagedParallelFile(
    FieldSpec spec, MultiKeyHash hash,
    std::unique_ptr<DistributionMethod> method, std::size_t records_per_page)
    : spec_(std::move(spec)), records_per_page_(records_per_page),
      hash_(std::move(hash)), method_(std::move(method)),
      device_map_(*method_) {
  stores_.reserve(spec_.num_devices());
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    stores_.push_back(PageStore::Create(records_per_page).value());
  }
}

Result<PagedParallelFile> PagedParallelFile::Create(
    const Schema& schema, std::uint64_t num_devices,
    const std::string& distribution, std::size_t records_per_page,
    std::uint64_t seed) {
  if (records_per_page == 0) {
    return Status::InvalidArgument("records per page must be >= 1");
  }
  auto spec = schema.ToFieldSpec(num_devices);
  FXDIST_RETURN_NOT_OK(spec.status());
  auto hash = MultiKeyHash::Create(schema, seed);
  FXDIST_RETURN_NOT_OK(hash.status());
  auto method = MakeDistribution(*spec, distribution);
  FXDIST_RETURN_NOT_OK(method.status());
  PagedParallelFile file(*std::move(spec), *std::move(hash),
                         *std::move(method), records_per_page);
  file.distribution_spec_ = distribution;
  file.hash_seed_ = seed;
  return file;
}

Status PagedParallelFile::Insert(Record record) {
  auto bucket = hash_.HashRecord(record);
  FXDIST_RETURN_NOT_OK(bucket.status());
  if (records_.size() >
      static_cast<std::size_t>(std::numeric_limits<RecordIndex>::max())) {
    return Status::OutOfRange("record arena full");
  }
  const std::uint64_t device = device_map_.DeviceOf(*bucket);
  const auto index = static_cast<RecordIndex>(records_.size());
  records_.push_back(std::move(record));
  stores_[device].Add(LinearIndex(spec_, *bucket), index);
  ++live_records_;
  BumpMutationEpoch();
  return Status::OK();
}

Result<PagedQueryResult> PagedParallelFile::ExecutePaged(
    const ValueQuery& query) const {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  PagedQueryResult result;
  PagedQueryStats& stats = result.stats;
  stats.pages_read_per_device.assign(spec_.num_devices(), 0);

  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    PageStore::ReadStats reads;
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          stores_[d].Scan(
              linear,
              [&](RecordIndex idx) {
                ++stats.records_examined;
                const Record& record = records_[idx];
                if (RecordMatchesValueQuery(query, record)) {
                  ++stats.records_matched;
                  result.records.push_back(record);
                }
                return true;
              },
              &reads);
          return true;
        });
    stats.pages_read_per_device[d] = reads.pages_read;
    stats.total_pages_read += reads.pages_read;
    stats.largest_pages_read =
        std::max(stats.largest_pages_read, reads.pages_read);
  }
  return result;
}

Result<QueryResult> PagedParallelFile::Execute(
    const ValueQuery& query) const {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  QueryResult result;
  QueryStats& stats = result.stats;
  stats.qualified_per_device.assign(spec_.num_devices(), 0);
  stats.device_wall_ms.assign(spec_.num_devices(), 0.0);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    const auto device_start = std::chrono::steady_clock::now();
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          ++stats.qualified_per_device[d];
          stores_[d].Scan(linear, [&](RecordIndex idx) {
            ++stats.records_examined;
            const Record& record = records_[idx];
            if (RecordMatchesValueQuery(query, record)) {
              ++stats.records_matched;
              result.records.push_back(record);
            }
            return true;
          });
          return true;
        });
    stats.device_wall_ms[d] = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() -
                                  device_start)
                                  .count();
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  for (std::uint64_t c : stats.qualified_per_device) {
    stats.total_qualified += c;
    stats.largest_response = std::max(stats.largest_response, c);
  }
  stats.optimal_bound = StrictOptimalBound(spec_, *hashed);
  stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
  stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
  return result;
}

Result<std::uint64_t> PagedParallelFile::Delete(const ValueQuery& query) {
  auto hashed = hash_.HashQuery(spec_, query);
  FXDIST_RETURN_NOT_OK(hashed.status());
  // Collect victims first; removing while a chain is being scanned would
  // invalidate the walk.
  std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t,
                                                 RecordIndex>>> victims;
  for (std::uint64_t d = 0; d < spec_.num_devices(); ++d) {
    device_map_.ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          stores_[d].Scan(linear, [&](RecordIndex idx) {
            if (RecordMatchesValueQuery(query, records_[idx])) {
              victims.push_back({d, {linear, idx}});
            }
            return true;
          });
          return true;
        });
  }
  for (const auto& [device, entry] : victims) {
    const bool removed = stores_[device].Remove(entry.first, entry.second);
    FXDIST_DCHECK(removed);
    (void)removed;
    records_[entry.second].clear();  // tombstone
    --live_records_;
  }
  if (!victims.empty()) BumpMutationEpoch();
  return static_cast<std::uint64_t>(victims.size());
}

void PagedParallelFile::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  stores_[device].Scan(linear_bucket, [&](RecordIndex idx) {
    return fn(records_[idx]);
  });
}

std::vector<std::uint64_t> PagedParallelFile::RecordCountsPerDevice() const {
  std::vector<std::uint64_t> out;
  out.reserve(stores_.size());
  for (const PageStore& s : stores_) out.push_back(s.num_records());
  return out;
}

void PagedParallelFile::SaveParams(std::ostream& out) const {
  out << "devices " << num_devices() << '\n';
  out << "distribution ";
  EncodeLengthPrefixed(out, distribution_spec_);
  out << '\n';
  out << "seed " << hash_seed_ << '\n';
  out << "pagesize " << records_per_page_ << '\n';
  const Schema& file_schema = schema();
  out << "fields " << file_schema.num_fields() << '\n';
  for (unsigned i = 0; i < file_schema.num_fields(); ++i) {
    const FieldDecl& f = file_schema.field(i);
    out << "field ";
    EncodeLengthPrefixed(out, f.name);
    out << ' ' << ValueTypeTag(f.type) << ' ' << f.directory_size << '\n';
  }
}

void PagedParallelFile::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  for (const Record& r : records_) {
    if (!r.empty()) fn(r);
  }
}

double PagedParallelFile::MeanUtilization() const {
  if (stores_.empty()) return 0.0;
  double sum = 0.0;
  for (const PageStore& s : stores_) sum += s.Utilization();
  return sum / static_cast<double>(stores_.size());
}

}  // namespace fxdist
