#include "sim/composite_backend.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/optimality.h"
#include "core/rotation.h"
#include "sim/parallel_file.h"
#include "sim/timing.h"

namespace fxdist {

namespace {

std::vector<std::uint64_t> SpecSizes(const FieldSpec& spec) {
  std::vector<std::uint64_t> sizes(spec.num_fields());
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    sizes[i] = spec.field_size(i);
  }
  return sizes;
}

std::string SizesToString(const std::vector<std::uint64_t>& sizes) {
  std::ostringstream out;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    out << (i == 0 ? "" : "x") << sizes[i];
  }
  return out.str();
}

// Shared executor: enumerates qualified buckets in the primary
// placement's ascending order, charges each bucket to its serving
// device, then gathers every bucket with ONE ScanMany scatter — a
// remote shard sees one frame per chunk instead of one round trip per
// bucket, and a sharded backend overlaps its children.  Records are
// staged per bucket and assembled in enumeration order afterwards, so
// results and accounting stay bit-identical to the monolithic
// bucket-by-bucket loop; ReplicatedBackend reuses it for honest
// degraded accounting.  Per-device wall times are not attributable in
// the batched gather and read as zero.
Result<QueryResult> ExecuteRouted(const StorageBackend& backend,
                                  const ValueQuery& query) {
  auto hashed = backend.HashQuery(query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  const std::uint64_t m = backend.num_devices();
  QueryResult result;
  QueryStats& stats = result.stats;
  stats.qualified_per_device.assign(m, 0);
  stats.device_wall_ms.assign(m, 0.0);

  const auto start = std::chrono::steady_clock::now();
  std::vector<BucketRef> refs;
  for (std::uint64_t d = 0; d < m; ++d) {
    backend.device_map().ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          ++stats.qualified_per_device[backend.ServingDevice(d, linear)];
          refs.push_back({d, linear});
          return true;
        });
  }

  if (!backend.ScanPrefersFanout()) {
    // All children are local: the gather is serial and in ref order, so
    // counters and the result vector are written directly.
    backend.ScanMany(refs, [&](std::size_t, const Record& record) {
      ++stats.records_examined;
      if (RecordMatchesValueQuery(query, record)) {
        ++stats.records_matched;
        result.records.push_back(record);
      }
      return true;
    });
  } else {
    // Distinct ref indices may be visited concurrently (remote children
    // overlap), so each bucket stages into its own slot; the serial
    // assembly below restores enumeration order.
    std::vector<std::uint64_t> examined(refs.size(), 0);
    std::vector<std::vector<Record>> matched(refs.size());
    backend.ScanMany(refs, [&](std::size_t i, const Record& record) {
      ++examined[i];
      if (RecordMatchesValueQuery(query, record)) {
        matched[i].push_back(record);
      }
      return true;
    });
    for (std::size_t i = 0; i < refs.size(); ++i) {
      stats.records_examined += examined[i];
      stats.records_matched += matched[i].size();
      for (Record& record : matched[i]) {
        result.records.push_back(std::move(record));
      }
    }
  }
  stats.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();

  stats.total_qualified = 0;
  for (std::uint64_t c : stats.qualified_per_device) {
    stats.total_qualified += c;
    stats.largest_response = std::max(stats.largest_response, c);
  }
  stats.optimal_bound = StrictOptimalBound(backend.spec(), *hashed);
  stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
  stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
  // ScanBucket cannot report errors; a child that died mid-sweep (remote
  // shard past its retry budget) visited nothing, so re-check health and
  // escalate rather than return silently partial results.
  FXDIST_RETURN_NOT_OK(backend.Health());
  return result;
}

}  // namespace

// ---------------------------------------------------------------------
// ShardedBackend

ShardedBackend::ShardedBackend(
    std::vector<std::unique_ptr<StorageBackend>> children)
    : children_(std::move(children)),
      child_kind_(children_.front()->backend_name()),
      frozen_sizes_(SpecSizes(children_.front()->spec())) {}

Result<ShardedBackend> ShardedBackend::Create(
    std::vector<std::unique_ptr<StorageBackend>> children) {
  if (children.empty()) {
    return Status::InvalidArgument("sharded backend needs children");
  }
  for (const auto& child : children) {
    if (child == nullptr) {
      return Status::InvalidArgument("sharded child is null");
    }
  }
  const StorageBackend& first = *children.front();
  if (children.size() != first.num_devices()) {
    return Status::InvalidArgument(
        "sharded backend needs one child per device: " +
        std::to_string(children.size()) + " children for " +
        std::to_string(first.num_devices()) + " devices");
  }
  const std::vector<std::uint64_t> sizes = SpecSizes(first.spec());
  for (const auto& child : children) {
    if (child->backend_name() != first.backend_name()) {
      return Status::InvalidArgument("sharded children disagree on kind: " +
                                     child->backend_name() + " vs " +
                                     first.backend_name());
    }
    if (child->num_devices() != first.num_devices() ||
        SpecSizes(child->spec()) != sizes) {
      return Status::InvalidArgument(
          "sharded children disagree on bucket-space shape");
    }
    // Read-only children (packed shards) arrive full by design; mutable
    // children must start empty so every record routes through the
    // composite's Insert.
    if (child->num_records() != 0 && !child->IsReadOnly()) {
      return Status::InvalidArgument(
          "sharded children must start empty (records arrive through the "
          "composite's Insert)");
    }
  }
  return ShardedBackend(std::move(children));
}

std::uint64_t ShardedBackend::num_records() const {
  std::uint64_t total = 0;
  for (const auto& child : children_) total += child->num_records();
  return total;
}

Status ShardedBackend::Insert(Record record) {
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  auto bucket = children_.front()->HashRecord(record);
  FXDIST_RETURN_NOT_OK(bucket.status());
  const std::uint64_t device = device_map().DeviceOf(*bucket);
  FXDIST_RETURN_NOT_OK(children_[device]->Insert(std::move(record)));
  // The composite's plane is frozen; a dynamic child whose directories
  // just doubled now disagrees with it — the frozen plane's linear ids
  // no longer name the same buckets inside that child, so any further
  // routing (reads included) would be silently wrong.  Poison the
  // composite and fail loudly instead.
  if (SpecSizes(children_[device]->spec()) != frozen_sizes_) {
    poisoned_ =
        "shard " + std::to_string(device) +
        " outgrew the frozen composite plane (bucket space " +
        SizesToString(SpecSizes(children_[device]->spec())) + " vs frozen " +
        SizesToString(frozen_sizes_) +
        "): re-shard with larger provisioned directories";
    return Status::FailedPrecondition(poisoned_);
  }
  return Status::OK();
}

Status ShardedBackend::InsertBatch(std::vector<Record> records) {
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  std::vector<std::vector<Record>> by_child(children_.size());
  for (Record& record : records) {
    auto bucket = children_.front()->HashRecord(record);
    FXDIST_RETURN_NOT_OK(bucket.status());
    by_child[device_map().DeviceOf(*bucket)].push_back(std::move(record));
  }
  for (std::uint64_t device = 0; device < children_.size(); ++device) {
    if (by_child[device].empty()) continue;
    FXDIST_RETURN_NOT_OK(
        children_[device]->InsertBatch(std::move(by_child[device])));
    if (SpecSizes(children_[device]->spec()) != frozen_sizes_) {
      poisoned_ =
          "shard " + std::to_string(device) +
          " outgrew the frozen composite plane (bucket space " +
          SizesToString(SpecSizes(children_[device]->spec())) +
          " vs frozen " + SizesToString(frozen_sizes_) +
          "): re-shard with larger provisioned directories";
      return Status::FailedPrecondition(poisoned_);
    }
  }
  return Status::OK();
}

Result<std::uint64_t> ShardedBackend::Delete(const ValueQuery& query) {
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  // Each shard holds a disjoint slice of the qualified buckets; the sum
  // of per-shard deletions is the composite count.
  std::uint64_t total = 0;
  for (auto& child : children_) {
    auto removed = child->Delete(query);
    FXDIST_RETURN_NOT_OK(removed.status());
    total += *removed;
  }
  return total;
}

void ShardedBackend::ScanMany(
    const std::vector<BucketRef>& refs,
    const std::function<bool(std::size_t, const Record&)>& fn) const {
  // All-local composites skip the scatter/gather machinery: a direct
  // serial sweep in ref order satisfies the delivery contract with no
  // grouping allocations.
  if (!ScanPrefersFanout()) {
    bool cancelled = false;
    for (std::size_t i = 0; i < refs.size() && !cancelled; ++i) {
      children_[refs[i].device]->ScanBucket(
          refs[i].device, refs[i].linear_bucket,
          [&fn, &cancelled, i](const Record& record) {
            if (!fn(i, record)) {
              cancelled = true;
              return false;
            }
            return true;
          });
    }
    return;
  }
  // Scatter: group refs by owning child, preserving each child's ref
  // order (the per-ref delivery order contract is per child, and the
  // grouping keeps it).
  std::vector<std::vector<std::size_t>> by_child(children_.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    by_child[refs[i].device].push_back(i);
  }
  // fn returning false cancels the whole scatter: the flag stops this
  // child's delivery at once and every other child's at its next record
  // (concurrently-delivering children cannot be stopped mid-call, only
  // between records — exactly the contract's allowance).
  std::atomic<bool> cancelled{false};
  const auto run_child = [this, &refs, &by_child, &fn,
                          &cancelled](std::uint64_t device) {
    if (cancelled.load(std::memory_order_relaxed)) return;
    const std::vector<std::size_t>& indices = by_child[device];
    std::vector<BucketRef> child_refs;
    child_refs.reserve(indices.size());
    for (std::size_t i : indices) child_refs.push_back(refs[i]);
    children_[device]->ScanMany(
        child_refs,
        [&fn, &indices, &cancelled](std::size_t j, const Record& record) {
          if (cancelled.load(std::memory_order_relaxed)) return false;
          if (!fn(indices[j], record)) {
            cancelled.store(true, std::memory_order_relaxed);
            return false;
          }
          return true;
        });
  };
  // Gather: children whose scans block on the wire are overlapped on
  // their own threads — each is bounded by its own deadline budget, so
  // one slow shard delays the gather by at most that budget instead of
  // serializing behind every other shard's wait.  Local children run
  // inline: their scans are pure CPU and a thread spawn costs more than
  // the scan it would overlap.
  std::vector<std::uint64_t> inline_children;
  std::vector<std::uint64_t> fanout_children;
  for (std::uint64_t d = 0; d < children_.size(); ++d) {
    if (by_child[d].empty()) continue;
    if (children_[d]->ScanPrefersFanout()) {
      fanout_children.push_back(d);
    } else {
      inline_children.push_back(d);
    }
  }
  // The first fanout child runs on this thread when there is no inline
  // work to overlap with (so a single remote child never pays a spawn).
  std::size_t first_threaded = inline_children.empty() ? 1 : 0;
  std::vector<std::thread> workers;
  if (fanout_children.size() > first_threaded) {
    workers.reserve(fanout_children.size() - first_threaded);
    for (std::size_t k = first_threaded; k < fanout_children.size(); ++k) {
      workers.emplace_back(
          [&run_child, device = fanout_children[k]] { run_child(device); });
    }
  }
  if (inline_children.empty() && !fanout_children.empty()) {
    run_child(fanout_children.front());
  }
  for (std::uint64_t d : inline_children) run_child(d);
  for (std::thread& worker : workers) worker.join();
}

bool ShardedBackend::ScanPrefersFanout() const {
  for (const auto& child : children_) {
    if (child->ScanPrefersFanout()) return true;
  }
  return false;
}

Result<QueryResult> ShardedBackend::Execute(const ValueQuery& query) const {
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  return ExecuteRouted(*this, query);
}

std::vector<std::uint64_t> ShardedBackend::RecordCountsPerDevice() const {
  std::vector<std::uint64_t> out(children_.size(), 0);
  for (std::uint64_t d = 0; d < children_.size(); ++d) {
    const std::vector<std::uint64_t> counts =
        children_[d]->RecordCountsPerDevice();
    for (std::uint64_t i = 0; i < counts.size(); ++i) out[i] += counts[i];
  }
  return out;
}

Status ShardedBackend::Health() const {
  if (!poisoned_.empty()) return Status::FailedPrecondition(poisoned_);
  for (const auto& child : children_) {
    FXDIST_RETURN_NOT_OK(child->Health());
  }
  return Status::OK();
}

void ShardedBackend::SaveParams(std::ostream& out) const {
  out << "child " << child_kind_ << '\n';
  children_.front()->SaveParams(out);
}

void ShardedBackend::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  // Each bucket lives wholly within one child, so visiting children in
  // device order preserves every bucket's internal scan order — which is
  // what LoadBackend's insert replay must reproduce.
  for (const auto& child : children_) child->ForEachLiveRecord(fn);
}

// ---------------------------------------------------------------------
// ReplicatedBackend

ReplicatedBackend::ReplicatedBackend(std::unique_ptr<StorageBackend> primary,
                                     std::unique_ptr<StorageBackend> replica,
                                     ReplicaPlacement placement,
                                     std::uint64_t offset)
    : primary_(std::move(primary)), replica_(std::move(replica)),
      placement_(placement), offset_(offset),
      down_(primary_->num_devices(), 0) {}

Result<ReplicatedBackend> ReplicatedBackend::Create(
    std::unique_ptr<StorageBackend> primary,
    std::unique_ptr<StorageBackend> replica, ReplicaPlacement placement) {
  if (primary == nullptr || replica == nullptr) {
    return Status::InvalidArgument("replicated backend needs both copies");
  }
  const std::uint64_t m = primary->num_devices();
  if (m < 2) {
    return Status::InvalidArgument("replication needs at least 2 devices");
  }
  if (primary->backend_name() == "dynamic" ||
      replica->backend_name() == "dynamic") {
    return Status::InvalidArgument(
        "replicated backend does not support dynamic children (growth "
        "re-plans placement per copy, uncoordinated)");
  }
  if (replica->backend_name() != primary->backend_name()) {
    return Status::InvalidArgument("replica kind differs from primary: " +
                                   replica->backend_name() + " vs " +
                                   primary->backend_name());
  }
  if (replica->num_devices() != m ||
      SpecSizes(replica->spec()) != SpecSizes(primary->spec())) {
    return Status::InvalidArgument(
        "replica bucket-space shape differs from primary");
  }
  if (primary->num_records() != 0 || replica->num_records() != 0) {
    return Status::InvalidArgument(
        "replicated copies must start empty (records arrive through the "
        "composite's Insert)");
  }
  const std::uint64_t offset = ReplicaOffset(placement, m);
  if (offset == 0) {
    return Status::InvalidArgument("replica offset is zero for M=" +
                                   std::to_string(m));
  }
  // The whole degraded-routing contract rests on the replica being the
  // +offset rotation of the primary; verify it bucket by bucket (or by
  // sample when the maps are too large to precompute).
  const DeviceMap& pmap = primary->device_map();
  const DeviceMap& rmap = replica->device_map();
  const std::uint64_t total = primary->spec().TotalBuckets();
  const std::uint64_t step =
      (pmap.precomputed() && rmap.precomputed())
          ? 1
          : std::max<std::uint64_t>(1, total / 4096);
  for (std::uint64_t b = 0; b < total; b += step) {
    if (rmap.DeviceOfLinear(b) != (pmap.DeviceOfLinear(b) + offset) % m) {
      return Status::InvalidArgument(
          "replica placement is not the +" + std::to_string(offset) +
          " rotation of the primary (bucket " + std::to_string(b) + ")");
    }
  }
  return ReplicatedBackend(std::move(primary), std::move(replica), placement,
                           offset);
}

Status ReplicatedBackend::MarkDown(std::uint64_t device) {
  const std::uint64_t m = num_devices();
  if (device >= m) {
    return Status::InvalidArgument("no such device: " +
                                   std::to_string(device));
  }
  if (down_[device] != 0) {
    return Status::FailedPrecondition("device " + std::to_string(device) +
                                      " is already down");
  }
  down_[device] = 1;
  ++num_down_;
  // Availability invariant: for every down device f, the holder of its
  // replica (f + offset) must be up, and f must not hold the only live
  // copy of another down device's buckets.
  for (std::uint64_t f = 0; f < m; ++f) {
    if (down_[f] != 0 && down_[(f + offset_) % m] != 0) {
      down_[device] = 0;
      --num_down_;
      return Status::FailedPrecondition(
          "marking device " + std::to_string(device) +
          " down would leave both copies of device " + std::to_string(f) +
          "'s buckets unreachable (replica holder " +
          std::to_string((f + offset_) % m) + " is down)");
    }
  }
  if (num_down_ == 1) single_down_ = device;
  // A state flip re-routes scans and changes QueryStats accounting, so
  // results cached before it must invalidate (see MutationEpoch).
  BumpMutationEpoch();
  return Status::OK();
}

Status ReplicatedBackend::MarkUp(std::uint64_t device) {
  if (device >= num_devices()) {
    return Status::InvalidArgument("no such device: " +
                                   std::to_string(device));
  }
  if (down_[device] == 0) {
    return Status::FailedPrecondition("device " + std::to_string(device) +
                                      " is not down");
  }
  down_[device] = 0;
  --num_down_;
  if (num_down_ == 1) {
    for (std::uint64_t d = 0; d < num_devices(); ++d) {
      if (down_[d] != 0) single_down_ = d;
    }
  }
  BumpMutationEpoch();
  return Status::OK();
}

Status ReplicatedBackend::Insert(Record record) {
  if (num_down_ > 0) {
    return Status::FailedPrecondition(
        "replicated backend is read-only while degraded (" +
        std::to_string(num_down_) + " device(s) down)");
  }
  Record copy = record;
  FXDIST_RETURN_NOT_OK(primary_->Insert(std::move(record)));
  return replica_->Insert(std::move(copy));
}

Result<std::uint64_t> ReplicatedBackend::Delete(const ValueQuery& query) {
  if (num_down_ > 0) {
    return Status::FailedPrecondition(
        "replicated backend is read-only while degraded (" +
        std::to_string(num_down_) + " device(s) down)");
  }
  auto removed = primary_->Delete(query);
  FXDIST_RETURN_NOT_OK(removed.status());
  auto replica_removed = replica_->Delete(query);
  FXDIST_RETURN_NOT_OK(replica_removed.status());
  if (*removed != *replica_removed) {
    return Status::Internal("replica delete count diverged: " +
                            std::to_string(*removed) + " vs " +
                            std::to_string(*replica_removed));
  }
  return *removed;
}

std::uint64_t ReplicatedBackend::ServingDevice(
    std::uint64_t device, std::uint64_t linear_bucket) const {
  if (num_down_ == 0) return device;
  const std::uint64_t m = num_devices();
  if (down_[device] != 0) return (device + offset_) % m;
  if (placement_ == ReplicaPlacement::kMirrored) return device;
  // Chained re-balancing: only well-defined for a single failure, and it
  // needs the per-device bucket index to rank this bucket.
  if (num_down_ != 1) return device;
  const DeviceMap& map = primary_->device_map();
  if (!map.precomputed()) return device;
  const std::uint64_t k = (device + m - single_down_) % m;
  if (k == m - 1) return device;  // the shed target would be the failed one
  const std::vector<std::uint64_t>& owned = map.BucketsOnDevice(device);
  const std::uint64_t keep =
      (k * owned.size() + (m - 2)) / (m - 1);  // ceil(k/(m-1) * n)
  const auto rank = static_cast<std::uint64_t>(
      std::lower_bound(owned.begin(), owned.end(), linear_bucket) -
      owned.begin());
  return rank < keep ? device : (device + 1) % m;
}

void ReplicatedBackend::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  if (ServingDevice(device, linear_bucket) == device) {
    primary_->ScanBucket(device, linear_bucket, fn);
  } else {
    // Any re-route — forced (device down) or chained shedding — lands on
    // the replica's holder of this bucket, (device + offset) mod M.
    replica_->ScanBucket((device + offset_) % num_devices(), linear_bucket,
                         fn);
  }
}

bool ReplicatedBackend::IsBucketLive(std::uint64_t device,
                                     std::uint64_t linear_bucket) const {
  if (ServingDevice(device, linear_bucket) == device) {
    return primary_->IsBucketLive(device, linear_bucket);
  }
  return replica_->IsBucketLive((device + offset_) % num_devices(),
                                linear_bucket);
}

Result<QueryResult> ReplicatedBackend::Execute(
    const ValueQuery& query) const {
  return ExecuteRouted(*this, query);
}

void ReplicatedBackend::SaveParams(std::ostream& out) const {
  out << "placement "
      << (placement_ == ReplicaPlacement::kMirrored ? "mirrored" : "chained")
      << '\n';
  out << "down " << num_down_;
  for (std::uint64_t d = 0; d < num_devices(); ++d) {
    if (down_[d] != 0) out << ' ' << d;
  }
  out << '\n';
  out << "child " << primary_->backend_name() << '\n';
  primary_->SaveParams(out);
}

Result<std::unique_ptr<ReplicatedBackend>> MakeReplicatedFlat(
    const Schema& schema, std::uint64_t num_devices,
    const std::string& distribution, ReplicaPlacement placement,
    std::uint64_t seed) {
  auto primary = ParallelFile::Create(schema, num_devices, distribution, seed);
  FXDIST_RETURN_NOT_OK(primary.status());
  const std::uint64_t offset =
      ReplicatedBackend::ReplicaOffset(placement, num_devices);
  auto replica = ParallelFile::Create(
      schema, num_devices, "rot" + std::to_string(offset) + ":" + distribution,
      seed);
  FXDIST_RETURN_NOT_OK(replica.status());
  auto composed = ReplicatedBackend::Create(
      std::make_unique<ParallelFile>(*std::move(primary)),
      std::make_unique<ParallelFile>(*std::move(replica)), placement);
  FXDIST_RETURN_NOT_OK(composed.status());
  return std::make_unique<ReplicatedBackend>(*std::move(composed));
}

}  // namespace fxdist
