#include "sim/queueing.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "analysis/fast_response.h"
#include "core/fx.h"
#include "core/gdm.h"
#include "core/modulo.h"
#include "util/random.h"

namespace fxdist {

namespace {

/// How a method's response vector shifts with the specified values.
enum class ShiftKind { kXor, kRotate, kNone };

struct LoadModel {
  ShiftKind shift = ShiftKind::kNone;
  const FXDistribution* fx = nullptr;
  const GDMDistribution* gdm = nullptr;
  bool is_modulo = false;
};

LoadModel ClassifyMethod(const DistributionMethod& method) {
  LoadModel model;
  if ((model.fx = dynamic_cast<const FXDistribution*>(&method)) != nullptr) {
    model.shift = ShiftKind::kXor;
  } else if (dynamic_cast<const ModuloDistribution*>(&method) != nullptr) {
    model.shift = ShiftKind::kRotate;
    model.is_modulo = true;
  } else if ((model.gdm = dynamic_cast<const GDMDistribution*>(&method)) !=
             nullptr) {
    model.shift = ShiftKind::kRotate;
  }
  return model;
}

/// Fold of the specified values that indexes the shifted base vector.
std::uint64_t SpecifiedShift(const LoadModel& model,
                             const DistributionMethod& method,
                             const PartialMatchQuery& query) {
  const FieldSpec& spec = method.spec();
  if (model.shift == ShiftKind::kXor) {
    return model.fx->SpecifiedFold(query);
  }
  std::uint64_t sum = 0;
  for (unsigned i = 0; i < spec.num_fields(); ++i) {
    if (!query.is_specified(i)) continue;
    const std::uint64_t mult =
        model.is_modulo ? 1 : model.gdm->multipliers()[i];
    sum += mult * query.value(i);
  }
  return sum % spec.num_devices();
}

}  // namespace

Result<QueueingResult> SimulateQueueing(const DistributionMethod& method,
                                        const QueueingConfig& config) {
  const FieldSpec& spec = method.spec();
  if (config.arrival_rate_qps <= 0.0) {
    return Status::InvalidArgument("arrival rate must be positive");
  }
  if (config.num_queries == 0) {
    return Status::InvalidArgument("need at least one query");
  }
  const LoadModel model = ClassifyMethod(method);
  if (model.shift == ShiftKind::kNone &&
      spec.TotalBuckets() > config.enumeration_budget) {
    return Status::InvalidArgument(
        method.name() + " needs per-query enumeration and the bucket "
                        "space exceeds the budget");
  }
  if (!config.device_speed_factors.empty() &&
      config.device_speed_factors.size() != spec.num_devices()) {
    return Status::InvalidArgument(
        "device_speed_factors must have one entry per device");
  }
  for (double f : config.device_speed_factors) {
    if (f <= 0.0) {
      return Status::InvalidArgument("speed factors must be positive");
    }
  }

  const std::uint64_t m = spec.num_devices();
  const unsigned n = spec.num_fields();
  const double per_bucket_ms =
      config.positioning_ms + config.transfer_ms_per_bucket;

  Xoshiro256 rng(config.seed);
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> base_cache;

  std::vector<double> device_free(m, 0.0);
  std::vector<double> device_busy(m, 0.0);
  std::vector<double> responses;
  responses.reserve(config.num_queries);

  double now = 0.0;
  double makespan = 0.0;
  const double mean_interarrival_ms = 1000.0 / config.arrival_rate_qps;

  for (std::uint64_t q = 0; q < config.num_queries; ++q) {
    // Poisson arrivals: exponential interarrival times.
    now += -mean_interarrival_ms * std::log(1.0 - rng.NextDouble());

    // Draw the query: per-field specification + uniform values.
    std::uint64_t mask = 0;
    PartialMatchQuery query(n);
    for (unsigned i = 0; i < n; ++i) {
      if (rng.NextBool(config.specified_probability)) {
        query.Specify(i, rng.NextBounded(spec.field_size(i)));
      } else {
        mask |= std::uint64_t{1} << i;
      }
    }

    // Per-device loads.
    std::vector<std::uint64_t> loads(m);
    if (model.shift == ShiftKind::kNone) {
      loads = ComputeResponseVector(method, query).per_device;
    } else {
      auto it = base_cache.find(mask);
      if (it == base_cache.end()) {
        it = base_cache
                 .emplace(mask, MaskResponse(method, mask).per_device)
                 .first;
      }
      const std::vector<std::uint64_t>& base = it->second;
      const std::uint64_t shift = SpecifiedShift(model, method, query);
      for (std::uint64_t d = 0; d < m; ++d) {
        // Base vector holds counts for specified values = 0; a real
        // query's device d load is base at the pre-image of d.
        const std::uint64_t src = model.shift == ShiftKind::kXor
                                      ? (d ^ shift)
                                      : (d + m - shift % m) % m;
        loads[d] = base[src];
      }
    }

    // FCFS devices, one batch job per device, arrival-ordered exactness.
    double completion = now;
    for (std::uint64_t d = 0; d < m; ++d) {
      if (loads[d] == 0) continue;
      const double speed = config.device_speed_factors.empty()
                               ? 1.0
                               : config.device_speed_factors[d];
      const double service =
          static_cast<double>(loads[d]) * per_bucket_ms * speed;
      const double start = std::max(now, device_free[d]);
      device_free[d] = start + service;
      device_busy[d] += service;
      completion = std::max(completion, device_free[d]);
    }
    responses.push_back(completion - now);
    makespan = std::max(makespan, completion);
  }

  QueueingResult result;
  result.queries = config.num_queries;
  std::sort(responses.begin(), responses.end());
  double sum = 0.0;
  for (double r : responses) sum += r;
  result.mean_response_ms = sum / static_cast<double>(responses.size());
  result.p50_response_ms = responses[responses.size() / 2];
  result.p95_response_ms = responses[responses.size() * 95 / 100];
  result.max_response_ms = responses.back();
  if (makespan > 0.0) {
    result.throughput_qps = static_cast<double>(config.num_queries) /
                            (makespan / 1000.0);
    double util_sum = 0.0, util_max = 0.0;
    for (std::uint64_t d = 0; d < m; ++d) {
      const double u = device_busy[d] / makespan;
      util_sum += u;
      util_max = std::max(util_max, u);
    }
    result.mean_device_utilization = util_sum / static_cast<double>(m);
    result.max_device_utilization = util_max;
  }
  return result;
}

}  // namespace fxdist
