// PackedBackend: an immutable StorageBackend over one block-compressed
// file (format in sim/packed_format.h).
//
// Where the flat/paged/dynamic backends keep every record resident, a
// packed file is mapped read-only and decoded lazily, one block at a
// time, as ScanBucket/ScanMany touch it — the plocate shape applied to
// the paper's bucket space.  Placement is answered with zero decode
// work by an empty "twin" backend rebuilt from the blueprint embedded
// in the file (the same trick the remote handshake uses), so packed
// files drop into every plane that already speaks StorageBackend:
// the engine, sharded/replicated composites, and shard servers.
//
// Contract notes:
//  * Read-only: Insert/Delete return FailedPrecondition.  New data means
//    a new file (PackedBuilder / PackBackend).
//  * ScanRecordsAreStable() is false: records are materialized out of a
//    bounded decode cache, so references handed to scan callbacks are
//    valid only during the callback.
//  * Any decode failure (checksum, varint overrun, truncation) poisons
//    Health() with DataLoss; ScanBucket then visits nothing more and
//    executors escalate, exactly like a remote shard past its retry
//    budget.

#ifndef FXDIST_SIM_PACKED_BACKEND_H_
#define FXDIST_SIM_PACKED_BACKEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/packed_format.h"
#include "sim/storage_backend.h"
#include "util/status.h"

namespace fxdist {

struct PackedOptions {
  /// Records per record block at build time (decode granularity).
  std::uint64_t records_per_block = packed::kDefaultRecordsPerBlock;
  /// Decoded record blocks kept resident (LRU); >= 1.
  std::size_t cache_blocks = 16;
  /// When opening: verify every block checksum up front instead of
  /// lazily on first touch — turns any payload corruption into an Open
  /// error rather than a poisoned scan later.
  bool verify_all_checksums = false;
};

/// Streams records into a packed file without holding it in RAM: record
/// blocks are flushed as they fill; only the posting-id lists and
/// directory entries stay resident until Finish().
class PackedBuilder {
 public:
  /// A builder routing records through a fresh flat placement plane
  /// (schema + distribution + seed), like ParallelFile::Create.
  static Result<PackedBuilder> Create(const Schema& schema,
                                      std::uint64_t num_devices,
                                      const std::string& distribution,
                                      std::uint64_t seed,
                                      const std::string& path,
                                      PackedOptions options = {});

  PackedBuilder(PackedBuilder&&) noexcept;
  PackedBuilder& operator=(PackedBuilder&&) noexcept;
  ~PackedBuilder();

  /// Routes and appends one record.  Records not owned by the builder's
  /// device filter (see PackBackend's only_device) are skipped silently.
  Status Add(const Record& record);

  /// Flushes the tail block, writes directories + blueprint, and seals
  /// the header.  The builder is unusable afterwards.
  Status Finish();

  /// Records written so far (skipped ones excluded).
  std::uint64_t records_added() const;

 private:
  friend Result<std::uint64_t> PackBackend(
      const StorageBackend& source, const std::string& path,
      PackedOptions options, std::optional<std::uint64_t> only_device);
  struct Impl;
  explicit PackedBuilder(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Converts any existing backend: streams source.ForEachLiveRecord into
/// a packed file at `path`, routing through the source's own placement.
/// With `only_device`, keeps just that device's records (per-shard files
/// for sharded serving).  Returns the number of records written.
Result<std::uint64_t> PackBackend(
    const StorageBackend& source, const std::string& path,
    PackedOptions options = {},
    std::optional<std::uint64_t> only_device = std::nullopt);

class PackedBackend final : public StorageBackend {
 public:
  /// Maps `path` read-only (mmap; falls back to a heap read where
  /// mapping fails) and validates header + directories.  The file's own
  /// records_per_block is authoritative; options.records_per_block is
  /// ignored here.
  static Result<std::unique_ptr<PackedBackend>> Open(
      const std::string& path, PackedOptions options = {});

  /// Same validation over an in-memory image — the fuzz/corruption
  /// entry point.
  static Result<std::unique_ptr<PackedBackend>> OpenFromBuffer(
      std::string bytes, PackedOptions options = {});

  ~PackedBackend() override;
  PackedBackend(const PackedBackend&) = delete;
  PackedBackend& operator=(const PackedBackend&) = delete;

  std::string backend_name() const override { return "packed"; }
  const FieldSpec& spec() const override { return twin_->spec(); }
  const DistributionMethod& method() const override {
    return twin_->method();
  }
  const DeviceMap& device_map() const override {
    return twin_->device_map();
  }
  std::uint64_t num_records() const override { return header_.num_records; }

  Status Insert(Record record) override;
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return twin_->HashQuery(query);
  }
  Result<BucketId> HashRecord(const Record& record) const override {
    return twin_->HashRecord(record);
  }

  Status Health() const override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;
  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;
  bool ScanRecordsAreStable() const override { return false; }
  bool IsReadOnly() const override { return true; }

  Result<QueryResult> Execute(const ValueQuery& query) const override;

  std::vector<std::uint64_t> RecordCountsPerDevice() const override {
    return directory_.device_records;
  }
  std::vector<ValueType> FieldTypes() const override {
    return directory_.field_types;
  }

  /// Directory vectors + cached decoded blocks + resident mapped pages
  /// (mincore) — what this process actually pays, not the file size.
  std::uint64_t ApproxMemoryBytes() const override;

  /// "child <kind>" + the twin's params: LoadBackend on a packed save
  /// "unpacks" back to the source kind.
  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  /// Kind tag of the source backend the file was packed from.
  std::string source_kind() const { return twin_->backend_name(); }
  std::uint64_t file_size() const { return header_.file_size; }

 private:
  PackedBackend() = default;

  /// Validates the mapped image and builds the twin.
  Status Init(PackedOptions options);
  const packed::BucketEntry* FindEntry(std::uint64_t device,
                                       std::uint64_t linear) const;
  /// Decodes and visits one bucket; any DataLoss poisons Health().
  Status ScanEntry(const packed::BucketEntry& entry,
                   const std::function<bool(const Record&)>& fn) const;
  Result<std::shared_ptr<const std::vector<Record>>> GetBlock(
      std::uint64_t index) const;
  void Poison(const Status& status) const;
  std::uint64_t BlockRecordCount(std::uint64_t index) const;

  std::string path_;
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;  ///< non-null iff mmap-backed
  std::string owned_;        ///< heap image otherwise
  PackedOptions options_;
  packed::Header header_;
  packed::Directory directory_;
  std::vector<packed::BlockEntry> blocks_;
  std::unique_ptr<StorageBackend> twin_;

  struct CacheSlot {
    std::shared_ptr<const std::vector<Record>> block;
    std::uint64_t tick = 0;
  };
  mutable std::mutex mutex_;  ///< guards cache_, tick_, health_
  mutable std::map<std::uint64_t, CacheSlot> cache_;
  mutable std::uint64_t tick_ = 0;
  mutable Status health_;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PACKED_BACKEND_H_
