// Composite storage backends: the serving plane assembled from child
// StorageBackends instead of one monolithic file.
//
// ShardedBackend owns one child backend per device of the placement
// plane.  Every Insert routes through the cached DeviceMap to the owning
// child, every scan goes to the shard that owns the device, and Execute
// merges per-shard accounting so QueryStats are bit-identical to a
// monolithic backend over the same records.  The composite's placement
// plane is *frozen* at construction: children whose bucket space can
// change (dynamic files) must be provisioned large enough not to grow —
// a child that outgrows the plane poisons the composite: the offending
// Insert and every operation after it (reads included — the frozen
// plane's linear bucket ids no longer mean the same thing inside the
// grown child) fails with a clean FailedPrecondition instead of
// silently diverging.
//
// ReplicatedBackend pairs a primary placement with the paper-style
// complementary replica: the same file built under "rot<k>:<primary>"
// (core/rotation.h), k = M/2 for mirrored declustering, k = 1 for
// chained.  MarkDown/MarkUp flip runtime device state; while a device is
// down, every scan it owned is served from the replica's holder and the
// degraded QueryStats charge the serving device, matching the
// analysis/availability model (mirrored: the partner absorbs the whole
// orphaned share; chained: survivors shed decreasing fractions of their
// own primaries down the chain).  Degraded mode is read-only, and
// marking down both a device and its replica partner is refused — that
// would lose both copies of its buckets.

#ifndef FXDIST_SIM_COMPOSITE_BACKEND_H_
#define FXDIST_SIM_COMPOSITE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/availability.h"
#include "sim/storage_backend.h"

namespace fxdist {

class ShardedBackend : public StorageBackend {
 public:
  /// Takes one identically-constructed, empty child per device
  /// (children.size() must equal each child's num_devices()).  All
  /// children must agree on kind and bucket-space shape; child 0 doubles
  /// as the composite's placement plane.
  static Result<ShardedBackend> Create(
      std::vector<std::unique_ptr<StorageBackend>> children);

  std::string backend_name() const override { return "sharded"; }
  const FieldSpec& spec() const override { return children_.front()->spec(); }
  const DistributionMethod& method() const override {
    return children_.front()->method();
  }
  const DeviceMap& device_map() const override {
    return children_.front()->device_map();
  }
  std::uint64_t num_records() const override;

  Status Insert(Record record) override;
  /// Routes the batch in one pass: records are grouped by owning child
  /// (preserving arrival order within each group — same-bucket records
  /// land on the same child, so per-bucket scan order matches a loop of
  /// Insert) and each touched child gets one InsertBatch call.  A remote
  /// child turns its group into one frame per chunk.
  Status InsertBatch(std::vector<Record> records) override;
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return children_.front()->HashQuery(query);
  }
  Result<BucketId> HashRecord(const Record& record) const override {
    return children_.front()->HashRecord(record);
  }

  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override {
    children_[device]->ScanBucket(device, linear_bucket, fn);
  }
  /// Scatter-gather: the refs are grouped by owning child and each
  /// child gets its whole group as one ScanMany (a remote child turns
  /// that into one frame per chunk instead of one per bucket).  Groups
  /// for distinct children run concurrently, each bounded by that
  /// child's own deadline budget; `fn` must therefore tolerate
  /// concurrent calls for distinct ref indices.  `fn` returning false
  /// cancels the whole scatter: children not yet started are skipped and
  /// concurrently-delivering children stop at their next record.
  void ScanMany(
      const std::vector<BucketRef>& refs,
      const std::function<bool(std::size_t, const Record&)>& fn)
      const override;
  /// True when any child's gather blocks on the wire.
  bool ScanPrefersFanout() const override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override {
    return children_[device]->IsBucketLive(device, linear_bucket);
  }

  Result<QueryResult> Execute(const ValueQuery& query) const override;
  std::vector<std::uint64_t> RecordCountsPerDevice() const override;

  /// Sum of the children's epochs: every routed Insert/Delete bumps its
  /// owning child, so the aggregate is monotone and changes iff some
  /// child's state did.
  std::uint64_t MutationEpoch() const override {
    std::uint64_t sum = 0;
    for (const auto& child : children_) sum += child->MutationEpoch();
    return sum;
  }

  /// Poisoned state, or the first unhealthy child (a remote shard past
  /// its retry budget surfaces here as Unavailable).
  Status Health() const override;

  bool ScanRecordsAreStable() const override {
    for (const auto& child : children_) {
      if (!child->ScanRecordsAreStable()) return false;
    }
    return true;
  }
  std::vector<ValueType> FieldTypes() const override {
    return children_.front()->FieldTypes();
  }
  std::uint64_t ApproxMemoryBytes() const override {
    std::uint64_t bytes = 0;
    for (const auto& child : children_) bytes += child->ApproxMemoryBytes();
    return bytes;
  }

  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  const std::string& child_kind() const { return child_kind_; }
  const StorageBackend& child(std::uint64_t device) const {
    return *children_[device];
  }

 private:
  explicit ShardedBackend(
      std::vector<std::unique_ptr<StorageBackend>> children);

  std::vector<std::unique_ptr<StorageBackend>> children_;
  std::string child_kind_;
  /// Bucket-space shape the plane was frozen at (see file comment).
  std::vector<std::uint64_t> frozen_sizes_;
  /// Non-empty once a child outgrew the plane; every operation repeats
  /// this FailedPrecondition from then on.
  std::string poisoned_;
};

class ReplicatedBackend : public StorageBackend {
 public:
  /// Device offset of the complementary replica: M/2 for mirrored
  /// declustering, 1 for chained.
  static std::uint64_t ReplicaOffset(ReplicaPlacement placement,
                                     std::uint64_t num_devices) {
    return placement == ReplicaPlacement::kMirrored ? num_devices / 2 : 1;
  }

  /// `replica` must be the same file as `primary` (kind, shape, seed)
  /// built under the rotated distribution "rot<offset>:<primary spec>";
  /// the rotation is verified against the device maps.  Both must be
  /// empty — records arrive through the composite's Insert, which writes
  /// both copies.  Children with mutable bucket spaces (dynamic) are
  /// rejected: growth re-plans placement per copy, uncoordinated.
  static Result<ReplicatedBackend> Create(
      std::unique_ptr<StorageBackend> primary,
      std::unique_ptr<StorageBackend> replica, ReplicaPlacement placement);

  /// Takes `device` out of service.  Refused (FailedPrecondition, no
  /// state change) if the device is already down or if losing it would
  /// leave some bucket with both copies down.
  Status MarkDown(std::uint64_t device);
  /// Returns `device` to service.
  Status MarkUp(std::uint64_t device);
  bool IsDown(std::uint64_t device) const {
    return device < down_.size() && down_[device] != 0;
  }
  std::uint64_t num_down() const { return num_down_; }
  ReplicaPlacement placement() const { return placement_; }
  std::uint64_t replica_offset() const { return offset_; }

  std::string backend_name() const override { return "replicated"; }
  const FieldSpec& spec() const override { return primary_->spec(); }
  const DistributionMethod& method() const override {
    return primary_->method();
  }
  const DeviceMap& device_map() const override {
    return primary_->device_map();
  }
  std::uint64_t num_records() const override {
    return primary_->num_records();
  }

  /// Writes both copies.  Refused while any device is down (degraded
  /// mode is read-only: the down copy would silently miss the write).
  Status Insert(Record record) override;
  /// Deletes from both copies.  Refused while any device is down.
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return primary_->HashQuery(query);
  }
  Result<BucketId> HashRecord(const Record& record) const override {
    return primary_->HashRecord(record);
  }

  /// Healthy: every bucket is served where the primary placed it.  With
  /// device f down, mirrored routing sends all of f's buckets to the
  /// partner (f + M/2) mod M; chained routing sends them to (f + 1) and
  /// rebalances down the chain: survivor f + k keeps the fraction
  /// k/(M-1) of its own primaries (its first ceil(k/(M-1) * n) buckets
  /// in ascending linear order) and serves the rest from its successor's
  /// replica — Hsiao & DeWitt's chained-declustering balance, and the
  /// bucket-level realization of AnalyzeDegradedMode's chained model.
  /// With several devices down (or no precomputed device table), chained
  /// routing falls back to the forced re-route only.
  std::uint64_t ServingDevice(std::uint64_t device,
                              std::uint64_t linear_bucket) const override;
  bool HasDegradedRouting() const override { return num_down_ > 0; }

  /// Serves from the copy ServingDevice names: the primary in place, or
  /// the replica's rotated holder.  Record order is identical either way
  /// (both copies replay the same insert order).
  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;
  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;

  Result<QueryResult> Execute(const ValueQuery& query) const override;
  std::vector<std::uint64_t> RecordCountsPerDevice() const override {
    return primary_->RecordCountsPerDevice();
  }

  /// Children's epochs plus this composite's own counter, which
  /// MarkDown/MarkUp bump: a device-state flip changes degraded routing
  /// (and with it QueryStats accounting), so cached results computed
  /// before the flip must invalidate even though no record moved.
  std::uint64_t MutationEpoch() const override {
    return StorageBackend::MutationEpoch() + primary_->MutationEpoch() +
           replica_->MutationEpoch();
  }

  Status Health() const override {
    if (auto st = primary_->Health(); !st.ok()) return st;
    return replica_->Health();
  }

  bool ScanRecordsAreStable() const override {
    return primary_->ScanRecordsAreStable() &&
           replica_->ScanRecordsAreStable();
  }
  std::vector<ValueType> FieldTypes() const override {
    return primary_->FieldTypes();
  }
  std::uint64_t ApproxMemoryBytes() const override {
    return primary_->ApproxMemoryBytes() + replica_->ApproxMemoryBytes();
  }

  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override {
    primary_->ForEachLiveRecord(fn);
  }

  const StorageBackend& primary() const { return *primary_; }
  const StorageBackend& replica() const { return *replica_; }

 private:
  ReplicatedBackend(std::unique_ptr<StorageBackend> primary,
                    std::unique_ptr<StorageBackend> replica,
                    ReplicaPlacement placement, std::uint64_t offset);

  std::unique_ptr<StorageBackend> primary_;
  std::unique_ptr<StorageBackend> replica_;
  ReplicaPlacement placement_;
  std::uint64_t offset_;
  std::vector<char> down_;
  std::uint64_t num_down_ = 0;
  std::uint64_t single_down_ = 0;  ///< the failed device when num_down_ == 1
};

/// Convenience: a replicated pair of flat ParallelFiles — the primary
/// under `distribution`, the replica under its complementary rotation.
Result<std::unique_ptr<ReplicatedBackend>> MakeReplicatedFlat(
    const Schema& schema, std::uint64_t num_devices,
    const std::string& distribution, ReplicaPlacement placement,
    std::uint64_t seed = 0);

}  // namespace fxdist

#endif  // FXDIST_SIM_COMPOSITE_BACKEND_H_
