#include "sim/packed_backend.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>
#include <variant>

#include "analysis/optimality.h"
#include "core/bucket.h"
#include "sim/parallel_file.h"
#include "sim/persistence.h"
#include "sim/timing.h"

namespace fxdist {

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

// -- PackedBuilder ---------------------------------------------------------

struct PackedBuilder::Impl {
  std::string path;
  PackedOptions options;
  std::string blueprint;
  std::unique_ptr<StorageBackend> owned_router;
  const StorageBackend* router = nullptr;  ///< placement plane for Add
  std::optional<std::uint64_t> only_device;
  std::ofstream out;
  std::uint64_t write_off = packed::kHeaderSize;
  std::uint64_t next_id = 0;
  /// (device, linear) -> ascending record ids.  std::map keeps the
  /// directory's required (device, linear) order for free.
  std::map<std::pair<std::uint64_t, std::uint64_t>,
           std::vector<std::uint64_t>>
      postings;
  std::vector<std::uint64_t> device_records;
  std::vector<ValueType> field_types;
  std::string pending;  ///< the record block being filled
  std::uint64_t pending_count = 0;
  std::vector<packed::BlockEntry> blocks;
  bool finished = false;

  Status OpenOutput(const std::string& file_path,
                    const PackedOptions& opts, std::uint64_t num_devices) {
    if (opts.records_per_block == 0 ||
        opts.records_per_block >
            std::numeric_limits<std::uint32_t>::max()) {
      return Status::InvalidArgument(
          "records_per_block must be in [1, 2^32)");
    }
    path = file_path;
    options = opts;
    device_records.assign(num_devices, 0);
    out.open(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::NotFound("cannot create packed file: " + path);
    }
    const std::string placeholder(packed::kHeaderSize, '\0');
    out.write(placeholder.data(),
              static_cast<std::streamsize>(placeholder.size()));
    if (!out) return Status::Internal("write failed: " + path);
    return Status::OK();
  }

  Status WriteBytes(const std::string& bytes) {
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) return Status::Internal("write failed: " + path);
    write_off += bytes.size();
    return Status::OK();
  }

  Status FlushBlock() {
    if (pending_count == 0) return Status::OK();
    packed::BlockEntry entry;
    entry.offset = write_off;
    entry.clen = pending.size();
    entry.checksum = packed::Checksum(pending);
    FXDIST_RETURN_NOT_OK(WriteBytes(pending));
    blocks.push_back(entry);
    pending.clear();
    pending_count = 0;
    return Status::OK();
  }

  Status Add(const Record& record) {
    if (finished) {
      return Status::FailedPrecondition("packed builder already finished");
    }
    auto bucket = router->HashRecord(record);
    FXDIST_RETURN_NOT_OK(bucket.status());
    const std::uint64_t device = router->device_map().DeviceOf(*bucket);
    if (only_device.has_value() && device != *only_device) {
      return Status::OK();
    }
    const std::uint64_t linear = LinearIndex(router->spec(), *bucket);
    postings[{device, linear}].push_back(next_id);
    ++device_records[device];
    packed::EncodeRecord(pending, record);
    ++pending_count;
    ++next_id;
    if (pending_count == options.records_per_block) return FlushBlock();
    return Status::OK();
  }

  Status Finish() {
    if (finished) {
      return Status::FailedPrecondition("packed builder already finished");
    }
    if (field_types.empty()) {
      return Status::InvalidArgument(
          "cannot pack without field types (empty schema)");
    }
    FXDIST_RETURN_NOT_OK(FlushBlock());
    if (blocks.size() > std::numeric_limits<std::uint32_t>::max()) {
      return Status::InvalidArgument("too many record blocks");
    }

    packed::Directory directory;
    directory.device_records = device_records;
    directory.field_types = field_types;
    for (const auto& [key, ids] : postings) {
      const std::string block = packed::EncodePostings(ids);
      packed::BucketEntry entry;
      entry.device = key.first;
      entry.linear = key.second;
      entry.count = ids.size();
      entry.offset = write_off;
      entry.clen = block.size();
      entry.rlen = ids.size() * 8;
      entry.checksum = packed::Checksum(block);
      FXDIST_RETURN_NOT_OK(WriteBytes(block));
      directory.buckets.push_back(entry);
    }

    packed::Header header;
    header.num_devices = device_records.size();
    header.num_records = next_id;
    header.num_buckets = directory.buckets.size();
    header.records_per_block =
        static_cast<std::uint32_t>(options.records_per_block);
    header.num_record_blocks = static_cast<std::uint32_t>(blocks.size());

    const std::string directory_bytes = packed::EncodeDirectory(directory);
    header.directory_off = write_off;
    header.directory_len = directory_bytes.size();
    FXDIST_RETURN_NOT_OK(WriteBytes(directory_bytes));

    const std::string block_dir_bytes = packed::EncodeBlockDirectory(blocks);
    header.rblock_dir_off = write_off;
    header.rblock_dir_len = block_dir_bytes.size();
    FXDIST_RETURN_NOT_OK(WriteBytes(block_dir_bytes));

    header.blueprint_off = write_off;
    header.blueprint_len = blueprint.size();
    FXDIST_RETURN_NOT_OK(WriteBytes(blueprint));

    header.file_size = write_off;
    out.seekp(0);
    const std::string header_bytes = packed::EncodeHeader(header);
    out.write(header_bytes.data(),
              static_cast<std::streamsize>(header_bytes.size()));
    out.flush();
    if (!out) return Status::Internal("write failed: " + path);
    out.close();
    finished = true;
    return Status::OK();
  }
};

PackedBuilder::PackedBuilder(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
PackedBuilder::PackedBuilder(PackedBuilder&&) noexcept = default;
PackedBuilder& PackedBuilder::operator=(PackedBuilder&&) noexcept = default;
PackedBuilder::~PackedBuilder() = default;

Result<PackedBuilder> PackedBuilder::Create(const Schema& schema,
                                            std::uint64_t num_devices,
                                            const std::string& distribution,
                                            std::uint64_t seed,
                                            const std::string& path,
                                            PackedOptions options) {
  auto router = ParallelFile::Create(schema, num_devices, distribution, seed);
  FXDIST_RETURN_NOT_OK(router.status());
  auto impl = std::make_unique<Impl>();
  impl->owned_router = std::make_unique<ParallelFile>(std::move(*router));
  impl->router = impl->owned_router.get();
  impl->blueprint = BackendBlueprintText(*impl->router);
  impl->field_types.reserve(schema.num_fields());
  for (unsigned i = 0; i < schema.num_fields(); ++i) {
    impl->field_types.push_back(schema.field(i).type);
  }
  FXDIST_RETURN_NOT_OK(impl->OpenOutput(path, options, num_devices));
  return PackedBuilder(std::move(impl));
}

Status PackedBuilder::Add(const Record& record) { return impl_->Add(record); }

Status PackedBuilder::Finish() { return impl_->Finish(); }

std::uint64_t PackedBuilder::records_added() const { return impl_->next_id; }

Result<std::uint64_t> PackBackend(const StorageBackend& source,
                                  const std::string& path,
                                  PackedOptions options,
                                  std::optional<std::uint64_t> only_device) {
  if (only_device.has_value() && *only_device >= source.num_devices()) {
    return Status::InvalidArgument("only_device outside the source's range");
  }
  auto impl = std::make_unique<PackedBuilder::Impl>();
  impl->router = &source;
  impl->blueprint = BackendBlueprintText(source);
  impl->field_types = source.FieldTypes();
  impl->only_device = only_device;
  FXDIST_RETURN_NOT_OK(
      impl->OpenOutput(path, options, source.num_devices()));
  Status failed;
  source.ForEachLiveRecord([&impl, &failed](const Record& record) {
    if (!failed.ok()) return;
    failed = impl->Add(record);
  });
  FXDIST_RETURN_NOT_OK(failed);
  FXDIST_RETURN_NOT_OK(impl->Finish());
  return impl->next_id;
}

// -- PackedBackend ---------------------------------------------------------

Result<std::unique_ptr<PackedBackend>> PackedBackend::Open(
    const std::string& path, PackedOptions options) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open packed file: " + path);
  }
  struct ::stat info {};
  if (::fstat(fd, &info) != 0 || info.st_size < 0) {
    ::close(fd);
    return Status::Internal("cannot stat packed file: " + path);
  }
  const std::size_t size = static_cast<std::size_t>(info.st_size);
  std::unique_ptr<PackedBackend> backend(new PackedBackend());
  backend->path_ = path;
  void* mapping = size == 0
                      ? MAP_FAILED
                      : ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapping != MAP_FAILED) {
    backend->mapping_ = mapping;
    backend->data_ = static_cast<const char*>(mapping);
    backend->size_ = size;
  } else {
    // Filesystems without mmap support: degrade to a heap image.
    std::ifstream in(path, std::ios::binary);
    backend->owned_.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
      return Status::Internal("cannot read packed file: " + path);
    }
    backend->data_ = backend->owned_.data();
    backend->size_ = backend->owned_.size();
  }
  FXDIST_RETURN_NOT_OK(backend->Init(options));
  return backend;
}

Result<std::unique_ptr<PackedBackend>> PackedBackend::OpenFromBuffer(
    std::string bytes, PackedOptions options) {
  std::unique_ptr<PackedBackend> backend(new PackedBackend());
  backend->path_ = "<buffer>";
  backend->owned_ = std::move(bytes);
  backend->data_ = backend->owned_.data();
  backend->size_ = backend->owned_.size();
  FXDIST_RETURN_NOT_OK(backend->Init(options));
  return backend;
}

PackedBackend::~PackedBackend() {
  if (mapping_ != nullptr) ::munmap(mapping_, size_);
}

Status PackedBackend::Init(PackedOptions options) {
  options_ = options;
  if (options_.cache_blocks == 0) options_.cache_blocks = 1;

  auto header = packed::DecodeHeader(std::string_view(data_, size_));
  FXDIST_RETURN_NOT_OK(header.status());
  header_ = *header;

  auto directory = packed::DecodeDirectory(
      std::string_view(data_ + header_.directory_off, header_.directory_len),
      header_.file_size, header_.num_devices, header_.num_records,
      header_.num_buckets);
  FXDIST_RETURN_NOT_OK(directory.status());
  directory_ = std::move(*directory);

  auto blocks = packed::DecodeBlockDirectory(
      std::string_view(data_ + header_.rblock_dir_off,
                       header_.rblock_dir_len),
      header_.file_size, header_.num_record_blocks);
  FXDIST_RETURN_NOT_OK(blocks.status());
  blocks_ = std::move(*blocks);

  const std::string blueprint(data_ + header_.blueprint_off,
                              header_.blueprint_len);
  auto twin = BuildBackendFromBlueprintText(blueprint);
  if (!twin.ok()) {
    return Status::DataLoss("packed blueprint does not build: " +
                            twin.status().ToString());
  }
  twin_ = std::move(*twin);
  if (twin_->num_devices() != header_.num_devices ||
      twin_->spec().num_fields() != directory_.field_types.size()) {
    return Status::DataLoss(
        "packed blueprint disagrees with the directory shape");
  }
  const std::uint64_t total_buckets = twin_->spec().TotalBuckets();
  for (const packed::BucketEntry& entry : directory_.buckets) {
    if (entry.linear >= total_buckets) {
      return Status::DataLoss(
          "packed directory bucket outside the blueprint's bucket space");
    }
  }

  if (options_.verify_all_checksums) {
    for (const packed::BucketEntry& entry : directory_.buckets) {
      if (packed::Checksum(std::string_view(data_ + entry.offset,
                                            entry.clen)) != entry.checksum) {
        return Status::DataLoss("packed posting block checksum mismatch");
      }
    }
    for (const packed::BlockEntry& entry : blocks_) {
      if (packed::Checksum(std::string_view(data_ + entry.offset,
                                            entry.clen)) != entry.checksum) {
        return Status::DataLoss("packed record block checksum mismatch");
      }
    }
  }
  return Status::OK();
}

Status PackedBackend::Insert(Record record) {
  (void)record;
  return Status::FailedPrecondition(
      "packed backend is read-only; build a new file with PackedBuilder");
}

Result<std::uint64_t> PackedBackend::Delete(const ValueQuery& query) {
  (void)query;
  return Status::FailedPrecondition(
      "packed backend is read-only; build a new file with PackedBuilder");
}

Status PackedBackend::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return health_;
}

void PackedBackend::Poison(const Status& status) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (health_.ok()) health_ = status;
}

const packed::BucketEntry* PackedBackend::FindEntry(
    std::uint64_t device, std::uint64_t linear) const {
  const auto key = std::make_pair(device, linear);
  auto it = std::lower_bound(
      directory_.buckets.begin(), directory_.buckets.end(), key,
      [](const packed::BucketEntry& entry,
         const std::pair<std::uint64_t, std::uint64_t>& k) {
        return std::make_pair(entry.device, entry.linear) < k;
      });
  if (it == directory_.buckets.end() || it->device != device ||
      it->linear != linear) {
    return nullptr;
  }
  return &*it;
}

bool PackedBackend::IsBucketLive(std::uint64_t device,
                                 std::uint64_t linear_bucket) const {
  return FindEntry(device, linear_bucket) != nullptr;
}

std::uint64_t PackedBackend::BlockRecordCount(std::uint64_t index) const {
  const std::uint64_t per_block = header_.records_per_block;
  if (index + 1 < blocks_.size()) return per_block;
  return header_.num_records - index * per_block;
}

Result<std::shared_ptr<const std::vector<Record>>> PackedBackend::GetBlock(
    std::uint64_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    it->second.tick = ++tick_;
    return it->second.block;
  }
  const packed::BlockEntry& entry = blocks_[index];
  const std::string_view bytes(data_ + entry.offset, entry.clen);
  if (packed::Checksum(bytes) != entry.checksum) {
    return Status::DataLoss("packed record block " + std::to_string(index) +
                            " checksum mismatch");
  }
  auto block = std::make_shared<std::vector<Record>>();
  FXDIST_RETURN_NOT_OK(packed::DecodeRecordBlock(
      bytes, BlockRecordCount(index), directory_.field_types, block.get()));
  while (cache_.size() >= options_.cache_blocks) {
    auto victim = cache_.begin();
    for (auto c = cache_.begin(); c != cache_.end(); ++c) {
      if (c->second.tick < victim->second.tick) victim = c;
    }
    cache_.erase(victim);
  }
  CacheSlot& slot = cache_[index];
  slot.block = std::move(block);
  slot.tick = ++tick_;
  return slot.block;
}

Status PackedBackend::ScanEntry(
    const packed::BucketEntry& entry,
    const std::function<bool(const Record&)>& fn) const {
  const std::string_view bytes(data_ + entry.offset, entry.clen);
  std::vector<std::uint64_t> ids;
  Status decoded;
  if (packed::Checksum(bytes) != entry.checksum) {
    decoded = Status::DataLoss(
        "packed posting block checksum mismatch (device " +
        std::to_string(entry.device) + ", bucket " +
        std::to_string(entry.linear) + ")");
  } else {
    decoded =
        packed::DecodePostings(bytes, entry.count, header_.num_records, &ids);
  }
  if (!decoded.ok()) {
    Poison(decoded);
    return decoded;
  }
  // Ids are ascending, so consecutive ids usually share a block: hold the
  // current block's shared_ptr so eviction can't pull it out from under
  // the callback.
  std::shared_ptr<const std::vector<Record>> block;
  std::uint64_t block_index = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t id : ids) {
    const std::uint64_t needed = id / header_.records_per_block;
    if (needed != block_index || block == nullptr) {
      auto got = GetBlock(needed);
      if (!got.ok()) {
        Poison(got.status());
        return got.status();
      }
      block = std::move(*got);
      block_index = needed;
    }
    if (!fn((*block)[id % header_.records_per_block])) return Status::OK();
  }
  return Status::OK();
}

void PackedBackend::ScanBucket(
    std::uint64_t device, std::uint64_t linear_bucket,
    const std::function<bool(const Record&)>& fn) const {
  if (!Health().ok()) return;  // poisoned: visit nothing, like remote
  const packed::BucketEntry* entry = FindEntry(device, linear_bucket);
  if (entry == nullptr) return;
  (void)ScanEntry(*entry, fn);
}

Result<QueryResult> PackedBackend::Execute(const ValueQuery& query) const {
  FXDIST_RETURN_NOT_OK(Health());
  auto hashed = twin_->HashQuery(query);
  FXDIST_RETURN_NOT_OK(hashed.status());

  QueryResult result;
  QueryStats& stats = result.stats;
  const std::uint64_t m = num_devices();
  stats.qualified_per_device.assign(m, 0);
  stats.device_wall_ms.assign(m, 0.0);

  // Mirrors ParallelFile::Execute's accounting exactly (every qualified
  // bucket counts, empty or not) so packed QueryStats are bit-identical
  // to flat's.
  struct DeviceShare {
    std::vector<Record> matched;
    std::uint64_t examined = 0;
  };
  std::vector<DeviceShare> shares(m);
  Status scan_error;

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t d = 0; d < m && scan_error.ok(); ++d) {
    const auto device_start = std::chrono::steady_clock::now();
    DeviceShare& share = shares[d];
    device_map().ForEachQualifiedLinearOnDevice(
        *hashed, d, [&](std::uint64_t linear) {
          ++stats.qualified_per_device[d];
          const packed::BucketEntry* entry = FindEntry(d, linear);
          if (entry == nullptr) return true;
          const Status scanned =
              ScanEntry(*entry, [&](const Record& record) {
                ++share.examined;
                if (RecordMatchesValueQuery(query, record)) {
                  share.matched.push_back(record);
                }
                return true;
              });
          if (!scanned.ok()) {
            scan_error = scanned;
            return false;
          }
          return true;
        });
    stats.device_wall_ms[d] = MillisSince(device_start);
  }
  stats.wall_ms = MillisSince(start);
  FXDIST_RETURN_NOT_OK(scan_error);

  for (DeviceShare& share : shares) {
    stats.records_examined += share.examined;
    for (Record& record : share.matched) {
      ++stats.records_matched;
      result.records.push_back(std::move(record));
    }
  }
  stats.total_qualified = 0;
  for (std::uint64_t c : stats.qualified_per_device) {
    stats.total_qualified += c;
    stats.largest_response = std::max(stats.largest_response, c);
  }
  stats.optimal_bound = StrictOptimalBound(spec(), *hashed);
  stats.strict_optimal = stats.largest_response <= stats.optimal_bound;
  stats.disk_timing = DiskQueryTiming(stats.qualified_per_device);
  return result;
}

void PackedBackend::SaveParams(std::ostream& out) const {
  out << "child " << twin_->backend_name() << '\n';
  twin_->SaveParams(out);
}

void PackedBackend::ForEachLiveRecord(
    const std::function<void(const Record&)>& fn) const {
  // Sequential block decode straight off the mapping — no cache churn.
  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    const packed::BlockEntry& entry = blocks_[b];
    const std::string_view bytes(data_ + entry.offset, entry.clen);
    if (packed::Checksum(bytes) != entry.checksum) {
      Poison(Status::DataLoss("packed record block " + std::to_string(b) +
                              " checksum mismatch"));
      return;
    }
    std::vector<Record> records;
    const Status decoded = packed::DecodeRecordBlock(
        bytes, BlockRecordCount(b), directory_.field_types, &records);
    if (!decoded.ok()) {
      Poison(decoded);
      return;
    }
    for (const Record& record : records) fn(record);
  }
}

namespace {

/// Pages of the mapping the kernel actually keeps resident — the true
/// cost of the lazily-faulted image.  Heap fallbacks pay for everything.
std::uint64_t ResidentImageBytes(const void* mapping, std::size_t size,
                                 const std::string& owned) {
  if (mapping == nullptr) return owned.size();
#if defined(__linux__)
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) {
    const std::size_t page_size = static_cast<std::size_t>(page);
    const std::size_t pages = (size + page_size - 1) / page_size;
    std::vector<unsigned char> resident(pages, 0);
    if (::mincore(const_cast<void*>(mapping), size, resident.data()) == 0) {
      std::uint64_t bytes = 0;
      for (unsigned char r : resident) {
        if ((r & 1u) != 0) bytes += page_size;
      }
      return bytes;
    }
  }
#endif
  return size;
}

}  // namespace

std::uint64_t PackedBackend::ApproxMemoryBytes() const {
  std::uint64_t bytes = sizeof(*this);
  bytes += directory_.buckets.capacity() * sizeof(packed::BucketEntry);
  bytes += directory_.device_records.capacity() * sizeof(std::uint64_t);
  bytes += directory_.field_types.capacity() * sizeof(ValueType);
  bytes += blocks_.capacity() * sizeof(packed::BlockEntry);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [index, slot] : cache_) {
      (void)index;
      bytes += sizeof(slot) + slot.block->capacity() * sizeof(Record);
      for (const Record& record : *slot.block) {
        bytes += ApproxRecordBytes(record) - sizeof(Record);
      }
    }
  }
  bytes += ResidentImageBytes(mapping_, size_, owned_);
  return bytes;
}

}  // namespace fxdist
