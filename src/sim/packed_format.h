// On-disk layout of the packed (immutable, mmap-able) backend.
//
// A packed file is one block-compressed image of a whole backend,
// designed for lazy scanning through a read-only mapping (the plocate
// shape: a tiny fixed header, per-block directories with offset /
// compressed length / raw length / checksum, and varint-compressed
// payload blocks that decode independently):
//
//   +--------------------------------------------------------------+
//   | header (104 bytes, fixed): magic "FXPK", version, file size, |
//   |   counts, section offsets/lengths, FNV-1a-64 header checksum |
//   +--------------------------------------------------------------+
//   | record blocks: records_per_block records each, fields encoded|
//   |   back to back (int64 zigzag varint, double raw 8B LE,       |
//   |   string varint length + bytes)                              |
//   +--------------------------------------------------------------+
//   | posting blocks: one per non-empty bucket — the bucket's      |
//   |   record ids, strictly ascending, delta/varint encoded       |
//   |   (first id, then delta-1 per successor)                     |
//   +--------------------------------------------------------------+
//   | bucket directory: per-device record counts, field type tags, |
//   |   one entry per posting block (device, linear bucket, count, |
//   |   offset, clen, rlen, checksum), section checksum            |
//   +--------------------------------------------------------------+
//   | record-block directory: offset/clen/checksum per block,      |
//   |   section checksum                                           |
//   +--------------------------------------------------------------+
//   | blueprint: BackendBlueprintText of the source backend — how  |
//   |   the reader rebuilds the placement plane (sim/persistence.h)|
//   +--------------------------------------------------------------+
//
// Record ids are dense, assigned in the source's ForEachLiveRecord
// order, so each bucket's posting list is ascending (within a bucket,
// scan order equals insertion order for every monolithic backend) and
// decoding a bucket reproduces the source's ScanBucket order exactly.
//
// Every decode here faces possibly-corrupted bytes: all reads are
// bounds-checked against the mapped range and every mismatch — bad
// magic, truncation, checksum, varint running off a block, directory
// offset past EOF — fails with DataLoss, never a crash or over-read.

#ifndef FXDIST_SIM_PACKED_FORMAT_H_
#define FXDIST_SIM_PACKED_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hashing/value.h"
#include "util/status.h"

namespace fxdist {
namespace packed {

/// "FXPK" little-endian.
constexpr std::uint32_t kMagic = 0x4B505846;
constexpr std::uint32_t kVersion = 1;
/// Fixed header size in bytes (checksum included).
constexpr std::size_t kHeaderSize = 104;
/// Default records per record block.
constexpr std::uint64_t kDefaultRecordsPerBlock = 256;

/// FNV-1a 64 over `bytes` — the same function the wire protocol uses, so
/// one corrupted byte anywhere in a section flips its checksum.
std::uint64_t Checksum(std::string_view bytes);

// -- Primitive encoders -------------------------------------------------
void AppendU32(std::string& out, std::uint32_t v);
void AppendU64(std::string& out, std::uint64_t v);
/// LEB128 varint (7 bits per byte, at most 10 bytes).
void PutVarint(std::string& out, std::uint64_t v);
/// Zigzag-mapped varint for signed values.
void PutZigzag(std::string& out, std::int64_t v);

/// Bounds-checked cursor over an immutable byte range.  Every failure is
/// DataLoss: the bytes came from a file that claims to be well-formed.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::size_t remaining() const { return size_ - pos_; }

  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  /// Rejects varints longer than 10 bytes or running off the range.
  Result<std::uint64_t> Varint();
  Result<std::int64_t> Zigzag();
  Result<std::string_view> Bytes(std::size_t n);
  /// DataLoss unless the cursor consumed the range exactly.
  Status ExpectEnd() const;

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// -- Header --------------------------------------------------------------
struct Header {
  std::uint64_t file_size = 0;
  std::uint64_t num_devices = 0;
  std::uint64_t num_records = 0;
  std::uint64_t num_buckets = 0;  ///< non-empty buckets (posting blocks)
  std::uint64_t directory_off = 0, directory_len = 0;
  std::uint64_t rblock_dir_off = 0, rblock_dir_len = 0;
  std::uint64_t blueprint_off = 0, blueprint_len = 0;
  std::uint32_t records_per_block = 0;
  std::uint32_t num_record_blocks = 0;
};

/// Exactly kHeaderSize bytes, trailing checksum over the rest.
std::string EncodeHeader(const Header& header);

/// Validates magic, version, header checksum, the recorded file size
/// against the actual byte count (truncation), and that every section
/// range lies inside the file.
Result<Header> DecodeHeader(std::string_view file);

// -- Directories ----------------------------------------------------------
/// One non-empty bucket's posting block.
struct BucketEntry {
  std::uint64_t device = 0;
  std::uint64_t linear = 0;  ///< linear bucket index in the frozen spec
  std::uint64_t count = 0;   ///< record ids in the block (> 0)
  std::uint64_t offset = 0;  ///< file offset of the encoded block
  std::uint64_t clen = 0;    ///< encoded (compressed) length in the file
  std::uint64_t rlen = 0;    ///< decoded length (count * 8)
  std::uint64_t checksum = 0;
};

/// One record block.
struct BlockEntry {
  std::uint64_t offset = 0;
  std::uint64_t clen = 0;
  std::uint64_t checksum = 0;
};

struct Directory {
  std::vector<std::uint64_t> device_records;  ///< per-device record counts
  std::vector<ValueType> field_types;         ///< record decode schema
  std::vector<BucketEntry> buckets;  ///< ascending (device, linear)
};

std::string EncodeDirectory(const Directory& directory);

/// Decodes and cross-validates: section checksum, strictly ascending
/// (device, linear) order, per-entry count > 0, every block range inside
/// [kHeaderSize, file_size), device ids below num_devices, and both the
/// per-device and per-bucket counts summing to num_records.
Result<Directory> DecodeDirectory(std::string_view bytes,
                                  std::uint64_t file_size,
                                  std::uint64_t num_devices,
                                  std::uint64_t num_records,
                                  std::uint64_t num_buckets);

std::string EncodeBlockDirectory(const std::vector<BlockEntry>& blocks);

Result<std::vector<BlockEntry>> DecodeBlockDirectory(
    std::string_view bytes, std::uint64_t file_size,
    std::uint64_t num_blocks);

// -- Payload blocks --------------------------------------------------------
/// Delta/varint posting block of strictly ascending record ids.
std::string EncodePostings(const std::vector<std::uint64_t>& ids);

/// Decodes exactly `count` ids, each below `num_records`, rejecting
/// varint overruns, id overflow (wrap-around deltas), and trailing bytes.
Status DecodePostings(std::string_view bytes, std::uint64_t count,
                      std::uint64_t num_records,
                      std::vector<std::uint64_t>* out);

void EncodeRecord(std::string& out, const Record& record);

/// Decodes exactly `count` records of `types` shape; trailing bytes and
/// string lengths past the block are DataLoss.
Status DecodeRecordBlock(std::string_view bytes, std::uint64_t count,
                         const std::vector<ValueType>& types,
                         std::vector<Record>* out);

}  // namespace packed
}  // namespace fxdist

#endif  // FXDIST_SIM_PACKED_FORMAT_H_
