#include "sim/persistence.h"

#include <fstream>
#include <sstream>

#include "hashing/value_codec.h"
#include "sim/dynamic_parallel_file.h"
#include "sim/paged_parallel_file.h"

namespace fxdist {

namespace {

/// Token-stream reader with length-prefixed string support.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  Result<std::string> Word() {
    std::string w;
    if (!(in_ >> w)) return Status::InvalidArgument("unexpected EOF");
    return w;
  }

  Result<std::uint64_t> U64() {
    std::uint64_t v = 0;
    if (!(in_ >> v)) return Status::InvalidArgument("expected integer");
    return v;
  }

  /// Reads "<len>:<bytes>".
  Result<std::string> LengthPrefixed() { return DecodeLengthPrefixed(in_); }

  /// Expects the literal `word` next.
  Status Expect(const std::string& word) {
    auto w = Word();
    FXDIST_RETURN_NOT_OK(w.status());
    if (*w != word) {
      return Status::InvalidArgument("expected '" + word + "', got '" +
                                     *w + "'");
    }
    return Status::OK();
  }

 private:
  std::istream& in_;
};

/// Reads "fields <n>" plus n "field <name> <type> <dirsize>" lines.
Result<Schema> ReadSchema(Reader& reader) {
  FXDIST_RETURN_NOT_OK(reader.Expect("fields"));
  auto num_fields = reader.U64();
  FXDIST_RETURN_NOT_OK(num_fields.status());
  std::vector<FieldDecl> fields;
  for (std::uint64_t i = 0; i < *num_fields; ++i) {
    FXDIST_RETURN_NOT_OK(reader.Expect("field"));
    auto name = reader.LengthPrefixed();
    FXDIST_RETURN_NOT_OK(name.status());
    auto type_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(type_tag.status());
    auto type = ParseValueTypeTag(*type_tag);
    FXDIST_RETURN_NOT_OK(type.status());
    auto size = reader.U64();
    FXDIST_RETURN_NOT_OK(size.status());
    fields.push_back({*std::move(name), *type, *size});
  }
  return Schema::Create(std::move(fields));
}

/// Reads "records <n>" and replays every record into `backend`.
Status ReplayRecords(Reader& reader, std::istream& in, unsigned arity,
                     StorageBackend& backend) {
  FXDIST_RETURN_NOT_OK(reader.Expect("records"));
  auto count = reader.U64();
  FXDIST_RETURN_NOT_OK(count.status());
  for (std::uint64_t r = 0; r < *count; ++r) {
    Record record;
    record.reserve(arity);
    for (unsigned f = 0; f < arity; ++f) {
      auto value = DecodeValue(in);
      FXDIST_RETURN_NOT_OK(value.status());
      record.push_back(*std::move(value));
    }
    FXDIST_RETURN_NOT_OK(backend.Insert(std::move(record)));
  }
  return Status::OK();
}

/// Parses the shared flat-body prefix: devices/distribution/seed.
struct FlatHeader {
  std::uint64_t devices = 0;
  std::string distribution;
  std::uint64_t seed = 0;
};

Result<FlatHeader> ReadFlatHeader(Reader& reader) {
  FlatHeader h;
  FXDIST_RETURN_NOT_OK(reader.Expect("devices"));
  auto devices = reader.U64();
  FXDIST_RETURN_NOT_OK(devices.status());
  h.devices = *devices;
  FXDIST_RETURN_NOT_OK(reader.Expect("distribution"));
  auto distribution = reader.LengthPrefixed();
  FXDIST_RETURN_NOT_OK(distribution.status());
  h.distribution = *std::move(distribution);
  FXDIST_RETURN_NOT_OK(reader.Expect("seed"));
  auto seed = reader.U64();
  FXDIST_RETURN_NOT_OK(seed.status());
  h.seed = *seed;
  return h;
}

Status WriteRecords(std::ostream& out, const StorageBackend& backend) {
  out << "records " << backend.num_records() << '\n';
  backend.ForEachLiveRecord([&](const Record& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i != 0) out << ' ';
      EncodeValue(out, r[i]);
    }
    out << '\n';
  });
  return Status::OK();
}

}  // namespace

Status SaveParallelFile(const ParallelFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "fxdist-file v1\n";
  file.SaveParams(out);
  FXDIST_RETURN_NOT_OK(WriteRecords(out, file));
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<ParallelFile> LoadParallelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("fxdist-file"));
  FXDIST_RETURN_NOT_OK(reader.Expect("v1"));
  auto header = ReadFlatHeader(reader);
  FXDIST_RETURN_NOT_OK(header.status());
  auto schema = ReadSchema(reader);
  FXDIST_RETURN_NOT_OK(schema.status());
  auto file = ParallelFile::Create(*schema, header->devices,
                                   header->distribution, header->seed);
  FXDIST_RETURN_NOT_OK(file.status());
  FXDIST_RETURN_NOT_OK(
      ReplayRecords(reader, in, schema->num_fields(), *file));
  return file;
}

Status SaveBackend(const StorageBackend& backend, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "fxdist-backend v2\n";
  out << "kind " << backend.backend_name() << '\n';
  backend.SaveParams(out);
  FXDIST_RETURN_NOT_OK(WriteRecords(out, backend));
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<std::unique_ptr<StorageBackend>> LoadBackend(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("fxdist-backend"));
  FXDIST_RETURN_NOT_OK(reader.Expect("v2"));
  FXDIST_RETURN_NOT_OK(reader.Expect("kind"));
  auto kind = reader.Word();
  FXDIST_RETURN_NOT_OK(kind.status());

  if (*kind == "flat") {
    auto header = ReadFlatHeader(reader);
    FXDIST_RETURN_NOT_OK(header.status());
    auto schema = ReadSchema(reader);
    FXDIST_RETURN_NOT_OK(schema.status());
    auto file = ParallelFile::Create(*schema, header->devices,
                                     header->distribution, header->seed);
    FXDIST_RETURN_NOT_OK(file.status());
    auto backend = std::make_unique<ParallelFile>(*std::move(file));
    FXDIST_RETURN_NOT_OK(
        ReplayRecords(reader, in, schema->num_fields(), *backend));
    return std::unique_ptr<StorageBackend>(std::move(backend));
  }

  if (*kind == "paged") {
    auto header = ReadFlatHeader(reader);
    FXDIST_RETURN_NOT_OK(header.status());
    FXDIST_RETURN_NOT_OK(reader.Expect("pagesize"));
    auto pagesize = reader.U64();
    FXDIST_RETURN_NOT_OK(pagesize.status());
    auto schema = ReadSchema(reader);
    FXDIST_RETURN_NOT_OK(schema.status());
    auto file = PagedParallelFile::Create(
        *schema, header->devices, header->distribution,
        static_cast<std::size_t>(*pagesize), header->seed);
    FXDIST_RETURN_NOT_OK(file.status());
    auto backend = std::make_unique<PagedParallelFile>(*std::move(file));
    FXDIST_RETURN_NOT_OK(
        ReplayRecords(reader, in, schema->num_fields(), *backend));
    return std::unique_ptr<StorageBackend>(std::move(backend));
  }

  if (*kind == "dynamic") {
    FXDIST_RETURN_NOT_OK(reader.Expect("devices"));
    auto devices = reader.U64();
    FXDIST_RETURN_NOT_OK(devices.status());
    FXDIST_RETURN_NOT_OK(reader.Expect("family"));
    auto family_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(family_tag.status());
    PlanFamily family;
    if (*family_tag == "iu1") {
      family = PlanFamily::kIU1;
    } else if (*family_tag == "iu2") {
      family = PlanFamily::kIU2;
    } else {
      return Status::InvalidArgument("unknown plan family: " + *family_tag);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("pagecap"));
    auto pagecap = reader.U64();
    FXDIST_RETURN_NOT_OK(pagecap.status());
    FXDIST_RETURN_NOT_OK(reader.Expect("seed"));
    auto seed = reader.U64();
    FXDIST_RETURN_NOT_OK(seed.status());
    FXDIST_RETURN_NOT_OK(reader.Expect("fields"));
    auto num_fields = reader.U64();
    FXDIST_RETURN_NOT_OK(num_fields.status());
    std::vector<DynamicFieldDecl> fields;
    for (std::uint64_t i = 0; i < *num_fields; ++i) {
      FXDIST_RETURN_NOT_OK(reader.Expect("field"));
      auto name = reader.LengthPrefixed();
      FXDIST_RETURN_NOT_OK(name.status());
      auto type_tag = reader.Word();
      FXDIST_RETURN_NOT_OK(type_tag.status());
      auto type = ParseValueTypeTag(*type_tag);
      FXDIST_RETURN_NOT_OK(type.status());
      fields.push_back({*std::move(name), *type});
    }
    const auto arity = static_cast<unsigned>(fields.size());
    auto file = DynamicParallelFile::Create(
        std::move(fields), *devices, static_cast<std::size_t>(*pagecap),
        family, *seed);
    FXDIST_RETURN_NOT_OK(file.status());
    auto backend = std::make_unique<DynamicParallelFile>(*std::move(file));
    FXDIST_RETURN_NOT_OK(ReplayRecords(reader, in, arity, *backend));
    return std::unique_ptr<StorageBackend>(std::move(backend));
  }

  return Status::InvalidArgument("unknown backend kind: " + *kind);
}

}  // namespace fxdist
