#include "sim/persistence.h"

#include <fstream>
#include <optional>
#include <sstream>

#include "hashing/value_codec.h"
#include "sim/composite_backend.h"
#include "sim/dynamic_parallel_file.h"
#include "sim/migration.h"
#include "sim/paged_parallel_file.h"

namespace fxdist {

namespace {

/// Token-stream reader with length-prefixed string support.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  Result<std::string> Word() {
    std::string w;
    if (!(in_ >> w)) return Status::InvalidArgument("unexpected EOF");
    return w;
  }

  Result<std::uint64_t> U64() {
    std::uint64_t v = 0;
    if (!(in_ >> v)) return Status::InvalidArgument("expected integer");
    return v;
  }

  /// Reads "<len>:<bytes>".
  Result<std::string> LengthPrefixed() { return DecodeLengthPrefixed(in_); }

  /// Expects the literal `word` next.
  Status Expect(const std::string& word) {
    auto w = Word();
    FXDIST_RETURN_NOT_OK(w.status());
    if (*w != word) {
      return Status::InvalidArgument("expected '" + word + "', got '" +
                                     *w + "'");
    }
    return Status::OK();
  }

 private:
  std::istream& in_;
};

/// Reads "fields <n>" plus n "field <name> <type> <dirsize>" lines.
Result<Schema> ReadSchema(Reader& reader) {
  FXDIST_RETURN_NOT_OK(reader.Expect("fields"));
  auto num_fields = reader.U64();
  FXDIST_RETURN_NOT_OK(num_fields.status());
  std::vector<FieldDecl> fields;
  for (std::uint64_t i = 0; i < *num_fields; ++i) {
    FXDIST_RETURN_NOT_OK(reader.Expect("field"));
    auto name = reader.LengthPrefixed();
    FXDIST_RETURN_NOT_OK(name.status());
    auto type_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(type_tag.status());
    auto type = ParseValueTypeTag(*type_tag);
    FXDIST_RETURN_NOT_OK(type.status());
    auto size = reader.U64();
    FXDIST_RETURN_NOT_OK(size.status());
    fields.push_back({*std::move(name), *type, *size});
  }
  return Schema::Create(std::move(fields));
}

/// Reads "records <n>" and replays every record into `backend`.
Status ReplayRecords(Reader& reader, std::istream& in, unsigned arity,
                     StorageBackend& backend) {
  FXDIST_RETURN_NOT_OK(reader.Expect("records"));
  auto count = reader.U64();
  FXDIST_RETURN_NOT_OK(count.status());
  for (std::uint64_t r = 0; r < *count; ++r) {
    Record record;
    record.reserve(arity);
    for (unsigned f = 0; f < arity; ++f) {
      auto value = DecodeValue(in);
      FXDIST_RETURN_NOT_OK(value.status());
      record.push_back(*std::move(value));
    }
    FXDIST_RETURN_NOT_OK(backend.Insert(std::move(record)));
  }
  return Status::OK();
}

/// Parses the shared flat-body prefix: devices/distribution/seed.
struct FlatHeader {
  std::uint64_t devices = 0;
  std::string distribution;
  std::uint64_t seed = 0;
};

Result<FlatHeader> ReadFlatHeader(Reader& reader) {
  FlatHeader h;
  FXDIST_RETURN_NOT_OK(reader.Expect("devices"));
  auto devices = reader.U64();
  FXDIST_RETURN_NOT_OK(devices.status());
  h.devices = *devices;
  FXDIST_RETURN_NOT_OK(reader.Expect("distribution"));
  auto distribution = reader.LengthPrefixed();
  FXDIST_RETURN_NOT_OK(distribution.status());
  h.distribution = *std::move(distribution);
  FXDIST_RETURN_NOT_OK(reader.Expect("seed"));
  auto seed = reader.U64();
  FXDIST_RETURN_NOT_OK(seed.status());
  h.seed = *seed;
  return h;
}

Status WriteRecords(std::ostream& out, const StorageBackend& backend) {
  out << "records " << backend.num_records() << '\n';
  backend.ForEachLiveRecord([&](const Record& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i != 0) out << ' ';
      EncodeValue(out, r[i]);
    }
    out << '\n';
  });
  return Status::OK();
}

/// Construction parameters of one monolithic backend, parsed from its
/// SaveParams block.  Composite kinds read a single blueprint and build
/// several identically-parameterized children from it (the sharded
/// plane's M copies, the replicated pair's rotated twin).
struct BackendBlueprint {
  std::string kind;
  std::uint64_t devices = 0;
  std::string distribution;  // flat / paged
  std::uint64_t seed = 0;
  std::uint64_t pagesize = 0;  // paged
  std::optional<Schema> schema;  // flat / paged
  PlanFamily family = PlanFamily::kIU2;  // dynamic
  std::uint64_t pagecap = 0;             // dynamic
  std::vector<unsigned> depths;          // dynamic, v3+
  std::vector<DynamicFieldDecl> dyn_fields;  // dynamic

  unsigned arity() const {
    return schema.has_value() ? schema->num_fields()
                              : static_cast<unsigned>(dyn_fields.size());
  }

  /// Builds an empty backend from the blueprint.  A non-empty
  /// `distribution_override` replaces the distribution spec (how the
  /// replicated loader derives the rotated replica); dynamic backends
  /// have no distribution spec and reject an override.
  Result<std::unique_ptr<StorageBackend>> Build(
      const std::string& distribution_override = "") const {
    const std::string& dist =
        distribution_override.empty() ? distribution : distribution_override;
    if (kind == "flat") {
      auto file = ParallelFile::Create(*schema, devices, dist, seed);
      FXDIST_RETURN_NOT_OK(file.status());
      return std::unique_ptr<StorageBackend>(
          std::make_unique<ParallelFile>(*std::move(file)));
    }
    if (kind == "paged") {
      auto file = PagedParallelFile::Create(
          *schema, devices, dist, static_cast<std::size_t>(pagesize), seed);
      FXDIST_RETURN_NOT_OK(file.status());
      return std::unique_ptr<StorageBackend>(
          std::make_unique<PagedParallelFile>(*std::move(file)));
    }
    if (kind == "dynamic") {
      if (!distribution_override.empty()) {
        return Status::InvalidArgument(
            "dynamic backends have no distribution spec to override");
      }
      auto file = DynamicParallelFile::Create(
          dyn_fields, devices, static_cast<std::size_t>(pagecap), family,
          seed, depths);
      FXDIST_RETURN_NOT_OK(file.status());
      return std::unique_ptr<StorageBackend>(
          std::make_unique<DynamicParallelFile>(*std::move(file)));
    }
    return Status::InvalidArgument("unknown child backend kind: " + kind);
  }
};

/// Parses the SaveParams block of a monolithic `kind` written by
/// format version `version`.
Result<BackendBlueprint> ReadBlueprint(Reader& reader, int version,
                                       const std::string& kind) {
  BackendBlueprint bp;
  bp.kind = kind;
  if (kind == "flat" || kind == "paged") {
    auto header = ReadFlatHeader(reader);
    FXDIST_RETURN_NOT_OK(header.status());
    bp.devices = header->devices;
    bp.distribution = header->distribution;
    bp.seed = header->seed;
    if (kind == "paged") {
      FXDIST_RETURN_NOT_OK(reader.Expect("pagesize"));
      auto pagesize = reader.U64();
      FXDIST_RETURN_NOT_OK(pagesize.status());
      bp.pagesize = *pagesize;
    }
    auto schema = ReadSchema(reader);
    FXDIST_RETURN_NOT_OK(schema.status());
    bp.schema = *std::move(schema);
    return bp;
  }
  if (kind == "dynamic") {
    FXDIST_RETURN_NOT_OK(reader.Expect("devices"));
    auto devices = reader.U64();
    FXDIST_RETURN_NOT_OK(devices.status());
    bp.devices = *devices;
    FXDIST_RETURN_NOT_OK(reader.Expect("family"));
    auto family_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(family_tag.status());
    if (*family_tag == "iu1") {
      bp.family = PlanFamily::kIU1;
    } else if (*family_tag == "iu2") {
      bp.family = PlanFamily::kIU2;
    } else {
      return Status::InvalidArgument("unknown plan family: " + *family_tag);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("pagecap"));
    auto pagecap = reader.U64();
    FXDIST_RETURN_NOT_OK(pagecap.status());
    bp.pagecap = *pagecap;
    FXDIST_RETURN_NOT_OK(reader.Expect("seed"));
    auto seed = reader.U64();
    FXDIST_RETURN_NOT_OK(seed.status());
    bp.seed = *seed;
    FXDIST_RETURN_NOT_OK(reader.Expect("fields"));
    auto num_fields = reader.U64();
    FXDIST_RETURN_NOT_OK(num_fields.status());
    for (std::uint64_t i = 0; i < *num_fields; ++i) {
      FXDIST_RETURN_NOT_OK(reader.Expect("field"));
      auto name = reader.LengthPrefixed();
      FXDIST_RETURN_NOT_OK(name.status());
      auto type_tag = reader.Word();
      FXDIST_RETURN_NOT_OK(type_tag.status());
      auto type = ParseValueTypeTag(*type_tag);
      FXDIST_RETURN_NOT_OK(type.status());
      bp.dyn_fields.push_back({*std::move(name), *type});
    }
    if (version >= 3) {
      FXDIST_RETURN_NOT_OK(reader.Expect("depths"));
      for (std::uint64_t i = 0; i < *num_fields; ++i) {
        auto depth = reader.U64();
        FXDIST_RETURN_NOT_OK(depth.status());
        bp.depths.push_back(static_cast<unsigned>(*depth));
      }
    }
    return bp;
  }
  return Status::InvalidArgument("unknown backend kind: " + kind);
}

/// An empty backend rebuilt from its blueprint, plus what the caller
/// still has to do: replay `arity`-field records, then (replicated) mark
/// the `down` devices — degraded mode is read-only, so down state is
/// applied only once both copies hold their records again.
struct EmptyBackend {
  std::unique_ptr<StorageBackend> backend;
  unsigned arity = 0;
  std::vector<std::uint64_t> down;
  /// An interrupted migration to resume after the replay: records go
  /// into the wrapper while it is idle (source only), then the target
  /// is attached and the copy re-run to the saved cursor — replaying
  /// through a live dual-write would double the copied prefix.
  std::unique_ptr<StorageBackend> pending_target;
  std::uint64_t pending_cursor = 0;
};

/// Dispatches on the kind token already consumed by the caller and builds
/// the empty backend: monolithic kinds directly from their blueprint,
/// "sharded" as M identical children, "replicated" as the primary plus
/// its rotated twin.
Result<EmptyBackend> BuildEmptyBackend(Reader& reader, int version,
                                       const std::string& kind) {
  EmptyBackend out;
  if (kind == "sharded") {
    if (version < 3) {
      return Status::InvalidArgument("sharded backends need format v3");
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto child_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(child_kind.status());
    auto bp = ReadBlueprint(reader, version, *child_kind);
    FXDIST_RETURN_NOT_OK(bp.status());
    std::vector<std::unique_ptr<StorageBackend>> children;
    for (std::uint64_t d = 0; d < bp->devices; ++d) {
      auto child = bp->Build();
      FXDIST_RETURN_NOT_OK(child.status());
      children.push_back(*std::move(child));
    }
    auto sharded = ShardedBackend::Create(std::move(children));
    FXDIST_RETURN_NOT_OK(sharded.status());
    out.backend = std::make_unique<ShardedBackend>(*std::move(sharded));
    out.arity = bp->arity();
    return out;
  }
  if (kind == "replicated") {
    if (version < 3) {
      return Status::InvalidArgument("replicated backends need format v3");
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("placement"));
    auto placement_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(placement_tag.status());
    ReplicaPlacement placement;
    if (*placement_tag == "mirrored") {
      placement = ReplicaPlacement::kMirrored;
    } else if (*placement_tag == "chained") {
      placement = ReplicaPlacement::kChained;
    } else {
      return Status::InvalidArgument("unknown replica placement: " +
                                     *placement_tag);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("down"));
    auto down_count = reader.U64();
    FXDIST_RETURN_NOT_OK(down_count.status());
    for (std::uint64_t i = 0; i < *down_count; ++i) {
      auto d = reader.U64();
      FXDIST_RETURN_NOT_OK(d.status());
      out.down.push_back(*d);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto child_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(child_kind.status());
    auto bp = ReadBlueprint(reader, version, *child_kind);
    FXDIST_RETURN_NOT_OK(bp.status());
    auto primary = bp->Build();
    FXDIST_RETURN_NOT_OK(primary.status());
    const std::uint64_t offset =
        ReplicatedBackend::ReplicaOffset(placement, bp->devices);
    auto replica =
        bp->Build("rot" + std::to_string(offset) + ":" + bp->distribution);
    FXDIST_RETURN_NOT_OK(replica.status());
    auto replicated = ReplicatedBackend::Create(
        *std::move(primary), *std::move(replica), placement);
    FXDIST_RETURN_NOT_OK(replicated.status());
    out.backend = std::make_unique<ReplicatedBackend>(*std::move(replicated));
    out.arity = bp->arity();
    return out;
  }
  if (kind == "migrating") {
    if (version < 4) {
      return Status::InvalidArgument("migrating backends need format v4");
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("phase"));
    auto phase = reader.Word();
    FXDIST_RETURN_NOT_OK(phase.status());
    if (*phase != "copying" && *phase != "idle") {
      return Status::InvalidArgument("unknown migration phase: " + *phase);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("cursor"));
    auto cursor = reader.U64();
    FXDIST_RETURN_NOT_OK(cursor.status());
    std::unique_ptr<StorageBackend> target;
    if (*phase == "copying") {
      FXDIST_RETURN_NOT_OK(reader.Expect("target"));
      auto target_kind = reader.Word();
      FXDIST_RETURN_NOT_OK(target_kind.status());
      auto built = BuildEmptyBackend(reader, version, *target_kind);
      FXDIST_RETURN_NOT_OK(built.status());
      if (!built->down.empty()) {
        return Status::InvalidArgument(
            "migration target cannot carry a down set");
      }
      target = std::move(built->backend);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("source"));
    auto source_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(source_kind.status());
    auto source = BuildEmptyBackend(reader, version, *source_kind);
    FXDIST_RETURN_NOT_OK(source.status());
    if (!source->down.empty()) {
      return Status::InvalidArgument(
          "cannot resume a migration over a degraded replicated backend");
    }
    auto wrapper = MigratingBackend::Create(std::move(source->backend));
    FXDIST_RETURN_NOT_OK(wrapper.status());
    out.backend = *std::move(wrapper);
    out.arity = source->arity;
    out.pending_target = std::move(target);
    out.pending_cursor = *cursor;
    return out;
  }
  if (kind == "packed") {
    // A packed save carries its source backend's blueprint ("child
    // <kind>" + params): loading "unpacks" back to the source kind —
    // the packed file itself is immutable, so replaying records into a
    // fresh PackedBackend is impossible by design.  Recurse so nested
    // composite sources round-trip too.
    if (version < 3) {
      return Status::InvalidArgument("packed backends need format v3");
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto child_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(child_kind.status());
    return BuildEmptyBackend(reader, version, *child_kind);
  }
  auto bp = ReadBlueprint(reader, version, kind);
  FXDIST_RETURN_NOT_OK(bp.status());
  auto built = bp->Build();
  FXDIST_RETURN_NOT_OK(built.status());
  out.backend = *std::move(built);
  out.arity = bp->arity();
  return out;
}

}  // namespace

Status SaveParallelFile(const ParallelFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "fxdist-file v1\n";
  file.SaveParams(out);
  FXDIST_RETURN_NOT_OK(WriteRecords(out, file));
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<ParallelFile> LoadParallelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("fxdist-file"));
  FXDIST_RETURN_NOT_OK(reader.Expect("v1"));
  auto header = ReadFlatHeader(reader);
  FXDIST_RETURN_NOT_OK(header.status());
  auto schema = ReadSchema(reader);
  FXDIST_RETURN_NOT_OK(schema.status());
  auto file = ParallelFile::Create(*schema, header->devices,
                                   header->distribution, header->seed);
  FXDIST_RETURN_NOT_OK(file.status());
  FXDIST_RETURN_NOT_OK(
      ReplayRecords(reader, in, schema->num_fields(), *file));
  return file;
}

Status SaveBackend(const StorageBackend& backend, const std::string& path) {
  const bool migrating = backend.backend_name() == "migrating";
  if (migrating) {
    // An idle wrapper is indistinguishable from its active plane; save
    // that as an ordinary blob so v4 only ever holds in-flight state.
    const auto* wrapper = dynamic_cast<const MigratingBackend*>(&backend);
    if (wrapper != nullptr && !wrapper->IsMigrating()) {
      return SaveBackend(backend.ServingPlane(), path);
    }
  }
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << (migrating ? "fxdist-backend v4\n" : "fxdist-backend v3\n");
  out << "kind " << backend.backend_name() << '\n';
  backend.SaveParams(out);
  FXDIST_RETURN_NOT_OK(WriteRecords(out, backend));
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<std::unique_ptr<StorageBackend>> LoadBackend(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("fxdist-backend"));
  auto version_tag = reader.Word();
  FXDIST_RETURN_NOT_OK(version_tag.status());
  int version = 0;
  if (*version_tag == "v2") {
    version = 2;
  } else if (*version_tag == "v3") {
    version = 3;
  } else if (*version_tag == "v4") {
    version = 4;
  } else {
    return Status::InvalidArgument("unsupported backend format version: " +
                                   *version_tag);
  }
  FXDIST_RETURN_NOT_OK(reader.Expect("kind"));
  auto kind = reader.Word();
  FXDIST_RETURN_NOT_OK(kind.status());

  auto empty = BuildEmptyBackend(reader, version, *kind);
  FXDIST_RETURN_NOT_OK(empty.status());
  FXDIST_RETURN_NOT_OK(
      ReplayRecords(reader, in, empty->arity, *empty->backend));
  if (!empty->down.empty()) {
    auto* replicated = dynamic_cast<ReplicatedBackend*>(empty->backend.get());
    if (replicated == nullptr) {
      return Status::Internal("down set on a non-replicated backend");
    }
    for (std::uint64_t d : empty->down) {
      FXDIST_RETURN_NOT_OK(replicated->MarkDown(d));
    }
  }
  if (empty->pending_target != nullptr) {
    // Resume the interrupted migration: the records above replayed into
    // the idle wrapper (source only); re-attach a fresh target and
    // re-copy to the saved cursor — which reproduces the target's
    // contents exactly, dual-written records included.
    auto* wrapper = dynamic_cast<MigratingBackend*>(empty->backend.get());
    if (wrapper == nullptr) {
      return Status::Internal("pending migration on a non-migrating backend");
    }
    FXDIST_RETURN_NOT_OK(
        wrapper->BeginMigration(std::move(empty->pending_target)));
    FXDIST_RETURN_NOT_OK(wrapper->CopyUntil(empty->pending_cursor));
  }
  return std::move(empty->backend);
}

std::string BackendBlueprintText(const StorageBackend& backend) {
  std::ostringstream out;
  out << "kind " << backend.backend_name() << '\n';
  backend.SaveParams(out);
  return out.str();
}

Result<std::unique_ptr<StorageBackend>> BuildBackendFromBlueprintText(
    const std::string& text) {
  std::istringstream in(text);
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("kind"));
  auto kind = reader.Word();
  FXDIST_RETURN_NOT_OK(kind.status());
  auto empty = BuildEmptyBackend(reader, /*version=*/3, *kind);
  FXDIST_RETURN_NOT_OK(empty.status());
  if (!empty->down.empty()) {
    auto* replicated = dynamic_cast<ReplicatedBackend*>(empty->backend.get());
    if (replicated == nullptr) {
      return Status::Internal("down set on a non-replicated backend");
    }
    for (std::uint64_t d : empty->down) {
      FXDIST_RETURN_NOT_OK(replicated->MarkDown(d));
    }
  }
  return std::move(empty->backend);
}

Result<std::unique_ptr<StorageBackend>> BuildRetargetedEmptyBackend(
    const StorageBackend& source, std::uint64_t new_devices,
    const std::string& new_distribution) {
  if (new_devices == 0) {
    return Status::InvalidArgument("reshard target needs devices > 0");
  }
  std::istringstream in(BackendBlueprintText(source.ServingPlane()));
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("kind"));
  auto kind_token = reader.Word();
  FXDIST_RETURN_NOT_OK(kind_token.status());
  std::string kind = *kind_token;
  // A packed plane is immutable; its blueprint carries the mutable
  // source kind — retarget onto that.
  while (kind == "packed") {
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto inner = reader.Word();
    FXDIST_RETURN_NOT_OK(inner.status());
    kind = *inner;
  }
  if (kind == "dynamic") {
    return Status::InvalidArgument(
        "reshard target for dynamic backends is not supported (their "
        "placement is derived from directory depths, not a blueprint "
        "parameter)");
  }
  if (kind == "flat" || kind == "paged") {
    auto bp = ReadBlueprint(reader, /*version=*/3, kind);
    FXDIST_RETURN_NOT_OK(bp.status());
    bp->devices = new_devices;
    if (!new_distribution.empty()) bp->distribution = new_distribution;
    return bp->Build();
  }
  if (kind == "sharded") {
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto child_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(child_kind.status());
    if (*child_kind == "dynamic") {
      return Status::InvalidArgument(
          "reshard target for dynamic-child shards is not supported");
    }
    auto bp = ReadBlueprint(reader, /*version=*/3, *child_kind);
    FXDIST_RETURN_NOT_OK(bp.status());
    bp->devices = new_devices;
    if (!new_distribution.empty()) bp->distribution = new_distribution;
    std::vector<std::unique_ptr<StorageBackend>> children;
    for (std::uint64_t d = 0; d < new_devices; ++d) {
      auto child = bp->Build();
      FXDIST_RETURN_NOT_OK(child.status());
      children.push_back(*std::move(child));
    }
    auto sharded = ShardedBackend::Create(std::move(children));
    FXDIST_RETURN_NOT_OK(sharded.status());
    return std::unique_ptr<StorageBackend>(
        std::make_unique<ShardedBackend>(*std::move(sharded)));
  }
  if (kind == "replicated") {
    FXDIST_RETURN_NOT_OK(reader.Expect("placement"));
    auto placement_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(placement_tag.status());
    ReplicaPlacement placement;
    if (*placement_tag == "mirrored") {
      placement = ReplicaPlacement::kMirrored;
    } else if (*placement_tag == "chained") {
      placement = ReplicaPlacement::kChained;
    } else {
      return Status::InvalidArgument("unknown replica placement: " +
                                     *placement_tag);
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("down"));
    auto down_count = reader.U64();
    FXDIST_RETURN_NOT_OK(down_count.status());
    if (*down_count != 0) {
      return Status::FailedPrecondition(
          "cannot reshard a degraded replicated backend (mark devices up "
          "first)");
    }
    FXDIST_RETURN_NOT_OK(reader.Expect("child"));
    auto child_kind = reader.Word();
    FXDIST_RETURN_NOT_OK(child_kind.status());
    auto bp = ReadBlueprint(reader, /*version=*/3, *child_kind);
    FXDIST_RETURN_NOT_OK(bp.status());
    bp->devices = new_devices;
    if (!new_distribution.empty()) bp->distribution = new_distribution;
    auto primary = bp->Build();
    FXDIST_RETURN_NOT_OK(primary.status());
    const std::uint64_t offset =
        ReplicatedBackend::ReplicaOffset(placement, new_devices);
    auto replica =
        bp->Build("rot" + std::to_string(offset) + ":" + bp->distribution);
    FXDIST_RETURN_NOT_OK(replica.status());
    auto replicated = ReplicatedBackend::Create(
        *std::move(primary), *std::move(replica), placement);
    FXDIST_RETURN_NOT_OK(replicated.status());
    return std::unique_ptr<StorageBackend>(
        std::make_unique<ReplicatedBackend>(*std::move(replicated)));
  }
  return Status::InvalidArgument("cannot retarget backend kind: " + kind);
}

}  // namespace fxdist
