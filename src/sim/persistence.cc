#include "sim/persistence.h"

#include <fstream>
#include <sstream>

#include "hashing/value_codec.h"

namespace fxdist {

namespace {

const char* TypeTag(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<ValueType> ParseTypeTag(const std::string& tag) {
  if (tag == "int64") return ValueType::kInt64;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown field type: " + tag);
}

/// Token-stream reader with length-prefixed string support.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  Result<std::string> Word() {
    std::string w;
    if (!(in_ >> w)) return Status::InvalidArgument("unexpected EOF");
    return w;
  }

  Result<std::uint64_t> U64() {
    std::uint64_t v = 0;
    if (!(in_ >> v)) return Status::InvalidArgument("expected integer");
    return v;
  }

  Result<std::int64_t> I64() {
    std::int64_t v = 0;
    if (!(in_ >> v)) return Status::InvalidArgument("expected integer");
    return v;
  }

  /// Reads "<len>:<bytes>".
  Result<std::string> LengthPrefixed() { return DecodeLengthPrefixed(in_); }

  /// Expects the literal `word` next.
  Status Expect(const std::string& word) {
    auto w = Word();
    FXDIST_RETURN_NOT_OK(w.status());
    if (*w != word) {
      return Status::InvalidArgument("expected '" + word + "', got '" +
                                     *w + "'");
    }
    return Status::OK();
  }

 private:
  std::istream& in_;
};

}  // namespace

Status SaveParallelFile(const ParallelFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "fxdist-file v1\n";
  out << "devices " << file.num_devices() << '\n';
  out << "distribution ";
  EncodeLengthPrefixed(out, file.distribution_spec());
  out << '\n';
  out << "seed " << file.hash_seed() << '\n';
  const Schema& schema = file.schema();
  out << "fields " << schema.num_fields() << '\n';
  for (unsigned i = 0; i < schema.num_fields(); ++i) {
    const FieldDecl& f = schema.field(i);
    out << "field ";
    EncodeLengthPrefixed(out, f.name);
    out << ' ' << TypeTag(f.type) << ' ' << f.directory_size << '\n';
  }
  out << "records " << file.num_records() << '\n';
  file.ForEachRecord([&](const Record& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i != 0) out << ' ';
      EncodeValue(out, r[i]);
    }
    out << '\n';
  });
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

Result<ParallelFile> LoadParallelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  Reader reader(in);
  FXDIST_RETURN_NOT_OK(reader.Expect("fxdist-file"));
  FXDIST_RETURN_NOT_OK(reader.Expect("v1"));
  FXDIST_RETURN_NOT_OK(reader.Expect("devices"));
  auto devices = reader.U64();
  FXDIST_RETURN_NOT_OK(devices.status());
  FXDIST_RETURN_NOT_OK(reader.Expect("distribution"));
  auto distribution = reader.LengthPrefixed();
  FXDIST_RETURN_NOT_OK(distribution.status());
  FXDIST_RETURN_NOT_OK(reader.Expect("seed"));
  auto seed = reader.U64();
  FXDIST_RETURN_NOT_OK(seed.status());
  FXDIST_RETURN_NOT_OK(reader.Expect("fields"));
  auto num_fields = reader.U64();
  FXDIST_RETURN_NOT_OK(num_fields.status());

  std::vector<FieldDecl> fields;
  for (std::uint64_t i = 0; i < *num_fields; ++i) {
    FXDIST_RETURN_NOT_OK(reader.Expect("field"));
    auto name = reader.LengthPrefixed();
    FXDIST_RETURN_NOT_OK(name.status());
    auto type_tag = reader.Word();
    FXDIST_RETURN_NOT_OK(type_tag.status());
    auto type = ParseTypeTag(*type_tag);
    FXDIST_RETURN_NOT_OK(type.status());
    auto size = reader.U64();
    FXDIST_RETURN_NOT_OK(size.status());
    fields.push_back({*std::move(name), *type, *size});
  }
  auto schema = Schema::Create(std::move(fields));
  FXDIST_RETURN_NOT_OK(schema.status());

  auto file =
      ParallelFile::Create(*schema, *devices, *distribution, *seed);
  FXDIST_RETURN_NOT_OK(file.status());

  FXDIST_RETURN_NOT_OK(reader.Expect("records"));
  auto count = reader.U64();
  FXDIST_RETURN_NOT_OK(count.status());
  for (std::uint64_t r = 0; r < *count; ++r) {
    Record record;
    record.reserve(schema->num_fields());
    for (unsigned f = 0; f < schema->num_fields(); ++f) {
      auto value = DecodeValue(in);
      FXDIST_RETURN_NOT_OK(value.status());
      record.push_back(*std::move(value));
    }
    FXDIST_RETURN_NOT_OK(file->Insert(std::move(record)));
  }
  return file;
}

}  // namespace fxdist
