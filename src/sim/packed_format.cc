#include "sim/packed_format.h"

#include <bit>
#include <cstring>

namespace fxdist {
namespace packed {

namespace {

constexpr std::size_t kMaxVarintBytes = 10;

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("packed file truncated reading ") +
                          what);
}

}  // namespace

std::uint64_t Checksum(std::string_view bytes) {
  // FNV-1a 64, matching net/wire's WireChecksum byte for byte.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

void AppendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void PutZigzag(std::string& out, std::int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

Result<std::uint32_t> ByteReader::U32() {
  if (remaining() < 4) return Truncated("u32");
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::U64() {
  if (remaining() < 8) return Truncated("u64");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::uint64_t> ByteReader::Varint() {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
    if (pos_ + i >= size_) return Truncated("varint");
    const auto byte = static_cast<unsigned char>(data_[pos_ + i]);
    // Byte 10 carries the final bit of a 64-bit value; anything beyond
    // bit 63 is an overlong encoding of corrupt bytes.
    if (i == kMaxVarintBytes - 1 && (byte & 0xfe) != 0) {
      return Status::DataLoss("packed varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      pos_ += i + 1;
      return v;
    }
  }
  return Status::DataLoss("packed varint longer than 10 bytes");
}

Result<std::int64_t> ByteReader::Zigzag() {
  auto v = Varint();
  FXDIST_RETURN_NOT_OK(v.status());
  return ZigzagDecode(*v);
}

Result<std::string_view> ByteReader::Bytes(std::size_t n) {
  if (remaining() < n) return Truncated("bytes");
  std::string_view view(data_ + pos_, n);
  pos_ += n;
  return view;
}

Status ByteReader::ExpectEnd() const {
  if (pos_ != size_) {
    return Status::DataLoss("packed block has " +
                            std::to_string(size_ - pos_) +
                            " trailing bytes");
  }
  return Status::OK();
}

// -- Header ----------------------------------------------------------------

std::string EncodeHeader(const Header& header) {
  std::string out;
  out.reserve(kHeaderSize);
  AppendU32(out, kMagic);
  AppendU32(out, kVersion);
  AppendU64(out, header.file_size);
  AppendU64(out, header.num_devices);
  AppendU64(out, header.num_records);
  AppendU64(out, header.num_buckets);
  AppendU64(out, header.directory_off);
  AppendU64(out, header.directory_len);
  AppendU64(out, header.rblock_dir_off);
  AppendU64(out, header.rblock_dir_len);
  AppendU64(out, header.blueprint_off);
  AppendU64(out, header.blueprint_len);
  AppendU32(out, header.records_per_block);
  AppendU32(out, header.num_record_blocks);
  AppendU64(out, Checksum(std::string_view(out)));
  FXDIST_DCHECK(out.size() == kHeaderSize);
  return out;
}

Result<Header> DecodeHeader(std::string_view file) {
  if (file.size() < kHeaderSize) {
    return Status::DataLoss("packed file shorter than its header: " +
                            std::to_string(file.size()) + " bytes");
  }
  ByteReader reader(file.data(), kHeaderSize);
  auto magic = reader.U32();
  FXDIST_RETURN_NOT_OK(magic.status());
  if (*magic != kMagic) {
    return Status::DataLoss("not a packed backend file (bad magic)");
  }
  auto version = reader.U32();
  FXDIST_RETURN_NOT_OK(version.status());
  if (*version != kVersion) {
    return Status::DataLoss("unsupported packed format version " +
                            std::to_string(*version));
  }
  Header h;
  auto read_u64 = [&reader](std::uint64_t* out) -> Status {
    auto v = reader.U64();
    FXDIST_RETURN_NOT_OK(v.status());
    *out = *v;
    return Status::OK();
  };
  FXDIST_RETURN_NOT_OK(read_u64(&h.file_size));
  FXDIST_RETURN_NOT_OK(read_u64(&h.num_devices));
  FXDIST_RETURN_NOT_OK(read_u64(&h.num_records));
  FXDIST_RETURN_NOT_OK(read_u64(&h.num_buckets));
  FXDIST_RETURN_NOT_OK(read_u64(&h.directory_off));
  FXDIST_RETURN_NOT_OK(read_u64(&h.directory_len));
  FXDIST_RETURN_NOT_OK(read_u64(&h.rblock_dir_off));
  FXDIST_RETURN_NOT_OK(read_u64(&h.rblock_dir_len));
  FXDIST_RETURN_NOT_OK(read_u64(&h.blueprint_off));
  FXDIST_RETURN_NOT_OK(read_u64(&h.blueprint_len));
  auto rpb = reader.U32();
  FXDIST_RETURN_NOT_OK(rpb.status());
  h.records_per_block = *rpb;
  auto nblocks = reader.U32();
  FXDIST_RETURN_NOT_OK(nblocks.status());
  h.num_record_blocks = *nblocks;
  auto stored_checksum = reader.U64();
  FXDIST_RETURN_NOT_OK(stored_checksum.status());
  if (*stored_checksum != Checksum(file.substr(0, kHeaderSize - 8))) {
    return Status::DataLoss("packed header checksum mismatch");
  }
  if (h.file_size != file.size()) {
    return Status::DataLoss(
        "packed file truncated: header says " +
        std::to_string(h.file_size) + " bytes, have " +
        std::to_string(file.size()));
  }
  if (h.num_devices == 0) {
    return Status::DataLoss("packed header names zero devices");
  }
  if (h.records_per_block == 0) {
    return Status::DataLoss("packed header has zero records per block");
  }
  const std::uint64_t want_blocks =
      (h.num_records + h.records_per_block - 1) / h.records_per_block;
  if (h.num_record_blocks != want_blocks) {
    return Status::DataLoss("packed header block count disagrees with its "
                            "record count");
  }
  auto check_section = [&h](std::uint64_t off, std::uint64_t len,
                            const char* what) -> Status {
    if (off < kHeaderSize || off > h.file_size ||
        len > h.file_size - off) {
      return Status::DataLoss(std::string("packed ") + what +
                              " section out of file bounds");
    }
    return Status::OK();
  };
  FXDIST_RETURN_NOT_OK(
      check_section(h.directory_off, h.directory_len, "directory"));
  FXDIST_RETURN_NOT_OK(check_section(h.rblock_dir_off, h.rblock_dir_len,
                                     "record-block directory"));
  FXDIST_RETURN_NOT_OK(
      check_section(h.blueprint_off, h.blueprint_len, "blueprint"));
  return h;
}

// -- Directories -------------------------------------------------------------

std::string EncodeDirectory(const Directory& directory) {
  std::string out;
  for (const std::uint64_t count : directory.device_records) {
    PutVarint(out, count);
  }
  PutVarint(out, directory.field_types.size());
  for (const ValueType type : directory.field_types) {
    out.push_back(static_cast<char>(type));
  }
  for (const BucketEntry& entry : directory.buckets) {
    PutVarint(out, entry.device);
    PutVarint(out, entry.linear);
    PutVarint(out, entry.count);
    PutVarint(out, entry.offset);
    PutVarint(out, entry.clen);
    PutVarint(out, entry.rlen);
    AppendU64(out, entry.checksum);
  }
  AppendU64(out, Checksum(std::string_view(out)));
  return out;
}

Result<Directory> DecodeDirectory(std::string_view bytes,
                                  std::uint64_t file_size,
                                  std::uint64_t num_devices,
                                  std::uint64_t num_records,
                                  std::uint64_t num_buckets) {
  if (bytes.size() < 8) return Truncated("bucket directory");
  ByteReader tail(bytes.data() + bytes.size() - 8, 8);
  if (*tail.U64() != Checksum(bytes.substr(0, bytes.size() - 8))) {
    return Status::DataLoss("packed bucket directory checksum mismatch");
  }
  ByteReader reader(bytes.data(), bytes.size() - 8);
  Directory directory;
  directory.device_records.reserve(num_devices);
  std::uint64_t device_total = 0;
  for (std::uint64_t d = 0; d < num_devices; ++d) {
    auto count = reader.Varint();
    FXDIST_RETURN_NOT_OK(count.status());
    directory.device_records.push_back(*count);
    device_total += *count;
  }
  if (device_total != num_records) {
    return Status::DataLoss("packed per-device counts sum to " +
                            std::to_string(device_total) + ", header says " +
                            std::to_string(num_records));
  }
  auto num_fields = reader.Varint();
  FXDIST_RETURN_NOT_OK(num_fields.status());
  if (*num_fields == 0 || *num_fields > reader.remaining()) {
    return Status::DataLoss("packed directory field count out of range");
  }
  auto tags = reader.Bytes(static_cast<std::size_t>(*num_fields));
  FXDIST_RETURN_NOT_OK(tags.status());
  for (const char tag : *tags) {
    if (tag < 0 || tag > static_cast<char>(ValueType::kString)) {
      return Status::DataLoss("packed directory has an unknown field type "
                              "tag");
    }
    directory.field_types.push_back(static_cast<ValueType>(tag));
  }
  // Each entry is at least 6 varint bytes + an 8-byte checksum.
  if (num_buckets > reader.remaining() / 14) {
    return Status::DataLoss("packed directory bucket count exceeds its "
                            "section");
  }
  directory.buckets.reserve(static_cast<std::size_t>(num_buckets));
  std::uint64_t bucket_total = 0;
  for (std::uint64_t i = 0; i < num_buckets; ++i) {
    BucketEntry entry;
    auto field = [&reader](std::uint64_t* out) -> Status {
      auto v = reader.Varint();
      FXDIST_RETURN_NOT_OK(v.status());
      *out = *v;
      return Status::OK();
    };
    FXDIST_RETURN_NOT_OK(field(&entry.device));
    FXDIST_RETURN_NOT_OK(field(&entry.linear));
    FXDIST_RETURN_NOT_OK(field(&entry.count));
    FXDIST_RETURN_NOT_OK(field(&entry.offset));
    FXDIST_RETURN_NOT_OK(field(&entry.clen));
    FXDIST_RETURN_NOT_OK(field(&entry.rlen));
    auto checksum = reader.U64();
    FXDIST_RETURN_NOT_OK(checksum.status());
    entry.checksum = *checksum;
    if (entry.device >= num_devices) {
      return Status::DataLoss("packed directory entry names device " +
                              std::to_string(entry.device) + " of " +
                              std::to_string(num_devices));
    }
    if (entry.count == 0) {
      return Status::DataLoss("packed directory entry for an empty bucket");
    }
    if (entry.offset < kHeaderSize || entry.offset > file_size ||
        entry.clen > file_size - entry.offset) {
      return Status::DataLoss(
          "packed directory offset past EOF: bucket block at " +
          std::to_string(entry.offset) + "+" + std::to_string(entry.clen) +
          " in a " + std::to_string(file_size) + "-byte file");
    }
    if (entry.rlen != entry.count * 8) {
      return Status::DataLoss("packed directory raw length disagrees with "
                              "its bucket count");
    }
    if (!directory.buckets.empty()) {
      const BucketEntry& prev = directory.buckets.back();
      if (entry.device < prev.device ||
          (entry.device == prev.device && entry.linear <= prev.linear)) {
        return Status::DataLoss("packed directory entries out of "
                                "(device, bucket) order");
      }
    }
    bucket_total += entry.count;
    directory.buckets.push_back(entry);
  }
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  if (bucket_total != num_records) {
    return Status::DataLoss("packed bucket counts sum to " +
                            std::to_string(bucket_total) + ", header says " +
                            std::to_string(num_records));
  }
  return directory;
}

std::string EncodeBlockDirectory(const std::vector<BlockEntry>& blocks) {
  std::string out;
  for (const BlockEntry& block : blocks) {
    PutVarint(out, block.offset);
    PutVarint(out, block.clen);
    AppendU64(out, block.checksum);
  }
  AppendU64(out, Checksum(std::string_view(out)));
  return out;
}

Result<std::vector<BlockEntry>> DecodeBlockDirectory(
    std::string_view bytes, std::uint64_t file_size,
    std::uint64_t num_blocks) {
  if (bytes.size() < 8) return Truncated("record-block directory");
  ByteReader tail(bytes.data() + bytes.size() - 8, 8);
  if (*tail.U64() != Checksum(bytes.substr(0, bytes.size() - 8))) {
    return Status::DataLoss(
        "packed record-block directory checksum mismatch");
  }
  ByteReader reader(bytes.data(), bytes.size() - 8);
  if (num_blocks > reader.remaining() / 10) {
    return Status::DataLoss("packed record-block count exceeds its "
                            "section");
  }
  std::vector<BlockEntry> blocks;
  blocks.reserve(static_cast<std::size_t>(num_blocks));
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    BlockEntry block;
    auto offset = reader.Varint();
    FXDIST_RETURN_NOT_OK(offset.status());
    block.offset = *offset;
    auto clen = reader.Varint();
    FXDIST_RETURN_NOT_OK(clen.status());
    block.clen = *clen;
    auto checksum = reader.U64();
    FXDIST_RETURN_NOT_OK(checksum.status());
    block.checksum = *checksum;
    if (block.offset < kHeaderSize || block.offset > file_size ||
        block.clen > file_size - block.offset) {
      return Status::DataLoss("packed record block " + std::to_string(i) +
                              " out of file bounds");
    }
    blocks.push_back(block);
  }
  FXDIST_RETURN_NOT_OK(reader.ExpectEnd());
  return blocks;
}

// -- Payload blocks ----------------------------------------------------------

std::string EncodePostings(const std::vector<std::uint64_t>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 0) {
      PutVarint(out, ids[0]);
    } else {
      FXDIST_DCHECK(ids[i] > ids[i - 1]);
      PutVarint(out, ids[i] - ids[i - 1] - 1);
    }
  }
  return out;
}

Status DecodePostings(std::string_view bytes, std::uint64_t count,
                      std::uint64_t num_records,
                      std::vector<std::uint64_t>* out) {
  ByteReader reader(bytes);
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  std::uint64_t id = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    auto v = reader.Varint();
    FXDIST_RETURN_NOT_OK(v.status());
    if (i == 0) {
      id = *v;
    } else {
      // Ascending ids, stored as delta-1: a wrap-around is corruption.
      const std::uint64_t next = id + *v + 1;
      if (next <= id) {
        return Status::DataLoss("packed posting delta overflows the id "
                                "space");
      }
      id = next;
    }
    if (id >= num_records) {
      return Status::DataLoss("packed posting id " + std::to_string(id) +
                              " out of range (file has " +
                              std::to_string(num_records) + " records)");
    }
    out->push_back(id);
  }
  return reader.ExpectEnd();
}

void EncodeRecord(std::string& out, const Record& record) {
  for (const FieldValue& value : record) {
    switch (TypeOf(value)) {
      case ValueType::kInt64:
        PutZigzag(out, std::get<std::int64_t>(value));
        break;
      case ValueType::kDouble:
        AppendU64(out, std::bit_cast<std::uint64_t>(
                           std::get<double>(value)));
        break;
      case ValueType::kString: {
        const std::string& s = std::get<std::string>(value);
        PutVarint(out, s.size());
        out.append(s);
        break;
      }
    }
  }
}

Status DecodeRecordBlock(std::string_view bytes, std::uint64_t count,
                         const std::vector<ValueType>& types,
                         std::vector<Record>* out) {
  ByteReader reader(bytes);
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t r = 0; r < count; ++r) {
    Record record;
    record.reserve(types.size());
    for (const ValueType type : types) {
      switch (type) {
        case ValueType::kInt64: {
          auto v = reader.Zigzag();
          FXDIST_RETURN_NOT_OK(v.status());
          record.emplace_back(*v);
          break;
        }
        case ValueType::kDouble: {
          auto v = reader.U64();
          FXDIST_RETURN_NOT_OK(v.status());
          record.emplace_back(std::bit_cast<double>(*v));
          break;
        }
        case ValueType::kString: {
          auto len = reader.Varint();
          FXDIST_RETURN_NOT_OK(len.status());
          if (*len > reader.remaining()) {
            return Status::DataLoss("packed string length runs past its "
                                    "record block");
          }
          auto view = reader.Bytes(static_cast<std::size_t>(*len));
          FXDIST_RETURN_NOT_OK(view.status());
          record.emplace_back(std::string(*view));
          break;
        }
      }
    }
    out->push_back(std::move(record));
  }
  return reader.ExpectEnd();
}

}  // namespace packed
}  // namespace fxdist
