// Response-time models (paper §5.2).
//
// The paper argues two regimes: on parallel *disks* the largest response
// size dominates (every device pays roughly the same per-bucket I/O cost,
// so the slowest device — the one with the most qualified buckets — gates
// the query); in *main-memory* databases the CPU address computation and
// inverse mapping dominate.  These models turn bucket counts into
// milliseconds for both regimes so benches and examples can report
// end-to-end numbers.

#ifndef FXDIST_SIM_TIMING_H_
#define FXDIST_SIM_TIMING_H_

#include <cstdint>
#include <vector>

#include "analysis/cycles.h"

namespace fxdist {

/// Per-bucket disk access model: average positioning (seek + rotational
/// latency) plus transfer, defaults loosely matching a late-80s drive.
struct DiskTimingModel {
  double positioning_ms = 28.0;
  double transfer_ms_per_bucket = 2.0;

  /// Time for one device to fetch `buckets` qualified buckets.
  double DeviceTimeMs(std::uint64_t buckets) const {
    return static_cast<double>(buckets) *
           (positioning_ms + transfer_ms_per_bucket);
  }
};

/// Main-memory model: address computation priced by a CycleModel at a
/// fixed clock, plus a per-bucket probe cost.
struct MemoryTimingModel {
  CycleModel cycles;
  double clock_mhz = 8.0;  ///< MC68000-class clock.
  std::uint64_t probe_cycles_per_bucket = 50;

  double CyclesToMs(std::uint64_t c) const {
    return static_cast<double>(c) / (clock_mhz * 1000.0);
  }
};

/// End-to-end timing of one partial match query.
struct QueryTiming {
  double parallel_ms = 0.0;  ///< max over devices
  double serial_ms = 0.0;    ///< single-device baseline (sum)
  double speedup = 0.0;      ///< serial / parallel
};

/// Disk-regime timing from per-device qualified-bucket counts.
QueryTiming DiskQueryTiming(const std::vector<std::uint64_t>& per_device,
                            const DiskTimingModel& model = {});

/// Memory-regime timing: every device pays `address_cycles_per_bucket` for
/// inverse mapping of its share plus the probe cost.
QueryTiming MemoryQueryTiming(const std::vector<std::uint64_t>& per_device,
                              std::uint64_t address_cycles_per_bucket,
                              const MemoryTimingModel& model = {});

}  // namespace fxdist

#endif  // FXDIST_SIM_TIMING_H_
