// ParallelFile: the end-to-end system — multi-key hashing on the way in,
// a declustering method choosing the device, per-device bucket storage,
// and partial match execution with per-device inverse mapping.
//
// This is the "two stage parallel processing" model of the paper's §1 with
// the distribution stage pluggable (FX / Modulo / GDM / custom).  It is
// the "flat" StorageBackend: each device keeps its buckets as in-memory
// record-index vectors.

#ifndef FXDIST_SIM_PARALLEL_FILE_H_
#define FXDIST_SIM_PARALLEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/device_map.h"
#include "core/distribution.h"
#include "hashing/multikey_hash.h"
#include "sim/device.h"
#include "sim/storage_backend.h"
#include "sim/timing.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fxdist {

class ParallelFile : public StorageBackend {
 public:
  /// `distribution` is a registry spec string ("fx-iu2", "modulo",
  /// "gdm1", ...); `seed` selects the hash family.
  static Result<ParallelFile> Create(const Schema& schema,
                                     std::uint64_t num_devices,
                                     const std::string& distribution,
                                     std::uint64_t seed = 0);

  /// Hashes and stores one record.
  Status Insert(Record record) override;

  /// Executes an application-level partial match query: wildcards are
  /// std::nullopt.  Specified fields are matched by *value equality* after
  /// the bucket-level candidates are fetched (hash collisions are
  /// filtered out).
  Result<QueryResult> Execute(const ValueQuery& query) const override;

  /// With a `pool`, each device's inverse mapping and record filtering
  /// runs as its own task — the real-concurrency counterpart of the
  /// modeled disk_timing, with the measured elapsed time in
  /// stats.wall_ms.  Devices touch disjoint state, so this is safe by
  /// construction.
  Result<QueryResult> Execute(const ValueQuery& query,
                              ThreadPool* pool) const;

  /// Deletes every record matching the partial match query (same
  /// semantics as Execute's filter).  Returns the number removed.
  /// Storage for deleted records is reclaimed lazily (arena slots are
  /// tombstoned; device buckets drop the entries immediately).
  Result<std::uint64_t> Delete(const ValueQuery& query) override;

  /// Replaces every record matching `query` with `replacement`
  /// (delete + insert, not atomic: if the replacement fails validation
  /// the matched records are already gone).  Returns the number replaced.
  Result<std::uint64_t> Update(const ValueQuery& query,
                               const Record& replacement);

  /// Lifts a value-level query into the hashed domain (specified values
  /// hashed, wildcards kept).  Exposed so batch executors can plan shared
  /// scans over the same hashed signatures Execute uses.
  Result<PartialMatchQuery> HashQuery(
      const ValueQuery& query) const override {
    return hash_.HashQuery(spec_, query);
  }

  Result<BucketId> HashRecord(const Record& record) const override {
    return hash_.HashRecord(record);
  }

  bool IsBucketLive(std::uint64_t device,
                    std::uint64_t linear_bucket) const override;

  std::string backend_name() const override { return "flat"; }
  const FieldSpec& spec() const override { return spec_; }
  const DistributionMethod& method() const override { return *method_; }
  const DeviceMap& device_map() const override { return device_map_; }
  const Schema& schema() const { return hash_.schema(); }
  /// Live (non-deleted) records.
  std::uint64_t num_records() const override { return live_records_; }
  const Device& device(std::uint64_t i) const { return devices_[i]; }
  /// Record at an arena index handed out by Device buckets.  May be a
  /// tombstone (empty) if the record was deleted.
  const Record& record(RecordIndex idx) const { return records_[idx]; }

  void ScanBucket(
      std::uint64_t device, std::uint64_t linear_bucket,
      const std::function<bool(const Record&)>& fn) const override;

  std::vector<ValueType> FieldTypes() const override {
    std::vector<ValueType> types;
    types.reserve(schema().num_fields());
    for (unsigned f = 0; f < schema().num_fields(); ++f) {
      types.push_back(schema().field(f).type);
    }
    return types;
  }

  /// Per-device record counts — storage balance diagnostics.
  std::vector<std::uint64_t> RecordCountsPerDevice() const override;

  /// Construction parameters, remembered for persistence.
  const std::string& distribution_spec() const { return distribution_spec_; }
  std::uint64_t hash_seed() const { return hash_seed_; }

  void SaveParams(std::ostream& out) const override;
  void ForEachLiveRecord(
      const std::function<void(const Record&)>& fn) const override;

  /// Visits every live record (persistence / diagnostics).
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    for (const Record& r : records_) {
      if (!r.empty()) fn(static_cast<const Record&>(r));
    }
  }

 private:
  ParallelFile(FieldSpec spec, MultiKeyHash hash,
               std::unique_ptr<DistributionMethod> method);

  FieldSpec spec_;
  std::string distribution_spec_;
  std::uint64_t hash_seed_ = 0;
  MultiKeyHash hash_;
  std::unique_ptr<DistributionMethod> method_;
  DeviceMap device_map_;
  std::vector<Device> devices_;
  std::vector<Record> records_;
  std::uint64_t live_records_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PARALLEL_FILE_H_
