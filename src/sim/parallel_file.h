// ParallelFile: the end-to-end system — multi-key hashing on the way in,
// a declustering method choosing the device, per-device bucket storage,
// and partial match execution with per-device inverse mapping.
//
// This is the "two stage parallel processing" model of the paper's §1 with
// the distribution stage pluggable (FX / Modulo / GDM / custom).

#ifndef FXDIST_SIM_PARALLEL_FILE_H_
#define FXDIST_SIM_PARALLEL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.h"
#include "hashing/multikey_hash.h"
#include "sim/device.h"
#include "sim/timing.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fxdist {

/// Statistics of one executed query.
struct QueryStats {
  /// Qualified buckets allocated to each device (the paper's r_i(q)).
  std::vector<std::uint64_t> qualified_per_device;
  std::uint64_t total_qualified = 0;
  std::uint64_t largest_response = 0;  ///< max_i r_i(q)
  std::uint64_t optimal_bound = 0;     ///< ceil(total / M)
  bool strict_optimal = false;
  std::uint64_t records_examined = 0;
  std::uint64_t records_matched = 0;
  QueryTiming disk_timing;
  /// Measured wall-clock of the per-device phase (ms).
  double wall_ms = 0.0;
  /// Measured wall-clock of each device's own share (ms).  max() is the
  /// critical path — the time an M-core deployment would need; the sum is
  /// the serial cost.  Meaningful on any host core count.
  std::vector<double> device_wall_ms;
};

/// Matched records plus execution statistics.
struct QueryResult {
  std::vector<Record> records;
  QueryStats stats;
};

/// True iff `record` satisfies every specified field of `query` by value
/// equality (the filter applied after bucket-level candidates are
/// fetched).  Shared by ParallelFile and the batch QueryEngine so both
/// paths match bit-identically.
bool RecordMatchesValueQuery(const ValueQuery& query, const Record& record);

class ParallelFile {
 public:
  /// `distribution` is a registry spec string ("fx-iu2", "modulo",
  /// "gdm1", ...); `seed` selects the hash family.
  static Result<ParallelFile> Create(const Schema& schema,
                                     std::uint64_t num_devices,
                                     const std::string& distribution,
                                     std::uint64_t seed = 0);

  /// Hashes and stores one record.
  Status Insert(Record record);

  /// Executes an application-level partial match query: wildcards are
  /// std::nullopt.  Specified fields are matched by *value equality* after
  /// the bucket-level candidates are fetched (hash collisions are
  /// filtered out).
  ///
  /// With a `pool`, each device's inverse mapping and record filtering
  /// runs as its own task — the real-concurrency counterpart of the
  /// modeled disk_timing, with the measured elapsed time in
  /// stats.wall_ms.  Devices touch disjoint state, so this is safe by
  /// construction.
  Result<QueryResult> Execute(const ValueQuery& query,
                              ThreadPool* pool = nullptr) const;

  /// Deletes every record matching the partial match query (same
  /// semantics as Execute's filter).  Returns the number removed.
  /// Storage for deleted records is reclaimed lazily (arena slots are
  /// tombstoned; device buckets drop the entries immediately).
  Result<std::uint64_t> Delete(const ValueQuery& query);

  /// Replaces every record matching `query` with `replacement`
  /// (delete + insert, not atomic: if the replacement fails validation
  /// the matched records are already gone).  Returns the number replaced.
  Result<std::uint64_t> Update(const ValueQuery& query,
                               const Record& replacement);

  /// Lifts a value-level query into the hashed domain (specified values
  /// hashed, wildcards kept).  Exposed so batch executors can plan shared
  /// scans over the same hashed signatures Execute uses.
  Result<PartialMatchQuery> HashQuery(const ValueQuery& query) const {
    return hash_.HashQuery(spec_, query);
  }

  const FieldSpec& spec() const { return spec_; }
  const DistributionMethod& method() const { return *method_; }
  const Schema& schema() const { return hash_.schema(); }
  std::uint64_t num_devices() const { return spec_.num_devices(); }
  /// Live (non-deleted) records.
  std::uint64_t num_records() const { return live_records_; }
  const Device& device(std::uint64_t i) const { return devices_[i]; }
  /// Record at an arena index handed out by Device buckets.  May be a
  /// tombstone (empty) if the record was deleted.
  const Record& record(RecordIndex idx) const { return records_[idx]; }

  /// Per-device record counts — storage balance diagnostics.
  std::vector<std::uint64_t> RecordCountsPerDevice() const;

  /// Construction parameters, remembered for persistence.
  const std::string& distribution_spec() const { return distribution_spec_; }
  std::uint64_t hash_seed() const { return hash_seed_; }

  /// Visits every live record (persistence / diagnostics).
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    for (const Record& r : records_) {
      if (!r.empty()) fn(static_cast<const Record&>(r));
    }
  }

 private:
  ParallelFile(FieldSpec spec, MultiKeyHash hash,
               std::unique_ptr<DistributionMethod> method);

  FieldSpec spec_;
  std::string distribution_spec_;
  std::uint64_t hash_seed_ = 0;
  MultiKeyHash hash_;
  std::unique_ptr<DistributionMethod> method_;
  std::vector<Device> devices_;
  std::vector<Record> records_;
  std::uint64_t live_records_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_SIM_PARALLEL_FILE_H_
