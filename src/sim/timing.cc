#include "sim/timing.h"

#include <algorithm>

namespace fxdist {

QueryTiming DiskQueryTiming(const std::vector<std::uint64_t>& per_device,
                            const DiskTimingModel& model) {
  QueryTiming t;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t b : per_device) {
    total += b;
    max = std::max(max, b);
  }
  t.parallel_ms = model.DeviceTimeMs(max);
  t.serial_ms = model.DeviceTimeMs(total);
  t.speedup = t.parallel_ms > 0 ? t.serial_ms / t.parallel_ms : 1.0;
  return t;
}

QueryTiming MemoryQueryTiming(const std::vector<std::uint64_t>& per_device,
                              std::uint64_t address_cycles_per_bucket,
                              const MemoryTimingModel& model) {
  QueryTiming t;
  const std::uint64_t per_bucket =
      address_cycles_per_bucket + model.probe_cycles_per_bucket;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (std::uint64_t b : per_device) {
    total += b;
    max = std::max(max, b);
  }
  t.parallel_ms = model.CyclesToMs(max * per_bucket);
  t.serial_ms = model.CyclesToMs(total * per_bucket);
  t.speedup = t.parallel_ms > 0 ? t.serial_ms / t.parallel_ms : 1.0;
  return t;
}

}  // namespace fxdist
