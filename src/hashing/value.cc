#include "hashing/value.h"

#include <sstream>

namespace fxdist {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType TypeOf(const FieldValue& value) {
  return static_cast<ValueType>(value.index());
}

std::string FieldValueToString(const FieldValue& value) {
  std::ostringstream oss;
  switch (TypeOf(value)) {
    case ValueType::kInt64:
      oss << std::get<std::int64_t>(value);
      break;
    case ValueType::kDouble:
      oss << std::get<double>(value);
      break;
    case ValueType::kString:
      oss << '"' << std::get<std::string>(value) << '"';
      break;
  }
  return oss.str();
}

std::string RecordToString(const Record& record) {
  std::ostringstream oss;
  oss << '(';
  for (std::size_t i = 0; i < record.size(); ++i) {
    if (i != 0) oss << ", ";
    oss << FieldValueToString(record[i]);
  }
  oss << ')';
  return oss.str();
}

}  // namespace fxdist
