#include "hashing/hash_functions.h"

#include <cmath>
#include <cstring>

#include "util/bitops.h"

namespace fxdist {

namespace {

std::uint64_t Mix64(std::uint64_t z) {
  // SplitMix64 finalizer: full-avalanche 64-bit mix.
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Status CheckRange(std::uint64_t range) {
  if (!IsPowerOfTwo(range)) {
    return Status::InvalidArgument("hash range " + std::to_string(range) +
                                   " is not a power of two");
  }
  return Status::OK();
}

class DivisionHasher final : public FieldHasher {
 public:
  explicit DivisionHasher(std::uint64_t range) : FieldHasher(range) {}

  Result<std::uint64_t> Hash(const FieldValue& value) const override {
    if (TypeOf(value) != ValueType::kInt64) {
      return Status::InvalidArgument("division hasher expects int64, got " +
                                     std::string(ValueTypeToString(
                                         TypeOf(value))));
    }
    const auto v = std::get<std::int64_t>(value);
    const auto u = static_cast<std::uint64_t>(v < 0 ? -(v + 1) : v);
    return TruncateMod(u, range_);
  }

  std::string name() const override { return "division"; }
};

class MultiplicativeHasher final : public FieldHasher {
 public:
  MultiplicativeHasher(std::uint64_t range, std::uint64_t seed)
      : FieldHasher(range), seed_(seed) {}

  Result<std::uint64_t> Hash(const FieldValue& value) const override {
    if (TypeOf(value) != ValueType::kInt64) {
      return Status::InvalidArgument(
          "multiplicative hasher expects int64, got " +
          std::string(ValueTypeToString(TypeOf(value))));
    }
    const auto u =
        static_cast<std::uint64_t>(std::get<std::int64_t>(value));
    // Fibonacci multiplier (2^64 / phi), then take the *top* bits — the
    // textbook multiplicative scheme — and XOR the seed into the key.
    const std::uint64_t h = (u ^ Mix64(seed_)) * 0x9E3779B97F4A7C15ull;
    const unsigned bits = Log2Exact(range_);
    return bits == 0 ? 0 : (h >> (64 - bits));
  }

  std::string name() const override { return "multiplicative"; }

 private:
  std::uint64_t seed_;
};

class StringFnvHasher final : public FieldHasher {
 public:
  StringFnvHasher(std::uint64_t range, std::uint64_t seed)
      : FieldHasher(range), seed_(seed) {}

  Result<std::uint64_t> Hash(const FieldValue& value) const override {
    if (TypeOf(value) != ValueType::kString) {
      return Status::InvalidArgument("string hasher expects string, got " +
                                     std::string(ValueTypeToString(
                                         TypeOf(value))));
    }
    const std::string& s = std::get<std::string>(value);
    std::uint64_t h = 0xCBF29CE484222325ull ^ Mix64(seed_);
    for (char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 0x100000001B3ull;  // FNV-1a prime.
    }
    return TruncateMod(Mix64(h), range_);
  }

  std::string name() const override { return "fnv1a"; }

 private:
  std::uint64_t seed_;
};

class DoubleHasher final : public FieldHasher {
 public:
  DoubleHasher(std::uint64_t range, std::uint64_t seed)
      : FieldHasher(range), seed_(seed) {}

  Result<std::uint64_t> Hash(const FieldValue& value) const override {
    if (TypeOf(value) != ValueType::kDouble) {
      return Status::InvalidArgument("double hasher expects double, got " +
                                     std::string(ValueTypeToString(
                                         TypeOf(value))));
    }
    double d = std::get<double>(value);
    if (d == 0.0) d = 0.0;  // Collapse -0.0 and +0.0.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return TruncateMod(Mix64(bits ^ seed_), range_);
  }

  std::string name() const override { return "double-bits"; }

 private:
  std::uint64_t seed_;
};

}  // namespace

Result<std::unique_ptr<FieldHasher>> MakeDivisionHasher(std::uint64_t range) {
  FXDIST_RETURN_NOT_OK(CheckRange(range));
  return std::unique_ptr<FieldHasher>(new DivisionHasher(range));
}

Result<std::unique_ptr<FieldHasher>> MakeMultiplicativeHasher(
    std::uint64_t range, std::uint64_t seed) {
  FXDIST_RETURN_NOT_OK(CheckRange(range));
  return std::unique_ptr<FieldHasher>(new MultiplicativeHasher(range, seed));
}

Result<std::unique_ptr<FieldHasher>> MakeStringHasher(std::uint64_t range,
                                                      std::uint64_t seed) {
  FXDIST_RETURN_NOT_OK(CheckRange(range));
  return std::unique_ptr<FieldHasher>(new StringFnvHasher(range, seed));
}

Result<std::unique_ptr<FieldHasher>> MakeDoubleHasher(std::uint64_t range,
                                                      std::uint64_t seed) {
  FXDIST_RETURN_NOT_OK(CheckRange(range));
  return std::unique_ptr<FieldHasher>(new DoubleHasher(range, seed));
}

Result<std::unique_ptr<FieldHasher>> MakeDefaultHasher(ValueType type,
                                                       std::uint64_t range,
                                                       std::uint64_t seed) {
  switch (type) {
    case ValueType::kInt64:
      return MakeMultiplicativeHasher(range, seed);
    case ValueType::kString:
      return MakeStringHasher(range, seed);
    case ValueType::kDouble:
      return MakeDoubleHasher(range, seed);
  }
  return Status::InvalidArgument("unknown value type");
}

}  // namespace fxdist
