// Text encoding of FieldValues, shared by the ParallelFile persistence
// format and workload traces.
//
//   int64:   i:<decimal>
//   double:  d:<16 hex digits>   (IEEE bits; exact round trip)
//   string:  s:<len>:<bytes>     (length-prefixed; any byte allowed)

#ifndef FXDIST_HASHING_VALUE_CODEC_H_
#define FXDIST_HASHING_VALUE_CODEC_H_

#include <iosfwd>
#include <string>

#include "hashing/value.h"
#include "util/status.h"

namespace fxdist {

/// Stable token for a ValueType ("int64" / "double" / "string").
const char* ValueTypeTag(ValueType type);

/// Inverse of ValueTypeTag.
Result<ValueType> ParseValueTypeTag(const std::string& tag);

/// Writes "<len>:<bytes>".
void EncodeLengthPrefixed(std::ostream& os, const std::string& s);

/// Reads "<len>:<bytes>" (skipping leading whitespace).
Result<std::string> DecodeLengthPrefixed(std::istream& in);

/// Writes one tagged value.
void EncodeValue(std::ostream& os, const FieldValue& value);

/// Reads one tagged value (skipping leading whitespace).
Result<FieldValue> DecodeValue(std::istream& in);

}  // namespace fxdist

#endif  // FXDIST_HASHING_VALUE_CODEC_H_
