// Typed attribute values and records.
//
// The declustering core works on hashed bucket coordinates; this layer is
// the substrate that turns application records (ints, doubles, strings)
// into those coordinates via per-field hash functions.

#ifndef FXDIST_HASHING_VALUE_H_
#define FXDIST_HASHING_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace fxdist {

/// One attribute value.
using FieldValue = std::variant<std::int64_t, double, std::string>;

/// One application record: one value per field.
using Record = std::vector<FieldValue>;

/// Value type tags, aligned with the FieldValue alternatives.
enum class ValueType { kInt64 = 0, kDouble = 1, kString = 2 };

const char* ValueTypeToString(ValueType type);

/// The type tag of a value.
ValueType TypeOf(const FieldValue& value);

/// Human-readable rendering ("42", "3.14", "\"abc\"").
std::string FieldValueToString(const FieldValue& value);

/// Renders a record as "(v1, v2, ...)".
std::string RecordToString(const Record& record);

}  // namespace fxdist

#endif  // FXDIST_HASHING_VALUE_H_
