#include "hashing/linear_hash.h"

#include <utility>

#include "util/bitops.h"

namespace fxdist {

LinearHashDirectory::LinearHashDirectory(std::size_t page_capacity,
                                         double max_load_factor)
    : page_capacity_(page_capacity), max_load_factor_(max_load_factor) {
  buckets_.emplace_back();
}

Result<LinearHashDirectory> LinearHashDirectory::Create(
    std::size_t page_capacity, double max_load_factor) {
  if (page_capacity == 0) {
    return Status::InvalidArgument("page capacity must be >= 1");
  }
  if (max_load_factor <= 0.0 || max_load_factor > 1.0) {
    return Status::InvalidArgument("load factor must be in (0, 1]");
  }
  return LinearHashDirectory(page_capacity, max_load_factor);
}

double LinearHashDirectory::LoadFactor() const {
  return static_cast<double>(num_keys_) /
         (static_cast<double>(buckets_.size()) *
          static_cast<double>(page_capacity_));
}

std::uint64_t LinearHashDirectory::BucketOf(std::uint64_t hash) const {
  const std::uint64_t low = std::uint64_t{1} << level_;
  std::uint64_t b = hash & (low - 1);
  if (b < split_) {
    b = hash & (2 * low - 1);
  }
  return b;
}

void LinearHashDirectory::Insert(std::uint64_t hash) {
  ++num_keys_;
  buckets_[BucketOf(hash)].push_back(hash);
  while (LoadFactor() > max_load_factor_) {
    SplitNext();
  }
}

void LinearHashDirectory::SplitNext() {
  const std::uint64_t low = std::uint64_t{1} << level_;
  [[maybe_unused]] const std::uint64_t image = split_ + low;  // new bucket
  buckets_.emplace_back();
  std::vector<std::uint64_t> keys = std::move(buckets_[split_]);
  buckets_[split_].clear();
  for (std::uint64_t h : keys) {
    const std::uint64_t b = h & (2 * low - 1);
    FXDIST_DCHECK(b == split_ || b == image);
    buckets_[b].push_back(h);
  }
  ++split_;
  if (split_ == low) {
    split_ = 0;
    ++level_;
  }
}

std::uint64_t LinearHashDirectory::PowerOfTwoCeiling() const {
  return CeilPowerOfTwo(num_buckets());
}

}  // namespace fxdist
