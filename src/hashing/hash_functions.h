// Per-field hash functions H_i : value -> {0, ..., F_i - 1}.
//
// Each field of a multi-key hash file has its own hash function whose range
// is that field's (power-of-two) directory size, as in the partitioned /
// dynamic hashing schemes the paper builds on.  All hashers here are
// deterministic, seedable, and produce well-mixed low bits so that
// truncation to F values is safe.

#ifndef FXDIST_HASHING_HASH_FUNCTIONS_H_
#define FXDIST_HASHING_HASH_FUNCTIONS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "hashing/value.h"
#include "util/status.h"

namespace fxdist {

/// Hashes one field's values into [0, range).
class FieldHasher {
 public:
  virtual ~FieldHasher() = default;

  /// The field directory size F (a power of two).
  std::uint64_t range() const { return range_; }

  /// Hash of `value`; must be < range().  Returns an error if the value's
  /// type does not match the hasher.
  virtual Result<std::uint64_t> Hash(const FieldValue& value) const = 0;

  virtual std::string name() const = 0;

 protected:
  explicit FieldHasher(std::uint64_t range) : range_(range) {}
  std::uint64_t range_;
};

/// Division hashing for integers: |v| mod F.  Order-preserving within a
/// block; the classic choice when key distribution is already uniform.
Result<std::unique_ptr<FieldHasher>> MakeDivisionHasher(std::uint64_t range);

/// Multiplicative (Fibonacci) hashing for integers: well-mixed even for
/// clustered keys.  `seed` perturbs the multiplier stream.
Result<std::unique_ptr<FieldHasher>> MakeMultiplicativeHasher(
    std::uint64_t range, std::uint64_t seed = 0);

/// FNV-1a for strings, folded to the range.
Result<std::unique_ptr<FieldHasher>> MakeStringHasher(std::uint64_t range,
                                                      std::uint64_t seed = 0);

/// Doubles: hashes the IEEE bit pattern (normalizing -0.0 to 0.0).
Result<std::unique_ptr<FieldHasher>> MakeDoubleHasher(std::uint64_t range,
                                                      std::uint64_t seed = 0);

/// Picks a sensible default hasher for `type`: multiplicative for ints,
/// FNV for strings, bit-pattern for doubles.
Result<std::unique_ptr<FieldHasher>> MakeDefaultHasher(ValueType type,
                                                       std::uint64_t range,
                                                       std::uint64_t seed = 0);

}  // namespace fxdist

#endif  // FXDIST_HASHING_HASH_FUNCTIONS_H_
