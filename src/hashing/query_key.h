// ValueQuery -> QueryKey canonicalization.
//
// The token side of the canonical key (core/query_key.h) is opaque; this
// header binds it to the value layer: every specified FieldValue is
// reduced to its exact value_codec encoding ("i:42", "d:<hex bits>",
// "s:<len>:<bytes>").  The tokens are injective on values, so two
// queries with equal keys apply byte-identical filters and may share one
// execution or one cache entry.
//
// Exactness caveat (doubles): tokens encode IEEE bits, so 0.0 and -0.0 —
// equal under operator== — canonicalize to *different* keys.  That
// direction is safe (distinct keys merely miss a collapse); the unsafe
// direction cannot happen (equal keys always mean bit-identical values,
// which filter identically — NaN payloads included).

#ifndef FXDIST_HASHING_QUERY_KEY_H_
#define FXDIST_HASHING_QUERY_KEY_H_

#include "core/query_key.h"
#include "hashing/multikey_hash.h"

namespace fxdist {

/// The canonical key of `query`: arity = query.size(), one token per
/// specified field.  Total function — any ValueQuery (including
/// all-wildcard) has a key.
QueryKey CanonicalQueryKey(const ValueQuery& query);

/// The exact token CanonicalQueryKey would use for one value.
std::string QueryKeyToken(const FieldValue& value);

}  // namespace fxdist

#endif  // FXDIST_HASHING_QUERY_KEY_H_
