// Extendible hashing directory (Fagin et al. 1979).
//
// The paper assumes every field size F_i is a power of two "which is common
// for hash directory files for partitioned or dynamic hashing schemes".
// This is that substrate: a per-field directory that doubles as data
// arrives, so field sizes are powers of two *by construction* and grow with
// the file.  sim/dynamic_parallel_file.h builds on it to re-plan the FX
// distribution whenever a directory doubles.
//
// Standard scheme: a directory of 2^g cells (g = global depth) points to
// pages; a page with local depth l <= g is shared by 2^(g-l) cells.  An
// overfull page splits on bit l; splitting a page with l == g first doubles
// the directory.

#ifndef FXDIST_HASHING_EXTENDIBLE_H_
#define FXDIST_HASHING_EXTENDIBLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/status.h"

namespace fxdist {

class ExtendibleDirectory {
 public:
  /// `page_capacity` keys per page before a split (>= 1).
  /// `max_global_depth` caps the directory at 2^max_global_depth cells;
  /// pages at the cap overflow instead of splitting.
  /// `initial_global_depth` pre-grows the directory to 2^g cells sharing
  /// one empty local-depth-0 page — a provisioned directory whose cell
  /// space is fixed from the start for workloads (sharded composites)
  /// that cannot tolerate mid-stream doubling.  Growth past it proceeds
  /// normally, up to the cap.
  static Result<ExtendibleDirectory> Create(
      std::size_t page_capacity, unsigned max_global_depth = kMaxDepth,
      unsigned initial_global_depth = 0);

  /// Inserts a key hash.  Duplicates are allowed: a page whose keys are
  /// all identical can never separate, so it overflows rather than
  /// splitting (splitting such a page only doubles the directory without
  /// relieving it).
  void Insert(std::uint64_t hash);

  /// Number of directory cells, 2^global_depth — the field size F.
  std::uint64_t directory_size() const {
    return std::uint64_t{1} << global_depth_;
  }
  unsigned global_depth() const { return global_depth_; }

  /// Cell index of a hash: its low global_depth bits.
  std::uint64_t CellOf(std::uint64_t hash) const {
    return hash & (directory_size() - 1);
  }

  std::uint64_t num_keys() const { return num_keys_; }
  std::uint64_t num_pages() const;
  /// Average keys per page relative to capacity.
  double LoadFactor() const;

  /// Keys in the page backing `cell` (diagnostics / tests).
  const std::vector<std::uint64_t>& PageKeys(std::uint64_t cell) const;
  unsigned PageLocalDepth(std::uint64_t cell) const;

  /// Default depth cap: beyond this, pages overflow instead of splitting.
  static constexpr unsigned kMaxDepth = 16;

 private:
  struct Page {
    unsigned local_depth = 0;
    std::vector<std::uint64_t> hashes;
  };

  ExtendibleDirectory(std::size_t page_capacity, unsigned max_global_depth);

  void SplitPage(std::uint64_t cell);
  void DoubleDirectory();

  std::size_t page_capacity_;
  unsigned max_global_depth_;
  unsigned global_depth_ = 0;
  std::vector<std::shared_ptr<Page>> dir_;
  std::uint64_t num_keys_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_HASHING_EXTENDIBLE_H_
