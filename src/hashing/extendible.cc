#include "hashing/extendible.h"

#include <algorithm>
#include <unordered_set>

namespace fxdist {

ExtendibleDirectory::ExtendibleDirectory(std::size_t page_capacity,
                                         unsigned max_global_depth)
    : page_capacity_(page_capacity), max_global_depth_(max_global_depth) {
  dir_.push_back(std::make_shared<Page>());
}

Result<ExtendibleDirectory> ExtendibleDirectory::Create(
    std::size_t page_capacity, unsigned max_global_depth,
    unsigned initial_global_depth) {
  if (page_capacity == 0) {
    return Status::InvalidArgument("page capacity must be >= 1");
  }
  if (max_global_depth > 40) {
    return Status::InvalidArgument("depth cap above 40 bits is unsafe");
  }
  if (initial_global_depth > max_global_depth) {
    return Status::InvalidArgument("initial depth exceeds the depth cap");
  }
  ExtendibleDirectory dir(page_capacity, max_global_depth);
  for (unsigned g = 0; g < initial_global_depth; ++g) dir.DoubleDirectory();
  return dir;
}

namespace {
bool AllKeysEqual(const std::vector<std::uint64_t>& keys) {
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] != keys[0]) return false;
  }
  return true;
}
}  // namespace

void ExtendibleDirectory::Insert(std::uint64_t hash) {
  ++num_keys_;
  while (true) {
    const std::uint64_t cell = CellOf(hash);
    Page& page = *dir_[cell];
    if (page.hashes.size() < page_capacity_ ||
        page.local_depth >= max_global_depth_ ||
        (AllKeysEqual(page.hashes) &&
         (page.hashes.empty() || page.hashes[0] == hash))) {
      page.hashes.push_back(hash);
      return;
    }
    SplitPage(cell);
  }
}

void ExtendibleDirectory::SplitPage(std::uint64_t cell) {
  std::shared_ptr<Page> old_page = dir_[cell];
  if (old_page->local_depth == global_depth_) {
    DoubleDirectory();
  }
  const unsigned new_depth = old_page->local_depth + 1;
  auto zero_page = std::make_shared<Page>();
  auto one_page = std::make_shared<Page>();
  zero_page->local_depth = new_depth;
  one_page->local_depth = new_depth;
  const std::uint64_t split_bit = std::uint64_t{1} << old_page->local_depth;
  for (std::uint64_t h : old_page->hashes) {
    ((h & split_bit) ? one_page : zero_page)->hashes.push_back(h);
  }
  // Rewire every directory cell that pointed at the old page.
  for (std::uint64_t c = 0; c < dir_.size(); ++c) {
    if (dir_[c] == old_page) {
      dir_[c] = (c & split_bit) ? one_page : zero_page;
    }
  }
}

void ExtendibleDirectory::DoubleDirectory() {
  const std::size_t old_size = dir_.size();
  dir_.resize(old_size * 2);
  for (std::size_t c = 0; c < old_size; ++c) {
    dir_[old_size + c] = dir_[c];
  }
  ++global_depth_;
}

std::uint64_t ExtendibleDirectory::num_pages() const {
  std::unordered_set<const Page*> pages;
  for (const auto& p : dir_) pages.insert(p.get());
  return pages.size();
}

double ExtendibleDirectory::LoadFactor() const {
  const std::uint64_t pages = num_pages();
  if (pages == 0) return 0.0;
  return static_cast<double>(num_keys_) /
         (static_cast<double>(pages) *
          static_cast<double>(page_capacity_));
}

const std::vector<std::uint64_t>& ExtendibleDirectory::PageKeys(
    std::uint64_t cell) const {
  return dir_[cell]->hashes;
}

unsigned ExtendibleDirectory::PageLocalDepth(std::uint64_t cell) const {
  return dir_[cell]->local_depth;
}

}  // namespace fxdist
