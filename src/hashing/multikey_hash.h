// Schema + MultiKeyHash: H(r) = <H_1(r_1), ..., H_n(r_n)>.
//
// A Schema names and types the fields and fixes each field's directory
// size F_i; MultiKeyHash owns one hasher per field and maps records to
// bucket coordinates.  It also lifts application-level partial match
// queries (values on some fields) into hashed PartialMatchQuery objects.

#ifndef FXDIST_HASHING_MULTIKEY_HASH_H_
#define FXDIST_HASHING_MULTIKEY_HASH_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bucket.h"
#include "core/field_spec.h"
#include "core/query.h"
#include "hashing/hash_functions.h"
#include "hashing/value.h"
#include "util/status.h"

namespace fxdist {

/// One field's declaration.
struct FieldDecl {
  std::string name;
  ValueType type = ValueType::kInt64;
  std::uint64_t directory_size = 1;  ///< F_i, a power of two.
};

/// An ordered set of field declarations.
class Schema {
 public:
  static Result<Schema> Create(std::vector<FieldDecl> fields);

  unsigned num_fields() const {
    return static_cast<unsigned>(fields_.size());
  }
  const FieldDecl& field(unsigned i) const { return fields_[i]; }

  /// Index of the field named `name`.
  Result<unsigned> FieldIndex(const std::string& name) const;

  /// The FieldSpec induced by the directory sizes.
  Result<FieldSpec> ToFieldSpec(std::uint64_t num_devices) const;

 private:
  explicit Schema(std::vector<FieldDecl> fields)
      : fields_(std::move(fields)) {}
  std::vector<FieldDecl> fields_;
};

/// An application-level partial match query: per-field optional values.
using ValueQuery = std::vector<std::optional<FieldValue>>;

/// Multi-key hash function over a Schema.
class MultiKeyHash {
 public:
  /// Default hashers per field type; `seed` varies the hash family.
  static Result<MultiKeyHash> Create(const Schema& schema,
                                     std::uint64_t seed = 0);

  const Schema& schema() const { return schema_; }

  /// H(r): one bucket coordinate per field.  Validates record arity and
  /// field types.
  Result<BucketId> HashRecord(const Record& record) const;

  /// Lifts a value-level query to the hashed domain: specified values are
  /// hashed, wildcards stay wildcards.
  Result<PartialMatchQuery> HashQuery(const FieldSpec& spec,
                                      const ValueQuery& query) const;

 private:
  MultiKeyHash(Schema schema,
               std::vector<std::shared_ptr<FieldHasher>> hashers)
      : schema_(std::move(schema)), hashers_(std::move(hashers)) {}

  Schema schema_;
  // shared_ptr so MultiKeyHash stays copyable (hashers are immutable).
  std::vector<std::shared_ptr<FieldHasher>> hashers_;
};

}  // namespace fxdist

#endif  // FXDIST_HASHING_MULTIKEY_HASH_H_
