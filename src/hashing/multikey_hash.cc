#include "hashing/multikey_hash.h"

#include "util/bitops.h"

namespace fxdist {

Result<Schema> Schema::Create(std::vector<FieldDecl> fields) {
  if (fields.empty()) {
    return Status::InvalidArgument("schema needs at least one field");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name.empty()) {
      return Status::InvalidArgument("field " + std::to_string(i) +
                                     " has an empty name");
    }
    if (!IsPowerOfTwo(fields[i].directory_size)) {
      return Status::InvalidArgument(
          "field '" + fields[i].name + "' directory size " +
          std::to_string(fields[i].directory_size) +
          " is not a power of two");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (fields[j].name == fields[i].name) {
        return Status::AlreadyExists("duplicate field name: " +
                                     fields[i].name);
      }
    }
  }
  return Schema(std::move(fields));
}

Result<unsigned> Schema::FieldIndex(const std::string& name) const {
  for (unsigned i = 0; i < num_fields(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

Result<FieldSpec> Schema::ToFieldSpec(std::uint64_t num_devices) const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(fields_.size());
  for (const auto& f : fields_) sizes.push_back(f.directory_size);
  return FieldSpec::Create(std::move(sizes), num_devices);
}

Result<MultiKeyHash> MultiKeyHash::Create(const Schema& schema,
                                          std::uint64_t seed) {
  std::vector<std::shared_ptr<FieldHasher>> hashers;
  hashers.reserve(schema.num_fields());
  for (unsigned i = 0; i < schema.num_fields(); ++i) {
    const FieldDecl& f = schema.field(i);
    auto h = MakeDefaultHasher(f.type, f.directory_size, seed + i);
    FXDIST_RETURN_NOT_OK(h.status());
    hashers.push_back(std::shared_ptr<FieldHasher>(std::move(*h)));
  }
  return MultiKeyHash(schema, std::move(hashers));
}

Result<BucketId> MultiKeyHash::HashRecord(const Record& record) const {
  if (record.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "record has " + std::to_string(record.size()) + " fields, schema " +
        std::to_string(schema_.num_fields()));
  }
  BucketId bucket(record.size());
  for (unsigned i = 0; i < schema_.num_fields(); ++i) {
    auto h = hashers_[i]->Hash(record[i]);
    FXDIST_RETURN_NOT_OK(h.status());
    bucket[i] = *h;
  }
  return bucket;
}

Result<PartialMatchQuery> MultiKeyHash::HashQuery(
    const FieldSpec& spec, const ValueQuery& query) const {
  if (query.size() != schema_.num_fields()) {
    return Status::InvalidArgument("query arity mismatch");
  }
  std::vector<std::optional<std::uint64_t>> hashed(query.size());
  for (unsigned i = 0; i < schema_.num_fields(); ++i) {
    if (query[i].has_value()) {
      auto h = hashers_[i]->Hash(*query[i]);
      FXDIST_RETURN_NOT_OK(h.status());
      hashed[i] = *h;
    }
  }
  return PartialMatchQuery::Create(spec, std::move(hashed));
}

}  // namespace fxdist
