#include "hashing/value_codec.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

namespace fxdist {

const char* ValueTypeTag(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

Result<ValueType> ParseValueTypeTag(const std::string& tag) {
  if (tag == "int64") return ValueType::kInt64;
  if (tag == "double") return ValueType::kDouble;
  if (tag == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown field type: " + tag);
}

void EncodeLengthPrefixed(std::ostream& os, const std::string& s) {
  os << s.size() << ':' << s;
}

Result<std::string> DecodeLengthPrefixed(std::istream& in) {
  std::size_t len = 0;
  if (!(in >> len)) return Status::InvalidArgument("expected length");
  if (in.get() != ':') {
    return Status::InvalidArgument("expected ':' after length");
  }
  std::string s(len, '\0');
  if (len > 0 && !in.read(s.data(), static_cast<std::streamsize>(len))) {
    return Status::InvalidArgument("short string payload");
  }
  return s;
}

void EncodeValue(std::ostream& os, const FieldValue& value) {
  switch (TypeOf(value)) {
    case ValueType::kInt64:
      os << "i:" << std::get<std::int64_t>(value);
      break;
    case ValueType::kDouble: {
      std::uint64_t bits;
      const double d = std::get<double>(value);
      std::memcpy(&bits, &d, sizeof(bits));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "d:%016" PRIx64, bits);
      os << buf;
      break;
    }
    case ValueType::kString:
      os << "s:";
      EncodeLengthPrefixed(os, std::get<std::string>(value));
      break;
  }
}

Result<FieldValue> DecodeValue(std::istream& in) {
  if (!(in >> std::ws)) return Status::InvalidArgument("unexpected EOF");
  const int tag = in.get();
  if (tag == EOF || in.get() != ':') {
    return Status::InvalidArgument("expected value tag");
  }
  switch (tag) {
    case 'i': {
      std::int64_t v = 0;
      if (!(in >> v)) return Status::InvalidArgument("expected integer");
      return FieldValue{v};
    }
    case 'd': {
      std::string hex;
      if (!(in >> hex) || hex.size() != 16) {
        return Status::InvalidArgument("expected 16 hex digits");
      }
      std::uint64_t bits = 0;
      if (std::sscanf(hex.c_str(), "%016" SCNx64, &bits) != 1) {
        return Status::InvalidArgument("bad double bits: " + hex);
      }
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return FieldValue{d};
    }
    case 's': {
      auto s = DecodeLengthPrefixed(in);
      FXDIST_RETURN_NOT_OK(s.status());
      return FieldValue{*std::move(s)};
    }
    default:
      return Status::InvalidArgument("unknown value tag");
  }
}

}  // namespace fxdist
