// Linear hashing (Litwin 1980; Larson's partial expansions are cited by
// the paper alongside it).
//
// Unlike extendible hashing, linear hashing grows the bucket count by
// *one* at a time: a split pointer sweeps the level-l buckets; bucket s
// splits by rehashing modulo 2^(l+1), and when the sweep completes the
// level increments.  Growth is driven by a load-factor threshold
// (controlled splitting), so bucket counts are usually NOT powers of two —
// which is precisely why the FX paper's power-of-two assumption binds to
// *level boundaries* of such files.  PowerOfTwoCeiling() exposes the next
// boundary for use as a FieldSpec size.

#ifndef FXDIST_HASHING_LINEAR_HASH_H_
#define FXDIST_HASHING_LINEAR_HASH_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fxdist {

class LinearHashDirectory {
 public:
  /// Splits whenever keys / (buckets * page_capacity) exceeds
  /// `max_load_factor`.
  static Result<LinearHashDirectory> Create(std::size_t page_capacity,
                                            double max_load_factor = 0.8);

  void Insert(std::uint64_t hash);

  /// Current bucket count N = 2^level + split_pointer.
  std::uint64_t num_buckets() const { return buckets_.size(); }
  unsigned level() const { return level_; }
  std::uint64_t split_pointer() const { return split_; }
  std::uint64_t num_keys() const { return num_keys_; }
  double LoadFactor() const;

  /// Litwin's address function: h mod 2^level, re-addressed through
  /// 2^(level+1) for already-split buckets.
  std::uint64_t BucketOf(std::uint64_t hash) const;

  const std::vector<std::uint64_t>& BucketKeys(std::uint64_t bucket) const {
    return buckets_[bucket];
  }

  /// Smallest power of two >= num_buckets(): the next level boundary,
  /// usable as a power-of-two FieldSpec size.
  std::uint64_t PowerOfTwoCeiling() const;

 private:
  LinearHashDirectory(std::size_t page_capacity, double max_load_factor);

  void SplitNext();

  std::size_t page_capacity_;
  double max_load_factor_;
  unsigned level_ = 0;
  std::uint64_t split_ = 0;
  std::vector<std::vector<std::uint64_t>> buckets_;
  std::uint64_t num_keys_ = 0;
};

}  // namespace fxdist

#endif  // FXDIST_HASHING_LINEAR_HASH_H_
