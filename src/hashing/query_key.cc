#include "hashing/query_key.h"

#include <sstream>

#include "hashing/value_codec.h"

namespace fxdist {

std::string QueryKeyToken(const FieldValue& value) {
  std::ostringstream os;
  EncodeValue(os, value);
  return os.str();
}

QueryKey CanonicalQueryKey(const ValueQuery& query) {
  std::vector<QueryKey::Specified> specified;
  specified.reserve(query.size());
  for (unsigned i = 0; i < query.size(); ++i) {
    if (query[i].has_value()) {
      specified.emplace_back(i, QueryKeyToken(*query[i]));
    }
  }
  // Positional queries cannot carry out-of-range or conflicting fields,
  // so Create cannot fail here.
  auto key = QueryKey::Create(static_cast<unsigned>(query.size()),
                              std::move(specified));
  return *std::move(key);
}

}  // namespace fxdist
