// fxdistctl — the command-line front end to the fxdist library.
//
//   fxdistctl report      --fields 8,8,8 --devices 32 [--methods a,b,...]
//   fxdistctl layout      --fields 2,8 --devices 4 --method fx-basic
//   fxdistctl search-plan --fields 4,4,4,4 --devices 256
//   fxdistctl search-gdm  --fields 4,4 --devices 16 [--max-mult 63]
//   fxdistctl advise-bits --probs 0.9,0.5,0.2 --bits 12 [--devices 64]
//   fxdistctl queueing    --fields 8,8,8 --devices 16 --method fx-iu1
//                         --rate 1.0 [--queries 2000] [--spec-prob 0.5]
//   fxdistctl help
//
// Every subcommand prints a table; exit code 0 on success.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/advisor.h"
#include "dist/coordinator.h"
#include "engine/query_engine.h"
#include "analysis/balance.h"
#include "analysis/bit_allocation.h"
#include "analysis/gdm_search.h"
#include "analysis/plan_search.h"
#include "analysis/report.h"
#include "analysis/scheme_search.h"
#include "core/fx.h"
#include "core/registry.h"
#include "front/frontend.h"
#include "net/backend_spec.h"
#include "net/event_shard_server.h"
#include "net/loadgen.h"
#include "net/shard_server.h"
#include "sim/composite_backend.h"
#include "sim/dynamic_parallel_file.h"
#include "sim/migration.h"
#include "sim/packed_backend.h"
#include "sim/persistence.h"
#include "sim/paged_parallel_file.h"
#include "sim/parallel_file.h"
#include "sim/queueing.h"
#include "util/bitops.h"
#include "util/table_printer.h"
#include "workload/query_gen.h"
#include "workload/record_gen.h"
#include "workload/trace.h"

using namespace fxdist;  // NOLINT(build/namespaces)

namespace {

using Flags = std::map<std::string, std::string>;

int Usage() {
  std::cerr
      << "usage: fxdistctl <subcommand> [--flag value ...]\n"
         "subcommands:\n"
         "  report       method comparison on a file system\n"
         "               --fields F1,F2,... --devices M [--methods ...]\n"
         "  layout       bucket-by-bucket device table (small spaces)\n"
         "               --fields ... --devices M --method SPEC\n"
         "  search-plan  search FX transformation assignments\n"
         "               --fields ... --devices M\n"
         "  search-gdm   search GDM multipliers\n"
         "               --fields ... --devices M [--max-mult N]\n"
         "  advise-bits  directory sizing from query statistics\n"
         "               --probs p1,p2,... --bits B [--devices M]\n"
         "  queueing     response time under Poisson load\n"
         "               --fields ... --devices M --method SPEC --rate QPS\n"
         "               [--queries N] [--spec-prob P]\n"
         "  recommend    rank methods for a file system and workload\n"
         "               --fields ... --devices M [--spec-prob P]\n"
         "  serve-bench  batch engine vs serial baseline + metrics\n"
         "               --fields ... --devices M [--method SPEC]\n"
         "               [--backend flat|paged|dynamic|sharded|replicated\n"
         "                |packed] [--packfile PATH]\n"
         "               [--remote host:port,...]  (RemoteBackend shards)\n"
         "               [--window W] [--wire v1|v2]  (remote pipelining)\n"
         "               [--placement mirrored|chained] [--fail D1,D2,...]\n"
         "               [--pagesize P] [--records N] [--queries N]\n"
         "               [--batch B] [--threads T] [--templates K]\n"
         "               [--zipf THETA] [--spec-prob P] [--domain D]\n"
         "               [--seed S] [--format text|json]\n"
         "               [--frontend] [--cache-mb MB] [--qos on|off]\n"
         "               [--tenants N] [--rate QPS]  (front door)\n"
         "               [--client-id ID]  (tenant id on the wire handshake)\n"
         "               [--clients N] [--waves W] [--client-threads T]\n"
         "               [--event-loop]  (socket fan-in phase)\n"
         "               [--trace-out FILE] [--trace-in FILE]\n"
         "  shard-serve  serve a backend over the shard wire protocol\n"
         "               --fields ... --devices M [--method SPEC]\n"
         "               [--backend flat|paged|dynamic|replicated]\n"
         "               [--placement mirrored|chained] [--pagesize P]\n"
         "               [--port P] [--connections N] [--seed S]\n"
         "               [--event-loop] [--workers N] [--max-conns N]\n"
         "               (epoll server: thousands of connections on a\n"
         "                small worker pool, explicit backpressure)\n"
         "  bulkload     distributed record build across shard servers\n"
         "               --workers host:port,... | --local N\n"
         "               --fields ... --devices M --records N [--seed S]\n"
         "               [--method SPEC] [--task-records N] [--lease-ms L]\n"
         "  sweep        distributed fig-1 optimality sweep (kAnalyzeRange)\n"
         "               --workers host:port,... | --local N\n"
         "               (--local needs --fields ... --devices M\n"
         "                [--method SPEC]) [--task-buckets N] [--lease-ms L]\n"
         "  gen-trace    synthesize a reproducible workload trace\n"
         "               --schema name:type:size,... --out FILE\n"
         "               [--records N] [--queries N] [--spec-prob P]\n"
         "               [--seed S]\n"
         "  replay       run a trace against a parallel file\n"
         "               --schema ... --trace FILE --devices M\n"
         "               [--method SPEC]\n"
         "  build        build and save a seeded parallel file\n"
         "               --schema name:type:size,... --devices M --out SAVED\n"
         "               [--method SPEC] [--records N] [--seed S]\n"
         "  pack         convert a saved backend to a packed file\n"
         "               --in SAVED --out PACKED [--block N] [--device D]\n"
         "  reshard      migrate a saved backend to a new device count\n"
         "               --in SAVED --devices M [--out SAVED]\n"
         "               [--scheme SPEC]  (default: searched vs FX)\n"
         "               [--chunk BUCKETS] [--attempts N]\n"
         "  help         this text\n";
  return 2;
}

Result<Schema> ParseSchema(const std::string& schema_string) {
  // "name:type:size,name:type:size,..."
  std::vector<FieldDecl> fields;
  std::stringstream ss(schema_string);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const std::size_t c1 = token.find(':');
    const std::size_t c2 = token.rfind(':');
    if (c1 == std::string::npos || c2 == c1) {
      return Status::InvalidArgument("bad schema field: " + token);
    }
    FieldDecl decl;
    decl.name = token.substr(0, c1);
    const std::string type = token.substr(c1 + 1, c2 - c1 - 1);
    if (type == "int64") {
      decl.type = ValueType::kInt64;
    } else if (type == "double") {
      decl.type = ValueType::kDouble;
    } else if (type == "string") {
      decl.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown type: " + type);
    }
    decl.directory_size =
        std::strtoull(token.c_str() + c2 + 1, nullptr, 10);
    fields.push_back(std::move(decl));
  }
  return Schema::Create(std::move(fields));
}

Flags ParseFlags(int argc, char** argv, int start) {
  Flags flags;
  for (int i = start; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    // A flag whose next token is another --flag (or absent) is a bare
    // boolean, e.g. --frontend; presence is its value.
    if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
      flags[key] = "";
    } else {
      flags[key] = argv[++i];
    }
  }
  return flags;
}

std::vector<std::uint64_t> ParseU64List(const std::string& list) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    out.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<double> ParseDoubleList(const std::string& list) {
  std::vector<double> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    out.push_back(std::strtod(token.c_str(), nullptr));
  }
  return out;
}

std::vector<std::string> ParseStringList(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(token);
  return out;
}

Result<FieldSpec> SpecFromFlags(const Flags& flags) {
  auto fields_it = flags.find("fields");
  auto devices_it = flags.find("devices");
  if (fields_it == flags.end() || devices_it == flags.end()) {
    return Status::InvalidArgument("--fields and --devices are required");
  }
  return FieldSpec::Create(
      ParseU64List(fields_it->second),
      std::strtoull(devices_it->second.c_str(), nullptr, 10));
}

int CmdReport(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  std::vector<std::string> methods = {"fx-basic", "fx-iu1", "fx-iu2",
                                      "modulo",   "gdm1",   "gdm2",
                                      "gdm3",     "random", "spanning"};
  if (auto it = flags.find("methods"); it != flags.end()) {
    methods = ParseStringList(it->second);
  }
  auto reports = CompareMethods(*spec, methods);
  if (!reports.ok()) {
    std::cerr << reports.status().ToString() << "\n";
    return 1;
  }
  std::cout << "File system: " << spec->ToString() << "\n";
  TablePrinter table({"method", "optimal classes %", "avg largest (k=2)",
                      "addr cycles"});
  for (const MethodReport& r : *reports) {
    table.AddRow({r.method_name,
                  TablePrinter::Cell(100.0 * r.optimal_class_fraction, 1),
                  r.avg_largest_by_k.empty()
                      ? "-"
                      : TablePrinter::Cell(r.avg_largest_by_k[0], 2),
                  TablePrinter::Cell(r.address_cycles)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdLayout(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  const auto method_it = flags.find("method");
  const std::string method_spec =
      method_it == flags.end() ? "fx-iu2" : method_it->second;
  auto method = MakeDistribution(*spec, method_spec);
  if (!method.ok()) {
    std::cerr << method.status().ToString() << "\n";
    return 1;
  }
  if (spec->TotalBuckets() > 4096) {
    std::cerr << "bucket space too large to print ("
              << spec->TotalBuckets() << ")\n";
    return 1;
  }
  std::cout << "Layout of " << (*method)->name() << " on "
            << spec->ToString() << "\n";
  ForEachBucket(*spec, [&](const BucketId& b) {
    std::cout << "  " << BucketToString(*spec, b) << " -> "
              << (*method)->DeviceOf(b) << "\n";
    return true;
  });
  return 0;
}

int CmdSearchPlan(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  auto result = SearchTransformPlan(*spec);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "File system:    " << spec->ToString() << "\n"
            << "Theory plan:    "
            << TransformPlan::Plan(*spec).ToString() << "  ("
            << 100.0 * result->theory_fraction << "% optimal classes)\n"
            << "Searched plan:  " << result->plan.ToString() << "  ("
            << 100.0 * result->optimal_mask_fraction
            << "% optimal classes)\n"
            << "Plans tried:    " << result->plans_evaluated << "\n";
  return 0;
}

int CmdSearchGdm(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  GdmSearchOptions options;
  if (auto it = flags.find("max-mult"); it != flags.end()) {
    options.max_multiplier = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  auto result = SearchGdmMultipliers(*spec, options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "File system: " << spec->ToString() << "\nMultipliers:";
  for (std::uint64_t m : result->multipliers) std::cout << ' ' << m;
  std::cout << "\nOptimal classes: "
            << 100.0 * result->optimal_mask_fraction
            << "%\nMean overload:   " << result->mean_overload
            << "\nCandidates:      " << result->candidates_evaluated << "\n";
  return 0;
}

int CmdAdviseBits(const Flags& flags) {
  auto probs_it = flags.find("probs");
  auto bits_it = flags.find("bits");
  if (probs_it == flags.end() || bits_it == flags.end()) {
    std::cerr << "--probs and --bits are required\n";
    return 1;
  }
  const auto probs = ParseDoubleList(probs_it->second);
  const auto bits =
      static_cast<unsigned>(std::strtoul(bits_it->second.c_str(),
                                         nullptr, 10));
  auto alloc = AllocateFieldBits(probs, bits);
  if (!alloc.ok()) {
    std::cerr << alloc.status().ToString() << "\n";
    return 1;
  }
  TablePrinter table({"field", "P(specified)", "bits", "directory size"});
  for (std::size_t i = 0; i < probs.size(); ++i) {
    table.AddRow({std::to_string(i), TablePrinter::Cell(probs[i], 2),
                  std::to_string(alloc->bits[i]),
                  TablePrinter::Cell(std::uint64_t{1} << alloc->bits[i])});
  }
  table.Print(std::cout);
  std::cout << "E[|R(q)|] = " << alloc->expected_qualified << "\n";
  if (auto it = flags.find("devices"); it != flags.end()) {
    const std::uint64_t m = std::strtoull(it->second.c_str(), nullptr, 10);
    auto spec = FieldSpec::Create(alloc->FieldSizes(), m);
    if (spec.ok()) {
      std::cout << "FX plan for M=" << m << ": "
                << TransformPlan::Plan(*spec).ToString() << "\n";
    }
  }
  return 0;
}

int CmdQueueing(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  const auto method_it = flags.find("method");
  auto method = MakeDistribution(
      *spec, method_it == flags.end() ? "fx-iu2" : method_it->second);
  if (!method.ok()) {
    std::cerr << method.status().ToString() << "\n";
    return 1;
  }
  QueueingConfig config;
  if (auto it = flags.find("rate"); it != flags.end()) {
    config.arrival_rate_qps = std::strtod(it->second.c_str(), nullptr);
  }
  if (auto it = flags.find("queries"); it != flags.end()) {
    config.num_queries = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  if (auto it = flags.find("spec-prob"); it != flags.end()) {
    config.specified_probability =
        std::strtod(it->second.c_str(), nullptr);
  }
  auto result = SimulateQueueing(**method, config);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << (*method)->name() << " on " << spec->ToString() << " at "
            << config.arrival_rate_qps << " qps:\n"
            << "  mean response  " << result->mean_response_ms << " ms\n"
            << "  p50 / p95      " << result->p50_response_ms << " / "
            << result->p95_response_ms << " ms\n"
            << "  throughput     " << result->throughput_qps << " qps\n"
            << "  device util    mean "
            << result->mean_device_utilization << ", max "
            << result->max_device_utilization << "\n";
  return 0;
}

int CmdRecommend(const Flags& flags) {
  auto spec = SpecFromFlags(flags);
  if (!spec.ok()) {
    std::cerr << spec.status().ToString() << "\n";
    return 1;
  }
  double p = 0.5;
  if (auto it = flags.find("spec-prob"); it != flags.end()) {
    p = std::strtod(it->second.c_str(), nullptr);
  }
  auto rec = RecommendMethod(*spec, p);
  if (!rec.ok()) {
    std::cerr << rec.status().ToString() << "\n";
    return 1;
  }
  std::cout << "File system: " << spec->ToString()
            << "  P(field specified) = " << p << "\n";
  TablePrinter table({"rank", "method", "E[largest response]",
                      "P(optimal)", "addr cycles"});
  int rank = 1;
  for (const CandidateEvaluation& eval : rec->ranking) {
    table.AddRow({std::to_string(rank++), eval.method_spec,
                  TablePrinter::Cell(
                      eval.cost.expected_largest_response, 2),
                  TablePrinter::Cell(eval.cost.probability_optimal, 3),
                  TablePrinter::Cell(eval.address_cycles)});
  }
  table.Print(std::cout);
  std::cout << "Recommended: " << rec->recommended << "\n";
  return 0;
}

int CmdServeBench(const Flags& flags) {
  auto fields_it = flags.find("fields");
  auto devices_it = flags.find("devices");
  if (fields_it == flags.end() || devices_it == flags.end()) {
    std::cerr << "--fields and --devices are required\n";
    return 1;
  }
  auto get_u64 = [&](const char* key, std::uint64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  auto get_double = [&](const char* key, double fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
  };
  std::vector<FieldDecl> decls;
  for (std::uint64_t size : ParseU64List(fields_it->second)) {
    decls.push_back({"f" + std::to_string(decls.size()),
                     ValueType::kInt64, size});
  }
  auto schema = Schema::Create(std::move(decls));
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  const auto method_it = flags.find("method");
  const std::string method_spec =
      method_it == flags.end() ? "fx-iu2" : method_it->second;
  const std::uint64_t seed = get_u64("seed", 42);
  const std::uint64_t num_devices =
      std::strtoull(devices_it->second.c_str(), nullptr, 10);
  const auto backend_it = flags.find("backend");
  std::string backend_kind =
      backend_it == flags.end() ? "flat" : backend_it->second;
  std::unique_ptr<StorageBackend> file;
  // Kept non-null for --backend replicated so --fail can flip device
  // state after the load phase (degraded mode is read-only).
  ReplicatedBackend* replicated = nullptr;
  // --backend packed: load a flat file first, then pack + reopen after
  // the insert phase (a packed file is immutable).
  bool pack_after_load = false;
  if (auto remote_it = flags.find("remote"); remote_it != flags.end()) {
    if (backend_it != flags.end()) {
      std::cerr << "--remote picks the backend (sharded over remote "
                   "children); drop --backend\n";
      return 1;
    }
    std::vector<std::string> child_specs;
    for (const std::string& host_port :
         ParseStringList(remote_it->second)) {
      child_specs.push_back("remote:" + host_port);
    }
    ChildBackendOptions child_options;
    // --window 1 keeps the plain blocking connection; --wire v1 forces
    // the classic dialect (the pre-pipelining serial baseline).
    child_options.remote.pipeline_window = get_u64("window", 32);
    if (auto id_it = flags.find("client-id"); id_it != flags.end()) {
      child_options.remote.client_id = id_it->second;
    }
    if (auto wire_it = flags.find("wire"); wire_it != flags.end()) {
      if (wire_it->second == "v1") {
        child_options.remote.force_wire_v1 = true;
      } else if (wire_it->second != "v2") {
        std::cerr << "--wire takes v1 or v2\n";
        return 1;
      }
    }
    auto created = MakeShardedBackend(child_specs, *schema, num_devices,
                                      method_spec, seed, child_options);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = *std::move(created);
    backend_kind = "remote";
  } else if (backend_kind == "flat" || backend_kind == "packed") {
    auto created =
        ParallelFile::Create(*schema, num_devices, method_spec, seed);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = std::make_unique<ParallelFile>(*std::move(created));
    pack_after_load = backend_kind == "packed";
  } else if (backend_kind == "paged") {
    auto created = PagedParallelFile::Create(
        *schema, num_devices, method_spec, get_u64("pagesize", 8), seed);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = std::make_unique<PagedParallelFile>(*std::move(created));
  } else if (backend_kind == "dynamic") {
    // The dynamic backend re-plans its own FX distribution as the
    // directories grow; --method does not apply.
    std::vector<DynamicFieldDecl> dyn_fields;
    for (unsigned i = 0; i < schema->num_fields(); ++i) {
      dyn_fields.push_back({schema->field(i).name, schema->field(i).type});
    }
    auto created = DynamicParallelFile::Create(
        std::move(dyn_fields), num_devices, get_u64("pagesize", 16),
        PlanFamily::kIU2, seed);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = std::make_unique<DynamicParallelFile>(*std::move(created));
  } else if (backend_kind == "sharded") {
    std::vector<std::unique_ptr<StorageBackend>> children;
    for (std::uint64_t d = 0; d < num_devices; ++d) {
      auto child =
          ParallelFile::Create(*schema, num_devices, method_spec, seed);
      if (!child.ok()) {
        std::cerr << child.status().ToString() << "\n";
        return 1;
      }
      children.push_back(
          std::make_unique<ParallelFile>(*std::move(child)));
    }
    auto created = ShardedBackend::Create(std::move(children));
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = std::make_unique<ShardedBackend>(*std::move(created));
  } else if (backend_kind == "replicated") {
    ReplicaPlacement placement = ReplicaPlacement::kMirrored;
    if (auto it = flags.find("placement"); it != flags.end()) {
      if (it->second == "chained") {
        placement = ReplicaPlacement::kChained;
      } else if (it->second != "mirrored") {
        std::cerr << "unknown --placement " << it->second
                  << " (expected mirrored or chained)\n";
        return 1;
      }
    }
    auto created = MakeReplicatedFlat(*schema, num_devices, method_spec,
                                      placement, seed);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    replicated = created->get();
    file = *std::move(created);
  } else {
    std::cerr << "unknown --backend " << backend_kind
              << " (expected flat, paged, dynamic, sharded, replicated, "
                 "or packed)\n";
    return 1;
  }
  if (flags.count("fail") != 0 && replicated == nullptr) {
    std::cerr << "--fail requires --backend replicated\n";
    return 1;
  }
  if (flags.count("placement") != 0 && backend_kind != "replicated") {
    std::cerr << "--placement requires --backend replicated\n";
    return 1;
  }

  // Workload: either replayed from a recorded trace (--trace-in pins the
  // exact record and query streams) or drawn from the seeded generators.
  std::vector<Record> records;
  std::vector<ValueQuery> stream;
  const auto trace_in_it = flags.find("trace-in");
  if (trace_in_it != flags.end()) {
    auto trace = LoadTrace(trace_in_it->second);
    if (!trace.ok()) {
      std::cerr << trace.status().ToString() << "\n";
      return 1;
    }
    if (trace->num_fields != schema->num_fields()) {
      std::cerr << "trace arity " << trace->num_fields
                << " does not match --fields arity "
                << schema->num_fields() << "\n";
      return 1;
    }
    if (!trace->meta.empty()) {
      std::cerr << "replaying trace: " << trace->meta << "\n";
    }
    records = std::move(trace->records);
    stream = std::move(trace->queries);
  } else {
    // Field domains well above the directory size (--domain to
    // override): specified fields stay selective, as real attributes
    // would be.
    FieldDistribution serve_dist;
    serve_dist.domain = get_u64("domain", 512);
    auto gen = RecordGenerator::Create(
        *schema,
        std::vector<FieldDistribution>(schema->num_fields(), serve_dist),
        seed);
    if (!gen.ok()) {
      std::cerr << gen.status().ToString() << "\n";
      return 1;
    }
    records = gen->Take(get_u64("records", 12000));
  }
  for (const Record& r : records) {
    if (auto st = file->Insert(r); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  if (pack_after_load) {
    const auto packfile_it = flags.find("packfile");
    const std::string pack_path = packfile_it == flags.end()
                                      ? "/tmp/fxdist-serve-bench.pack"
                                      : packfile_it->second;
    if (auto packed = PackBackend(*file, pack_path); !packed.ok()) {
      std::cerr << packed.status().ToString() << "\n";
      return 1;
    }
    auto reopened = PackedBackend::Open(pack_path);
    if (!reopened.ok()) {
      std::cerr << reopened.status().ToString() << "\n";
      return 1;
    }
    file = *std::move(reopened);
  }
  // Device failures apply after the load: a replicated backend refuses
  // writes while degraded, so the bench loads healthy and then serves
  // the whole query stream with the failed devices re-routed.
  std::vector<std::uint64_t> failed;
  if (auto it = flags.find("fail"); it != flags.end()) {
    failed = ParseU64List(it->second);
    for (std::uint64_t d : failed) {
      if (auto st = replicated->MarkDown(d); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
    }
  }
  if (stream.empty()) {
    auto qgen = QueryGenerator::Create(&records,
                                       get_double("spec-prob", 0.5), seed);
    if (!qgen.ok()) {
      std::cerr << qgen.status().ToString() << "\n";
      return 1;
    }
    const std::uint64_t num_templates = std::max<std::uint64_t>(
        1, get_u64("templates", 32));
    std::vector<ValueQuery> templates;
    while (templates.size() < num_templates) {
      // A partial-match query names at least one field; fully
      // unspecified draws degenerate to full scans and are redrawn.
      ValueQuery q = qgen->Next();
      const bool specified = std::any_of(
          q.begin(), q.end(), [](const auto& f) { return f.has_value(); });
      if (specified) templates.push_back(std::move(q));
    }
    ZipfSampler popularity(num_templates, get_double("zipf", 1.1));
    Xoshiro256 rng(seed + 1);
    for (std::uint64_t i = 0; i < get_u64("queries", 2048); ++i) {
      stream.push_back(templates[popularity.Sample(&rng)]);
    }
  }
  const std::uint64_t num_queries = stream.size();
  if (auto trace_out_it = flags.find("trace-out");
      trace_out_it != flags.end()) {
    WorkloadTrace trace;
    trace.num_fields = static_cast<unsigned>(schema->num_fields());
    std::ostringstream meta;
    meta << "serve-bench seed=" << seed << " zipf=" << get_double("zipf", 1.1)
         << " spec-prob=" << get_double("spec-prob", 0.5)
         << " templates=" << get_u64("templates", 32)
         << " domain=" << get_u64("domain", 512);
    trace.meta = meta.str();
    trace.records = records;
    trace.queries = stream;
    if (auto st = SaveTrace(trace, trace_out_it->second); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  // Untimed warm-up of both paths so the timed sections are not charged
  // for first-touch page faults and allocator growth.
  const std::uint64_t warm_count = std::min<std::uint64_t>(64, stream.size());
  for (std::uint64_t i = 0; i < warm_count; ++i) {
    (void)file->Execute(stream[i]);
  }
  {
    QueryEngine warm(*file, EngineOptions{});
    std::vector<ValueQuery> first(stream.begin(),
                                  stream.begin() + warm_count);
    (void)warm.ExecuteBatch(first);
  }

  // Serial baseline: one query at a time, no pool.
  const auto serial_start = std::chrono::steady_clock::now();
  std::uint64_t serial_matched = 0;
  // Per-query tallies let the socket fan-in phase (--clients) compute
  // the exact expected total for its own stream-index multiset.
  std::vector<std::uint64_t> serial_per_query;
  serial_per_query.reserve(stream.size());
  for (const ValueQuery& q : stream) {
    auto result = file->Execute(q);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    serial_matched += result->stats.records_matched;
    serial_per_query.push_back(result->stats.records_matched);
  }
  const double serial_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - serial_start)
          .count();

  // Engine: async admission; submitting the whole stream up front builds
  // the backlog that lets the dispatcher form real batches.
  EngineOptions options;
  options.num_threads =
      static_cast<unsigned>(get_u64("threads", 0));
  options.max_batch_size = std::max<std::uint64_t>(1, get_u64("batch", 256));
  QueryEngine engine(*file, options);
  const auto engine_start = std::chrono::steady_clock::now();
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(stream.size());
  for (const ValueQuery& q : stream) futures.push_back(engine.Submit(q));
  std::uint64_t engine_matched = 0;
  for (auto& f : futures) {
    auto result = f.get();
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    engine_matched += result->stats.records_matched;
  }
  const double engine_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - engine_start)
          .count();
  engine.Flush();

  // Front door (--frontend): admission + result cache + QoS over a
  // fresh engine.  Two passes replay the same stream — the cold pass
  // fills the cache, the warm pass hits it — and both must match the
  // serial baseline's match count (bench/frontend_matrix gates full
  // per-query digests).
  const bool run_frontend = flags.count("frontend") != 0;
  std::uint64_t front_cold_matched = 0;
  std::uint64_t front_warm_matched = 0;
  std::uint64_t front_shed = 0;
  double front_cold_ms = 0.0;
  double front_warm_ms = 0.0;
  std::string frontend_text;
  std::string frontend_json;
  if (run_frontend) {
    FrontendOptions front_options;
    front_options.cache.max_bytes = get_u64("cache-mb", 64) << 20;
    front_options.admission.rate_per_sec = get_double("rate", 0.0);
    if (auto it = flags.find("qos"); it != flags.end()) {
      if (it->second == "off") {
        front_options.qos_enabled = false;
      } else if (it->second != "on") {
        std::cerr << "--qos takes on or off\n";
        return 1;
      }
    }
    const std::uint64_t tenants =
        std::max<std::uint64_t>(1, get_u64("tenants", 4));
    QueryEngine front_engine(*file, options);
    Frontend frontend(front_engine, front_options);
    auto run_pass = [&](std::uint64_t* matched, double* ms) {
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::future<Result<QueryResult>>> pass;
      pass.reserve(stream.size());
      for (std::size_t i = 0; i < stream.size(); ++i) {
        // Tenants round-robin; every 8th query is interactive so the
        // QoS path is exercised alongside the batch backlog.
        pass.push_back(frontend.Submit(
            "tenant-" + std::to_string(i % tenants),
            i % 8 == 0 ? QueryPriority::kInteractive : QueryPriority::kBatch,
            stream[i]));
      }
      for (auto& f : pass) {
        auto result = f.get();
        if (!result.ok()) {
          // Shed queries (ResourceExhausted) are the expected outcome of
          // a --rate cap, not a failure; they just don't count matches.
          if (result.status().code() == StatusCode::kResourceExhausted) {
            ++front_shed;
            continue;
          }
          std::cerr << result.status().ToString() << "\n";
          return false;
        }
        *matched += result->stats.records_matched;
      }
      *ms = std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
      return true;
    };
    if (!run_pass(&front_cold_matched, &front_cold_ms) ||
        !run_pass(&front_warm_matched, &front_warm_ms)) {
      return 1;
    }
    frontend.Flush();
    const FrontendStats front_stats = frontend.Stats();
    frontend_text = front_stats.ToString();
    frontend_json = front_stats.ToJson();
  }

  // Socket fan-in (--clients): the same backend behind a real shard
  // server on loopback, hammered by N concurrent connections.  The
  // deterministic stream indexing (see net/loadgen.h) makes the total
  // matched count predictable from the serial per-query tallies, so
  // the event-driven and blocking servers gate against the same
  // expected number — bit-identity through the full socket path.
  const std::uint64_t fanin_clients = get_u64("clients", 0);
  const bool fanin_event = flags.count("event-loop") != 0;
  FanInReport fanin;
  EventServerStats fanin_server_stats;
  std::uint64_t fanin_expected = 0;
  std::uint64_t fanin_total = 0;
  if (fanin_clients > 0) {
    FanInOptions fanin_options;
    fanin_options.clients = fanin_clients;
    fanin_options.waves =
        std::max<std::uint64_t>(1, get_u64("waves", 4));
    fanin_options.threads = std::max<std::uint64_t>(
        1, get_u64("client-threads", 16));
    std::unique_ptr<EventShardServer> event_server;
    std::unique_ptr<ShardServer> blocking_server;
    if (fanin_event) {
      EventShardServer::Options server_options;
      server_options.workers =
          static_cast<unsigned>(get_u64("workers", 4));
      server_options.max_connections =
          std::max<std::uint64_t>(fanin_clients, 4096);
      TryRaiseNoFileLimit(fanin_clients * 2 + 512);
      auto started = EventShardServer::Start(*file, server_options);
      if (!started.ok()) {
        std::cerr << started.status().ToString() << "\n";
        return 1;
      }
      event_server = *std::move(started);
      fanin_options.port = event_server->port();
    } else {
      // The blocking server pins a pool thread per connection, so the
      // baseline needs a thread per client to serve them all at once.
      ShardServer::Options server_options;
      server_options.max_connections =
          static_cast<unsigned>(fanin_clients);
      TryRaiseNoFileLimit(fanin_clients * 2 + 512);
      auto started = ShardServer::Start(*file, server_options);
      if (!started.ok()) {
        std::cerr << started.status().ToString() << "\n";
        return 1;
      }
      blocking_server = *std::move(started);
      fanin_options.port = blocking_server->port();
    }
    auto ran = RunQueryFanIn(stream, fanin_options);
    if (!ran.ok()) {
      std::cerr << ran.status().ToString() << "\n";
      return 1;
    }
    fanin = *ran;
    fanin_total = fanin_clients * fanin_options.waves;
    for (std::uint64_t s = 0; s < fanin_total; ++s) {
      fanin_expected += serial_per_query[s % serial_per_query.size()];
    }
    if (event_server != nullptr) {
      fanin_server_stats = event_server->Stats();
      event_server->Stop();
    } else {
      blocking_server->Stop();
    }
  }

  const auto qps = [&](double ms) {
    return ms <= 0.0 ? 0.0
                     : static_cast<double>(num_queries) / (ms / 1e3);
  };
  const double speedup = engine_ms <= 0.0 ? 0.0 : serial_ms / engine_ms;
  const auto format_it = flags.find("format");
  std::ostringstream degraded_json;
  std::ostringstream degraded_text;
  if (replicated != nullptr) {
    degraded_json << ",\"placement\":\""
                  << (replicated->placement() == ReplicaPlacement::kMirrored
                          ? "mirrored"
                          : "chained")
                  << "\",\"failed\":[";
    for (std::size_t i = 0; i < failed.size(); ++i) {
      degraded_json << (i > 0 ? "," : "") << failed[i];
    }
    degraded_json << "]";
    degraded_text << "placement       : "
                  << (replicated->placement() == ReplicaPlacement::kMirrored
                          ? "mirrored"
                          : "chained")
                  << (failed.empty() ? " (healthy)" : " (degraded, down:");
    for (std::uint64_t d : failed) degraded_text << ' ' << d;
    degraded_text << (failed.empty() ? "\n" : ")\n");
  }
  std::ostringstream fanin_json;
  std::ostringstream fanin_text;
  if (fanin_clients > 0) {
    const double fanin_qps =
        fanin.elapsed_ms <= 0.0
            ? 0.0
            : static_cast<double>(fanin.replies) /
                  (fanin.elapsed_ms / 1e3);
    fanin_json << ",\"fanin_mode\":\""
               << (fanin_event ? "event" : "blocking")
               << "\",\"fanin_clients\":" << fanin_clients
               << ",\"fanin_replies\":" << fanin.replies
               << ",\"fanin_transport_errors\":" << fanin.transport_errors
               << ",\"fanin_error_replies\":" << fanin.error_replies
               << ",\"fanin_matched\":" << fanin.matched_total
               << ",\"fanin_expected\":" << fanin_expected
               << ",\"fanin_qps\":" << fanin_qps
               << ",\"fanin_ms\":" << fanin.elapsed_ms
               << ",\"fanin_p50_ms\":" << fanin.p50_ms
               << ",\"fanin_p99_ms\":" << fanin.p99_ms;
    if (fanin_event) {
      fanin_json << ",\"fanin_shed\":"
                 << fanin_server_stats.shed_connections
                 << ",\"fanin_max_concurrent\":"
                 << fanin_server_stats.max_concurrent
                 << ",\"fanin_dropped_replies\":"
                 << fanin_server_stats.dropped_replies
                 << ",\"fanin_reads_paused\":"
                 << fanin_server_stats.reads_paused;
    }
    fanin_text << "fan-in ("
               << (fanin_event ? "event loop" : "blocking") << "): "
               << TablePrinter::Cell(fanin_qps, 0) << " qps  ("
               << TablePrinter::Cell(fanin.elapsed_ms, 1) << " ms, "
               << fanin_clients << " clients, " << fanin.replies
               << " replies, " << fanin.matched_total << " matches, p99 "
               << TablePrinter::Cell(fanin.p99_ms, 1) << " ms)\n";
    if (fanin_event) {
      fanin_text << "  server          : peak "
                 << fanin_server_stats.max_concurrent
                 << " conns, shed " << fanin_server_stats.shed_connections
                 << ", reads paused " << fanin_server_stats.reads_paused
                 << ", dropped replies "
                 << fanin_server_stats.dropped_replies << "\n";
    }
  }
  if (format_it != flags.end() && format_it->second == "json") {
    std::ostringstream front_json;
    if (run_frontend) {
      front_json << ",\"frontend_cold_qps\":" << qps(front_cold_ms)
                 << ",\"frontend_cold_ms\":" << front_cold_ms
                 << ",\"frontend_cold_matched\":" << front_cold_matched
                 << ",\"frontend_warm_qps\":" << qps(front_warm_ms)
                 << ",\"frontend_warm_ms\":" << front_warm_ms
                 << ",\"frontend_warm_matched\":" << front_warm_matched
                 << ",\"frontend\":" << frontend_json;
    }
    std::cout << "{\"backend\":\"" << backend_kind << "\",\"spec\":\""
              << file->spec().ToString() << "\",\"method\":\""
              << file->method().name() << "\"" << degraded_json.str()
              << ",\"queries\":" << num_queries
              << ",\"serial_qps\":" << qps(serial_ms)
              << ",\"serial_ms\":" << serial_ms
              << ",\"serial_matched\":" << serial_matched
              << ",\"engine_qps\":" << qps(engine_ms)
              << ",\"engine_ms\":" << engine_ms
              << ",\"engine_matched\":" << engine_matched
              << ",\"speedup\":" << speedup << front_json.str()
              << fanin_json.str()
              << ",\"stats\":" << engine.Snapshot().ToJson() << "}\n";
  } else if (format_it != flags.end() && format_it->second != "text") {
    std::cerr << "unknown --format " << format_it->second
              << " (expected text or json)\n";
    return 1;
  } else {
    std::cout << "QueryEngine [" << backend_kind << "] on "
              << file->spec().ToString() << " method "
              << file->method().name() << "\n"
              << degraded_text.str()
              << "serial baseline : "
              << TablePrinter::Cell(qps(serial_ms), 0) << " qps  ("
              << TablePrinter::Cell(serial_ms, 1) << " ms, "
              << serial_matched << " matches)\n"
              << "engine (batched): "
              << TablePrinter::Cell(qps(engine_ms), 0) << " qps  ("
              << TablePrinter::Cell(engine_ms, 1) << " ms, "
              << engine_matched << " matches)\n";
    if (run_frontend) {
      std::cout << "frontend (cold) : "
                << TablePrinter::Cell(qps(front_cold_ms), 0) << " qps  ("
                << TablePrinter::Cell(front_cold_ms, 1) << " ms, "
                << front_cold_matched << " matches)\n"
                << "frontend (warm) : "
                << TablePrinter::Cell(qps(front_warm_ms), 0) << " qps  ("
                << TablePrinter::Cell(front_warm_ms, 1) << " ms, "
                << front_warm_matched << " matches)\n";
    }
    std::cout << fanin_text.str()
              << "speedup         : " << TablePrinter::Cell(speedup, 2)
              << "x\n\n"
              << engine.Snapshot().ToString();
    if (run_frontend) std::cout << "\n" << frontend_text;
  }
  if (engine_matched != serial_matched) {
    std::cerr << "MISMATCH: engine and serial matched counts differ\n";
    return 1;
  }
  if (run_frontend && front_shed == 0 &&
      (front_cold_matched != serial_matched ||
       front_warm_matched != serial_matched)) {
    std::cerr << "MISMATCH: frontend and serial matched counts differ\n";
    return 1;
  }
  if (fanin_clients > 0) {
    if (fanin.transport_errors != 0 || fanin.error_replies != 0 ||
        fanin.replies != fanin_total) {
      std::cerr << "FAN-IN FAILURE: " << fanin.transport_errors
                << " transport errors, " << fanin.error_replies
                << " error replies, " << fanin.replies << "/"
                << fanin_total << " replies\n";
      return 1;
    }
    if (fanin.matched_total != fanin_expected) {
      std::cerr << "MISMATCH: fan-in and serial matched counts differ ("
                << fanin.matched_total << " vs " << fanin_expected
                << ")\n";
      return 1;
    }
  }
  return 0;
}

int CmdShardServe(const Flags& flags) {
  auto fields_it = flags.find("fields");
  auto devices_it = flags.find("devices");
  if (fields_it == flags.end() || devices_it == flags.end()) {
    std::cerr << "--fields and --devices are required\n";
    return 1;
  }
  auto get_u64 = [&](const char* key, std::uint64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  std::vector<FieldDecl> decls;
  for (std::uint64_t size : ParseU64List(fields_it->second)) {
    decls.push_back({"f" + std::to_string(decls.size()),
                     ValueType::kInt64, size});
  }
  auto schema = Schema::Create(std::move(decls));
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  const auto method_it = flags.find("method");
  const std::string method_spec =
      method_it == flags.end() ? "fx-iu2" : method_it->second;
  const std::uint64_t seed = get_u64("seed", 42);
  const std::uint64_t num_devices =
      std::strtoull(devices_it->second.c_str(), nullptr, 10);
  const auto backend_it = flags.find("backend");
  const std::string backend_kind =
      backend_it == flags.end() ? "flat" : backend_it->second;
  std::unique_ptr<StorageBackend> file;
  if (backend_kind == "replicated") {
    ReplicaPlacement placement = ReplicaPlacement::kMirrored;
    if (auto it = flags.find("placement"); it != flags.end()) {
      if (it->second == "chained") {
        placement = ReplicaPlacement::kChained;
      } else if (it->second != "mirrored") {
        std::cerr << "unknown --placement " << it->second
                  << " (expected mirrored or chained)\n";
        return 1;
      }
    }
    auto created = MakeReplicatedFlat(*schema, num_devices, method_spec,
                                      placement, seed);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = *std::move(created);
  } else {
    ChildBackendOptions child_options;
    if (auto it = flags.find("pagesize"); it != flags.end()) {
      const std::uint64_t page =
          std::strtoull(it->second.c_str(), nullptr, 10);
      child_options.page_size = page;
      child_options.page_capacity = page;
    }
    auto created = MakeChildBackend(backend_kind, *schema, num_devices,
                                    method_spec, seed, child_options);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      return 1;
    }
    file = *std::move(created);
  }
  if (flags.count("event-loop") != 0) {
    EventShardServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(get_u64("port", 0));
    server_options.workers = static_cast<unsigned>(get_u64("workers", 4));
    server_options.max_connections = get_u64("max-conns", 4096);
    TryRaiseNoFileLimit(server_options.max_connections + 256);
    auto server = EventShardServer::Start(*file, server_options);
    if (!server.ok()) {
      std::cerr << server.status().ToString() << "\n";
      return 1;
    }
    // Scripts scrape this line for the (possibly ephemeral) port, so it
    // must be flushed before the blocking Wait().
    std::cout << "serving " << file->backend_name() << " [" << backend_kind
              << "] on port " << (*server)->port() << " (event loop, "
              << server_options.workers << " workers, cap "
              << server_options.max_connections << " conns)" << std::endl;
    (*server)->Wait();
    return 0;
  }
  ShardServer::Options server_options;
  server_options.port = static_cast<std::uint16_t>(get_u64("port", 0));
  server_options.max_connections =
      static_cast<unsigned>(get_u64("connections", 8));
  auto server = ShardServer::Start(*file, server_options);
  if (!server.ok()) {
    std::cerr << server.status().ToString() << "\n";
    return 1;
  }
  // Scripts scrape this line for the (possibly ephemeral) port, so it
  // must be flushed before the blocking Wait().
  std::cout << "serving " << file->backend_name() << " [" << backend_kind
            << "] on port " << (*server)->port() << std::endl;
  (*server)->Wait();
  return 0;
}

/// The worker fleet behind `bulkload` / `sweep`: remote servers from
/// --workers host:port,..., or an in-process --local N fleet (N TCP
/// shard servers on ephemeral ports — self-contained demos and smoke
/// tests; all placement flags must then be given so every server is
/// built from the same blueprint).
struct DistFleet {
  std::vector<std::unique_ptr<StorageBackend>> local_backends;
  std::vector<std::unique_ptr<ShardServer>> local_servers;
  std::vector<std::unique_ptr<DistWorker>> workers;
};

Result<DistFleet> ConnectFleet(const Flags& flags) {
  DistFleet fleet;
  RemoteBackend::Options remote_options;
  if (auto it = flags.find("workers"); it != flags.end()) {
    for (const std::string& address : ParseStringList(it->second)) {
      auto backend = RemoteBackend::ConnectTcp(address, remote_options);
      if (!backend.ok()) {
        return Status::Unavailable("worker '" + address +
                                   "': " + backend.status().message());
      }
      fleet.workers.push_back(
          std::make_unique<RemoteDistWorker>(address, *std::move(backend)));
    }
    return fleet;
  }
  auto local_it = flags.find("local");
  if (local_it == flags.end()) {
    return Status::InvalidArgument(
        "--workers host:port,... or --local N is required");
  }
  const std::uint64_t n =
      std::strtoull(local_it->second.c_str(), nullptr, 10);
  if (n == 0) return Status::InvalidArgument("--local needs N >= 1");
  auto fields_it = flags.find("fields");
  auto devices_it = flags.find("devices");
  if (fields_it == flags.end() || devices_it == flags.end()) {
    return Status::InvalidArgument("--local needs --fields and --devices");
  }
  std::vector<FieldDecl> decls;
  for (std::uint64_t size : ParseU64List(fields_it->second)) {
    decls.push_back(
        {"f" + std::to_string(decls.size()), ValueType::kInt64, size});
  }
  auto schema = Schema::Create(std::move(decls));
  FXDIST_RETURN_NOT_OK(schema.status());
  const auto method_it = flags.find("method");
  const std::string method_spec =
      method_it == flags.end() ? "fx-iu2" : method_it->second;
  const std::uint64_t num_devices =
      std::strtoull(devices_it->second.c_str(), nullptr, 10);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto backend =
        MakeChildBackend("flat", *schema, num_devices, method_spec, 42, {});
    FXDIST_RETURN_NOT_OK(backend.status());
    auto server = ShardServer::Start(**backend);
    FXDIST_RETURN_NOT_OK(server.status());
    const std::string address =
        "127.0.0.1:" + std::to_string((*server)->port());
    auto remote = RemoteBackend::ConnectTcp(address, remote_options);
    FXDIST_RETURN_NOT_OK(remote.status());
    fleet.workers.push_back(std::make_unique<RemoteDistWorker>(
        "local-" + std::to_string(i), *std::move(remote)));
    fleet.local_backends.push_back(*std::move(backend));
    fleet.local_servers.push_back(*std::move(server));
  }
  return fleet;
}

CoordinatorOptions CoordinatorOptionsFromFlags(const Flags& flags) {
  CoordinatorOptions options;
  auto get_u64 = [&](const char* key, std::uint64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  options.records_per_task = get_u64("task-records", options.records_per_task);
  options.buckets_per_task = get_u64("task-buckets", options.buckets_per_task);
  options.lease_ms = static_cast<int>(
      get_u64("lease-ms", static_cast<std::uint64_t>(options.lease_ms)));
  return options;
}

int CmdBulkLoad(const Flags& flags) {
  auto fields_it = flags.find("fields");
  auto records_it = flags.find("records");
  if (fields_it == flags.end() || records_it == flags.end()) {
    std::cerr << "--fields and --records are required\n";
    return 1;
  }
  auto fleet = ConnectFleet(flags);
  if (!fleet.ok()) {
    std::cerr << fleet.status().ToString() << "\n";
    return 1;
  }
  std::vector<FieldDecl> decls;
  for (std::uint64_t size : ParseU64List(fields_it->second)) {
    decls.push_back(
        {"f" + std::to_string(decls.size()), ValueType::kInt64, size});
  }
  auto schema = Schema::Create(std::move(decls));
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  IngestSpec spec{*std::move(schema), {}, 42, 0};
  spec.total_records = std::strtoull(records_it->second.c_str(), nullptr, 10);
  if (auto it = flags.find("seed"); it != flags.end()) {
    spec.seed = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  const std::size_t num_workers = fleet->workers.size();
  auto coordinator = Coordinator::Create(std::move(fleet->workers),
                                         CoordinatorOptionsFromFlags(flags));
  if (!coordinator.ok()) {
    std::cerr << coordinator.status().ToString() << "\n";
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto report = (*coordinator)->BulkLoad(spec);
  const auto t1 = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::uint64_t stored = 0;
  std::cout << "bulkload: " << report->records_sent << " records, "
            << report->tasks << " tasks over " << num_workers
            << " workers in " << ms << " ms\n"
            << "  retries          " << report->retries << "\n";
  for (const auto& [name, count] : report->records_per_worker) {
    std::cout << "  " << name << "  " << count << " records\n";
    stored += count;
  }
  for (const std::string& name : report->fenced_workers) {
    std::cout << "  " << name << "  FENCED (excluded from deployment)\n";
  }
  std::cout << "  stored           " << stored << "\n";
  return stored == report->records_sent ? 0 : 1;
}

int CmdSweep(const Flags& flags) {
  auto fleet = ConnectFleet(flags);
  if (!fleet.ok()) {
    std::cerr << fleet.status().ToString() << "\n";
    return 1;
  }
  const std::size_t num_workers = fleet->workers.size();
  auto coordinator = Coordinator::Create(std::move(fleet->workers),
                                         CoordinatorOptionsFromFlags(flags));
  if (!coordinator.ok()) {
    std::cerr << coordinator.status().ToString() << "\n";
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto report = (*coordinator)->Sweep();
  const auto t1 = std::chrono::steady_clock::now();
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }
  const double ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::cout << "sweep: " << report->masks.size() << " masks, "
            << report->tasks << " range tasks over " << num_workers
            << " workers in " << ms << " ms\n"
            << "  strict-optimal probability  " << report->probability.probability
            << " (" << report->probability.optimal_masks << "/"
            << report->probability.total_masks << " masks)\n"
            << "  worst excess over bound     " << report->score.worst_excess
            << "\n"
            << "  retries " << report->retries << ", client-side fallbacks "
            << report->fallback_tasks << "\n";
  for (const std::string& name : report->fenced_workers) {
    std::cout << "  " << name << "  FENCED\n";
  }
  return 0;
}

int CmdGenTrace(const Flags& flags) {
  auto schema_it = flags.find("schema");
  auto out_it = flags.find("out");
  if (schema_it == flags.end() || out_it == flags.end()) {
    std::cerr << "--schema and --out are required\n";
    return 1;
  }
  auto schema = ParseSchema(schema_it->second);
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  auto get_u64 = [&](const char* key, std::uint64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  auto get_double = [&](const char* key, double fallback) {
    auto it = flags.find(key);
    return it == flags.end() ? fallback
                             : std::strtod(it->second.c_str(), nullptr);
  };
  const std::uint64_t seed = get_u64("seed", 42);
  WorkloadTrace trace;
  trace.num_fields = schema->num_fields();
  auto gen = RecordGenerator::Uniform(*schema, seed);
  if (!gen.ok()) {
    std::cerr << gen.status().ToString() << "\n";
    return 1;
  }
  trace.records = gen->Take(get_u64("records", 1000));
  auto qgen = QueryGenerator::Create(&trace.records,
                                     get_double("spec-prob", 0.5), seed);
  if (!qgen.ok()) {
    std::cerr << qgen.status().ToString() << "\n";
    return 1;
  }
  const std::uint64_t num_queries = get_u64("queries", 100);
  for (std::uint64_t i = 0; i < num_queries; ++i) {
    trace.queries.push_back(qgen->Next());
  }
  if (auto st = SaveTrace(trace, out_it->second); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << trace.records.size() << " records and "
            << trace.queries.size() << " queries to " << out_it->second
            << "\n";
  return 0;
}

int CmdReplay(const Flags& flags) {
  auto schema_it = flags.find("schema");
  auto trace_it = flags.find("trace");
  auto devices_it = flags.find("devices");
  if (schema_it == flags.end() || trace_it == flags.end() ||
      devices_it == flags.end()) {
    std::cerr << "--schema, --trace and --devices are required\n";
    return 1;
  }
  auto schema = ParseSchema(schema_it->second);
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  auto trace = LoadTrace(trace_it->second);
  if (!trace.ok()) {
    std::cerr << trace.status().ToString() << "\n";
    return 1;
  }
  if (trace->num_fields != schema->num_fields()) {
    std::cerr << "trace arity does not match the schema\n";
    return 1;
  }
  const auto method_it = flags.find("method");
  auto file = ParallelFile::Create(
      *schema, std::strtoull(devices_it->second.c_str(), nullptr, 10),
      method_it == flags.end() ? "fx-iu2" : method_it->second);
  if (!file.ok()) {
    std::cerr << file.status().ToString() << "\n";
    return 1;
  }
  for (const Record& r : trace->records) {
    if (auto st = file->Insert(r); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  double largest_sum = 0.0, speedup_sum = 0.0;
  std::uint64_t matched = 0;
  int optimal = 0;
  for (const ValueQuery& q : trace->queries) {
    auto result = file->Execute(q);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    largest_sum += static_cast<double>(result->stats.largest_response);
    speedup_sum += result->stats.disk_timing.speedup;
    matched += result->stats.records_matched;
    if (result->stats.strict_optimal) ++optimal;
  }
  const BalanceReport balance =
      AnalyzeBalance(file->RecordCountsPerDevice());
  const auto q = static_cast<double>(trace->queries.size());
  std::cout << file->method().name() << " on " << file->spec().ToString()
            << ":\n"
            << "  records             " << file->num_records() << "\n"
            << "  storage max/mean    " << balance.peak_over_mean << "\n"
            << "  queries             " << trace->queries.size() << "\n"
            << "  matches             " << matched << "\n"
            << "  avg largest resp.   " << largest_sum / q << "\n"
            << "  avg disk speedup    " << speedup_sum / q << "\n"
            << "  strict optimal      " << optimal << "/"
            << trace->queries.size() << "\n";
  return 0;
}

int CmdBuild(const Flags& flags) {
  auto schema_it = flags.find("schema");
  auto devices_it = flags.find("devices");
  auto out_it = flags.find("out");
  if (schema_it == flags.end() || devices_it == flags.end() ||
      out_it == flags.end()) {
    std::cerr << "--schema, --devices and --out are required\n";
    return 1;
  }
  auto schema = ParseSchema(schema_it->second);
  if (!schema.ok()) {
    std::cerr << schema.status().ToString() << "\n";
    return 1;
  }
  auto get_u64 = [&](const char* key, std::uint64_t fallback) {
    auto it = flags.find(key);
    return it == flags.end()
               ? fallback
               : std::strtoull(it->second.c_str(), nullptr, 10);
  };
  const std::uint64_t devices =
      std::strtoull(devices_it->second.c_str(), nullptr, 10);
  const std::uint64_t seed = get_u64("seed", 42);
  const std::string method =
      flags.count("method") ? flags.at("method") : "fx-iu2";
  auto file = ParallelFile::Create(*schema, devices, method, seed);
  if (!file.ok()) {
    std::cerr << file.status().ToString() << "\n";
    return 1;
  }
  auto gen = RecordGenerator::Uniform(*schema, seed);
  if (!gen.ok()) {
    std::cerr << gen.status().ToString() << "\n";
    return 1;
  }
  const std::uint64_t num_records = get_u64("records", 10000);
  for (Record& record : gen->Take(num_records)) {
    if (auto st = file->Insert(std::move(record)); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  if (auto st = SaveBackend(*file, out_it->second); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "built " << file->num_records() << " records on M="
            << devices << " (" << method << ") -> " << out_it->second
            << "\n";
  return 0;
}

int CmdPack(const Flags& flags) {
  auto in_it = flags.find("in");
  auto out_it = flags.find("out");
  if (in_it == flags.end() || out_it == flags.end()) {
    std::cerr << "--in and --out are required\n";
    return 1;
  }
  auto source = LoadBackend(in_it->second);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  PackedOptions options;
  if (auto it = flags.find("block"); it != flags.end()) {
    options.records_per_block = std::strtoull(it->second.c_str(), nullptr, 10);
    if (options.records_per_block == 0) {
      std::cerr << "--block must be positive\n";
      return 1;
    }
  }
  std::optional<std::uint64_t> only_device;
  if (auto it = flags.find("device"); it != flags.end()) {
    only_device = std::strtoull(it->second.c_str(), nullptr, 10);
  }
  auto written =
      PackBackend(**source, out_it->second, options, only_device);
  if (!written.ok()) {
    std::cerr << written.status().ToString() << "\n";
    return 1;
  }
  // Reopen to report the validated result (and prove the file loads).
  auto packed = PackedBackend::Open(out_it->second);
  if (!packed.ok()) {
    std::cerr << "packed file fails to reopen: "
              << packed.status().ToString() << "\n";
    return 1;
  }
  const std::uint64_t source_bytes = (*source)->ApproxMemoryBytes();
  const std::uint64_t file_bytes = (*packed)->file_size();
  std::cout << "packed " << *written << " records from "
            << (*source)->backend_name() << " backend\n"
            << "  source resident : " << source_bytes << " bytes\n"
            << "  packed file     : " << file_bytes << " bytes\n";
  if (*written > 0 && file_bytes > 0) {
    std::cout << "  bytes/record    : "
              << TablePrinter::Cell(
                     static_cast<double>(file_bytes) /
                         static_cast<double>(*written), 2)
              << "\n"
              << "  compression     : "
              << TablePrinter::Cell(
                     static_cast<double>(source_bytes) /
                         static_cast<double>(file_bytes), 2)
              << "x vs resident\n";
  }
  return 0;
}

int CmdReshard(const Flags& flags) {
  auto in_it = flags.find("in");
  if (in_it == flags.end()) {
    std::cerr << "--in is required\n";
    return 1;
  }
  const std::string out_path =
      flags.count("out") ? flags.at("out") : in_it->second;

  auto loaded = LoadBackend(in_it->second);
  if (!loaded.ok()) {
    std::cerr << loaded.status().ToString() << "\n";
    return 1;
  }

  MigrationController::Options copts;
  if (auto it = flags.find("chunk"); it != flags.end()) {
    copts.chunk_buckets = std::strtoull(it->second.c_str(), nullptr, 10);
    if (copts.chunk_buckets == 0) {
      std::cerr << "--chunk must be positive\n";
      return 1;
    }
  }
  if (auto it = flags.find("attempts"); it != flags.end()) {
    copts.max_attempts = std::atoi(it->second.c_str());
    if (copts.max_attempts <= 0) {
      std::cerr << "--attempts must be positive\n";
      return 1;
    }
  }

  // A v4 file loads as a MigratingBackend with the saved migration
  // already resumed to its cursor; finish that one instead of starting
  // another (--devices/--scheme would describe a different target than
  // the one mid-copy).
  if (auto* resumed = dynamic_cast<MigratingBackend*>(loaded->get());
      resumed != nullptr && resumed->IsMigrating()) {
    loaded->release();
    std::unique_ptr<MigratingBackend> wrapper(resumed);
    const TopologyVersionInfo from = wrapper->Topology();
    const TopologyVersionInfo to = wrapper->PendingTopology();
    std::cout << "resuming saved migration at bucket cursor "
              << wrapper->CopyCursor() << "\n";
    while (!wrapper->CopyDone()) {
      if (auto copied = wrapper->CopyChunk(copts.chunk_buckets);
          !copied.ok()) {
        std::cerr << copied.status().ToString() << "\n";
        return 1;
      }
    }
    if (auto st = wrapper->Cutover(); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    if (auto st = SaveBackend(*wrapper, out_path); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
    std::cout << "resharded " << wrapper->num_records() << " records: M="
              << from.num_devices << " (" << from.scheme << ") -> M="
              << to.num_devices << " (" << to.scheme << "), topology v"
              << wrapper->Topology().version << " -> " << out_path << "\n";
    return 0;
  }

  auto devices_it = flags.find("devices");
  if (devices_it == flags.end()) {
    std::cerr << "--devices is required\n";
    return 1;
  }
  const std::uint64_t new_devices =
      std::strtoull(devices_it->second.c_str(), nullptr, 10);
  if (new_devices == 0) {
    std::cerr << "--devices must be positive\n";
    return 1;
  }

  auto wrapped = MigratingBackend::Create(std::move(*loaded));
  if (!wrapped.ok()) {
    std::cerr << wrapped.status().ToString() << "\n";
    return 1;
  }
  std::unique_ptr<MigratingBackend> wrapper = std::move(*wrapped);
  const TopologyVersionInfo from = wrapper->Topology();

  std::string scheme;
  if (auto it = flags.find("scheme"); it != flags.end()) {
    scheme = it->second;
  } else {
    // No explicit scheme: let the search hook decide whether FX is
    // still optimal at the new M or a searched table beats it.
    auto target_spec =
        FieldSpec::Create(wrapper->spec().field_sizes(), new_devices);
    if (!target_spec.ok()) {
      std::cerr << target_spec.status().ToString() << "\n";
      return 1;
    }
    auto chosen = ChooseReshardScheme(*target_spec);
    if (chosen.ok()) {
      scheme = *chosen;
    } else {
      // Bucket space too large for the exhaustive sweep: keep FX.
      std::cout << "scheme search skipped (" << chosen.status().message()
                << "); staying with fx\n";
      scheme = "fx";
    }
  }

  MigrationController controller(*wrapper, copts);
  const Status st = controller.Run([&] {
    return BuildRetargetedEmptyBackend(*wrapper, new_devices, scheme);
  });
  if (!st.ok()) {
    std::cerr << "migration failed after " << controller.attempts()
              << " attempt(s): " << st.ToString() << "\n";
    return 1;
  }
  if (auto save = SaveBackend(*wrapper, out_path); !save.ok()) {
    std::cerr << save.ToString() << "\n";
    return 1;
  }
  const TopologyVersionInfo to = wrapper->Topology();
  std::cout << "resharded " << wrapper->num_records() << " records: M="
            << from.num_devices << " (" << from.scheme << ") -> M="
            << to.num_devices << " (" << to.scheme << ")\n"
            << "  topology        v" << from.version << " -> v" << to.version
            << "\n"
            << "  attempts        " << controller.attempts() << "\n"
            << "  saved           " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const Flags flags = ParseFlags(argc, argv, 2);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    Usage();
    return 0;
  }
  if (cmd == "report") return CmdReport(flags);
  if (cmd == "layout") return CmdLayout(flags);
  if (cmd == "search-plan") return CmdSearchPlan(flags);
  if (cmd == "search-gdm") return CmdSearchGdm(flags);
  if (cmd == "advise-bits") return CmdAdviseBits(flags);
  if (cmd == "queueing") return CmdQueueing(flags);
  if (cmd == "recommend") return CmdRecommend(flags);
  if (cmd == "serve-bench") return CmdServeBench(flags);
  if (cmd == "shard-serve") return CmdShardServe(flags);
  if (cmd == "bulkload") return CmdBulkLoad(flags);
  if (cmd == "sweep") return CmdSweep(flags);
  if (cmd == "gen-trace") return CmdGenTrace(flags);
  if (cmd == "replay") return CmdReplay(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "pack") return CmdPack(flags);
  if (cmd == "reshard") return CmdReshard(flags);
  std::cerr << "unknown subcommand: " << cmd << "\n";
  return Usage();
}
