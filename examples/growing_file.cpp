// Growing file: FX declustering over extendible-hash directories.
//
// The paper assumes power-of-two field sizes because dynamic hashing makes
// them so — but dynamic directories *grow*.  This example inserts a stream
// of records into a DynamicParallelFile and charts what happens at each
// directory doubling: the bucket space, the FX transformation plan, and
// the redistribution cost, plus a query probe showing retrieval stays
// exact throughout.
//
//   $ ./build/examples/growing_file

#include <iostream>

#include "sim/dynamic_parallel_file.h"
#include "util/table_printer.h"

using namespace fxdist;  // NOLINT(build/namespaces)

int main() {
  auto file = DynamicParallelFile::Create(
                  {{"sensor", ValueType::kInt64},
                   {"metric", ValueType::kString},
                   {"site", ValueType::kInt64}},
                  /*num_devices=*/16, /*page_capacity=*/4)
                  .value();

  const char* metrics[] = {"temp", "rpm", "volt", "amps", "psi"};
  TablePrinter table({"records", "bucket space", "FX plan", "rebuilds",
                      "records moved", "probe matches"});

  std::uint64_t last_rebuilds = 0;
  for (int i = 1; i <= 3000; ++i) {
    Record r{std::int64_t{i % 97}, std::string(metrics[i % 5]),
             std::int64_t{i % 13}};
    if (auto st = file.Insert(std::move(r)); !st.ok()) {
      std::cerr << "insert failed: " << st.ToString() << "\n";
      return 1;
    }
    const bool grew = file.num_rebuilds() != last_rebuilds;
    if (grew || i == 3000) {
      last_rebuilds = file.num_rebuilds();
      // Probe: all "temp" readings for sensor 42.
      ValueQuery q(3);
      q[0] = FieldValue{std::int64_t{42}};
      q[1] = FieldValue{std::string("temp")};
      const auto probe = file.Execute(q).value();
      table.AddRow({std::to_string(file.num_records()),
                    file.spec().ToString(),
                    file.method().plan().ToString(),
                    std::to_string(file.num_rebuilds()),
                    std::to_string(file.records_moved()),
                    std::to_string(probe.records.size())});
    }
  }

  std::cout << "Dynamic parallel file over 16 devices "
               "(extendible hashing, page capacity 4)\n\n";
  table.Print(std::cout);

  const auto counts = file.RecordCountsPerDevice();
  std::uint64_t min = counts[0], max = counts[0];
  for (std::uint64_t c : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  std::cout << "\nFinal storage balance across 16 devices: min " << min
            << ", max " << max << " records\n";
  std::cout << "Every directory doubling re-plans the FX transformations "
               "for the new field sizes\nand redistributes — the plan "
               "column shows fields graduating from small to large.\n";
  return 0;
}
