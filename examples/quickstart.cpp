// Quickstart: declustering a multi-attribute file with fxdist.
//
// Builds a small parts file over 8 parallel devices using FX distribution,
// inserts records, and runs partial match queries — showing how the
// qualified buckets spread evenly over devices.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "sim/parallel_file.h"

using namespace fxdist;  // NOLINT(build/namespaces)

int main() {
  // 1. Declare the schema: each field gets a hash directory size (a power
  //    of two).  The bucket space is their cartesian product.
  auto schema = Schema::Create({
                                   {"part_no", ValueType::kInt64, 16},
                                   {"supplier", ValueType::kString, 8},
                                   {"city", ValueType::kString, 4},
                               })
                    .value();

  // 2. Create the parallel file: 8 devices, FX declustering with the
  //    automatic transformation planner.
  auto file = ParallelFile::Create(schema, /*num_devices=*/8, "fx-iu2")
                  .value();
  std::cout << "Distribution method: " << file.method().name() << "\n";

  // 3. Insert some records.
  const char* suppliers[] = {"acme", "globex", "initech", "umbrella"};
  const char* cities[] = {"rome", "oslo", "lima"};
  for (int part = 0; part < 200; ++part) {
    Record r{std::int64_t{part}, std::string(suppliers[part % 4]),
             std::string(cities[part % 3])};
    if (auto st = file.Insert(std::move(r)); !st.ok()) {
      std::cerr << "insert failed: " << st.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "Inserted " << file.num_records() << " records\n\n";

  // 4. Partial match query: supplier = "acme", everything else wildcard.
  ValueQuery query(3);
  query[1] = FieldValue{std::string("acme")};
  auto result = file.Execute(query).value();

  std::cout << "Query <*, \"acme\", *> matched "
            << result.stats.records_matched << " records\n";
  std::cout << "Qualified buckets per device:";
  for (std::uint64_t c : result.stats.qualified_per_device) {
    std::cout << ' ' << c;
  }
  std::cout << "\nLargest response: " << result.stats.largest_response
            << " (optimal bound " << result.stats.optimal_bound << ") -> "
            << (result.stats.strict_optimal ? "strict optimal"
                                            : "not optimal")
            << "\n";
  std::cout << "Modeled disk time: parallel "
            << result.stats.disk_timing.parallel_ms << " ms vs serial "
            << result.stats.disk_timing.serial_ms << " ms (speedup "
            << result.stats.disk_timing.speedup << "x)\n";
  return 0;
}
