// End-to-end operations pipeline: the whole library in one scenario.
//
// An ops team stores request logs keyed on (service, region, status,
// shard) and runs partial match queries ("all 500s in eu", "everything
// for service 17").  The pipeline:
//
//   1. size the field directories from query statistics  (advise-bits)
//   2. pick the distribution method                       (advisor)
//   3. build the parallel file and load data
//   4. run the query mix; report balance and optimality
//   5. expire old records (Delete) and re-check balance
//   6. snapshot to disk, reload, verify equivalence       (persistence)
//
//   $ ./build/examples/ops_pipeline

#include <cstdio>
#include <iostream>

#include "analysis/advisor.h"
#include "analysis/balance.h"
#include "analysis/bit_allocation.h"
#include "sim/parallel_file.h"
#include "sim/persistence.h"
#include "util/table_printer.h"
#include "workload/query_gen.h"
#include "workload/record_gen.h"

using namespace fxdist;  // NOLINT(build/namespaces)

int main() {
  constexpr std::uint64_t kDevices = 32;

  // 1. Directory sizing: service is almost always specified, status
  //    often, region sometimes, shard rarely.
  const std::vector<double> probs = {0.9, 0.6, 0.4, 0.1};
  auto alloc = AllocateFieldBits(probs, /*total_bits=*/14).value();
  std::cout << "Advised directory bits:";
  for (unsigned b : alloc.bits) std::cout << ' ' << b;
  std::cout << "  (E[|R(q)|] = " << alloc.expected_qualified << ")\n";

  const auto sizes = alloc.FieldSizes();
  auto schema = Schema::Create({
                                   {"service", ValueType::kInt64, sizes[0]},
                                   {"status", ValueType::kInt64, sizes[1]},
                                   {"region", ValueType::kString, sizes[2]},
                                   {"shard", ValueType::kInt64, sizes[3]},
                               })
                    .value();

  // 2. Method choice for this spec + workload statistic.
  auto spec = schema.ToFieldSpec(kDevices).value();
  auto rec = RecommendMethod(spec, /*specified_probability=*/0.5).value();
  std::cout << "Recommended method: " << rec.recommended << " (of "
            << rec.ranking.size() << " candidates)\n\n";

  // 3. Build and load.
  auto file = ParallelFile::Create(schema, kDevices, rec.recommended)
                  .value();
  auto gen = RecordGenerator::Uniform(schema, /*seed=*/404).value();
  const std::vector<Record> logs = gen.Take(30000);
  for (const Record& r : logs) {
    if (auto st = file.Insert(r); !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }
  const BalanceReport storage = AnalyzeBalance(file.RecordCountsPerDevice());
  std::cout << "Loaded " << file.num_records() << " records; storage "
            << "max/mean " << storage.peak_over_mean << "\n";

  // 4. Query mix.
  auto qgen = QueryGenerator::Create(&logs, 0.5, /*seed=*/99).value();
  int optimal = 0;
  double largest = 0, speedup = 0;
  constexpr int kQueries = 80;
  for (int i = 0; i < kQueries; ++i) {
    const auto stats = file.Execute(qgen.Next()).value().stats;
    if (stats.strict_optimal) ++optimal;
    largest += static_cast<double>(stats.largest_response);
    speedup += stats.disk_timing.speedup;
  }
  std::cout << "Query mix: " << optimal << "/" << kQueries
            << " strict optimal, avg largest response "
            << largest / kQueries << ", avg disk speedup "
            << speedup / kQueries << "x\n";

  // 5. Expire service 0's logs.
  ValueQuery expire(4);
  expire[0] = FieldValue{std::int64_t{0}};
  const std::uint64_t removed = file.Delete(expire).value();
  std::cout << "Expired " << removed << " records of service 0; "
            << file.num_records() << " remain\n";

  // 6. Snapshot round trip.
  const std::string path = "/tmp/fxdist_ops_pipeline.fxdist";
  if (auto st = SaveParallelFile(file, path); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  auto reloaded = LoadParallelFile(path).value();
  const bool same_counts =
      reloaded.RecordCountsPerDevice() == file.RecordCountsPerDevice();
  std::cout << "Snapshot reload: " << reloaded.num_records()
            << " records, placement "
            << (same_counts ? "identical" : "DIFFERENT!") << "\n";
  std::remove(path.c_str());
  return same_counts ? 0 : 1;
}
