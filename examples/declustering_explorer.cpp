// Declustering explorer: a small CLI over the analysis API.
//
// Give it field sizes, a device count and a method spec; it prints the
// transformation plan, an optimality report (which unspecified-field sets
// are guaranteed / actually strict optimal), and the device layout for
// small bucket spaces.
//
//   $ ./build/examples/declustering_explorer 4 4 4 --devices 64 --method fx-iu2
//   $ ./build/examples/declustering_explorer 8 8 8 8 8 8 --devices 32 --method modulo

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/conditions.h"
#include "analysis/fast_response.h"
#include "core/fx.h"
#include "core/registry.h"
#include "util/math.h"
#include "util/table_printer.h"

using namespace fxdist;  // NOLINT(build/namespaces)

namespace {

void PrintUsage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " F1 F2 ... [--devices M] [--method SPEC]\n"
            << "  field sizes and M must be powers of two\n"
            << "  SPEC: fx-basic | fx-iu1 | fx-iu2 | fx:[I,U,...] | modulo"
               " | gdm1|gdm2|gdm3 | gdm:a1,a2,...\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint64_t> sizes;
  std::uint64_t devices = 16;
  std::string method_spec = "fx-iu2";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--devices" && i + 1 < argc) {
      devices = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--method" && i + 1 < argc) {
      method_spec = argv[++i];
    } else if (arg == "--help") {
      PrintUsage(argv[0]);
      return 0;
    } else {
      sizes.push_back(std::strtoull(arg.c_str(), nullptr, 10));
    }
  }
  if (sizes.empty()) sizes = {4, 4, 4};  // a friendly default

  auto spec_result = FieldSpec::Create(sizes, devices);
  if (!spec_result.ok()) {
    std::cerr << "error: " << spec_result.status().ToString() << "\n";
    PrintUsage(argv[0]);
    return 1;
  }
  const FieldSpec spec = *spec_result;
  auto method_result = MakeDistribution(spec, method_spec);
  if (!method_result.ok()) {
    std::cerr << "error: " << method_result.status().ToString() << "\n";
    return 1;
  }
  const DistributionMethod& method = **method_result;

  std::cout << "File system: " << spec.ToString() << " ("
            << spec.TotalBuckets() << " buckets)\n";
  std::cout << "Method:      " << method.name() << "\n";
  if (const auto* fx = dynamic_cast<const FXDistribution*>(&method)) {
    std::cout << "Plan:        " << fx->plan().ToString() << "\n";
  }
  std::cout << "Small fields (F < M): " << spec.NumSmallFields() << " of "
            << spec.num_fields() << "\n\n";

  // Per-mask optimality report.
  const unsigned n = spec.num_fields();
  const auto* fx = dynamic_cast<const FXDistribution*>(&method);
  TablePrinter table({"unspecified fields", "|R(q)|", "bound",
                      "largest", "strict optimal", "guaranteed by theory"});
  std::uint64_t optimal_count = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    std::vector<unsigned> unspecified;
    std::string label;
    std::uint64_t qualified = 1;
    for (unsigned i = 0; i < n; ++i) {
      if ((mask >> i) & 1u) {
        unspecified.push_back(i);
        label += (label.empty() ? "" : ",") + std::to_string(i);
        qualified *= spec.field_size(i);
      }
    }
    if (label.empty()) label = "(exact match)";
    const std::uint64_t largest = MaskResponse(method, mask).Max();
    const std::uint64_t bound = CeilDiv(qualified, spec.num_devices());
    const bool optimal = largest <= bound;
    if (optimal) ++optimal_count;
    std::string guaranteed = "-";
    if (fx != nullptr) {
      guaranteed = FxStrictOptimalSufficient(spec, fx->plan().kinds(),
                                             unspecified)
                       ? "yes"
                       : "no";
    } else if (method_spec == "modulo") {
      guaranteed =
          ModuloStrictOptimalSufficient(spec, unspecified) ? "yes" : "no";
    }
    table.AddRow({label, TablePrinter::Cell(qualified),
                  TablePrinter::Cell(bound), TablePrinter::Cell(largest),
                  optimal ? "yes" : "NO", guaranteed});
  }
  table.Print(std::cout);
  std::cout << "\n"
            << optimal_count << "/" << (std::uint64_t{1} << n)
            << " query classes are strict optimal\n";

  // Layout dump for small spaces.
  if (spec.TotalBuckets() <= 64) {
    std::cout << "\nDevice layout:\n";
    ForEachBucket(spec, [&](const BucketId& b) {
      std::cout << "  " << BucketToString(spec, b) << " -> device "
                << method.DeviceOf(b) << "\n";
      return true;
    });
  }
  return 0;
}
