// Parts warehouse on parallel disks: FX vs Modulo under a realistic
// partial match mix.
//
// The classic partial-match workload (Rothnie & Lozano's attribute-based
// retrieval): a parts file keyed on several attributes, queried with
// varying subsets specified.  We build the same file twice — once
// declustered with FX, once with Modulo — replay an identical query mix,
// and compare largest response sizes and modeled disk time.
//
//   $ ./build/examples/parts_warehouse

#include <iostream>

#include "sim/parallel_file.h"
#include "util/table_printer.h"
#include "workload/query_gen.h"
#include "workload/record_gen.h"

using namespace fxdist;  // NOLINT(build/namespaces)

namespace {

struct MixResult {
  double avg_largest = 0.0;
  double avg_parallel_ms = 0.0;
  double avg_speedup = 0.0;
  int strict_optimal = 0;
};

MixResult Replay(ParallelFile* file, const std::vector<ValueQuery>& mix) {
  MixResult out;
  for (const ValueQuery& q : mix) {
    const QueryStats stats = file->Execute(q).value().stats;
    out.avg_largest += static_cast<double>(stats.largest_response);
    out.avg_parallel_ms += stats.disk_timing.parallel_ms;
    out.avg_speedup += stats.disk_timing.speedup;
    if (stats.strict_optimal) ++out.strict_optimal;
  }
  const auto n = static_cast<double>(mix.size());
  out.avg_largest /= n;
  out.avg_parallel_ms /= n;
  out.avg_speedup /= n;
  return out;
}

}  // namespace

int main() {
  // Deliberately small directories relative to the 32 disks: the regime
  // where Modulo struggles and FX's transformations matter.
  auto schema = Schema::Create({
                                   {"part_no", ValueType::kInt64, 8},
                                   {"supplier", ValueType::kString, 8},
                                   {"warehouse", ValueType::kString, 8},
                                   {"bin", ValueType::kInt64, 8},
                               })
                    .value();
  constexpr std::uint64_t kDisks = 32;

  auto gen = RecordGenerator::Uniform(schema, /*seed=*/2024).value();
  const std::vector<Record> inventory = gen.Take(5000);

  // One query mix for both systems: 2 or 3 wildcarded attributes.
  auto qgen = QueryGenerator::Create(&inventory, 0.5, /*seed=*/77).value();
  std::vector<ValueQuery> mix;
  for (int i = 0; i < 60; ++i) mix.push_back(qgen.NextWithUnspecified(2));
  for (int i = 0; i < 40; ++i) mix.push_back(qgen.NextWithUnspecified(3));

  TablePrinter table({"method", "avg largest response", "avg parallel ms",
                      "avg speedup", "strict-optimal queries"});
  for (const char* dist : {"fx-iu1", "modulo", "gdm1"}) {
    auto file = ParallelFile::Create(schema, kDisks, dist).value();
    for (const Record& r : inventory) {
      if (auto st = file.Insert(r); !st.ok()) {
        std::cerr << st.ToString() << "\n";
        return 1;
      }
    }
    const MixResult r = Replay(&file, mix);
    table.AddRow({file.method().name(), TablePrinter::Cell(r.avg_largest, 2),
                  TablePrinter::Cell(r.avg_parallel_ms, 1),
                  TablePrinter::Cell(r.avg_speedup, 2),
                  std::to_string(r.strict_optimal) + "/" +
                      std::to_string(mix.size())});
  }

  std::cout << "Parts warehouse: " << inventory.size() << " records on "
            << kDisks << " disks, " << mix.size()
            << " partial match queries\n\n";
  table.Print(std::cout);
  std::cout << "\nFX keeps the per-disk load near |R(q)|/M, so the slowest "
               "disk finishes sooner:\nlower largest response -> lower "
               "parallel response time.\n";
  return 0;
}
