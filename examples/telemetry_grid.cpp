// Main-memory telemetry store on a massively parallel machine.
//
// The paper motivates FX for Butterfly-class multiprocessors: many
// processing nodes (M = 512), every field directory *smaller* than M, and
// response time dominated by CPU work (bucket address computation +
// inverse mapping) rather than disk I/O.  This example sizes that
// scenario: a telemetry cube declustered over 512 nodes, comparing
// methods on (a) distribution quality and (b) modeled CPU time per query
// using the MC68000 cycle model of §5.2.2.
//
//   $ ./build/examples/telemetry_grid

#include <iostream>

#include "analysis/cycles.h"
#include "analysis/fast_response.h"
#include "analysis/response.h"
#include "core/registry.h"
#include "sim/timing.h"
#include "util/table_printer.h"

using namespace fxdist;  // NOLINT(build/namespaces)

int main() {
  // Six telemetry dimensions, all with small hash directories (8 or 16
  // values) against 512 nodes — exactly Table 9's file system.
  auto spec = FieldSpec::Create({8, 8, 8, 16, 16, 16}, 512).value();
  std::cout << "Telemetry cube " << spec.ToString() << " ("
            << spec.TotalBuckets() << " buckets over "
            << spec.num_devices() << " memory nodes)\n\n";

  TablePrinter table({"method", "addr cycles/bucket",
                      "avg largest (k=3)", "avg largest (k=4)",
                      "modeled query ms (k=4)"});
  const MemoryTimingModel memory_model;
  for (const char* dist : {"modulo", "gdm1", "gdm3", "fx-iu2"}) {
    auto method = MakeDistribution(spec, dist).value();
    const AddressComputationCost cost = EstimateAddressCost(*method);
    const double k3 = AverageLargestResponse(*method, 3).average;
    const double k4 = AverageLargestResponse(*method, 4).average;
    // Each node inverse-maps its share of qualified buckets: model the
    // parallel CPU time as (largest response) * (address + probe cycles).
    const QueryTiming t = MemoryQueryTiming(
        {static_cast<std::uint64_t>(k4)}, cost.total_cycles, memory_model);
    table.AddRow({method->name(), TablePrinter::Cell(cost.total_cycles),
                  TablePrinter::Cell(k3, 1), TablePrinter::Cell(k4, 1),
                  TablePrinter::Cell(t.parallel_ms, 3)});
  }
  table.Print(std::cout);

  std::cout << "\nTwo effects compound for FX here: fewer buckets on the "
               "busiest node (better declustering)\nand cheaper per-bucket "
               "address computation than GDM (shift/XOR vs multiply).\n";
  return 0;
}
