#include "hashing/linear_hash.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/bitops.h"
#include "util/random.h"

namespace fxdist {
namespace {

TEST(LinearHashTest, CreateValidates) {
  EXPECT_FALSE(LinearHashDirectory::Create(0).ok());
  EXPECT_FALSE(LinearHashDirectory::Create(4, 0.0).ok());
  EXPECT_FALSE(LinearHashDirectory::Create(4, 1.5).ok());
  EXPECT_TRUE(LinearHashDirectory::Create(4, 0.8).ok());
}

TEST(LinearHashTest, StartsWithOneBucket) {
  auto dir = LinearHashDirectory::Create(4).value();
  EXPECT_EQ(dir.num_buckets(), 1u);
  EXPECT_EQ(dir.level(), 0u);
  EXPECT_EQ(dir.split_pointer(), 0u);
}

TEST(LinearHashTest, BucketCountGrowsByOne) {
  auto dir = LinearHashDirectory::Create(2, 0.75).value();
  Xoshiro256 rng(3);
  std::uint64_t prev = dir.num_buckets();
  for (int i = 0; i < 500; ++i) {
    dir.Insert(rng.Next());
    const std::uint64_t now = dir.num_buckets();
    EXPECT_LE(now - prev, 2u) << "growth must be gradual at insert " << i;
    prev = now;
  }
  EXPECT_GT(dir.num_buckets(), 100u);
}

TEST(LinearHashTest, EveryKeyFindableViaAddressFunction) {
  auto dir = LinearHashDirectory::Create(3, 0.7).value();
  Xoshiro256 rng(11);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 800; ++i) {
    keys.push_back(rng.Next());
    dir.Insert(keys.back());
  }
  for (std::uint64_t k : keys) {
    const auto& bucket = dir.BucketKeys(dir.BucketOf(k));
    EXPECT_NE(std::find(bucket.begin(), bucket.end(), k), bucket.end());
  }
}

TEST(LinearHashTest, LoadFactorBoundedByThreshold) {
  auto dir = LinearHashDirectory::Create(4, 0.8).value();
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    dir.Insert(rng.Next());
    EXPECT_LE(dir.LoadFactor(), 0.8 + 1e-12);
  }
}

TEST(LinearHashTest, SplitPointerWrapsAtLevelBoundary) {
  auto dir = LinearHashDirectory::Create(1, 1.0).value();
  Xoshiro256 rng(19);
  unsigned last_level = 0;
  for (int i = 0; i < 300; ++i) {
    dir.Insert(rng.Next());
    EXPECT_LT(dir.split_pointer(), std::uint64_t{1} << dir.level());
    EXPECT_GE(dir.level(), last_level);
    last_level = dir.level();
    EXPECT_EQ(dir.num_buckets(),
              (std::uint64_t{1} << dir.level()) + dir.split_pointer());
  }
  EXPECT_GT(dir.level(), 5u);
}

TEST(LinearHashTest, PowerOfTwoCeilingIsNextLevelBoundary) {
  auto dir = LinearHashDirectory::Create(2, 0.9).value();
  Xoshiro256 rng(23);
  for (int i = 0; i < 1000; ++i) {
    dir.Insert(rng.Next());
    const std::uint64_t ceiling = dir.PowerOfTwoCeiling();
    EXPECT_TRUE(IsPowerOfTwo(ceiling));
    EXPECT_GE(ceiling, dir.num_buckets());
    EXPECT_LT(ceiling / 2, dir.num_buckets());
  }
}

TEST(LinearHashTest, AddressFunctionMatchesLitwinDefinition) {
  auto dir = LinearHashDirectory::Create(1, 1.0).value();
  // Force a known state by inserting until level 2 begins.
  Xoshiro256 rng(29);
  while (!(dir.level() == 2 && dir.split_pointer() == 1)) {
    dir.Insert(rng.Next());
    ASSERT_LT(dir.num_keys(), 10000u);
  }
  // level 2, split 1: buckets 0..4 exist.  h mod 4 == 0 -> re-address
  // mod 8; otherwise mod 4.
  EXPECT_EQ(dir.BucketOf(8), (8 % 8) % 8u);   // 8 mod 4 = 0 < 1 -> mod 8 = 0
  EXPECT_EQ(dir.BucketOf(4), 4u);             // 4 mod 4 = 0 < 1 -> mod 8 = 4
  EXPECT_EQ(dir.BucketOf(6), 2u);             // 6 mod 4 = 2 >= 1 -> 2
  EXPECT_EQ(dir.BucketOf(7), 3u);
}

}  // namespace
}  // namespace fxdist
