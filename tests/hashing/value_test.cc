#include "hashing/value.h"

#include <gtest/gtest.h>

namespace fxdist {
namespace {

TEST(ValueTest, TypeOf) {
  EXPECT_EQ(TypeOf(FieldValue{std::int64_t{42}}), ValueType::kInt64);
  EXPECT_EQ(TypeOf(FieldValue{3.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(FieldValue{std::string("x")}), ValueType::kString);
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "string");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(FieldValueToString(FieldValue{std::int64_t{-7}}), "-7");
  EXPECT_EQ(FieldValueToString(FieldValue{std::string("abc")}), "\"abc\"");
}

TEST(ValueTest, RecordToString) {
  Record r{std::int64_t{1}, std::string("b")};
  EXPECT_EQ(RecordToString(r), "(1, \"b\")");
}

TEST(ValueTest, EqualityIsTypeAndValueSensitive) {
  EXPECT_EQ(FieldValue{std::int64_t{1}}, FieldValue{std::int64_t{1}});
  EXPECT_NE(FieldValue{std::int64_t{1}}, FieldValue{std::int64_t{2}});
  EXPECT_NE(FieldValue{std::int64_t{1}}, FieldValue{1.0});
  EXPECT_EQ(FieldValue{std::string("a")}, FieldValue{std::string("a")});
}

}  // namespace
}  // namespace fxdist
