// ValueQuery -> QueryKey canonicalization (hashing/query_key.h): the
// binding between values and the opaque tokens core hashes.

#include "hashing/query_key.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>

namespace fxdist {
namespace {

TEST(CanonicalQueryKeyTest, AllWildcardQuery) {
  QueryKey key = CanonicalQueryKey(ValueQuery(3));
  EXPECT_EQ(key.arity(), 3u);
  EXPECT_TRUE(key.all_wildcard());
}

TEST(CanonicalQueryKeyTest, SpecifiedFieldsKeepPositions) {
  const ValueQuery q{std::nullopt, FieldValue{std::int64_t{7}},
                     std::nullopt, FieldValue{std::string("x")}};
  QueryKey key = CanonicalQueryKey(q);
  ASSERT_EQ(key.specified().size(), 2u);
  EXPECT_EQ(key.specified()[0].first, 1u);
  EXPECT_EQ(key.specified()[1].first, 3u);
}

TEST(CanonicalQueryKeyTest, EqualQueriesEqualKeys) {
  const ValueQuery a{FieldValue{std::int64_t{42}}, std::nullopt,
                     FieldValue{std::string("tag")}};
  const ValueQuery b = a;
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
  EXPECT_EQ(CanonicalQueryKey(a).hash(), CanonicalQueryKey(b).hash());
}

TEST(CanonicalQueryKeyTest, TokensAreTypeTagged) {
  // int64 5, double 5.0, and string "5" look alike printed but filter
  // differently; their tokens — and keys — must stay distinct.
  const ValueQuery as_int{FieldValue{std::int64_t{5}}};
  const ValueQuery as_double{FieldValue{5.0}};
  const ValueQuery as_string{FieldValue{std::string("5")}};
  const QueryKey ik = CanonicalQueryKey(as_int);
  const QueryKey dk = CanonicalQueryKey(as_double);
  const QueryKey sk = CanonicalQueryKey(as_string);
  EXPECT_FALSE(ik == dk);
  EXPECT_FALSE(ik == sk);
  EXPECT_FALSE(dk == sk);
}

TEST(CanonicalQueryKeyTest, SamePositionDifferentValueDiffers) {
  const ValueQuery a{FieldValue{std::int64_t{1}}, std::nullopt};
  const ValueQuery b{FieldValue{std::int64_t{2}}, std::nullopt};
  EXPECT_FALSE(CanonicalQueryKey(a) == CanonicalQueryKey(b));
}

TEST(CanonicalQueryKeyTest, SameValueDifferentPositionDiffers) {
  const ValueQuery a{FieldValue{std::int64_t{1}}, std::nullopt};
  const ValueQuery b{std::nullopt, FieldValue{std::int64_t{1}}};
  EXPECT_FALSE(CanonicalQueryKey(a) == CanonicalQueryKey(b));
}

TEST(CanonicalQueryKeyTest, TokenPrefixesMatchValueCodec) {
  EXPECT_EQ(QueryKeyToken(FieldValue{std::int64_t{-3}}).rfind("i:", 0), 0u);
  EXPECT_EQ(QueryKeyToken(FieldValue{1.5}).rfind("d:", 0), 0u);
  EXPECT_EQ(QueryKeyToken(FieldValue{std::string("ab")}).rfind("s:", 0),
            0u);
}

TEST(CanonicalQueryKeyTest, SignedZerosGetDistinctKeys) {
  // 0.0 == -0.0 under operator==, but the tokens encode IEEE bits: the
  // keys differ.  Safe direction — a missed collapse, never a wrong hit.
  const ValueQuery pos{FieldValue{0.0}};
  const ValueQuery neg{FieldValue{-0.0}};
  EXPECT_FALSE(CanonicalQueryKey(pos) == CanonicalQueryKey(neg));
}

TEST(CanonicalQueryKeyTest, NanBitPatternsCollapseWhenIdentical) {
  const double nan = std::nan("");
  const ValueQuery a{FieldValue{nan}};
  const ValueQuery b{FieldValue{nan}};
  EXPECT_EQ(CanonicalQueryKey(a), CanonicalQueryKey(b));
}

}  // namespace
}  // namespace fxdist
