#include "hashing/extendible.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/random.h"

namespace fxdist {
namespace {

TEST(ExtendibleTest, CreateValidatesCapacity) {
  EXPECT_FALSE(ExtendibleDirectory::Create(0).ok());
  EXPECT_TRUE(ExtendibleDirectory::Create(1).ok());
}

TEST(ExtendibleTest, StartsWithOneCell) {
  auto dir = ExtendibleDirectory::Create(4).value();
  EXPECT_EQ(dir.directory_size(), 1u);
  EXPECT_EQ(dir.global_depth(), 0u);
  EXPECT_EQ(dir.num_keys(), 0u);
}

TEST(ExtendibleTest, DoublesWhenPageOverflows) {
  auto dir = ExtendibleDirectory::Create(2).value();
  dir.Insert(0b00);
  dir.Insert(0b01);
  EXPECT_EQ(dir.directory_size(), 1u);
  dir.Insert(0b10);  // third key forces a split, hence a doubling
  EXPECT_GE(dir.directory_size(), 2u);
  EXPECT_EQ(dir.num_keys(), 3u);
}

TEST(ExtendibleTest, DirectorySizeAlwaysPowerOfTwo) {
  auto dir = ExtendibleDirectory::Create(3).value();
  Xoshiro256 rng(5);
  for (int i = 0; i < 2000; ++i) {
    dir.Insert(rng.Next());
    const std::uint64_t size = dir.directory_size();
    EXPECT_EQ(size & (size - 1), 0u);
  }
  EXPECT_EQ(dir.num_keys(), 2000u);
}

TEST(ExtendibleTest, EveryKeyRemainsFindable) {
  // Directory invariant: a key's cell page must contain it.
  auto dir = ExtendibleDirectory::Create(4).value();
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.Next());
    dir.Insert(keys.back());
    for (std::uint64_t k : keys) {
      const auto& page = dir.PageKeys(dir.CellOf(k));
      EXPECT_NE(std::find(page.begin(), page.end(), k), page.end())
          << "key lost after insert " << i;
    }
  }
}

TEST(ExtendibleTest, LocalDepthNeverExceedsGlobal) {
  auto dir = ExtendibleDirectory::Create(2).value();
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    dir.Insert(rng.Next());
  }
  for (std::uint64_t c = 0; c < dir.directory_size(); ++c) {
    EXPECT_LE(dir.PageLocalDepth(c), dir.global_depth());
  }
}

TEST(ExtendibleTest, PagesRespectCapacityWithDistinctKeys) {
  auto dir = ExtendibleDirectory::Create(4).value();
  Xoshiro256 rng(17);
  for (int i = 0; i < 2000; ++i) dir.Insert(rng.Next());
  // With well-spread 64-bit keys, depth stays far below the cap, so no
  // page should exceed its capacity.
  for (std::uint64_t c = 0; c < dir.directory_size(); ++c) {
    EXPECT_LE(dir.PageKeys(c).size(), 4u);
  }
}

TEST(ExtendibleTest, DuplicateKeysOverflowGracefully) {
  // All-equal keys can never split apart; the page must overflow rather
  // than loop forever.
  auto dir = ExtendibleDirectory::Create(2).value();
  for (int i = 0; i < 100; ++i) dir.Insert(42);
  EXPECT_EQ(dir.num_keys(), 100u);
  EXPECT_EQ(dir.PageKeys(dir.CellOf(42)).size(), 100u);
}

TEST(ExtendibleTest, CategoricalKeysDoNotExplodeTheDirectory) {
  // Regression: few distinct keys repeated many times (a categorical
  // field) must overflow pages, not double the directory to the depth
  // cap.  Before the all-duplicates guard this grew to 2^16 cells.
  auto dir = ExtendibleDirectory::Create(3).value();
  SplitMix64 sm(99);
  std::vector<std::uint64_t> distinct;
  for (int i = 0; i < 5; ++i) distinct.push_back(sm.Next());
  for (int i = 0; i < 3000; ++i) {
    dir.Insert(distinct[static_cast<std::size_t>(i) % 5]);
  }
  EXPECT_EQ(dir.num_keys(), 3000u);
  EXPECT_LE(dir.directory_size(), 256u);
  // Every key still findable.
  for (std::uint64_t k : distinct) {
    const auto& page = dir.PageKeys(dir.CellOf(k));
    EXPECT_NE(std::find(page.begin(), page.end(), k), page.end());
  }
}

TEST(ExtendibleTest, DepthCapRespected) {
  auto dir = ExtendibleDirectory::Create(1, /*max_global_depth=*/4).value();
  Xoshiro256 rng(123);
  for (int i = 0; i < 200; ++i) dir.Insert(rng.Next());
  EXPECT_LE(dir.global_depth(), 4u);
  EXPECT_LE(dir.directory_size(), 16u);
  EXPECT_FALSE(ExtendibleDirectory::Create(1, 64).ok());
}

TEST(ExtendibleTest, LoadFactorReasonable) {
  auto dir = ExtendibleDirectory::Create(8).value();
  Xoshiro256 rng(21);
  for (int i = 0; i < 4000; ++i) dir.Insert(rng.Next());
  // Extendible hashing's expected page utilization is ~ln 2 ~ 0.69.
  EXPECT_GT(dir.LoadFactor(), 0.45);
  EXPECT_LE(dir.LoadFactor(), 1.0);
}

TEST(ExtendibleTest, GrowthIsGradual) {
  // Directory size should land near num_keys / capacity, not explode.
  auto dir = ExtendibleDirectory::Create(4).value();
  Xoshiro256 rng(31);
  for (int i = 0; i < 1024; ++i) dir.Insert(rng.Next());
  EXPECT_GE(dir.directory_size(), 128u);
  EXPECT_LE(dir.directory_size(), 2048u);
}

}  // namespace
}  // namespace fxdist
