#include "hashing/value_codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace fxdist {
namespace {

FieldValue RoundTrip(const FieldValue& value) {
  std::ostringstream out;
  EncodeValue(out, value);
  std::istringstream in(out.str());
  auto decoded = DecodeValue(in);
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  return *decoded;
}

TEST(ValueCodecTest, Int64RoundTrip) {
  for (std::int64_t v : {std::int64_t{0}, std::int64_t{-1},
                         std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(RoundTrip(FieldValue{v}), FieldValue{v});
  }
}

TEST(ValueCodecTest, DoubleBitExact) {
  for (double v : {0.0, -0.0, 0.1, 1e308, 5e-324,
                   std::numeric_limits<double>::infinity()}) {
    std::ostringstream out;
    EncodeValue(out, FieldValue{v});
    std::istringstream in(out.str());
    const double back = std::get<double>(*DecodeValue(in));
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(back, v);
  }
}

TEST(ValueCodecTest, StringWithEveryByteClass) {
  std::string nasty = "sp ace\ttab\nnewline:colon*star 0:prefix";
  nasty.push_back('\0');
  nasty += "after-nul";
  EXPECT_EQ(RoundTrip(FieldValue{nasty}), FieldValue{nasty});
  EXPECT_EQ(RoundTrip(FieldValue{std::string()}),
            FieldValue{std::string()});
}

TEST(ValueCodecTest, SequentialValuesParse) {
  std::ostringstream out;
  EncodeValue(out, FieldValue{std::int64_t{7}});
  out << ' ';
  EncodeValue(out, FieldValue{std::string("a b")});
  out << ' ';
  EncodeValue(out, FieldValue{2.5});
  std::istringstream in(out.str());
  EXPECT_EQ(*DecodeValue(in), FieldValue{std::int64_t{7}});
  EXPECT_EQ(*DecodeValue(in), FieldValue{std::string("a b")});
  EXPECT_EQ(*DecodeValue(in), FieldValue{2.5});
}

TEST(ValueCodecTest, MalformedInputRejected) {
  for (const char* bad : {"", "x:1", "i:", "d:zz", "d:1234",
                          "s:5:ab", "s:abc"}) {
    std::istringstream in(bad);
    EXPECT_FALSE(DecodeValue(in).ok()) << "input '" << bad << "'";
  }
}

TEST(ValueCodecTest, LengthPrefixedHelpers) {
  std::ostringstream out;
  EncodeLengthPrefixed(out, "hello world");
  EXPECT_EQ(out.str(), "11:hello world");
  std::istringstream in(out.str());
  EXPECT_EQ(*DecodeLengthPrefixed(in), "hello world");
}

}  // namespace
}  // namespace fxdist
