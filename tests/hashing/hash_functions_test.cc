#include "hashing/hash_functions.h"

#include <gtest/gtest.h>

#include <vector>

namespace fxdist {
namespace {

TEST(HashFunctionsTest, RangeMustBePowerOfTwo) {
  EXPECT_FALSE(MakeDivisionHasher(3).ok());
  EXPECT_FALSE(MakeMultiplicativeHasher(0).ok());
  EXPECT_TRUE(MakeDivisionHasher(8).ok());
}

TEST(HashFunctionsTest, DivisionHasherIsValueModRange) {
  auto h = MakeDivisionHasher(8).value();
  EXPECT_EQ(h->Hash(FieldValue{std::int64_t{0}}).value(), 0u);
  EXPECT_EQ(h->Hash(FieldValue{std::int64_t{13}}).value(), 5u);
  EXPECT_EQ(h->Hash(FieldValue{std::int64_t{8}}).value(), 0u);
}

TEST(HashFunctionsTest, DivisionHasherHandlesNegatives) {
  auto h = MakeDivisionHasher(8).value();
  auto r = h->Hash(FieldValue{std::int64_t{-5}});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(*r, 8u);
}

TEST(HashFunctionsTest, TypeMismatchIsError) {
  auto h = MakeDivisionHasher(8).value();
  EXPECT_FALSE(h->Hash(FieldValue{std::string("x")}).ok());
  auto s = MakeStringHasher(8).value();
  EXPECT_FALSE(s->Hash(FieldValue{std::int64_t{1}}).ok());
  auto d = MakeDoubleHasher(8).value();
  EXPECT_FALSE(d->Hash(FieldValue{std::string("x")}).ok());
}

TEST(HashFunctionsTest, HashersStayInRange) {
  auto mult = MakeMultiplicativeHasher(16).value();
  auto str = MakeStringHasher(16).value();
  auto dbl = MakeDoubleHasher(16).value();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(mult->Hash(FieldValue{std::int64_t{i * 977}}).value(), 16u);
    EXPECT_LT(str->Hash(FieldValue{std::string("k") + std::to_string(i)})
                  .value(),
              16u);
    EXPECT_LT(dbl->Hash(FieldValue{i * 0.37}).value(), 16u);
  }
}

TEST(HashFunctionsTest, MultiplicativeSpreadsClusteredKeys) {
  // Sequential keys must not all collide into few cells.
  auto h = MakeMultiplicativeHasher(16).value();
  std::vector<int> hist(16, 0);
  for (int i = 0; i < 1600; ++i) {
    ++hist[h->Hash(FieldValue{std::int64_t{i}}).value()];
  }
  for (int c : hist) {
    EXPECT_GT(c, 50);
    EXPECT_LT(c, 200);
  }
}

TEST(HashFunctionsTest, StringHashDeterministicAndSeedSensitive) {
  auto a = MakeStringHasher(1024, 1).value();
  auto b = MakeStringHasher(1024, 1).value();
  auto c = MakeStringHasher(1024, 2).value();
  int diff = 0;
  for (int i = 0; i < 64; ++i) {
    const FieldValue v{std::string("key") + std::to_string(i)};
    EXPECT_EQ(a->Hash(v).value(), b->Hash(v).value());
    if (a->Hash(v).value() != c->Hash(v).value()) ++diff;
  }
  EXPECT_GT(diff, 32);
}

TEST(HashFunctionsTest, DoubleNormalizesSignedZero) {
  auto h = MakeDoubleHasher(64).value();
  EXPECT_EQ(h->Hash(FieldValue{0.0}).value(),
            h->Hash(FieldValue{-0.0}).value());
}

TEST(HashFunctionsTest, DefaultHasherPicksByType) {
  EXPECT_EQ(MakeDefaultHasher(ValueType::kInt64, 8).value()->name(),
            "multiplicative");
  EXPECT_EQ(MakeDefaultHasher(ValueType::kString, 8).value()->name(),
            "fnv1a");
  EXPECT_EQ(MakeDefaultHasher(ValueType::kDouble, 8).value()->name(),
            "double-bits");
}

TEST(HashFunctionsTest, RangeOneAlwaysZero) {
  auto h = MakeMultiplicativeHasher(1).value();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(h->Hash(FieldValue{std::int64_t{i}}).value(), 0u);
  }
}

}  // namespace
}  // namespace fxdist
